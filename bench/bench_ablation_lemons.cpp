// Ablation: heterogeneous node reliability ("lemon" nodes). The analytic
// model assumes iid exponential nodes; real fleets concentrate failures on
// a few bad nodes. Holding the *aggregate* platform failure rate constant,
// this bench simulates fleets where a fraction of lemons carries most of
// the hazard and measures what happens to waste and survival.
//
// Headline: waste barely moves (the renewal argument only sees the
// aggregate rate), but survival shifts -- concentrated failures revisit the
// same group's risk windows, so pairs containing a lemon die more often
// while the rest of the fleet is safer.
#include "bench_common.hpp"

#include <algorithm>
#include <memory>

#include "sim/sim_api.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::bench;

/// Builds a fleet whose total failure rate equals nodes/node_mtbf, with
/// the nodes listed in `lemon_ids` carrying `share` of it.
std::vector<std::unique_ptr<util::Distribution>> make_fleet(
    std::uint64_t nodes, double node_mtbf,
    const std::vector<std::uint64_t>& lemon_ids, double share) {
  const double total_rate = static_cast<double>(nodes) / node_mtbf;
  const auto is_lemon = [&](std::uint64_t node) {
    return std::find(lemon_ids.begin(), lemon_ids.end(), node) !=
           lemon_ids.end();
  };
  std::vector<std::unique_ptr<util::Distribution>> laws;
  laws.reserve(nodes);
  for (std::uint64_t node = 0; node < nodes; ++node) {
    double rate;
    if (lemon_ids.empty()) {
      rate = total_rate / static_cast<double>(nodes);
    } else if (is_lemon(node)) {
      rate = total_rate * share / static_cast<double>(lemon_ids.size());
    } else {
      rate = total_rate * (1.0 - share) /
             static_cast<double>(nodes - lemon_ids.size());
    }
    laws.push_back(std::make_unique<util::Exponential>(rate));
  }
  return laws;
}

}  // namespace

int main(int argc, char** argv) {
  const auto context = parse_bench_args(
      argc, argv, "Ablation: lemon nodes vs the iid assumption");
  if (!context) return 0;

  print_header(
      "Ablation -- heterogeneous reliability (Base, 24 nodes, M = 10 min "
      "aggregate)",
      "x lemons carry 80% of the platform failure rate. 400 trials,\n"
      "DoubleNBL at the model-optimal period, t_base = 2 h.");

  auto params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(600.0);
  params.nodes = 24;
  const auto opt =
      model::optimal_period_closed_form(model::Protocol::DoubleNbl, params);

  struct Case {
    const char* label;
    std::vector<std::uint64_t> lemon_ids;
  };
  // "same pair" puts both lemons on buddies 0 and 1; "separated" puts them
  // in different pairs -- the buddy-placement remedy.
  const Case cases[] = {{"none", {}},
                        {"2, same pair", {0, 1}},
                        {"2, separated", {0, 22}},
                        {"6, spread", {0, 4, 8, 12, 16, 20}},
                        {"12, spread", {0, 2, 4, 6, 8, 10,
                                        12, 14, 16, 18, 20, 22}}};

  util::TextTable table({"lemons", "sim waste", "survival", "Wilson 95%"});
  auto csv = context->csv("ablation_lemons",
                          {"lemons", "waste", "survival", "ci_lo", "ci_hi"});
  for (const auto& test_case : cases) {
    util::RunningStats waste;
    util::ProportionEstimate survival;
    for (std::uint64_t trial = 0; trial < 400; ++trial) {
      sim::SimConfig config;
      config.protocol = model::Protocol::DoubleNbl;
      config.params = params;
      config.period = opt.period;
      config.t_base = 7200.0;
      config.stop_on_fatal = true;
      config.max_makespan = 1e8;
      auto injector = std::make_unique<sim::PerNodeInjector>(
          make_fleet(params.nodes, params.node_mtbf(), test_case.lemon_ids,
                     0.8),
          util::Xoshiro256ss(0x1e305 ^ (trial * 0x9e3779b97f4a7c15ULL)));
      sim::ProtocolSimulation simulation(config, std::move(injector));
      const auto result = simulation.run();
      survival.add(!result.fatal);
      if (!result.fatal && !result.diverged) waste.add(result.waste());
    }
    const auto ci = survival.wilson_interval();
    table.add_row({test_case.label,
                   util::format_percent(waste.mean(), 2),
                   util::format_fixed(survival.estimate(), 4),
                   std::string("[") + util::format_fixed(ci.lo, 3) + ", " +
                       util::format_fixed(ci.hi, 3) + "]"});
    if (csv) {
      csv->write_row({test_case.label,
                      util::format_fixed(waste.mean(), 6),
                      util::format_fixed(survival.estimate(), 6),
                      util::format_fixed(ci.lo, 6),
                      util::format_fixed(ci.hi, 6)});
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
