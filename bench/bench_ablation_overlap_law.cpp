// Ablation: is the paper's linear overlap law theta(phi) = theta_min +
// alpha (theta_min - phi) mechanistically justified? We measure phi(theta)
// with the flow-level network substrate: an application exchanging halos on
// its NIC while a paced checkpoint flow contends, under two sharing
// policies. Findings reproduced here:
//
//  * a runtime that schedules checkpoint traffic into the application's
//    idle NIC windows (Scavenger, what Charm++-style runtimes approximate)
//    follows the paper's line *exactly*, with the mechanistic factor
//    alpha = A / (B - A) (A = app egress demand, B = NIC bandwidth);
//  * plain TCP-like fair sharing leaves a residual phi floor even for very
//    stretched transfers -- pacing alone cannot reach the phi = 0 limit.
#include "bench_common.hpp"

#include "net/net_api.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Mechanistic measurement of the overlap law");
  if (!context) return 0;

  auto csv = context->csv("ablation_overlap_law",
                          {"alpha_mech", "policy", "theta_target", "theta",
                           "phi"});

  // Three workloads whose mechanistic alpha spans the paper's range.
  struct Case {
    const char* label;
    double compute;  ///< c [s]; alpha = H/(c B) for fixed H
  };
  net::OverlapWorkload base;
  base.nic_bandwidth = 128.0 * 1024 * 1024;
  base.halo_bytes = 16.0 * 1024 * 1024;
  base.checkpoint_bytes = 512.0 * 1024 * 1024;
  const Case cases[] = {{"comm-heavy", 0.0125},   // alpha = 10
                        {"balanced", 0.0625},     // alpha = 2
                        {"compute-heavy", 0.25}}; // alpha = 0.5

  for (const auto& test_case : cases) {
    auto workload = base;
    workload.compute_time = test_case.compute;
    const double alpha = workload.mechanistic_alpha();
    print_header(
        std::string("Overlap law -- ") + test_case.label + " workload",
        "theta_min = " + util::format_duration(workload.theta_min()) +
            ", mechanistic alpha = A/(B-A) = " +
            util::format_fixed(alpha, 2) +
            "; paper line: theta = theta_min + alpha (theta_min - phi)");

    util::TextTable table({"theta target", "Scav theta", "Scav phi",
                           "paper phi", "Fair theta", "Fair phi"});
    const auto targets = util::log_space(workload.theta_min() * 1.01,
                                         workload.theta_min() *
                                             (1.0 + alpha) * 1.3,
                                         8);
    for (double target : targets) {
      const auto scav = net::measure_overlap(workload, target,
                                             net::SharingPolicy::Scavenger);
      const auto fair = net::measure_overlap(workload, target,
                                             net::SharingPolicy::FairShare);
      const double paper_phi = std::max(
          0.0, workload.theta_min() -
                   (scav.theta - workload.theta_min()) / alpha);
      table.add_row({util::format_fixed(target, 2),
                     util::format_fixed(scav.theta, 2),
                     util::format_fixed(scav.phi, 3),
                     util::format_fixed(paper_phi, 3),
                     util::format_fixed(fair.theta, 2),
                     util::format_fixed(fair.phi, 3)});
      if (csv) {
        csv->write_row({util::format_fixed(alpha, 4), "scavenger",
                        util::format_fixed(target, 4),
                        util::format_fixed(scav.theta, 4),
                        util::format_fixed(scav.phi, 5)});
        csv->write_row({util::format_fixed(alpha, 4), "fairshare",
                        util::format_fixed(target, 4),
                        util::format_fixed(fair.theta, 4),
                        util::format_fixed(fair.phi, 5)});
      }
    }
    std::printf("%s", table.render().c_str());
    const auto curve = net::measure_overlap_curve(
        workload, net::SharingPolicy::Scavenger, 12, (1.0 + alpha) * 1.2);
    std::printf("fitted alpha (scavenger curve): %.3f vs mechanistic %.3f\n\n",
                net::fit_alpha(curve, workload.theta_min()), alpha);
  }
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
