// Extension: incremental (delta) checkpoints. Measures, on the real
// runtime substrate, how many bytes a buddy exchange actually needs when
// only COW-dirty pages are shipped, as a function of the checkpoint
// interval -- and what that does to the model's R (= theta_min) and hence
// the optimal waste.
#include "bench_common.hpp"

#include <memory>

#include "ckpt/delta.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Incremental checkpoints: dirty bytes vs interval");
  if (!context) return 0;

  print_header(
      "Incremental checkpoints -- dirty fraction of a sparse-writer app",
      "1 MiB state, app touches a 16 KiB working set per step (4 random\n"
      "pages of 256). Snapshot every k steps; the delta carries only pages\n"
      "touched since the previous snapshot (COW identity = dirty bit). The\n"
      "model effect: R scales with the dirty fraction, and the Base\n"
      "optimal waste (M = 7 h, phi = R/4) shrinks accordingly. Note a\n"
      "dense stencil rewrites everything -- incremental checkpointing pays\n"
      "off exactly when working sets are sparse.");

  auto csv = context->csv("ext_incremental",
                          {"interval", "dirty_ratio", "delta_mib",
                           "r_effective", "waste_full", "waste_delta"});
  util::TextTable table({"ckpt every", "dirty pages", "delta size",
                         "R_eff", "waste (full R)", "waste (delta R)"});

  const auto base_params =
      model::base_scenario().at_phi_ratio(0.25).with_mtbf(7 * 3600.0);
  const double full_waste =
      model::waste_at_optimal_period(model::Protocol::DoubleNbl, base_params);

  for (std::uint64_t interval : {5ULL, 20ULL, 80ULL, 320ULL}) {
    // Drive a sparse-writer application and snapshot periodically.
    constexpr std::size_t kStateBytes = 1 << 20;  // 1 MiB
    constexpr std::size_t kPage = 4096;
    constexpr int kPagesPerStep = 4;
    ckpt::PageStore store(kStateBytes, kPage);
    util::Xoshiro256ss rng(0xd1f7 + interval);
    std::vector<std::byte> payload(kPage, std::byte{0x5A});
    ckpt::Snapshot previous = store.snapshot(0);
    double dirty_ratio_sum = 0.0;
    double delta_bytes_sum = 0.0;
    int samples = 0;
    for (int step = 1; step <= 960; ++step) {
      for (int touch = 0; touch < kPagesPerStep; ++touch) {
        const std::size_t page = rng.next_below(kStateBytes / kPage);
        store.write(page * kPage, payload);
      }
      if (step % static_cast<int>(interval) == 0) {
        const ckpt::Snapshot current = store.snapshot(0);
        const auto delta = ckpt::make_delta(previous, current);
        dirty_ratio_sum += delta.dirty_ratio();
        delta_bytes_sum += static_cast<double>(delta.delta_bytes());
        previous = current;
        ++samples;
      }
    }
    const double dirty = dirty_ratio_sum / samples;
    const double delta_bytes = delta_bytes_sum / samples;
    // Model effect: the buddy exchange moves dirty*S bytes, so R shrinks.
    auto delta_params = base_params;
    delta_params.remote_blocking =
        std::max(1e-3, base_params.remote_blocking * dirty);
    delta_params.overhead =
        std::min(delta_params.overhead, delta_params.remote_blocking);
    const double delta_waste = model::waste_at_optimal_period(
        model::Protocol::DoubleNbl, delta_params);
    table.add_row({std::to_string(interval),
                   util::format_percent(dirty, 1),
                   util::format_bytes(delta_bytes),
                   util::format_duration(delta_params.remote_blocking),
                   util::format_percent(full_waste, 2),
                   util::format_percent(delta_waste, 2)});
    if (csv) {
      csv->write_row({std::to_string(interval),
                      util::format_fixed(dirty, 6),
                      util::format_fixed(delta_bytes / (1024 * 1024), 4),
                      util::format_fixed(delta_params.remote_blocking, 4),
                      util::format_fixed(full_waste, 6),
                      util::format_fixed(delta_waste, 6)});
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
