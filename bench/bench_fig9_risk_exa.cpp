// Figure 9: relative success probabilities for the Exa scenario as a
// function of the platform MTBF (minutes) and the platform exploitation
// length (weeks), with theta = (alpha + 1) R.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 9: relative success probability, Exa scenario");
  if (!context) return 0;
  // Paper axes: M in 0..60 minutes, exploitation 0..60 weeks.
  const std::vector<double> mtbf_axis = {60.0,   300.0,  600.0, 900.0,
                                         1800.0, 2700.0, 3600.0};
  const std::vector<double> life_axis = {1.0, 10.0, 20.0, 40.0, 60.0};
  run_risk_surface(dckpt::model::exa_scenario(), *context, "fig9", mtbf_axis,
                   life_axis, "weeks", 7.0 * 86400.0);
  return 0;
}
