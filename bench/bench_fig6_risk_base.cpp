// Figure 6: relative success probabilities for the Base scenario as a
// function of the platform MTBF (minutes) and the platform exploitation
// length (days), with theta = (alpha + 1) R.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 6: relative success probability, Base scenario");
  if (!context) return 0;
  // Paper axes: M in 0..30 minutes, exploitation 1..30 days.
  const std::vector<double> mtbf_axis = {30.0,  60.0,   120.0, 300.0,
                                         600.0, 1200.0, 1800.0};
  const std::vector<double> life_axis = {1.0, 5.0, 10.0, 20.0, 30.0};
  run_risk_surface(dckpt::model::base_scenario(), *context, "fig6", mtbf_axis,
                   life_axis, "days", 86400.0);
  return 0;
}
