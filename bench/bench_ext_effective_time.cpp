// Extension: single-axis protocol ranking. The paper evaluates performance
// (waste) and risk (success probability) separately; folding fatal failures
// into the expected completion time (restart-from-scratch on a fatal event)
// ranks the protocols on one number:
//
//   E[T_total] = (e^(rho T) - 1)/rho,   WASTE_eff = 1 - t_base / E[T_total]
//
// The interesting output: the phi/M region where Triple loses on plain
// waste (Fig. 5's right half) but still wins end-to-end because its fatal
// rate is orders of magnitude lower.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Effective waste including restart-on-fatal-failure");
  if (!context) return 0;

  print_header("Effective waste (restarts folded in), Base scenario",
               "1-week application (t_base = 604800 s). plain = waste at "
               "P*; eff = 1 - t_base / E[T_total]. * marks the per-row "
               "winner on each metric.");

  auto csv = context->csv("ext_effective_time",
                          {"mtbf_s", "phi_over_R", "protocol", "plain_waste",
                           "effective_waste", "attempts"});
  const double t_base = 7.0 * 86400.0;
  for (double mtbf : {120.0, 600.0, 3600.0}) {
    util::TextTable table({"phi/R", "plain NBL", "plain BoF", "plain Tri",
                           "eff NBL", "eff BoF", "eff Tri"});
    for (double ratio : {0.1, 0.5, 1.0}) {
      const auto params =
          model::base_scenario().at_phi_ratio(ratio).with_mtbf(mtbf);
      double plain[3], effective[3];
      int i = 0;
      for (auto protocol : model::kPaperProtocols) {
        const auto eval =
            model::evaluate_with_restarts(protocol, params, t_base);
        plain[i] = eval.feasible
                       ? 1.0 - t_base / eval.makespan
                       : 1.0;
        effective[i] = eval.effective_waste;
        if (csv) {
          csv->write_row({util::format_fixed(mtbf, 1),
                          util::format_fixed(ratio, 3),
                          std::string(model::protocol_name(protocol)),
                          util::format_fixed(plain[i], 6),
                          util::format_fixed(effective[i], 6),
                          util::format_fixed(eval.attempts, 4)});
        }
        ++i;
      }
      auto mark = [](double value, const double (&row)[3]) {
        const bool winner =
            value <= row[0] && value <= row[1] && value <= row[2];
        return util::format_fixed(value, 4) + (winner ? "*" : " ");
      };
      table.add_row({util::format_fixed(ratio, 2), mark(plain[0], plain),
                     mark(plain[1], plain), mark(plain[2], plain),
                     mark(effective[0], effective),
                     mark(effective[1], effective),
                     mark(effective[2], effective)});
    }
    std::printf("--- M = %s ---\n%s\n", util::format_duration(mtbf).c_str(),
                table.render().c_str());
  }
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
