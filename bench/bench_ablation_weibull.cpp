// Ablation: exponential vs Weibull failure arrivals. The analytic model
// (like Young/Daly) assumes a constant hazard rate; HPC failure logs are
// better fit by Weibull with shape < 1 (bursty infant failures -- see the
// paper's related-work discussion). The simulator runs both, holding the
// per-node mean constant, to show how far the exponential closed forms
// stretch -- and, since PR 4, how much of the gap the clustered-failure
// model (model/nonexponential.hpp) recovers at matched shape.
#include "bench_common.hpp"

#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Ablation: Weibull vs exponential failure distributions");
  if (!context) return 0;

  const std::uint64_t trials = context->trials_or(60);
  // Built with += (not operator+ chains): GCC 12's -Wrestrict false-fires on
  // char* + to_string(...) + char* at -O2.
  std::string blurb = "12 nodes, phi = R/4, model-optimal period, ";
  blurb += std::to_string(trials);
  blurb +=
      " trials. Weibull shapes < 1 cluster failures; mean held constant. "
      "'wmodel' columns: clustered-failure model at matched shape.";
  print_header("Ablation -- failure distribution (Base scenario, simulated)",
               blurb);

  util::TextTable table({"Protocol", "M", "model", "exp sim", "weib k=0.7",
                         "weib k=0.5", "wmodel k=0.7", "wmodel k=0.5"});
  // Schema note: the two model_weibull_* keys are appended after the
  // original columns (append-only JSONL/CSV rule).
  const std::vector<std::string> keys = {
      "protocol",        "mtbf_s",           "model",
      "sim_exp",         "sim_weibull_07",   "sim_weibull_05",
      "model_weibull_07", "model_weibull_05"};
  auto csv = context->csv("ablation_weibull", keys);
  auto jsonl = context->jsonl("ablation_weibull", keys);
  for (auto protocol : model::kPaperProtocols) {
    for (double mtbf : {1800.0, 7200.0}) {
      auto params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
      params.nodes = 12;
      const auto opt = model::optimal_period_closed_form(protocol, params);
      sim::SimConfig config;
      config.protocol = protocol;
      config.params = params;
      config.period = opt.period;
      config.t_base = 20.0 * mtbf;
      config.stop_on_fatal = false;
      sim::MonteCarloOptions options;
      options.trials = trials;
      options.seed = 0xeeb;

      const auto exp_mc = sim::run_monte_carlo(config, options);
      options.weibull = util::Weibull::from_mean(0.7, params.node_mtbf());
      const auto w07 = sim::run_monte_carlo(config, options);
      options.weibull = util::Weibull::from_mean(0.5, params.node_mtbf());
      const auto w05 = sim::run_monte_carlo(config, options);

      // Matched-shape clustered model at the mission's expected horizon.
      const double horizon = model::expected_makespan(protocol, params,
                                                      opt.period,
                                                      config.t_base);
      const double m07 = model::waste(protocol, params, opt.period,
                                      model::WeibullFailures{0.7, horizon});
      const double m05 = model::waste(protocol, params, opt.period,
                                      model::WeibullFailures{0.5, horizon});

      table.add_row({std::string(model::protocol_name(protocol)),
                     util::format_duration(mtbf),
                     util::format_fixed(opt.waste, 4),
                     util::format_fixed(exp_mc.waste.mean(), 4),
                     util::format_fixed(w07.waste.mean(), 4),
                     util::format_fixed(w05.waste.mean(), 4),
                     util::format_fixed(m07, 4),
                     util::format_fixed(m05, 4)});
      if (csv) {
        csv->write_row({std::string(model::protocol_name(protocol)),
                        util::format_fixed(mtbf, 1),
                        util::format_fixed(opt.waste, 6),
                        util::format_fixed(exp_mc.waste.mean(), 6),
                        util::format_fixed(w07.waste.mean(), 6),
                        util::format_fixed(w05.waste.mean(), 6),
                        util::format_fixed(m07, 6),
                        util::format_fixed(m05, 6)});
      }
      if (jsonl) {
        jsonl->row({model::protocol_name(protocol), mtbf, opt.waste,
                    exp_mc.waste.mean(), w07.waste.mean(), w05.waste.mean(),
                    m07, m05});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
  return 0;
}
