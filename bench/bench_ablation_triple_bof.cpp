// Ablation: the blocking-on-failure TRIPLE variant the paper mentions in
// Sec. IV but does not evaluate ("the first version further reduces the
// risk" -- risk window D + 3R instead of D + R + 2 theta). This bench
// quantifies both sides of that trade: waste and success probability for
// Triple vs TripleBoF, plus DoubleBlocking (Zheng et al.'s original) for
// lineage.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Ablation: blocking-on-failure triple variant");
  if (!context) return 0;

  const std::vector<model::Protocol> protocols = {
      model::Protocol::DoubleBlocking, model::Protocol::DoubleNbl,
      model::Protocol::DoubleBof, model::Protocol::Triple,
      model::Protocol::TripleBof};

  for (const auto& scenario : model::paper_scenarios()) {
    print_header("Ablation -- all five protocols, scenario " + scenario.name,
                 "M = 7 h for waste; success probability over a 30-day "
                 "exploitation at M = 2 min. phi = R/4.");
    util::TextTable table({"Protocol", "P*", "Waste@P*", "RiskWindow",
                           "P(success, 30d, M=2min)"});
    auto csv = context->csv(
        "ablation_triple_bof_" + scenario.name,
        {"protocol", "period", "waste", "risk_window", "p_success"});
    const auto waste_params =
        scenario.at_phi_ratio(0.25).with_mtbf(scenario.default_mtbf);
    const auto risk_params = scenario.at_phi_ratio(0.25).with_mtbf(120.0);
    for (auto protocol : protocols) {
      const auto opt =
          model::optimal_period_closed_form(protocol, waste_params);
      const double risk = model::risk_window(protocol, risk_params);
      const double p_success =
          model::success_probability(protocol, risk_params, 30.0 * 86400.0);
      table.add_row({std::string(model::protocol_name(protocol)),
                     util::format_duration(opt.period),
                     util::format_percent(opt.waste, 2),
                     util::format_duration(risk),
                     util::format_scientific(p_success, 4)});
      if (csv) {
        csv->write_row({std::string(model::protocol_name(protocol)),
                        util::format_fixed(opt.period, 3),
                        util::format_fixed(opt.waste, 6),
                        util::format_fixed(risk, 3),
                        util::format_scientific(p_success, 6)});
      }
    }
    std::printf("%s\n", table.render().c_str());
    if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  }
  return 0;
}
