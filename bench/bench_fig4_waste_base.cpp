// Figure 4: waste of DoubleBoF / DoubleNBL / Triple for the Base scenario,
// as a function of phi/R and the platform MTBF M, each protocol at its
// model-optimal checkpoint period.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 4: waste surfaces, Base scenario");
  if (!context) return 0;
  run_waste_surface(dckpt::model::base_scenario(), *context, "fig4");
  return 0;
}
