// Ablation on the overlap factor alpha -- the new model parameter this paper
// introduces. The paper conservatively fixes alpha = 10 and flags studying
// real-application alphas as future work; this bench quantifies how the
// optimal waste of each protocol depends on it.
//
// For each alpha, phi is chosen optimally per protocol: the full (phi, P)
// plane is searched (phi on a fine grid, P by the closed form), because a
// larger alpha makes small-phi transfers cheap (theta grows slower), which
// is precisely what the triple protocol exploits.
#include "bench_common.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::bench;



}  // namespace

int main(int argc, char** argv) {
  const auto context = parse_bench_args(
      argc, argv,
      "Ablation: sensitivity of the optimal waste to the overlap factor");
  if (!context) return 0;

  print_header("Ablation -- overlap factor alpha (Base scenario, M = 7 h)",
               "phi chosen optimally per protocol and alpha; waste at the "
               "closed-form optimal period.");
  auto scenario = model::base_scenario();
  util::TextTable table({"alpha", "Protocol", "best phi/R", "P*", "Waste"});
  auto csv = context->csv(
      "ablation_alpha", {"alpha", "protocol", "best_phi_over_R", "waste"});
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    auto params = scenario.params.with_mtbf(scenario.default_mtbf);
    params.alpha = alpha;
    for (auto protocol : model::kPaperProtocols) {
      const auto joint =
          model::optimal_overhead_and_period(protocol, params, 60);
      table.add_row({util::format_fixed(alpha, 1),
                     std::string(model::protocol_name(protocol)),
                     util::format_fixed(
                         joint.overhead / params.remote_blocking, 3),
                     util::format_duration(joint.optimum.period),
                     util::format_percent(joint.optimum.waste, 2)});
      if (csv) {
        csv->write_row({util::format_fixed(alpha, 2),
                        std::string(model::protocol_name(protocol)),
                        util::format_fixed(
                            joint.overhead / params.remote_blocking, 4),
                        util::format_fixed(joint.optimum.waste, 6)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
