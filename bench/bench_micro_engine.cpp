// Google-benchmark microbenchmarks of the engine substrates: RNG and
// distribution sampling throughput, failure-injector event rates, the
// discrete-event protocol simulator, and the PageStore snapshot/COW path.
// These bound how large a Monte-Carlo campaign a laptop supports.
//
// Extra mode for CI: `bench_micro_engine --engine-json=PATH [--trials=N]`
// skips google-benchmark and instead times the scalar vs batched Monte-Carlo
// engines head-to-head on the reference campaign, writing
// {scalar_trials_per_sec, batched_trials_per_sec, speedup, trials} to PATH.
// scripts/check_bench_regression.py compares that file against the committed
// BENCH_engine.json baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/delta.hpp"
#include "ckpt/page_store.hpp"
#include "model/model_api.hpp"
#include "net/network.hpp"
#include "sim/protocol_sim.hpp"
#include "sim/runner.hpp"
#include "util/distributions.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace dckpt;

void BM_Xoshiro256(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256);

void BM_ExponentialSample(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  const auto dist = util::Exponential::from_mean(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialSample);

void BM_WeibullSample(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  const auto dist = util::Weibull::from_mean(0.7, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeibullSample);

void BM_PerNodeInjector(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const auto dist =
      util::Exponential::from_mean(1000.0 * static_cast<double>(nodes));
  sim::PerNodeInjector injector(dist, nodes, util::Xoshiro256ss(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.peek());
    injector.pop();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerNodeInjector)->Arg(64)->Arg(4096)->Arg(262144);

void BM_ProtocolSimulationTrial(benchmark::State& state) {
  sim::SimConfig config;
  config.protocol = static_cast<model::Protocol>(state.range(0));
  config.params = model::base_scenario().at_phi_ratio(0.25);
  config.params.nodes = 1026;  // divisible by both group sizes
  config.params.mtbf = 600.0;
  config.period =
      model::optimal_period_closed_form(config.protocol, config.params).period;
  config.t_base = 100000.0;  // ~166 failures per trial
  config.stop_on_fatal = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_exponential(config, seed++));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(model::protocol_name(config.protocol)));
}
BENCHMARK(BM_ProtocolSimulationTrial)
    ->Arg(static_cast<int>(model::Protocol::DoubleNbl))
    ->Arg(static_cast<int>(model::Protocol::Triple));

/// The reference Monte-Carlo campaign for engine comparisons: the paper's
/// base platform at phi/theta = 0.25, 1026 nodes with a one-day platform
/// MTBF (node MTBF ~2.8 years -- realistic, unlike the failure-saturated
/// mtbf=600 stress configuration BM_ProtocolSimulationTrial uses) and an
/// 18-day workload. Roughly 2300 periods and 19 failures per trial; no
/// fatal stop, so every trial runs the full t_base.
sim::SimConfig engine_reference_config() {
  sim::SimConfig config;
  config.protocol = model::Protocol::DoubleNbl;
  config.params = model::base_scenario().at_phi_ratio(0.25);
  config.params.nodes = 1026;  // divisible by both group sizes
  config.params.mtbf = 86400.0;
  config.period =
      model::optimal_period_closed_form(config.protocol, config.params).period;
  config.t_base = 1600000.0;
  config.stop_on_fatal = false;
  return config;
}

void BM_MonteCarloEngine(benchmark::State& state) {
  const auto config = engine_reference_config();
  sim::MonteCarloOptions options;
  options.engine = state.range(0) == 0 ? sim::SimEngine::kScalar
                                       : sim::SimEngine::kBatched;
  options.trials = 64;
  options.threads = 1;
  options.seed = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_monte_carlo(config, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(options.trials));
  state.SetLabel(state.range(0) == 0 ? "scalar" : "batched");
}
BENCHMARK(BM_MonteCarloEngine)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_OptimalPeriodNumeric(benchmark::State& state) {
  const auto params = model::base_scenario().at_phi_ratio(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::optimal_period_numeric(model::Protocol::DoubleNbl, params));
  }
}
BENCHMARK(BM_OptimalPeriodNumeric);

void BM_PageStoreSnapshot(benchmark::State& state) {
  ckpt::PageStore store(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot(1));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PageStoreSnapshot)->Arg(1 << 20)->Arg(16 << 20);

void BM_PageStoreCowWrite(benchmark::State& state) {
  ckpt::PageStore store(1 << 20);
  std::vector<std::byte> data(4096, std::byte{0xAB});
  std::size_t offset = 0;
  ckpt::Snapshot snap = store.snapshot(1);
  for (auto _ : state) {
    store.write(offset, data);
    offset = (offset + 4096) % ((1 << 20) - 4096);
    if (offset == 0) snap = store.snapshot(1);  // re-arm COW
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PageStoreCowWrite);

void BM_SnapshotDelta(benchmark::State& state) {
  const std::size_t bytes = 1 << 20;
  ckpt::PageStore store(bytes);
  util::Xoshiro256ss rng(3);
  std::vector<std::byte> payload(4096, std::byte{0x7});
  ckpt::Snapshot base = store.snapshot(1);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 16; ++i) {
      store.write(rng.next_below(bytes / 4096) * 4096, payload);
    }
    const ckpt::Snapshot current = store.snapshot(1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ckpt::make_delta(base, current));
    state.PauseTiming();
    base = current;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotDelta);

void BM_MaxMinFairRates(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  net::FlatNetwork network(64, 1e8);
  util::Xoshiro256ss rng(4);
  std::vector<net::Flow> flows;
  for (std::size_t f = 0; f < flows_count; ++f) {
    const std::uint64_t src = rng.next_below(64);
    std::uint64_t dst = rng.next_below(64);
    if (dst == src) dst = (dst + 1) % 64;
    flows.push_back({src, dst,
                     (f % 3 == 0) ? 2e7 : dckpt::net::kUncapped});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.fair_rates(flows));
  }
  state.SetItemsProcessed(state.iterations() * flows_count);
}
BENCHMARK(BM_MaxMinFairRates)->Arg(8)->Arg(64)->Arg(256);

/// Times `trials` trials through one engine (single thread, fixed seed) and
/// returns trials per second. One small untimed warmup run absorbs lazy
/// allocations; best-of-3 repetitions filters scheduler noise, which
/// otherwise dwarfs real regressions on shared CI runners.
double engine_trials_per_sec(sim::SimEngine engine, std::uint64_t trials) {
  const auto config = engine_reference_config();
  sim::MonteCarloOptions options;
  options.engine = engine;
  options.threads = 1;
  options.seed = 42;
  options.trials = 64;
  benchmark::DoNotOptimize(sim::run_monte_carlo(config, options));  // warmup
  options.trials = trials;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sim::run_monte_carlo(config, options));
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    best = std::max(best, static_cast<double>(trials) / seconds);
  }
  return best;
}

int run_engine_comparison(const std::string& json_path,
                          std::uint64_t trials) {
  const double scalar =
      engine_trials_per_sec(sim::SimEngine::kScalar, trials);
  const double batched =
      engine_trials_per_sec(sim::SimEngine::kBatched, trials);
  auto v = dckpt::util::JsonValue::object();
  v.set("record", "bench_engine");
  v.set("trials", trials);
  v.set("scalar_trials_per_sec", scalar);
  v.set("batched_trials_per_sec", batched);
  v.set("speedup", batched / scalar);
  const std::string text = v.dump();
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", text.c_str());
  std::fclose(out);
  std::printf("%s\n", text.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine_json;
  std::uint64_t trials = 2000;
  std::vector<char*> passthrough{argv, argv + argc};
  for (auto it = passthrough.begin(); it != passthrough.end();) {
    if (std::strncmp(*it, "--engine-json=", 14) == 0) {
      engine_json = *it + 14;
      it = passthrough.erase(it);
    } else if (std::strncmp(*it, "--trials=", 9) == 0) {
      trials = std::strtoull(*it + 9, nullptr, 10);
      it = passthrough.erase(it);
    } else {
      ++it;
    }
  }
  if (!engine_json.empty()) {
    return run_engine_comparison(engine_json, trials == 0 ? 2000 : trials);
  }
  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
