// Google-benchmark microbenchmarks of the engine substrates: RNG and
// distribution sampling throughput, failure-injector event rates, the
// discrete-event protocol simulator, and the PageStore snapshot/COW path.
// These bound how large a Monte-Carlo campaign a laptop supports.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "ckpt/delta.hpp"
#include "ckpt/page_store.hpp"
#include "model/model_api.hpp"
#include "net/network.hpp"
#include "sim/protocol_sim.hpp"
#include "sim/runner.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace dckpt;

void BM_Xoshiro256(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256);

void BM_ExponentialSample(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  const auto dist = util::Exponential::from_mean(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialSample);

void BM_WeibullSample(benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  const auto dist = util::Weibull::from_mean(0.7, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeibullSample);

void BM_PerNodeInjector(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const auto dist =
      util::Exponential::from_mean(1000.0 * static_cast<double>(nodes));
  sim::PerNodeInjector injector(dist, nodes, util::Xoshiro256ss(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.peek());
    injector.pop();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerNodeInjector)->Arg(64)->Arg(4096)->Arg(262144);

void BM_ProtocolSimulationTrial(benchmark::State& state) {
  sim::SimConfig config;
  config.protocol = static_cast<model::Protocol>(state.range(0));
  config.params = model::base_scenario().at_phi_ratio(0.25);
  config.params.nodes = 1026;  // divisible by both group sizes
  config.params.mtbf = 600.0;
  config.period =
      model::optimal_period_closed_form(config.protocol, config.params).period;
  config.t_base = 100000.0;  // ~166 failures per trial
  config.stop_on_fatal = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_exponential(config, seed++));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(model::protocol_name(config.protocol)));
}
BENCHMARK(BM_ProtocolSimulationTrial)
    ->Arg(static_cast<int>(model::Protocol::DoubleNbl))
    ->Arg(static_cast<int>(model::Protocol::Triple));

void BM_OptimalPeriodNumeric(benchmark::State& state) {
  const auto params = model::base_scenario().at_phi_ratio(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::optimal_period_numeric(model::Protocol::DoubleNbl, params));
  }
}
BENCHMARK(BM_OptimalPeriodNumeric);

void BM_PageStoreSnapshot(benchmark::State& state) {
  ckpt::PageStore store(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot(1));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PageStoreSnapshot)->Arg(1 << 20)->Arg(16 << 20);

void BM_PageStoreCowWrite(benchmark::State& state) {
  ckpt::PageStore store(1 << 20);
  std::vector<std::byte> data(4096, std::byte{0xAB});
  std::size_t offset = 0;
  ckpt::Snapshot snap = store.snapshot(1);
  for (auto _ : state) {
    store.write(offset, data);
    offset = (offset + 4096) % ((1 << 20) - 4096);
    if (offset == 0) snap = store.snapshot(1);  // re-arm COW
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PageStoreCowWrite);

void BM_SnapshotDelta(benchmark::State& state) {
  const std::size_t bytes = 1 << 20;
  ckpt::PageStore store(bytes);
  util::Xoshiro256ss rng(3);
  std::vector<std::byte> payload(4096, std::byte{0x7});
  ckpt::Snapshot base = store.snapshot(1);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 16; ++i) {
      store.write(rng.next_below(bytes / 4096) * 4096, payload);
    }
    const ckpt::Snapshot current = store.snapshot(1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ckpt::make_delta(base, current));
    state.PauseTiming();
    base = current;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotDelta);

void BM_MaxMinFairRates(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  net::FlatNetwork network(64, 1e8);
  util::Xoshiro256ss rng(4);
  std::vector<net::Flow> flows;
  for (std::size_t f = 0; f < flows_count; ++f) {
    const std::uint64_t src = rng.next_below(64);
    std::uint64_t dst = rng.next_below(64);
    if (dst == src) dst = (dst + 1) % 64;
    flows.push_back({src, dst,
                     (f % 3 == 0) ? 2e7 : dckpt::net::kUncapped});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.fair_rates(flows));
  }
  state.SetItemsProcessed(state.iterations() * flows_count);
}
BENCHMARK(BM_MaxMinFairRates)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
