// Extension: two-level buddy + stable-storage checkpointing -- the hybrid
// the paper's conclusion proposes as future work. For each buddy protocol
// the bench reports the fatal-failure scale (MTBF between unrecoverable
// events), the optimal global-checkpoint period P2*, and how little waste
// the protected tier adds once buddy checkpointing absorbs ordinary
// failures.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Two-level hierarchy: buddy level 1 + stable storage");
  if (!context) return 0;

  print_header(
      "Hierarchical checkpointing (Base scenario, phi = R/4, C_g = 10 min)",
      "MTBF_fatal = 1/rho: how often level 1 alone would lose the run.\n"
      "P2*: optimal global-checkpoint period; columns waste the composition\n"
      "w_total = 1 - (1 - w1)(1 - w2).");

  auto csv = context->csv("ext_hierarchical",
                          {"mtbf_s", "protocol", "mtbf_fatal_s", "p1", "p2",
                           "w1", "w2", "w_total"});
  for (double mtbf : {120.0, 600.0, 3600.0}) {
    util::TextTable table({"Protocol", "MTBF_fatal", "P1*", "P2*", "w1",
                           "w2 added", "w total"});
    for (auto protocol : model::kPaperProtocols) {
      model::HierarchicalParams params;
      params.protocol = protocol;
      params.level1 = model::base_scenario().at_phi_ratio(0.25)
                          .with_mtbf(mtbf);
      params.global_ckpt = 600.0;
      params.global_recovery = 600.0;
      const auto eval = model::optimize_hierarchical(params);
      const double mtbf_fatal =
          model::mean_time_between_fatal(protocol, params.level1);
      table.add_row(
          {std::string(model::protocol_name(protocol)),
           util::format_duration(mtbf_fatal),
           util::format_duration(eval.level1_period),
           std::isfinite(eval.level2_period)
               ? util::format_duration(eval.level2_period)
               : "never",
           util::format_percent(eval.level1_waste, 2),
           util::format_percent(eval.level2_waste, 3),
           eval.feasible ? util::format_percent(eval.total_waste, 2)
                         : "stalled"});
      if (csv) {
        csv->write_row({util::format_fixed(mtbf, 1),
                        std::string(model::protocol_name(protocol)),
                        util::format_scientific(mtbf_fatal, 4),
                        util::format_fixed(eval.level1_period, 2),
                        util::format_scientific(eval.level2_period, 4),
                        util::format_fixed(eval.level1_waste, 6),
                        util::format_fixed(eval.level2_waste, 6),
                        util::format_fixed(eval.total_waste, 6)});
      }
    }
    std::printf("--- platform MTBF M = %s ---\n%s\n",
                util::format_duration(mtbf).c_str(), table.render().c_str());
  }
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
