// Ablation: does the paper's first-order optimal period actually minimize
// *simulated* waste? For each protocol/MTBF the bench compares the
// closed-form period (Eq. 9/10/15) against a direct empirical minimization
// of the Monte-Carlo waste (common random numbers + golden section), and
// reports how much waste the approximation leaves on the table.
#include "bench_common.hpp"

#include "sim/optimize.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Closed-form vs empirically optimal checkpoint period");
  if (!context) return 0;

  print_header("Ablation -- first-order period vs empirical optimum "
               "(Base scenario, phi = R/4, 12 nodes)",
               "sim@P_model: Monte-Carlo waste at the closed-form period;\n"
               "sim@P_emp: at the empirically optimized period. gap: how "
               "much the first-order approximation costs.");

  util::TextTable table({"Protocol", "M", "P_model", "P_emp", "sim@P_model",
                         "sim@P_emp", "gap"});
  auto csv = context->csv("ablation_period",
                          {"protocol", "mtbf_s", "p_model", "p_empirical",
                           "waste_at_model", "waste_at_empirical"});
  for (auto protocol : model::kPaperProtocols) {
    for (double mtbf : {600.0, 3600.0}) {
      auto params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
      params.nodes = 12;
      const auto model_opt = model::optimal_period_closed_form(protocol,
                                                               params);
      if (!model_opt.feasible) continue;

      sim::SimConfig config;
      config.protocol = protocol;
      config.params = params;
      config.period = model_opt.period;
      config.t_base = 25.0 * mtbf;
      config.stop_on_fatal = false;

      sim::MonteCarloOptions mc_options;
      mc_options.trials = 160;
      mc_options.seed = 0xc0ffee;
      const auto at_model = sim::run_monte_carlo(config, mc_options);

      sim::OptimizeOptions opt_options;
      opt_options.trials_per_eval = 40;
      opt_options.seed = 0xc0ffee;
      const auto empirical =
          sim::optimize_period_empirically(config, opt_options);

      const double gap = at_model.waste.mean() - empirical.waste;
      table.add_row({std::string(model::protocol_name(protocol)),
                     util::format_duration(mtbf),
                     util::format_duration(model_opt.period),
                     util::format_duration(empirical.period),
                     util::format_fixed(at_model.waste.mean(), 4),
                     util::format_fixed(empirical.waste, 4),
                     util::format_percent(gap, 2)});
      if (csv) {
        csv->write_row({std::string(model::protocol_name(protocol)),
                        util::format_fixed(mtbf, 1),
                        util::format_fixed(model_opt.period, 3),
                        util::format_fixed(empirical.period, 3),
                        util::format_fixed(at_model.waste.mean(), 6),
                        util::format_fixed(empirical.waste, 6)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
