// Simulated counterpart of Figures 6/9: success-probability ratios over a
// (MTBF, mission length) grid, measured by the discrete-event simulator on
// a reduced platform (the analytic figures use n = 10368 / 10^6; simulating
// every cell at that scale is pointless since per-group hazards are what
// matter). theta = (alpha+1) R as in the paper. Confirms by simulation the
// ordering the model's first-order formulas predict: Triple >= BoF >= NBL
// everywhere, with the gap exploding at low MTBF and long missions.
#include "bench_common.hpp"

#include "sim/runner.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::bench;

double survival(model::Protocol protocol, double mtbf, double mission,
                util::ThreadPool& pool) {
  sim::SimConfig config;
  config.protocol = protocol;
  config.params = model::base_scenario().at_phi_ratio(0.0).with_mtbf(mtbf);
  config.params.nodes = model::is_triple(protocol) ? 18 : 18;
  config.period = model::min_period(protocol, config.params) * 1.5;
  config.t_base = mission;
  config.stop_on_fatal = true;
  config.max_makespan = 1e9;
  sim::MonteCarloOptions options;
  options.trials = 300;
  options.seed = 0xf16;
  const auto mc = sim::run_monte_carlo(config, options, pool);
  return mc.success.estimate();
}

}  // namespace

int main(int argc, char** argv) {
  const auto context = parse_bench_args(
      argc, argv,
      "Simulated success-probability ratio surface (Fig. 6 counterpart)");
  if (!context) return 0;

  print_header(
      "Simulated Fig. 6 counterpart -- P(NBL) vs P(Triple), 18 nodes",
      "300 trials per cell, theta = (alpha+1) R, period = 1.5 x minimum.\n"
      "Each cell: survival NBL / survival Triple. Triple dominates in every\n"
      "cell, by orders of magnitude at low MTBF (the model's Eq. 11/16\n"
      "ordering, confirmed outside the formulas' small-hazard domain).");

  const std::vector<double> mtbf_axis = {40.0, 80.0, 160.0};
  const std::vector<double> mission_axis = {600.0, 2400.0, 9600.0};

  util::ThreadPool pool(0);
  std::vector<std::string> header{"M \\ mission"};
  for (double mission : mission_axis) {
    header.push_back(util::format_duration(mission));
  }
  util::TextTable table(header);
  auto csv = context->csv("sim_risk_surface",
                          {"mtbf_s", "mission_s", "p_nbl", "p_triple"});
  for (double mtbf : mtbf_axis) {
    std::vector<std::string> row{util::format_duration(mtbf)};
    for (double mission : mission_axis) {
      const double nbl =
          survival(model::Protocol::DoubleNbl, mtbf, mission, pool);
      const double triple =
          survival(model::Protocol::Triple, mtbf, mission, pool);
      row.push_back(util::format_fixed(nbl, 3) + " / " +
                    util::format_fixed(triple, 3));
      if (csv) {
        csv->write_row_numeric({mtbf, mission, nbl, triple});
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
