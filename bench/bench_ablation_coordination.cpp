// Ablation: the price of coordination. The paper's protocols stall the
// whole platform for every failure; buddy groups are storage-self-contained,
// so with message logging they could recover privately (paper Sec. VIII).
// This bench simulates both regimes on identical failure processes:
//
//   coordinated: one global timeline, every failure stalls everyone;
//   independent: each group runs privately, makespan = slowest group.
//
// The gap grows with platform size and failure rate -- the quantitative
// motivation for the hybrid protocols the conclusion proposes. (The
// independent column excludes the message-logging overhead beta; see
// model/message_logging for the model that includes it.)
#include "bench_common.hpp"

#include "sim/independent.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Coordinated vs independent-group recovery");
  if (!context) return 0;

  print_header(
      "Ablation -- coordination penalty (Base hardware, DoubleNBL, "
      "t_base = 10 M)",
      "30 trials per cell; waste = 1 - t_base/makespan. independent = "
      "groups recover privately (logging overhead excluded).");

  util::TextTable table({"nodes", "M", "coordinated waste",
                         "independent waste", "straggler gap"});
  auto csv = context->csv("ablation_coordination",
                          {"nodes", "mtbf_s", "coordinated",
                           "independent", "straggler_gap"});
  for (std::uint64_t nodes : {24ULL, 96ULL, 384ULL}) {
    for (double mtbf : {120.0, 600.0}) {
      sim::SimConfig config;
      config.protocol = model::Protocol::DoubleNbl;
      config.params =
          model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
      config.params.nodes = nodes;
      const auto opt =
          model::optimal_period_closed_form(config.protocol, config.params);
      if (!opt.feasible) continue;
      config.period = opt.period;
      config.t_base = 10.0 * mtbf;
      config.stop_on_fatal = false;

      util::RunningStats coordinated, independent, straggler;
      for (std::uint64_t seed = 0; seed < 30; ++seed) {
        coordinated.add(
            sim::simulate_exponential(config, 100 + seed).waste());
        const auto ind =
            sim::simulate_independent_groups(config, 100 + seed);
        independent.add(ind.waste());
        straggler.add(ind.makespan / ind.mean_group_makespan - 1.0);
      }
      table.add_row({std::to_string(nodes), util::format_duration(mtbf),
                     util::format_percent(coordinated.mean(), 2),
                     util::format_percent(independent.mean(), 2),
                     util::format_percent(straggler.mean(), 2)});
      if (csv) {
        csv->write_row({std::to_string(nodes), util::format_fixed(mtbf, 1),
                        util::format_fixed(coordinated.mean(), 6),
                        util::format_fixed(independent.mean(), 6),
                        util::format_fixed(straggler.mean(), 6)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
