// Model-vs-simulation cross-validation: for a grid of (scenario, protocol,
// M, phi) points, compares the analytic waste (at the model-optimal period)
// against the Monte-Carlo mean of the discrete-event simulator, and the
// analytic success probability against simulated survival on a downsized
// platform. This is the "comprehensive simulations" leg of the paper's
// evaluation, which the figures' closed forms rely on.
#include "bench_common.hpp"

#include "sim/runner.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::bench;

void waste_validation(const BenchContext& context) {
  const std::uint64_t trials = context.trials_or(60);
  // Built with += (not operator+ chains): GCC 12's -Wrestrict false-fires on
  // char* + to_string(...) + char* at -O2.
  std::string blurb = "Simulator: 12-node platform, ";
  blurb += std::to_string(trials);
  blurb += " trials per cell, t_base = 25 M. rel-err = (sim - model)/model.";
  print_header("Simulation vs model: waste", blurb);
  util::TextTable table({"Scenario", "Protocol", "M", "phi/R", "model",
                         "sim", "+/-", "rel-err"});
  const std::vector<std::string> keys = {"scenario",    "protocol",
                                         "mtbf_s",      "phi_over_R",
                                         "model_waste", "sim_waste",
                                         "sim_ci"};
  auto csv = context.csv("sim_vs_model_waste", keys);
  auto jsonl = context.jsonl("sim_vs_model_waste", keys);
  for (const auto& scenario : model::paper_scenarios()) {
    for (auto protocol : model::kPaperProtocols) {
      for (double mtbf : {1800.0, 3600.0 * 4}) {
        for (double ratio : {0.125, 0.5, 1.0}) {
          auto params = scenario.at_phi_ratio(ratio).with_mtbf(mtbf);
          params.nodes = 12;
          const auto opt = model::optimal_period_closed_form(protocol, params);
          if (!opt.feasible) continue;
          sim::SimConfig config;
          config.protocol = protocol;
          config.params = params;
          config.period = opt.period;
          config.t_base = 25.0 * mtbf;
          config.stop_on_fatal = false;
          sim::MonteCarloOptions options;
          options.trials = trials;
          options.seed = 0x5eed;
          const auto mc = sim::run_monte_carlo(config, options);
          const double sim_waste = mc.waste.mean();
          const double ci = mc.waste.confidence_halfwidth();
          const double rel = (sim_waste - opt.waste) / opt.waste;
          table.add_row({scenario.name,
                         std::string(model::protocol_name(protocol)),
                         util::format_duration(mtbf),
                         util::format_fixed(ratio, 3),
                         util::format_fixed(opt.waste, 4),
                         util::format_fixed(sim_waste, 4),
                         util::format_fixed(ci, 4),
                         util::format_percent(rel, 1)});
          if (csv) {
            csv->write_row({scenario.name,
                            std::string(model::protocol_name(protocol)),
                            util::format_fixed(mtbf, 1),
                            util::format_fixed(ratio, 4),
                            util::format_fixed(opt.waste, 6),
                            util::format_fixed(sim_waste, 6),
                            util::format_fixed(ci, 6)});
          }
          if (jsonl) {
            jsonl->row({scenario.name, model::protocol_name(protocol), mtbf,
                        ratio, opt.waste, sim_waste, ci});
          }
        }
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
}

void risk_validation(const BenchContext& context) {
  const std::uint64_t trials = context.trials_or(800);
  std::string blurb =
      "16-node (pairs) / 18-node (triples) platform, brutal MTBF, ";
  blurb += std::to_string(trials);
  blurb += " trials; model evaluated at the simulated mean makespan.";
  print_header("Simulation vs model: success probability", blurb);
  util::TextTable table({"Protocol", "M", "model P", "sim P", "Wilson 95%"});
  const std::vector<std::string> keys = {"protocol", "mtbf_s", "model_p",
                                         "sim_p",    "ci_lo",  "ci_hi"};
  auto csv = context.csv("sim_vs_model_risk", keys);
  auto jsonl = context.jsonl("sim_vs_model_risk", keys);
  for (auto protocol : model::kPaperProtocols) {
    for (double mtbf : {80.0, 240.0}) {
      // phi = 0 maximizes theta, which separates the protocols' risk
      // windows: NBL is exposed for D + R + theta_max, BoF only D + 2R.
      auto params = model::base_scenario().at_phi_ratio(0.0).with_mtbf(mtbf);
      params.nodes = model::is_triple(protocol) ? 18 : 16;
      sim::SimConfig config;
      config.protocol = protocol;
      config.params = params;
      config.period = model::min_period(protocol, params) * 2.0;
      config.t_base = 600.0;
      config.stop_on_fatal = true;
      config.max_makespan = 1e7;
      sim::MonteCarloOptions options;
      options.trials = trials;
      options.seed = 0x71;
      const auto mc = sim::run_monte_carlo(config, options);
      const double model_p = model::success_probability(
          protocol, params, mc.makespan.mean());
      const auto ci = mc.success.wilson_interval();
      table.add_row({std::string(model::protocol_name(protocol)),
                     util::format_duration(mtbf),
                     util::format_fixed(model_p, 4),
                     util::format_fixed(mc.success.estimate(), 4),
                     std::string("[") + dckpt::util::format_fixed(ci.lo, 3) +
                         ", " + dckpt::util::format_fixed(ci.hi, 3) + "]"});
      if (csv) {
        csv->write_row({std::string(model::protocol_name(protocol)),
                        util::format_fixed(mtbf, 1),
                        util::format_fixed(model_p, 6),
                        util::format_fixed(mc.success.estimate(), 6),
                        util::format_fixed(ci.lo, 6),
                        util::format_fixed(ci.hi, 6)});
      }
      if (jsonl) {
        jsonl->row({model::protocol_name(protocol), mtbf, model_p,
                    mc.success.estimate(), ci.lo, ci.hi});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto context = parse_bench_args(
      argc, argv, "Cross-validation of the analytic model by simulation");
  if (!context) return 0;
  waste_validation(*context);
  risk_validation(*context);
  return 0;
}
