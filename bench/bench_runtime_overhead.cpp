// Runtime-substrate measurement: executes the real fault-tolerant runtime
// (stencil kernel + buddy checkpointing + injected failures) and reports the
// measured overheads -- the concrete counterpart of the model's WASTE_ff and
// failure costs, including the COW page pressure that motivates the paper's
// phi parameter.
#include "bench_common.hpp"

#include <chrono>
#include <memory>

#include "runtime/runtime_api.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::bench;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

runtime::RunReport timed_run(const runtime::RuntimeConfig& config,
                             std::span<const runtime::FailureInjection> fails,
                             double& elapsed) {
  runtime::Coordinator coordinator(config,
                                   std::make_unique<runtime::HeatKernel>());
  const auto start = std::chrono::steady_clock::now();
  auto report = coordinator.run(fails);
  elapsed = seconds_since(start);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const auto context = parse_bench_args(
      argc, argv,
      "Measured runtime overheads of real buddy checkpointing");
  if (!context) return 0;

  print_header("Runtime substrate -- measured checkpoint overhead",
               "8 workers (pairs) / 9 (triples), 256 KiB state per worker, "
               "800 steps; overhead relative to a checkpoint-free run.");

  util::TextTable table({"Topology", "ckpt every", "wall(s)", "overhead",
                         "bytes replicated", "COW pages"});
  auto csv = context->csv("runtime_overhead",
                         {"topology", "interval", "wall_s", "overhead",
                          "bytes_replicated", "cow_pages"});

  for (auto topology : {ckpt::Topology::Pairs, ckpt::Topology::Triples}) {
    const std::string name =
        topology == ckpt::Topology::Pairs ? "pairs" : "triples";
    runtime::RuntimeConfig config;
    config.nodes = topology == ckpt::Topology::Pairs ? 8 : 9;
    config.topology = topology;
    config.cells_per_node = 32768;  // 256 KiB of doubles
    config.total_steps = 800;
    config.threads = 0;

    // Baseline: one checkpoint interval beyond the horizon.
    config.checkpoint_interval = config.total_steps + 1;
    double base_elapsed = 0.0;
    (void)timed_run(config, {}, base_elapsed);

    for (std::uint64_t interval : {10ULL, 40ULL, 160ULL}) {
      config.checkpoint_interval = interval;
      double elapsed = 0.0;
      const auto report = timed_run(config, {}, elapsed);
      const double overhead = elapsed / base_elapsed - 1.0;
      table.add_row({name, std::to_string(interval),
                     util::format_fixed(elapsed, 3),
                     util::format_percent(overhead, 1),
                     util::format_bytes(
                         static_cast<double>(report.bytes_replicated)),
                     std::to_string(report.cow_copies)});
      if (csv) {
        csv->write_row({name, std::to_string(interval),
                        util::format_fixed(elapsed, 6),
                        util::format_fixed(overhead, 6),
                        std::to_string(report.bytes_replicated),
                        std::to_string(report.cow_copies)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  print_header(
      "Runtime substrate -- blocking vs staged (semi-blocking) commit",
      "Pairs, checkpoint every 40 steps, one failure at step 100. Staging\n"
      "delays the commit: failures during staging roll back a full extra\n"
      "interval -- the runtime counterpart of the model's risk trade-off.");
  util::TextTable staging_table(
      {"staging steps", "commit lag", "replayed steps", "masked"});
  for (std::uint64_t staging : {0ULL, 10ULL, 25ULL, 40ULL}) {
    runtime::RuntimeConfig staged;
    staged.nodes = 8;
    staged.topology = ckpt::Topology::Pairs;
    staged.cells_per_node = 4096;
    staged.total_steps = 200;
    staged.checkpoint_interval = 40;
    staged.staging_steps = staging;
    const runtime::FailureInjection one[] = {{100, 3}};
    double ignored = 0.0;
    const auto r = timed_run(staged, one, ignored);
    staging_table.add_row({std::to_string(staging), std::to_string(staging),
                           std::to_string(r.replayed_steps),
                           r.fatal ? "NO" : "yes"});
  }
  std::printf("%s\n", staging_table.render().c_str());

  print_header("Runtime substrate -- failure recovery in action",
               "Same configuration, pairs, checkpoint every 40 steps, "
               "failures injected at steps 120/121 (burst) and 500.");
  runtime::RuntimeConfig config;
  config.nodes = 8;
  config.topology = ckpt::Topology::Pairs;
  config.cells_per_node = 32768;
  config.total_steps = 800;
  config.checkpoint_interval = 40;
  const runtime::FailureInjection failures[] = {{120, 3}, {121, 6}, {500, 0}};
  double elapsed = 0.0;
  const auto report = timed_run(config, failures, elapsed);
  util::TextTable recovery({"failures", "rollbacks", "replayed steps",
                            "fatal", "wall(s)"});
  recovery.add_row({std::to_string(report.failures),
                    std::to_string(report.rollbacks),
                    std::to_string(report.replayed_steps),
                    report.fatal ? "yes" : "no",
                    util::format_fixed(elapsed, 3)});
  std::printf("%s", recovery.render().c_str());
  return 0;
}
