// Figure 7: waste surfaces for the Exa scenario (10^6-node exascale
// projection), mirroring Figure 4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 7: waste surfaces, Exa scenario");
  if (!context) return 0;
  run_waste_surface(dckpt::model::exa_scenario(), *context, "fig7");
  return 0;
}
