// Baseline comparison against centralized stable-storage checkpointing
// (Young / Daly), the approach whose scalability wall motivates the paper
// (Sec. VII): the global footprint grows with the node count while the
// buddy protocols checkpoint a single node's memory over the fast network.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Baseline: centralized Young/Daly vs buddy checkpointing");
  if (!context) return 0;

  print_header(
      "Centralized (Young/Daly) vs distributed buddy checkpointing",
      "Base scenario hardware. The centralized checkpoint time scales as\n"
      "C = delta * n / eta, with eta the parallel-I/O aggregation factor\n"
      "of the storage system (number of concurrent writers it sustains).");

  const auto scenario = model::base_scenario();
  const double mtbf = scenario.default_mtbf;
  const auto params = scenario.at_phi_ratio(0.25).with_mtbf(mtbf);

  util::TextTable table({"Scheme", "Ckpt cost", "Period", "Waste"});
  auto csv =
      context->csv("ablation_centralized", {"scheme", "ckpt_s", "period_s",
                                           "waste"});
  auto add = [&](const std::string& name, double ckpt, double period,
                 double waste_value) {
    table.add_row({name, util::format_duration(ckpt),
                   util::format_duration(period),
                   util::format_percent(waste_value, 2)});
    if (csv) {
      csv->write_row({name, util::format_fixed(ckpt, 3),
                      util::format_fixed(period, 3),
                      util::format_fixed(waste_value, 6)});
    }
  };

  // Centralized variants: an aggregation factor eta of 64/256/1024
  // concurrent writers into stable storage.
  for (double eta : {64.0, 256.0, 1024.0}) {
    model::CentralizedParams central;
    central.checkpoint =
        params.local_ckpt * static_cast<double>(params.nodes) / eta;
    central.recovery = central.checkpoint;
    central.downtime = params.downtime;
    central.mtbf = mtbf;
    const double period =
        std::max(model::daly_period(central), central.checkpoint);
    add("Centralized Daly (eta=" + util::format_fixed(eta, 0) + ")",
        central.checkpoint, period, model::centralized_waste(central, period));
  }

  for (auto protocol : model::kPaperProtocols) {
    const auto opt = model::optimal_period_closed_form(protocol, params);
    add(std::string(model::protocol_name(protocol)),
        params.local_ckpt + params.theta(), opt.period, opt.waste);
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  return 0;
}
