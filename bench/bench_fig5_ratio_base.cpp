// Figure 5: waste of DoubleBoF and Triple relative to DoubleNBL, Base
// scenario, M = 7 h, as a function of phi/R.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 5: waste ratios vs DoubleNBL, Base scenario");
  if (!context) return 0;
  run_waste_ratio(dckpt::model::base_scenario(), *context, "fig5");
  return 0;
}
