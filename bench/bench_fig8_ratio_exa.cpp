// Figure 8: waste ratios vs DoubleNBL for the Exa scenario, M = 7 h.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Figure 8: waste ratios vs DoubleNBL, Exa scenario");
  if (!context) return 0;
  run_waste_ratio(dckpt::model::exa_scenario(), *context, "fig8");
  return 0;
}
