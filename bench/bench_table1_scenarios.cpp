// Reproduces Table I: the parameters of the Base and Exa scenarios, plus
// the derived quantities the rest of the evaluation uses (theta range,
// optimal periods and waste at the paper's reference MTBF of 7 h).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context =
      parse_bench_args(argc, argv, "Table I: scenario parameters");
  if (!context) return 0;

  print_header("Table I -- scenario parameters",
               "D: downtime; delta: local checkpoint; phi: overhead sweep; "
               "R: blocking remote transfer; alpha: overlap factor; n: nodes");

  util::TextTable table({"Scenario", "D", "delta", "phi", "R", "alpha", "n"});
  for (const auto& scenario : model::paper_scenarios()) {
    table.add_row({scenario.name,
                   util::format_fixed(scenario.params.downtime, 0),
                   util::format_fixed(scenario.params.local_ckpt, 0),
                   "0 <= phi <= " + util::format_fixed(scenario.phi_max, 0),
                   util::format_fixed(scenario.params.remote_blocking, 0),
                   util::format_fixed(scenario.params.alpha, 0),
                   std::to_string(scenario.params.nodes)});
  }
  std::printf("%s\n", table.render().c_str());

  print_header("Derived quantities (M = 7 h, phi = R/2)",
               "theta(phi) from the overlap law; optimal periods per "
               "protocol (Eq. 9/10/15); waste at that period");
  util::TextTable derived(
      {"Scenario", "Protocol", "theta", "P*", "Waste@P*", "RiskWindow"});
  for (const auto& scenario : model::paper_scenarios()) {
    const auto params = scenario.at_phi_ratio(0.5);
    for (auto protocol : model::kPaperProtocols) {
      const auto opt = model::optimal_period_closed_form(protocol, params);
      derived.add_row(
          {scenario.name, std::string(model::protocol_name(protocol)),
           util::format_duration(params.theta()),
           util::format_duration(opt.period),
           util::format_percent(opt.waste, 2),
           util::format_duration(model::risk_window(protocol, params))});
    }
  }
  std::printf("%s", derived.render().c_str());
  return 0;
}
