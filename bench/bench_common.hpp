// Shared plumbing for the figure/table reproduction binaries: CLI with
// optional --csv/--jsonl <dir> flags, grid definitions matching the paper's
// axes, and small print helpers. Each bench prints the figure's data series
// as aligned text and, when --csv / --jsonl is given, writes the
// full-resolution grid for external plotting or machine consumption.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "model/model_api.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace dckpt::bench {

/// One JSONL artifact next to a bench's printed table: one JSON object per
/// `row` call, keys zipped against the header passed at construction.
class JsonlWriter {
 public:
  JsonlWriter(const std::string& path, std::vector<std::string> keys)
      : path_(path), keys_(std::move(keys)), out_(path) {
    if (!out_) {
      throw std::runtime_error("JsonlWriter: cannot open '" + path + "'");
    }
  }

  void row(const std::vector<util::JsonValue>& values) {
    if (values.size() != keys_.size()) {
      throw std::invalid_argument("JsonlWriter: arity mismatch");
    }
    auto record = util::JsonValue::object();
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      record.set(keys_[i], values[i]);
    }
    out_ << record.dump() << '\n';
  }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<std::string> keys_;
  std::ofstream out_;
};

struct BenchContext {
  std::optional<std::string> csv_dir;
  std::optional<std::string> jsonl_dir;
  /// --trials override for the Monte-Carlo benches (0 = bench default);
  /// CI's bench-smoke step uses this to keep artifact runs fast.
  std::uint64_t trials_override = 0;

  /// The bench's Monte-Carlo trial count: the override, if given.
  std::uint64_t trials_or(std::uint64_t bench_default) const noexcept {
    return trials_override > 0 ? trials_override : bench_default;
  }

  /// Opens `<csv_dir>/<name>.csv` when --csv was passed, else nullptr.
  std::unique_ptr<util::CsvWriter> csv(
      const std::string& name, const std::vector<std::string>& header) const {
    if (!csv_dir) return nullptr;
    return std::make_unique<util::CsvWriter>(*csv_dir + "/" + name + ".csv",
                                             header);
  }

  /// Opens `<jsonl_dir>/<name>.jsonl` when --jsonl was passed, else nullptr.
  std::unique_ptr<JsonlWriter> jsonl(
      const std::string& name, const std::vector<std::string>& keys) const {
    if (!jsonl_dir) return nullptr;
    return std::make_unique<JsonlWriter>(*jsonl_dir + "/" + name + ".jsonl",
                                         keys);
  }
};

/// Parses the standard bench options; returns nullopt on --help/error.
inline std::optional<BenchContext> parse_bench_args(int argc,
                                                    const char* const* argv,
                                                    const char* description) {
  util::CliParser parser(argv[0] ? argv[0] : "bench", description);
  parser.add_option("csv", "", "directory to write full-resolution CSV grids");
  parser.add_option("jsonl", "",
                    "directory to write full-resolution JSONL grids");
  parser.add_option("trials", "0",
                    "Monte-Carlo trials override (0 = bench default)");
  if (!parser.parse(argc, argv)) return std::nullopt;
  BenchContext context;
  const std::string dir = parser.get("csv");
  if (!dir.empty()) context.csv_dir = dir;
  const std::string jsonl_dir = parser.get("jsonl");
  if (!jsonl_dir.empty()) context.jsonl_dir = jsonl_dir;
  if (const std::int64_t trials = parser.get_int("trials"); trials > 0) {
    context.trials_override = static_cast<std::uint64_t>(trials);
  }
  return context;
}

/// MTBF axis of Figures 4 and 7: 1 min .. 1 day, log-ish ticks as labeled
/// in the paper.
inline std::vector<double> figure_mtbf_axis() {
  return {60.0, 600.0, 3600.0, 4.0 * 3600.0, 86400.0};
}

/// phi/R axis of Figures 4-5, 7-8.
inline std::vector<double> phi_ratio_axis(int points = 11) {
  std::vector<double> axis;
  axis.reserve(points);
  for (int i = 0; i < points; ++i) {
    axis.push_back(static_cast<double>(i) / (points - 1));
  }
  return axis;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

/// Figures 4 and 7: waste at the model-optimal period, one table per
/// protocol, rows = phi/R, columns = MTBF ticks. When ctx has --csv, also
/// writes a dense grid (25 log-spaced M in [15 s, 1 day] x 21 ratios).
inline void run_waste_surface(const model::Scenario& scenario,
                              const BenchContext& context,
                              const std::string& figure_name) {
  print_header(figure_name + " -- waste vs (phi/R, M), scenario " +
                   scenario.name,
               "Each cell: total waste at the protocol's optimal period "
               "(1.00 means no progress possible).");
  const auto mtbf_axis = figure_mtbf_axis();
  for (auto protocol : model::kPaperProtocols) {
    std::vector<std::string> header{"phi/R"};
    for (double mtbf : mtbf_axis) {
      header.push_back("M=" + util::format_duration(mtbf));
    }
    util::TextTable table(header);
    for (double ratio : phi_ratio_axis()) {
      std::vector<std::string> row{util::format_fixed(ratio, 2)};
      for (double mtbf : mtbf_axis) {
        const auto params = scenario.at_phi_ratio(ratio).with_mtbf(mtbf);
        row.push_back(util::format_fixed(
            model::waste_at_optimal_period(protocol, params), 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n",
                std::string(model::protocol_name(protocol)).c_str(),
                table.render().c_str());
  }
  auto csv = context.csv(figure_name,
                         {"protocol", "phi_over_R", "mtbf_s", "waste"});
  auto jsonl = context.jsonl(figure_name,
                             {"protocol", "phi_over_R", "mtbf_s", "waste"});
  if (csv || jsonl) {
    const auto dense_m = util::log_space(15.0, 86400.0, 25);
    for (auto protocol : model::kPaperProtocols) {
      for (double ratio : phi_ratio_axis(21)) {
        for (double mtbf : dense_m) {
          const auto params = scenario.at_phi_ratio(ratio).with_mtbf(mtbf);
          const double waste =
              model::waste_at_optimal_period(protocol, params);
          if (csv) {
            csv->write_row({std::string(model::protocol_name(protocol)),
                            util::format_fixed(ratio, 4),
                            util::format_fixed(mtbf, 2),
                            util::format_fixed(waste, 6)});
          }
          if (jsonl) {
            jsonl->row({model::protocol_name(protocol), ratio, mtbf, waste});
          }
        }
      }
    }
    if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
    if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
  }
}

/// Figures 5 and 8: waste ratio vs DoubleNBL at fixed M = 7 h.
inline void run_waste_ratio(const model::Scenario& scenario,
                            const BenchContext& context,
                            const std::string& figure_name) {
  print_header(
      figure_name + " -- waste ratio vs DoubleNBL, scenario " + scenario.name,
      "M = 7 h. Values < 1 mean the protocol beats DoubleNBL "
      "(paper: Triple wins for phi/R <~ 0.5, worst case ~ +15%).");
  util::TextTable table(
      {"phi/R", "DoubleBoF/DoubleNBL", "Triple/DoubleNBL"});
  auto csv = context.csv(figure_name,
                         {"phi_over_R", "bof_over_nbl", "triple_over_nbl"});
  auto jsonl = context.jsonl(
      figure_name, {"phi_over_R", "bof_over_nbl", "triple_over_nbl"});
  for (double ratio : phi_ratio_axis(21)) {
    const auto params =
        scenario.at_phi_ratio(ratio).with_mtbf(scenario.default_mtbf);
    const double bof = model::waste_ratio(model::Protocol::DoubleBof,
                                          model::Protocol::DoubleNbl, params);
    const double tri = model::waste_ratio(model::Protocol::Triple,
                                          model::Protocol::DoubleNbl, params);
    table.add_row({util::format_fixed(ratio, 2), util::format_fixed(bof, 4),
                   util::format_fixed(tri, 4)});
    if (csv) csv->write_row_numeric({ratio, bof, tri});
    if (jsonl) jsonl->row({ratio, bof, tri});
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
}

/// Figures 6 and 9: relative success probabilities over (M, platform life).
/// theta = (alpha + 1) R (full overlap -- the largest risk window, as the
/// paper stresses). Prints P(NBL)/P(BOF) and P(NBL)/P(Triple) surfaces;
/// lower = the second protocol is safer.
inline void run_risk_surface(const model::Scenario& scenario,
                             const BenchContext& context,
                             const std::string& figure_name,
                             const std::vector<double>& mtbf_axis,
                             const std::vector<double>& life_axis,
                             const std::string& life_unit,
                             double life_unit_seconds) {
  print_header(
      figure_name + " -- relative success probability, scenario " +
          scenario.name,
      "theta = (alpha+1) R. Ratios < 1: the denominator protocol is safer.");
  const auto params_at = [&](double mtbf) {
    // phi = 0 -> theta = (alpha + 1) R.
    return scenario.at_phi_ratio(0.0).with_mtbf(mtbf);
  };
  for (const auto& [title, num, den] :
       {std::tuple{std::string("P(DoubleNBL)/P(DoubleBoF)"),
                   model::Protocol::DoubleNbl, model::Protocol::DoubleBof},
        std::tuple{std::string("P(DoubleNBL)/P(Triple)"),
                   model::Protocol::DoubleNbl, model::Protocol::Triple}}) {
    std::vector<std::string> header{"M \\ life(" + life_unit + ")"};
    for (double life : life_axis) {
      header.push_back(util::format_fixed(life, 0));
    }
    util::TextTable table(header);
    for (double mtbf : mtbf_axis) {
      std::vector<std::string> row{util::format_duration(mtbf)};
      for (double life : life_axis) {
        const auto params = params_at(mtbf);
        const double p_num = model::success_probability(
            num, params, life * life_unit_seconds);
        const double p_den = model::success_probability(
            den, params, life * life_unit_seconds);
        row.push_back(p_den > 0.0
                          ? util::format_fixed(p_num / p_den, 4)
                          : "inf");
      }
      table.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n", title.c_str(), table.render().c_str());
  }
  auto csv = context.csv(figure_name,
                         {"mtbf_s", "life_s", "p_nbl", "p_bof", "p_triple",
                          "p_tripleBof"});
  auto jsonl = context.jsonl(figure_name,
                             {"mtbf_s", "life_s", "p_nbl", "p_bof",
                              "p_triple", "p_tripleBof"});
  if (csv || jsonl) {
    for (double mtbf : mtbf_axis) {
      for (double life : life_axis) {
        const auto params = params_at(mtbf);
        const double t = life * life_unit_seconds;
        const double p_nbl = model::success_probability(
            model::Protocol::DoubleNbl, params, t);
        const double p_bof = model::success_probability(
            model::Protocol::DoubleBof, params, t);
        const double p_triple =
            model::success_probability(model::Protocol::Triple, params, t);
        const double p_triple_bof =
            model::success_probability(model::Protocol::TripleBof, params, t);
        if (csv) {
          csv->write_row_numeric(
              {mtbf, t, p_nbl, p_bof, p_triple, p_triple_bof});
        }
        if (jsonl) {
          jsonl->row({mtbf, t, p_nbl, p_bof, p_triple, p_triple_bof});
        }
      }
    }
    if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
    if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
  }
}

}  // namespace dckpt::bench
