// Extension: content-hash differential checkpoints (dcp). Measures, on the
// real ckpt substrate, the bytes a buddy exchange actually moves when only
// content-dirty blocks ship, across controlled per-commit dirty fractions,
// and compares the measured volume ratio against the analytic multiplier
//   m = (1/K)(1 + h) + (1 - 1/K)(d_b + h)
// of model/dcp.hpp. At small d the reduction approaches d + h per commit
// (plus the 1/K full-image amortization), which is the dcpScalable result
// the model encodes.
#include "bench_common.hpp"

#include <algorithm>
#include <numeric>

#include "ckpt/dcp.hpp"
#include "ckpt/page_store.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;
  using namespace dckpt::bench;
  const auto context = parse_bench_args(
      argc, argv, "Differential checkpoints: transfer bytes full vs dcp");
  if (!context) return 0;

  constexpr std::size_t kStateBytes = 1 << 20;  // 1 MiB
  constexpr std::size_t kPage = 4096;
  constexpr std::size_t kPages = kStateBytes / kPage;
  constexpr std::uint64_t kStack = 8;   // K: commits per full exchange
  constexpr int kCycles = 6;            // measured full-exchange cycles

  print_header(
      "Differential checkpoints -- exchange volume vs dirty fraction",
      "1 MiB state, 4 KiB blocks, K = 8 commits per full exchange. Each\n"
      "commit rewrites a d-fraction of pages with fresh content; deltas\n"
      "carry only blocks whose content hash changed. 'dcp/full' is measured\n"
      "bytes over K-commit cycles relative to shipping the full image every\n"
      "commit; 'model m' is the analytic multiplier at h = 0. At small d\n"
      "the per-delta volume approaches d (+ hash overhead h when h > 0).");

  auto csv = context->csv("ext_dcp",
                          {"dirty_fraction", "block", "full_mib_per_commit",
                           "dcp_mib_per_commit", "measured_ratio", "model_m"});
  auto jsonl = context->jsonl("ext_dcp",
                              {"dirty_fraction", "block",
                               "full_mib_per_commit", "dcp_mib_per_commit",
                               "measured_ratio", "model_m"});
  util::TextTable table({"d", "block", "full/commit", "dcp/commit",
                         "dcp/full", "model m"});

  for (const double d : {0.05, 0.2, 1.0}) {
    for (const std::size_t block : {kPage, 4 * kPage}) {
      ckpt::PageStore store(kStateBytes, kPage);
      util::Xoshiro256ss rng(0xdc9 + static_cast<std::uint64_t>(d * 100) +
                             block);
      std::vector<std::byte> payload(kPage);
      std::vector<std::size_t> pages(kPages);
      std::iota(pages.begin(), pages.end(), std::size_t{0});
      const auto dirty_pages =
          static_cast<std::size_t>(d * static_cast<double>(kPages) + 0.5);

      double dcp_bytes = 0.0;
      double full_bytes = 0.0;
      std::uint64_t commits = 0;
      ckpt::Snapshot base = store.snapshot(0);
      std::vector<std::uint64_t> base_hashes =
          ckpt::block_hashes(base, block);
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        for (std::uint64_t commit = 0; commit < kStack; ++commit) {
          // Touch `dirty_pages` distinct pages with fresh content (partial
          // Fisher-Yates draw), so the content-dirty fraction is exactly d.
          for (std::size_t i = 0; i < dirty_pages; ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(rng.next_below(pages.size() - i));
            std::swap(pages[i], pages[j]);
            for (auto& byte : payload) {
              byte = static_cast<std::byte>(rng());
            }
            store.write(pages[i] * kPage, payload);
          }
          const ckpt::Snapshot current = store.snapshot(0);
          full_bytes += static_cast<double>(current.size_bytes());
          if (commit == 0) {  // the cycle's full exchange
            dcp_bytes += static_cast<double>(current.size_bytes());
          } else {
            const auto delta = ckpt::make_block_delta(
                base_hashes, base.version(), base.content_hash(), current,
                block);
            dcp_bytes += static_cast<double>(delta.delta_bytes());
          }
          base = current;
          base_hashes = ckpt::block_hashes(base, block);
          ++commits;
        }
      }

      const double per_commit = static_cast<double>(commits);
      const double measured = dcp_bytes / full_bytes;
      model::DcpSpec spec;
      spec.dirty_fraction = d;
      spec.block_size = block;
      spec.page_size = kPage;
      spec.stack_size = kStack;
      const double m = model::checkpoint_volume_multiplier(spec);
      table.add_row({util::format_fixed(d, 2),
                     util::format_bytes(static_cast<double>(block)),
                     util::format_bytes(full_bytes / per_commit),
                     util::format_bytes(dcp_bytes / per_commit),
                     util::format_fixed(measured, 4),
                     util::format_fixed(m, 4)});
      const double full_mib = full_bytes / per_commit / (1 << 20);
      const double dcp_mib = dcp_bytes / per_commit / (1 << 20);
      if (csv) {
        csv->write_row_numeric({d, static_cast<double>(block), full_mib,
                                dcp_mib, measured, m});
      }
      if (jsonl) {
        jsonl->row({d, static_cast<double>(block), full_mib, dcp_mib,
                    measured, m});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  if (csv) std::printf("[csv] wrote %s\n", csv->path().c_str());
  if (jsonl) std::printf("[jsonl] wrote %s\n", jsonl->path().c_str());
  return 0;
}
