// Clustered-failure (Weibull-aware) waste model.
//
// The paper's waste model (waste.hpp) assumes exponential inter-failure
// times: failures form a Poisson stream of rate 1/M, so (a) the expected
// number of failures over a mission of length T is exactly T/M, and (b) a
// failure strikes uniformly inside the period, losing P/2 of it on average.
// Real platforms cluster failures -- a Weibull hazard with shape k < 1 has
// infinite density at age zero (infant mortality), and the simulator starts
// every node with a fresh clock, so both assumptions break:
//
// (a) Failure count. Each node is an *ordinary* renewal process (all clocks
//     start at age zero; a replacement restarts its clock at rebirth). Its
//     expected failure count over [0, T] is the ordinary renewal function
//     m0(T), not T/mu (mu = n*M is the per-node mean). Smith's theorem gives
//     m0(t) = t/mu + (c^2 - 1)/2 + o(1), where c^2 is the squared
//     coefficient of variation -- an O(1) startup excess (deficit for
//     k > 1) that does not vanish with T. We capture it as the rate factor
//
//         gamma(k, T) = mu * m0(T) / T,
//
//     with m0 solved numerically from the renewal equation (no closed form
//     for Weibull). The corrected failure-induced waste is then
//     WASTE_fail = gamma * F_k(P) / M.
//
// (b) Mid-period loss. The excess failures are not uniform inside the
//     period: they come from young nodes, whose small-t CDF is
//     F(t) ~ (t/lambda)^k. Conditioning such a strike on landing inside a
//     window of length P gives a position with CDF (t/P)^k on [0, P], hence
//     an expected strike position (= lost work) of P * k/(k+1) -- less than
//     P/2 for k < 1, more for k > 1.
//     Splitting failures into a stationary fraction 1/gamma (loss P/2, the
//     paper's term) and an excess fraction (gamma-1)/gamma (loss
//     P*k/(k+1)) yields the blended loss coefficient
//
//         eta = (1/gamma) * 1/2 + ((gamma-1)/gamma) * k/(k+1),
//
//     and the corrected per-failure cost F_k(P) = F(P) - P/2 + eta * P,
//     which is protocol-uniform: every F in waste.cpp carries the same
//     additive P/2 mid-period term (Eq. 7/8/14), so the correction applies
//     to DOUBLENBL, DOUBLEBOF (and its blocking point) and TRIPLE alike.
//
// At k = 1 (exponential): c^2 = 1, m0(t) = t/mu exactly, gamma = 1,
// eta = 1/2, so F_k = F and the model reduces *exactly* -- the k == 1 paths
// below delegate to the waste.hpp/period.hpp entry points and are
// bit-identical to them (asserted by tests/test_nonexponential.cpp).
//
// First-order accuracy: validated against the Monte-Carlo engine at the
// paper's base scenario -- shape 0.7 and 0.5 land within ~2-4% relative of
// the simulated waste (vs. +10% / +26% deviation of the exponential model),
// see SimVsModelTest.WeibullShapeBelowOneMatchesClusteredModel. The model
// is a transient correction, not an exact non-stationary solution; accuracy
// degrades for extreme shapes (k < ~0.3) where higher-order renewal terms
// matter.
#pragma once

#include <cstddef>
#include <limits>

#include "model/parameters.hpp"
#include "model/period.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Squared coefficient of variation of a Weibull(shape) law:
/// c^2 = Gamma(1 + 2/k) / Gamma(1 + 1/k)^2 - 1. Exactly 1 at k = 1,
/// exactly 5 at k = 1/2; grows without bound as k -> 0.
double weibull_cv2(double shape);

/// Ordinary renewal function m0(t): expected number of renewals in [0, t]
/// for i.i.d. Weibull(shape) inter-arrival times with the given mean and
/// the clock starting at age zero. Solved from the renewal equation
/// m(t) = F(t) + integral_0^t m(t - u) dF(u) with an implicit trapezoid
/// discretization on `grid` bins; beyond ~50 means the excess m(t) - t/mu
/// has converged (Smith), so the solution is extended linearly at the
/// stationary rate. Exactly t/mean at shape = 1.
double weibull_renewal_function(double shape, double mean, double time,
                                std::size_t grid = 2048);

/// Description of the platform failure stream for the clustered model.
struct WeibullFailures {
  double shape = 1.0;  ///< Weibull shape k; 1 = exponential (paper model)

  /// Mission wall-clock horizon over which failures accrue. The startup
  /// excess is O(1) per node, so its *rate* contribution depends on how
  /// long the mission runs; use the expected makespan when comparing
  /// against a simulation. +inf selects the stationary limit, where the
  /// correction vanishes (gamma -> 1) and the model coincides with the
  /// paper's first-order formulas at any shape.
  double horizon = std::numeric_limits<double>::infinity();

  /// Throws std::invalid_argument unless shape is finite and > 0 and
  /// horizon > 0 (+inf allowed).
  void validate() const;
};

/// First-order correction factors induced by the Weibull failure stream.
/// The defaults are the identity correction (exponential model).
struct ClusterCorrection {
  /// gamma = mu * m0(horizon) / horizon: expected failures over the
  /// horizon relative to a Poisson stream of the same mean. > 1 for k < 1
  /// (startup burst), < 1 for k > 1 (fresh nodes rarely fail early).
  double rate_factor = 1.0;
  /// (gamma - 1) / gamma: fraction of failures attributable to the
  /// transient excess. Negative for k > 1 (a deficit).
  double excess_fraction = 0.0;
  /// eta: expected lost fraction of the period per failure (the paper's
  /// 1/2, blended with k/(k+1) on the excess fraction).
  double loss_coefficient = 0.5;
};

/// Correction for `failures` on the platform described by `params`.
/// Identity at shape = 1 or horizon = +inf. The renewal solve costs
/// O(grid^2); hoist it out of period scans via the ClusterCorrection
/// overloads below.
ClusterCorrection cluster_correction(const Parameters& params,
                                     const WeibullFailures& failures);

/// Corrected expected time lost per failure,
/// F_k(P) = F(P) - P/2 + eta * P.
double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period, const ClusterCorrection& corr);

/// Corrected failure-induced waste, gamma * F_k(P) / M, clamped to >= 0
/// (the blend can undershoot when gamma is tiny, i.e. when essentially no
/// failures are expected over the horizon).
double waste_failure(Protocol protocol, const Parameters& params,
                     double period, const ClusterCorrection& corr);

/// Total corrected waste by the paper's product composition (Eq. 5),
/// clamped to [0, 1]. Bit-identical to waste() under the identity
/// correction.
double waste(Protocol protocol, const Parameters& params, double period,
             const ClusterCorrection& corr);

/// Convenience overloads: compute the correction, then delegate. The
/// shape == 1 fast path delegates straight to the exponential model.
double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period, const WeibullFailures& failures);
double waste_failure(Protocol protocol, const Parameters& params,
                     double period, const WeibullFailures& failures);
double waste(Protocol protocol, const Parameters& params, double period,
             const WeibullFailures& failures);

/// Corrected expected makespan T = t_base / (1 - WASTE_k); +inf when the
/// corrected waste saturates.
double expected_makespan(Protocol protocol, const Parameters& params,
                         double period, double t_base,
                         const WeibullFailures& failures);

/// Numeric optimum of the *corrected* waste (scan + Brent via
/// optimal_period_numeric_objective). The correction is P-independent, so
/// it is computed once per call. Identical to the exponential
/// optimal_period_numeric at shape = 1.
OptimalPeriod optimal_period_numeric(Protocol protocol,
                                     const Parameters& params,
                                     const WeibullFailures& failures);

}  // namespace dckpt::model
