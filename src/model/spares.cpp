#include "model/spares.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::model {

void SparePoolSpec::validate() const {
  if (spares == 0) {
    throw std::invalid_argument("SparePoolSpec: need at least one spare");
  }
  if (!(repair_time > 0.0) || !std::isfinite(repair_time)) {
    throw std::invalid_argument("SparePoolSpec: repair_time must be > 0");
  }
  if (!(detection >= 0.0) || !std::isfinite(detection)) {
    throw std::invalid_argument("SparePoolSpec: detection must be >= 0");
  }
}

double erlang_c(std::uint64_t servers, double offered_load) {
  if (servers == 0) throw std::invalid_argument("erlang_c: zero servers");
  if (!(offered_load >= 0.0)) {
    throw std::invalid_argument("erlang_c: negative load");
  }
  const double c = static_cast<double>(servers);
  if (offered_load >= c) return 1.0;  // unstable: certain queueing
  if (offered_load == 0.0) return 0.0;
  // Iterative Erlang-B, then convert to Erlang-C (numerically stable for
  // large c -- no factorials).
  double b = 1.0;  // Erlang-B with 0 servers
  for (std::uint64_t k = 1; k <= servers; ++k) {
    const double kd = static_cast<double>(k);
    b = offered_load * b / (kd + offered_load * b);
  }
  const double rho = offered_load / c;
  return b / (1.0 - rho * (1.0 - b));
}

double expected_replacement_wait(const SparePoolSpec& spec,
                                 double platform_mtbf) {
  spec.validate();
  if (!(platform_mtbf > 0.0)) {
    throw std::invalid_argument("expected_replacement_wait: bad MTBF");
  }
  const double lambda = 1.0 / platform_mtbf;
  const double mu = 1.0 / spec.repair_time;
  const double offered = lambda / mu;
  const double c = static_cast<double>(spec.spares);
  if (offered >= c) {
    throw std::invalid_argument(
        "expected_replacement_wait: pool unstable (failures outpace repair)");
  }
  return erlang_c(spec.spares, offered) / (c * mu - lambda);
}

double effective_downtime(const SparePoolSpec& spec, double platform_mtbf) {
  return spec.detection + expected_replacement_wait(spec, platform_mtbf);
}

Parameters with_spare_pool(const Parameters& params,
                           const SparePoolSpec& spec) {
  Parameters out = params;
  out.downtime = effective_downtime(spec, params.mtbf);
  out.validate();
  return out;
}

std::uint64_t size_spare_pool(const SparePoolSpec& spec, double platform_mtbf,
                              double max_wait) {
  if (!(max_wait > 0.0)) {
    throw std::invalid_argument("size_spare_pool: max_wait must be > 0");
  }
  SparePoolSpec candidate = spec;
  for (candidate.spares = 1; candidate.spares <= 1000000;
       ++candidate.spares) {
    const double lambda = 1.0 / platform_mtbf;
    const double mu = 1.0 / candidate.repair_time;
    if (lambda / mu >= static_cast<double>(candidate.spares)) continue;
    if (expected_replacement_wait(candidate, platform_mtbf) <= max_wait) {
      return candidate.spares;
    }
  }
  throw std::runtime_error("size_spare_pool: unachievable wait target");
}

}  // namespace dckpt::model
