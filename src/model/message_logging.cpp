#include "model/message_logging.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/period.hpp"
#include "model/waste.hpp"
#include "util/math.hpp"

namespace dckpt::model {

void MessageLoggingParams::validate() const {
  platform.validate();
  if (!(logging_overhead >= 0.0) || !(logging_overhead < 1.0)) {
    throw std::invalid_argument(
        "MessageLoggingParams: beta must be in [0, 1)");
  }
}

double message_logging_waste(const MessageLoggingParams& params,
                             double period) {
  params.validate();
  const auto& p = params.platform;
  // Same period structure as DoubleNBL for the local/remote checkpoint.
  const double ff = waste_fault_free(Protocol::DoubleNbl, p, period);
  const double failure_cost =
      expected_failure_cost(Protocol::DoubleNbl, p, period);
  // Failures arrive every M seconds platform-wide, but with logged
  // messages only the failed node loses F seconds -- 1/n of the platform's
  // capacity -- so the platform-level failure waste is F/(n M).
  const double per_node_fail =
      failure_cost / (p.mtbf * static_cast<double>(p.nodes));
  if (ff >= 1.0 || per_node_fail >= 1.0) return 1.0;
  const double keep = (1.0 - params.logging_overhead) * (1.0 - ff) *
                      (1.0 - per_node_fail);
  return std::clamp(1.0 - keep, 0.0, 1.0);
}

MessageLoggingOptimum optimal_message_logging_period(
    const MessageLoggingParams& params) {
  params.validate();
  const auto& p = params.platform;
  const double node_mtbf = p.node_mtbf();
  const double theta = p.theta();
  MessageLoggingOptimum result;
  const double raw = std::sqrt(
      2.0 * (p.local_ckpt + p.overhead) *
      (node_mtbf - p.downtime - p.recovery() - theta));
  const double lo = min_period(Protocol::DoubleNbl, p);
  if (!std::isfinite(raw) || raw < lo) {
    result.period = lo;
    result.clamped = true;
  } else {
    result.period = raw;
  }
  result.waste = message_logging_waste(params, result.period);
  result.feasible = result.waste < 1.0;
  return result;
}

double logging_crossover_mtbf(const MessageLoggingParams& params,
                              Protocol coordinated, double lo, double hi) {
  params.validate();
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("logging_crossover_mtbf: bad bracket");
  }
  // Advantage(M) = coordinated waste - logging waste; positive = logging
  // wins. Monotone decreasing in M to first order (logging's flat beta vs
  // the coordinated sqrt(1/M) failure term).
  const auto advantage = [&](double mtbf) {
    auto log_params = params;
    log_params.platform = params.platform.with_mtbf(mtbf);
    const double logging =
        optimal_message_logging_period(log_params).waste;
    const double coord = waste_at_optimal_period(
        coordinated, params.platform.with_mtbf(mtbf));
    return coord - logging;
  };
  const double at_lo = advantage(lo);
  const double at_hi = advantage(hi);
  if (at_lo <= 0.0 && at_hi <= 0.0) return 0.0;
  if (at_lo > 0.0 && at_hi > 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const auto root = util::find_root_bisection(advantage, lo, hi, 1e-3, 200);
  return root.x;
}

}  // namespace dckpt::model
