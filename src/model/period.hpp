// Optimal checkpoint period selection (paper Sec. III-B / V-B).
//
// Closed forms (first-order optima of the product-form waste, derived with
// Maple in the paper; re-derived here, see waste.hpp for the objective):
//
//   P*_nbl = sqrt(2 (delta + phi) (M - R - D - theta))            (Eq.  9)
//   P*_bof = sqrt(2 (delta + phi) (M - 2R - D - theta + phi))     (Eq. 10)
//   P*_tri = 2 sqrt(phi (M - D - R - theta))                      (Eq. 15)
//
// The closed forms can fall below the structural minimum period
// (sigma >= 0) -- e.g. TRIPLE at phi -> 0, where checkpointing is free and
// the optimum is the shortest admissible period -- so both entry points
// clamp into [min_period, +inf) and report whether clamping occurred.
// `optimal_period_numeric` minimizes the exact waste with Brent's method and
// is used by tests and benches to certify the closed forms.
#pragma once

#include <functional>

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct OptimalPeriod {
  double period = 0.0;   ///< chosen period (after clamping)
  double raw = 0.0;      ///< pre-clamp value (closed form or optimizer output)
  double waste = 0.0;    ///< waste at `period`
  bool clamped = false;  ///< true when raw < min_period or not finite
  bool feasible = true;  ///< false when no period achieves waste < 1
};

/// Closed-form optimum (Eq. 9/10/15 and our extensions), clamped to the
/// admissible domain. DoubleBlocking uses the BOF formula at theta = phi = R;
/// TripleBof uses the TRIPLE formula (its F differs from TRIPLE's only in
/// P-independent terms plus an O(1/P) term that first-order optimization
/// discards).
OptimalPeriod optimal_period_closed_form(Protocol protocol,
                                         const Parameters& params);

/// Numeric optimum: Brent minimization of the exact waste over
/// [min_period, P_hi] where P_hi scales with the closed-form estimate and M.
OptimalPeriod optimal_period_numeric(Protocol protocol,
                                     const Parameters& params);

/// Same scan + Brent machinery over an arbitrary waste-shaped objective
/// (period -> value in [0, 1], saturating at 1 on infeasible plateaus like
/// waste() does). This is what the clustered-failure model in
/// nonexponential.hpp optimizes; `optimal_period_numeric` is the
/// exponential-waste instantiation.
OptimalPeriod optimal_period_numeric_objective(
    Protocol protocol, const Parameters& params,
    const std::function<double(double)>& objective);

/// Waste evaluated at the (closed-form) optimal period -- the quantity
/// plotted in the paper's Figures 4, 5, 7 and 8.
double waste_at_optimal_period(Protocol protocol, const Parameters& params);

/// Joint optimization over the overhead phi AND the period: the paper
/// treats phi as an input (the runtime chooses how hard to pace
/// transfers), but a deployment is free to pick it. Scans phi on a fine
/// grid (the waste-vs-phi curve is piecewise smooth but not unimodal in
/// general near clamping boundaries), with the closed-form period at each
/// point. For alpha = 0 the only physical point is phi = R.
struct JointOptimum {
  double overhead = 0.0;  ///< best phi
  OptimalPeriod optimum;  ///< period/waste at that phi
};
JointOptimum optimal_overhead_and_period(Protocol protocol,
                                         const Parameters& params,
                                         int grid_points = 64);

}  // namespace dckpt::model
