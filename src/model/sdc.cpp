#include "model/sdc.hpp"

#include <cmath>
#include <stdexcept>

#include "model/waste.hpp"

namespace dckpt::model {

void SdcSpec::validate() const {
  if (!std::isfinite(rate) || rate < 0.0) {
    throw std::invalid_argument("SdcSpec: rate must be finite and >= 0");
  }
  if (!std::isfinite(verify_cost) || verify_cost < 0.0) {
    throw std::invalid_argument(
        "SdcSpec: verify_cost must be finite and >= 0");
  }
  if (verify_every == 0) {
    throw std::invalid_argument("SdcSpec: verify_every must be >= 1");
  }
}

double sdc_recovery_cost(Protocol protocol, const Parameters& params) {
  switch (protocol) {
    case Protocol::DoubleNbl:
    case Protocol::Triple:
      return params.recovery();
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      return 2.0 * params.recovery();
    case Protocol::TripleBof:
      return 3.0 * params.recovery();
  }
  return params.recovery();
}

double waste_with_sdc(Protocol protocol, const Parameters& params,
                      double period, const SdcSpec& spec) {
  spec.validate();
  const double base = waste(protocol, params, period);
  if (base >= 1.0) return 1.0;
  const double k = static_cast<double>(spec.verify_every);
  const double verify_fraction = spec.verify_cost / (k * period);
  if (verify_fraction >= 1.0) return 1.0;
  const double loss =
      sdc_recovery_cost(protocol, params) + (k + 1.0) * period / 2.0;
  const double strike_fraction = spec.rate * loss;
  if (strike_fraction >= 1.0) return 1.0;
  const double w = 1.0 - (1.0 - base) * (1.0 - verify_fraction) *
                             (1.0 - strike_fraction);
  return w < 0.0 ? 0.0 : (w > 1.0 ? 1.0 : w);
}

OptimalPeriod optimal_period_with_sdc(Protocol protocol,
                                      const Parameters& params,
                                      const SdcSpec& spec) {
  spec.validate();
  return optimal_period_numeric_objective(
      protocol, params,
      [&](double period) {
        return waste_with_sdc(protocol, params, period, spec);
      });
}

}  // namespace dckpt::model
