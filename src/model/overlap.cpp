#include "model/overlap.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::model {

OverlapModel::OverlapModel(double theta_min, double alpha)
    : theta_min_(theta_min), alpha_(alpha) {
  if (!(theta_min > 0.0) || !std::isfinite(theta_min)) {
    throw std::invalid_argument("OverlapModel: theta_min must be > 0");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument("OverlapModel: alpha must be >= 0");
  }
}

double OverlapModel::theta_of_phi(double phi) const {
  if (phi < 0.0 || phi > theta_min_) {
    throw std::invalid_argument("OverlapModel: phi outside [0, theta_min]");
  }
  return theta_min_ + alpha_ * (theta_min_ - phi);
}

double OverlapModel::phi_of_theta(double theta) const {
  if (alpha_ == 0.0) {
    // Degenerate law: the transfer cannot be stretched; only theta_min is
    // feasible and it is fully blocking.
    if (theta != theta_min_) {
      throw std::invalid_argument("OverlapModel: alpha=0 admits only theta_min");
    }
    return theta_min_;
  }
  if (theta < theta_min_ || theta > theta_max()) {
    throw std::invalid_argument(
        "OverlapModel: theta outside [theta_min, theta_max]");
  }
  return theta_min_ - (theta - theta_min_) / alpha_;
}

double OverlapModel::work_rate_during_transfer(double phi) const {
  const double theta = theta_of_phi(phi);
  return (theta - phi) / theta;
}

}  // namespace dckpt::model
