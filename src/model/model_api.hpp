// Umbrella header: the full analytical model of
// "Revisiting the double checkpointing algorithm" (Dongarra, Herault,
// Robert, APDCM 2013). Include this to get parameters, the overlap law,
// waste/period/risk models, baselines and the paper's scenarios.
#pragma once

#include "model/dcp.hpp"          // IWYU pragma: export
#include "model/efficiency.hpp"   // IWYU pragma: export
#include "model/hierarchical.hpp" // IWYU pragma: export
#include "model/message_logging.hpp"  // IWYU pragma: export
#include "model/nonexponential.hpp"  // IWYU pragma: export
#include "model/overlap.hpp"      // IWYU pragma: export
#include "model/parameters.hpp"   // IWYU pragma: export
#include "model/period.hpp"       // IWYU pragma: export
#include "model/predictor.hpp"    // IWYU pragma: export
#include "model/protocol.hpp"     // IWYU pragma: export
#include "model/restart.hpp"      // IWYU pragma: export
#include "model/risk.hpp"         // IWYU pragma: export
#include "model/scenario.hpp"     // IWYU pragma: export
#include "model/sdc.hpp"          // IWYU pragma: export
#include "model/spares.hpp"       // IWYU pragma: export
#include "model/waste.hpp"        // IWYU pragma: export
#include "model/young_daly.hpp"   // IWYU pragma: export
