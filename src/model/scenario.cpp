#include "model/scenario.hpp"

#include <stdexcept>

namespace dckpt::model {

namespace {
constexpr double kSecondsPerYear = 365.25 * 86400.0;
constexpr double kSevenHours = 7.0 * 3600.0;
}  // namespace

Parameters Scenario::at_phi_ratio(double ratio) const {
  if (ratio < 0.0 || ratio > 1.0) {
    throw std::invalid_argument("Scenario: phi/R ratio outside [0, 1]");
  }
  return params.with_overhead(ratio * params.remote_blocking);
}

Scenario base_scenario() {
  Scenario s;
  s.name = "Base";
  s.params.downtime = 0.0;
  s.params.local_ckpt = 2.0;
  s.params.remote_blocking = 4.0;
  s.params.alpha = 10.0;
  s.params.overhead = 0.0;
  s.params.nodes = 324ULL * 32ULL;
  s.params.mtbf = kSevenHours;
  s.phi_max = s.params.remote_blocking;
  s.default_mtbf = kSevenHours;
  return s;
}

Scenario exa_scenario() {
  Scenario s;
  s.name = "Exa";
  s.params.downtime = 60.0;
  s.params.local_ckpt = 30.0;
  s.params.remote_blocking = 60.0;
  s.params.alpha = 10.0;
  s.params.overhead = 0.0;
  s.params.nodes = 1000000ULL;
  s.params.mtbf = kSevenHours;
  s.phi_max = s.params.remote_blocking;
  s.default_mtbf = kSevenHours;
  return s;
}

std::vector<Scenario> paper_scenarios() {
  return {base_scenario(), exa_scenario()};
}

Parameters HardwareSpec::derive() const {
  if (checkpoint_bytes <= 0.0 || local_bandwidth <= 0.0 ||
      network_bandwidth <= 0.0 || node_mtbf_years <= 0.0 || nodes < 2) {
    throw std::invalid_argument("HardwareSpec: out of domain");
  }
  Parameters p;
  p.downtime = downtime;
  p.local_ckpt = checkpoint_bytes / local_bandwidth;
  p.remote_blocking = checkpoint_bytes / network_bandwidth;
  p.alpha = alpha;
  p.overhead = 0.0;
  p.nodes = nodes;
  p.mtbf = node_mtbf_years * kSecondsPerYear / static_cast<double>(nodes);
  p.validate();
  return p;
}

}  // namespace dckpt::model
