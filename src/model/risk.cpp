#include "model/risk.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::model {

namespace {

/// (1 - x)^k computed as exp(k * log1p(-x)) for accuracy at tiny x; 0 when
/// the first-order hazard x exceeds 1 (formula out of domain -> certain
/// failure at this order).
double power_one_minus(double x, double k) {
  if (x <= 0.0) return 1.0;
  if (x >= 1.0) return 0.0;
  return std::exp(k * std::log1p(-x));
}

}  // namespace

double risk_window(Protocol protocol, const Parameters& params) {
  params.validate();
  const auto transfer = effective_transfer(protocol, params);
  const double d = params.downtime;
  const double r = params.recovery();
  switch (protocol) {
    case Protocol::DoubleNbl:
      return d + r + transfer.theta;
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      return d + 2.0 * r;
    case Protocol::Triple:
      return d + r + 2.0 * transfer.theta;
    case Protocol::TripleBof:
      return d + 3.0 * r;
  }
  return 0.0;
}

double success_probability_double(double lambda, double execution_time,
                                  double risk, std::uint64_t nodes) {
  if (lambda < 0.0 || execution_time < 0.0 || risk < 0.0) {
    throw std::invalid_argument("success_probability_double: negative input");
  }
  const double per_pair = 2.0 * lambda * lambda * execution_time * risk;
  return power_one_minus(per_pair, static_cast<double>(nodes) / 2.0);
}

double success_probability_triple(double lambda, double execution_time,
                                  double risk, std::uint64_t nodes) {
  if (lambda < 0.0 || execution_time < 0.0 || risk < 0.0) {
    throw std::invalid_argument("success_probability_triple: negative input");
  }
  const double per_triple =
      6.0 * lambda * lambda * lambda * execution_time * risk * risk;
  return power_one_minus(per_triple, static_cast<double>(nodes) / 3.0);
}

double success_probability_no_checkpoint(double lambda, double t_base,
                                         std::uint64_t nodes) {
  if (lambda < 0.0 || t_base < 0.0) {
    throw std::invalid_argument("success_probability_no_checkpoint: negative");
  }
  return power_one_minus(lambda * t_base, static_cast<double>(nodes));
}

double success_probability(Protocol protocol, const Parameters& params,
                           double execution_time) {
  const double risk = risk_window(protocol, params);
  const double lambda = params.lambda();
  if (is_triple(protocol)) {
    return success_probability_triple(lambda, execution_time, risk,
                                      params.nodes);
  }
  return success_probability_double(lambda, execution_time, risk,
                                    params.nodes);
}

double fatal_failure_rate(Protocol protocol, const Parameters& params) {
  const double risk = risk_window(protocol, params);
  const double lambda = params.lambda();
  const double n = static_cast<double>(params.nodes);
  if (is_triple(protocol)) {
    return (n / 3.0) * 6.0 * lambda * lambda * lambda * risk * risk;
  }
  return (n / 2.0) * 2.0 * lambda * lambda * risk;
}

}  // namespace dckpt::model
