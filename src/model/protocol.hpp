// Protocol taxonomy for peer-to-peer in-memory checkpointing.
//
// The paper analyses a family of protocols sharing a three-part period
// P = (part1) + (part2) + sigma:
//
//   DoubleBlocking  Zheng/Shi/Kale 2004 [1]: local ckpt (delta), then a fully
//                   blocking buddy exchange (theta = theta_min, phi = theta_min).
//   DoubleNbl       Ni/Meneses/Kale 2012 [2]: buddy exchange overlapped with
//                   computation; after a failure the buddy copy is re-sent at
//                   overlapped speed theta(phi).
//   DoubleBof       this paper: like DoubleNbl in fault-free mode, but on
//                   failure both files are sent blocking in theta_min = R each.
//   Triple          this paper: processor triples; the local-checkpoint part
//                   is replaced by a second overlapped remote transfer.
//   TripleBof       variant mentioned in Sec. IV: blocking-on-failure triple
//                   (risk window D + 3R); waste model is our straightforward
//                   extension (add 2R blocking transfers, drop the 2*phi
//                   re-execution overhead).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace dckpt::model {

enum class Protocol {
  DoubleBlocking,
  DoubleNbl,
  DoubleBof,
  Triple,
  TripleBof,
};

/// All protocols, in presentation order.
inline constexpr std::array<Protocol, 5> kAllProtocols = {
    Protocol::DoubleBlocking, Protocol::DoubleNbl, Protocol::DoubleBof,
    Protocol::Triple, Protocol::TripleBof};

/// The three protocols compared in the paper's evaluation section.
inline constexpr std::array<Protocol, 3> kPaperProtocols = {
    Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple};

constexpr std::string_view protocol_name(Protocol p) noexcept {
  switch (p) {
    case Protocol::DoubleBlocking:
      return "DoubleBlocking";
    case Protocol::DoubleNbl:
      return "DoubleNBL";
    case Protocol::DoubleBof:
      return "DoubleBoF";
    case Protocol::Triple:
      return "Triple";
    case Protocol::TripleBof:
      return "TripleBoF";
  }
  return "?";
}

/// Number of processors per buddy group (2 for pairs, 3 for triples).
constexpr int group_size(Protocol p) noexcept {
  switch (p) {
    case Protocol::DoubleBlocking:
    case Protocol::DoubleNbl:
    case Protocol::DoubleBof:
      return 2;
    case Protocol::Triple:
    case Protocol::TripleBof:
      return 3;
  }
  return 2;
}

constexpr bool is_triple(Protocol p) noexcept { return group_size(p) == 3; }

/// Case-insensitive lookup by name ("doublenbl", "DoubleNBL", "triple",
/// ...); nullopt for unknown names. The CLI-facing inverse of
/// protocol_name().
std::optional<Protocol> protocol_from_name(std::string_view name) noexcept;

/// Like protocol_from_name but throws std::invalid_argument with the list
/// of valid names -- for command-line parsing.
Protocol parse_protocol_name(const std::string& name);

/// True when failure recovery transfers run blocking at full network speed.
constexpr bool blocking_on_failure(Protocol p) noexcept {
  switch (p) {
    case Protocol::DoubleBlocking:
    case Protocol::DoubleBof:
    case Protocol::TripleBof:
      return true;
    case Protocol::DoubleNbl:
    case Protocol::Triple:
      return false;
  }
  return false;
}

}  // namespace dckpt::model
