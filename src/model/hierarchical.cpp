#include "model/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/period.hpp"
#include "model/risk.hpp"
#include "model/waste.hpp"

namespace dckpt::model {

void HierarchicalParams::validate() const {
  level1.validate();
  if (!(global_ckpt > 0.0) || !std::isfinite(global_ckpt)) {
    throw std::invalid_argument("HierarchicalParams: global_ckpt must be > 0");
  }
  if (!(global_recovery >= 0.0) || !std::isfinite(global_recovery)) {
    throw std::invalid_argument(
        "HierarchicalParams: global_recovery must be >= 0");
  }
}

double hierarchical_waste(const HierarchicalParams& params, double p1,
                          double p2) {
  params.validate();
  if (!(p2 >= params.global_ckpt)) {
    throw std::invalid_argument("hierarchical_waste: P2 < global checkpoint");
  }
  const double w1 = waste(params.protocol, params.level1, p1);
  if (w1 >= 1.0) return 1.0;
  const double rho = fatal_failure_rate(params.protocol, params.level1);
  const double level2_ff = params.global_ckpt / p2;
  const double fatal_cost = params.level1.downtime + params.global_recovery +
                            p2 / 2.0;
  const double level2_fail = rho * fatal_cost;
  if (level2_ff >= 1.0 || level2_fail >= 1.0) return 1.0;
  const double product =
      (1.0 - w1) * (1.0 - level2_ff) * (1.0 - level2_fail);
  return std::clamp(1.0 - product, 0.0, 1.0);
}

HierarchicalEvaluation optimize_hierarchical(
    const HierarchicalParams& params) {
  params.validate();
  HierarchicalEvaluation eval;
  const auto level1 =
      optimal_period_closed_form(params.protocol, params.level1);
  eval.level1_period = level1.period;
  eval.level1_waste = level1.waste;
  eval.fatal_rate = fatal_failure_rate(params.protocol, params.level1);
  if (!level1.feasible) {
    eval.feasible = false;
    eval.total_waste = 1.0;
    return eval;
  }
  // Daly skeleton at the fatal-failure scale; clamp into the domain.
  const double raw =
      eval.fatal_rate > 0.0
          ? std::sqrt(2.0 * params.global_ckpt / eval.fatal_rate)
          : std::numeric_limits<double>::infinity();
  eval.level2_period = std::isfinite(raw)
                           ? std::max(raw, params.global_ckpt)
                           : std::numeric_limits<double>::infinity();
  if (std::isinf(eval.level2_period)) {
    // No fatal hazard: level 2 is pure overhead, push it out to "never".
    eval.level2_waste = 0.0;
    eval.total_waste = eval.level1_waste;
    eval.feasible = eval.total_waste < 1.0;
    return eval;
  }
  eval.total_waste =
      hierarchical_waste(params, eval.level1_period, eval.level2_period);
  const double keep1 = 1.0 - eval.level1_waste;
  eval.level2_waste =
      keep1 > 0.0 ? 1.0 - (1.0 - eval.total_waste) / keep1 : 1.0;
  eval.feasible = eval.total_waste < 1.0;
  return eval;
}

double mean_time_between_fatal(Protocol protocol, const Parameters& params) {
  const double rho = fatal_failure_rate(protocol, params);
  return rho > 0.0 ? 1.0 / rho : std::numeric_limits<double>::infinity();
}

}  // namespace dckpt::model
