// Spare-node provisioning model (extension, after the paper's related work
// [14][15] on keeping backup resources).
//
// The model's downtime D bundles failure detection with *replacement-node
// allocation*. With a pool of c warm spares that are repaired and returned
// at rate mu each, node replacement is an M/M/c queue fed by the platform
// failure process (rate lambda_p = 1/M): the expected allocation delay is
// the Erlang-C waiting time
//
//   W = C(c, a) / (c mu - lambda_p),  a = lambda_p / mu,
//
// where C(c, a) is the Erlang-C probability of queueing. This turns the
// abstract D into (detection + W) and lets operators size the spare pool
// against the waste it buys.
#pragma once

#include <cstdint>

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct SparePoolSpec {
  std::uint64_t spares = 4;      ///< c: warm spare nodes
  double repair_time = 3600.0;   ///< 1/mu: mean time to repair & return one
  double detection = 30.0;       ///< failure-detection part of D [s]

  void validate() const;
};

/// Erlang-C probability that an arrival must wait (all c servers busy).
/// `offered_load` a = lambda / mu must satisfy a < c (stability).
double erlang_c(std::uint64_t servers, double offered_load);

/// Expected waiting time for a replacement node, W. Throws when the pool is
/// unstable (a >= c: failures arrive faster than spares return).
double expected_replacement_wait(const SparePoolSpec& spec,
                                 double platform_mtbf);

/// Effective downtime D = detection + W for the given platform.
double effective_downtime(const SparePoolSpec& spec, double platform_mtbf);

/// Copy of `params` with downtime derived from the spare pool.
Parameters with_spare_pool(const Parameters& params,
                           const SparePoolSpec& spec);

/// Smallest spare count keeping the expected wait below `max_wait`.
/// Throws if even 10^6 spares cannot achieve it (repair too slow).
std::uint64_t size_spare_pool(const SparePoolSpec& spec, double platform_mtbf,
                              double max_wait);

}  // namespace dckpt::model
