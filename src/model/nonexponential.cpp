#include "model/nonexponential.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/waste.hpp"

namespace dckpt::model {

namespace {

// Beyond this many means the excess m0(t) - t/mu has converged to Smith's
// constant (c^2 - 1)/2 for every shape we care about, so the renewal
// equation is only solved on [0, kAsymptoteMeans * mean] and extended
// linearly at the stationary rate 1/mu. Keeping the solve window bounded
// also keeps the grid resolution at ~mean/40 regardless of the horizon.
constexpr double kAsymptoteMeans = 50.0;

void check_shape(double shape, const char* who) {
  if (!std::isfinite(shape) || !(shape > 0.0)) {
    throw std::invalid_argument(std::string(who) +
                                ": shape must be finite and > 0");
  }
}

}  // namespace

double weibull_cv2(double shape) {
  check_shape(shape, "weibull_cv2");
  const double g1 = std::tgamma(1.0 + 1.0 / shape);
  const double g2 = std::tgamma(1.0 + 2.0 / shape);
  return g2 / (g1 * g1) - 1.0;
}

double weibull_renewal_function(double shape, double mean, double time,
                                std::size_t grid) {
  check_shape(shape, "weibull_renewal_function");
  if (!std::isfinite(mean) || !(mean > 0.0)) {
    throw std::invalid_argument(
        "weibull_renewal_function: mean must be finite and > 0");
  }
  if (!std::isfinite(time) || time < 0.0) {
    throw std::invalid_argument(
        "weibull_renewal_function: time must be finite and >= 0");
  }
  if (grid < 8) {
    throw std::invalid_argument("weibull_renewal_function: grid too coarse");
  }
  if (time == 0.0) return 0.0;
  // Memoryless case: the renewal process is Poisson, m0(t) = t/mu exactly.
  if (shape == 1.0) return time / mean;

  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  const auto cdf = [&](double t) {
    return -std::expm1(-std::pow(t / scale, shape));
  };

  const double t_solve = std::min(time, kAsymptoteMeans * mean);
  const std::size_t n = grid;
  const double h = t_solve / static_cast<double>(n);

  // Interarrival mass per bin: q[j] = F(jh) - F((j-1)h).
  std::vector<double> q(n + 1, 0.0);
  double prev = 0.0;
  for (std::size_t j = 1; j <= n; ++j) {
    const double c = cdf(h * static_cast<double>(j));
    q[j] = c - prev;
    prev = c;
  }

  // Implicit trapezoid discretization of the renewal equation
  //   m(t_i) = F(t_i) + integral_0^{t_i} m(t_i - u) dF(u):
  // the mass q[j] in bin j multiplies the average of m at the bin edges;
  // the j = 1 term involves the unknown m[i], hence the (1 - q[1]/2)
  // divisor. O(n^2) overall -- n is ~2k and this runs once per correction.
  std::vector<double> m(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i) {
    double acc = cdf(h * static_cast<double>(i)) + 0.5 * q[1] * m[i - 1];
    for (std::size_t j = 2; j <= i; ++j) {
      acc += 0.5 * q[j] * (m[i - j] + m[i - j + 1]);
    }
    m[i] = acc / (1.0 - 0.5 * q[1]);
  }

  if (time >= t_solve) {
    return m[n] + (time - t_solve) / mean;
  }
  const double x = time / h;
  const std::size_t i =
      std::min(n - 1, static_cast<std::size_t>(std::floor(x)));
  const double frac = x - static_cast<double>(i);
  return m[i] + frac * (m[i + 1] - m[i]);
}

void WeibullFailures::validate() const {
  check_shape(shape, "WeibullFailures");
  if (std::isnan(horizon) || !(horizon > 0.0)) {
    throw std::invalid_argument(
        "WeibullFailures: horizon must be > 0 (+inf for stationary)");
  }
}

ClusterCorrection cluster_correction(const Parameters& params,
                                     const WeibullFailures& failures) {
  params.validate();
  failures.validate();
  ClusterCorrection corr;
  // Stationary limit (or exponential): the excess is O(1) per node, so its
  // rate contribution vanishes and the paper's model is already first-order
  // correct.
  if (failures.shape == 1.0 || std::isinf(failures.horizon)) return corr;

  const double mu = params.node_mtbf();
  const double m0 =
      weibull_renewal_function(failures.shape, mu, failures.horizon);
  corr.rate_factor = mu * m0 / failures.horizon;
  corr.excess_fraction = (corr.rate_factor - 1.0) / corr.rate_factor;
  const double beta = failures.shape / (failures.shape + 1.0);
  corr.loss_coefficient = (1.0 - corr.excess_fraction) * 0.5 +
                          corr.excess_fraction * beta;
  return corr;
}

double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period, const ClusterCorrection& corr) {
  // Every protocol's F carries the same additive P/2 mid-period term
  // (Eq. 7/8/14 and the TripleBof extension), so the correction swaps it
  // for the blended eta * P uniformly.
  return expected_failure_cost(protocol, params, period) +
         (corr.loss_coefficient - 0.5) * period;
}

double waste_failure(Protocol protocol, const Parameters& params,
                     double period, const ClusterCorrection& corr) {
  const double fk = expected_failure_cost(protocol, params, period, corr);
  return std::max(0.0, corr.rate_factor * fk / params.mtbf);
}

double waste(Protocol protocol, const Parameters& params, double period,
             const ClusterCorrection& corr) {
  // Mirrors waste() in waste.cpp operation for operation so the identity
  // correction is bit-identical to the exponential model.
  const double ff = waste_fault_free(protocol, params, period);
  const double fail = waste_failure(protocol, params, period, corr);
  if (ff >= 1.0 || fail >= 1.0) return 1.0;
  const double total = 1.0 - (1.0 - fail) * (1.0 - ff);
  return std::clamp(total, 0.0, 1.0);
}

double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period, const WeibullFailures& failures) {
  failures.validate();
  if (failures.shape == 1.0) {
    return expected_failure_cost(protocol, params, period);
  }
  return expected_failure_cost(protocol, params, period,
                               cluster_correction(params, failures));
}

double waste_failure(Protocol protocol, const Parameters& params,
                     double period, const WeibullFailures& failures) {
  failures.validate();
  if (failures.shape == 1.0) return waste_failure(protocol, params, period);
  return waste_failure(protocol, params, period,
                       cluster_correction(params, failures));
}

double waste(Protocol protocol, const Parameters& params, double period,
             const WeibullFailures& failures) {
  failures.validate();
  if (failures.shape == 1.0) return waste(protocol, params, period);
  return waste(protocol, params, period, cluster_correction(params, failures));
}

double expected_makespan(Protocol protocol, const Parameters& params,
                         double period, double t_base,
                         const WeibullFailures& failures) {
  if (!(t_base >= 0.0)) {
    throw std::invalid_argument("expected_makespan: t_base must be >= 0");
  }
  const double w = waste(protocol, params, period, failures);
  if (w >= 1.0) return std::numeric_limits<double>::infinity();
  return t_base / (1.0 - w);
}

OptimalPeriod optimal_period_numeric(Protocol protocol,
                                     const Parameters& params,
                                     const WeibullFailures& failures) {
  params.validate();
  failures.validate();
  if (failures.shape == 1.0) return optimal_period_numeric(protocol, params);
  // The correction is P-independent: one renewal solve, then ~400 cheap
  // objective evaluations inside the scan + Brent loop.
  const auto corr = cluster_correction(params, failures);
  return optimal_period_numeric_objective(
      protocol, params,
      [&](double period) { return waste(protocol, params, period, corr); });
}

}  // namespace dckpt::model
