#include "model/dcp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/waste.hpp"

namespace dckpt::model {

void DcpSpec::validate() const {
  if (!std::isfinite(dirty_fraction) || dirty_fraction < 0.0 ||
      dirty_fraction > 1.0) {
    throw std::invalid_argument("DcpSpec: dirty_fraction must be in [0, 1]");
  }
  if (block_size == 0) {
    throw std::invalid_argument("DcpSpec: block_size must be > 0");
  }
  if (page_size == 0) {
    throw std::invalid_argument("DcpSpec: page_size must be > 0");
  }
  if (!std::isfinite(hash_overhead) || hash_overhead < 0.0) {
    throw std::invalid_argument(
        "DcpSpec: hash_overhead must be finite and >= 0");
  }
}

double block_dirty_fraction(const DcpSpec& spec) {
  spec.validate();
  // A block spanning c pages is dirty when any page changed; a sub-page
  // block inherits its page's dirtiness (c clamps to 1).
  const double c = std::max(1.0, static_cast<double>(spec.block_size) /
                                     static_cast<double>(spec.page_size));
  return 1.0 - std::pow(1.0 - spec.dirty_fraction, c);
}

double checkpoint_volume_multiplier(const DcpSpec& spec) {
  spec.validate();
  if (!spec.enabled()) return 1.0;
  const double k = static_cast<double>(spec.stack_size);
  const double db = block_dirty_fraction(spec);
  const double h = spec.hash_overhead;
  return (1.0 / k) * (1.0 + h) + (1.0 - 1.0 / k) * (db + h);
}

double recovery_multiplier(const DcpSpec& spec) {
  spec.validate();
  if (!spec.enabled()) return 1.0;
  const double k = static_cast<double>(spec.stack_size);
  return 1.0 + block_dirty_fraction(spec) * (k - 1.0) / 2.0;
}

double waste_with_dcp(Protocol protocol, const Parameters& params,
                      double period, const DcpSpec& spec) {
  spec.validate();
  if (!spec.enabled()) return waste(protocol, params, period);
  params.validate();
  const double m = checkpoint_volume_multiplier(spec);
  const double g = recovery_multiplier(spec);
  const auto transfer = effective_transfer(protocol, params);
  const double theta = transfer.theta;
  const double phi = transfer.phi;
  const double d = params.downtime;
  const double r = params.recovery();

  // WASTE_ff with the checkpoint parts scaled by m (the overlap overhead
  // phi rides inside part 2, so it scales with the transfer it paces).
  const double ff =
      (is_triple(protocol) ? 2.0 * phi : params.local_ckpt + phi) * m / period;

  // F closed forms (waste.cpp) with the part-length terms scaled by m and
  // the protocol's recovery transfers scaled by g; downtime and the P/2
  // positional term are volume-independent.
  double fail_cost = std::numeric_limits<double>::quiet_NaN();
  switch (protocol) {
    case Protocol::DoubleNbl:
      fail_cost = d + g * r + m * theta + period / 2.0;
      break;
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      fail_cost = d + 2.0 * g * r + m * (theta - phi) + period / 2.0;
      break;
    case Protocol::Triple:
      fail_cost = d + g * r + m * theta + period / 2.0;
      break;
    case Protocol::TripleBof:
      fail_cost = d + 3.0 * g * r +
                  m * (theta - 2.0 * phi + phi * theta / period) +
                  period / 2.0;
      break;
  }
  const double fail = fail_cost / params.mtbf;
  if (ff >= 1.0 || fail >= 1.0) return 1.0;
  const double total = 1.0 - (1.0 - fail) * (1.0 - ff);
  return std::clamp(total, 0.0, 1.0);
}

OptimalPeriod optimal_period_with_dcp(Protocol protocol,
                                      const Parameters& params,
                                      const DcpSpec& spec) {
  spec.validate();
  return optimal_period_numeric_objective(
      protocol, params, [&](double period) {
        return waste_with_dcp(protocol, params, period, spec);
      });
}

}  // namespace dckpt::model
