#include "model/efficiency.hpp"

#include <limits>
#include <stdexcept>

#include "model/risk.hpp"

namespace dckpt::model {

std::vector<ProtocolEvaluation> evaluate_protocols(
    const std::vector<Protocol>& protocols, const Parameters& params,
    double mission_time) {
  std::vector<ProtocolEvaluation> rows;
  rows.reserve(protocols.size());
  for (Protocol protocol : protocols) {
    ProtocolEvaluation row;
    row.protocol = protocol;
    row.optimum = optimal_period_closed_form(protocol, params);
    row.risk_window = risk_window(protocol, params);
    row.success_probability =
        success_probability(protocol, params, mission_time);
    rows.push_back(row);
  }
  return rows;
}

double waste_ratio(Protocol candidate, Protocol reference,
                   const Parameters& params) {
  const double ref = waste_at_optimal_period(reference, params);
  const double cand = waste_at_optimal_period(candidate, params);
  if (ref == 0.0) {
    return cand == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return cand / ref;
}

Protocol best_protocol_by_waste(const std::vector<Protocol>& protocols,
                                const Parameters& params) {
  if (protocols.empty()) {
    throw std::invalid_argument("best_protocol_by_waste: empty set");
  }
  Protocol best = protocols.front();
  double best_waste = waste_at_optimal_period(best, params);
  for (Protocol protocol : protocols) {
    const double w = waste_at_optimal_period(protocol, params);
    if (w < best_waste) {
      best_waste = w;
      best = protocol;
    }
  }
  return best;
}

Protocol best_protocol_by_risk(const std::vector<Protocol>& protocols,
                               const Parameters& params, double mission_time) {
  if (protocols.empty()) {
    throw std::invalid_argument("best_protocol_by_risk: empty set");
  }
  Protocol best = protocols.front();
  double best_p = success_probability(best, params, mission_time);
  for (Protocol protocol : protocols) {
    const double p = success_probability(protocol, params, mission_time);
    if (p > best_p) {
      best_p = p;
      best = protocol;
    }
  }
  return best;
}

}  // namespace dckpt::model
