// Uncoordinated checkpointing with message logging (extension).
//
// The paper's conclusion proposes combining in-memory buddy storage "with
// uncoordinated or hierarchical checkpointing protocols with message
// logging, in order to further reduce the waste due to failure recovery",
// citing the observation (intro, [5]) that uncoordinated protocols win by
// reducing the data re-executed at rollback: with logged messages only the
// *failed* node rolls back; the other n-1 keep working.
//
// First-order model in the paper's style:
//
//   WASTE = 1 - (1 - beta)(1 - WASTE_ff)(1 - F/(n M))
//
//   beta      message-logging overhead paid on all useful work (payload
//             copies, determinant logging)
//   WASTE_ff  (delta + phi)/P -- same buddy checkpoint cost per node
//   F/(n M)   failures still arrive every M seconds platform-wide, but
//             each one costs only ONE node's time (1/n of the platform),
//             F = D + R + theta + P/2 as for DoubleNBL.
//
// The optimal period is Young-like at the *node* MTBF scale:
// P* = sqrt(2 (delta + phi)(n M - D - R - theta)), typically sqrt(n) times
// the coordinated period. The model exposes the crossover MTBF below which
// paying beta beats global rollback -- the quantitative version of the
// paper's closing remark.
#pragma once

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct MessageLoggingParams {
  Parameters platform;   ///< same buddy-checkpoint hardware as the rest
  double logging_overhead = 0.05;  ///< beta in [0, 1)

  void validate() const;
};

/// WASTE_ff + per-node failure waste + logging overhead, composed.
double message_logging_waste(const MessageLoggingParams& params,
                             double period);

struct MessageLoggingOptimum {
  double period = 0.0;
  double waste = 0.0;
  bool clamped = false;
  bool feasible = true;
};

/// Closed-form optimal period (Young-like at the node-MTBF scale).
MessageLoggingOptimum optimal_message_logging_period(
    const MessageLoggingParams& params);

/// Platform MTBF below which uncoordinated+logging (at its optimum) beats
/// `coordinated` (at its optimum) on waste; found by bisection on M over
/// [lo, hi]. Returns +inf when logging wins everywhere in the bracket and
/// 0 when it never wins.
double logging_crossover_mtbf(const MessageLoggingParams& params,
                              Protocol coordinated, double lo = 10.0,
                              double hi = 7.0 * 86400.0);

}  // namespace dckpt::model
