#include "model/waste.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dckpt::model {

namespace {

void check_period(Protocol protocol, const Parameters& params, double period) {
  if (!std::isfinite(period)) {
    throw std::invalid_argument("waste: period must be finite");
  }
  const double lo = min_period(protocol, params);
  // Tolerate tiny numerical undershoot from optimizers.
  if (period < lo * (1.0 - 1e-12)) {
    throw std::invalid_argument("waste: period below min_period");
  }
}

}  // namespace

PeriodParts period_parts(Protocol protocol, const Parameters& params,
                         double period) {
  params.validate();
  check_period(protocol, params, period);
  const auto transfer = effective_transfer(protocol, params);
  PeriodParts parts;
  parts.part1 = is_triple(protocol) ? transfer.theta : params.local_ckpt;
  parts.part2 = transfer.theta;
  parts.part3 = std::max(0.0, period - parts.part1 - parts.part2);
  return parts;
}

double work_per_period(Protocol protocol, const Parameters& params,
                       double period) {
  const auto transfer = effective_transfer(protocol, params);
  if (is_triple(protocol)) return period - 2.0 * transfer.phi;
  return period - params.local_ckpt - transfer.phi;
}

ReExecution expected_reexecution(Protocol protocol, const Parameters& params,
                                 double period) {
  const auto parts = period_parts(protocol, params, period);
  const auto transfer = effective_transfer(protocol, params);
  const double theta = transfer.theta;
  const double phi = transfer.phi;
  const double delta = params.local_ckpt;
  const double sigma = parts.part3;
  ReExecution re;
  switch (protocol) {
    case Protocol::DoubleNbl:
      // Paper Sec. III-A: re-execution overlapped with re-receiving the
      // buddy's image (overhead phi spread over the first theta seconds).
      re.re1 = theta + sigma + delta / 2.0;
      re.re2 = theta + sigma + delta + theta / 2.0;
      re.re3 = theta + sigma / 2.0;
      break;
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      // Both images already delivered (blocking): re-execution runs at full
      // speed -- each RE drops the phi overlap overhead.
      re.re1 = theta + sigma + delta / 2.0 - phi;
      re.re2 = theta + sigma + delta + theta / 2.0 - phi;
      re.re3 = theta + sigma / 2.0 - phi;
      break;
    case Protocol::Triple:
      // Paper Sec. V-A.
      re.re1 = 2.0 * theta + sigma + theta / 2.0;
      re.re2 = 3.0 * theta / 2.0;
      re.re3 = 2.0 * theta + sigma / 2.0;
      break;
    case Protocol::TripleBof:
      // Our extension: all three recovery transfers blocking, re-execution at
      // full speed, so RE_i is exactly the lost work W_lost_i.
      re.re1 = (period - 2.0 * phi) + theta / 2.0;
      re.re2 = (theta - phi) + theta / 2.0;
      re.re3 = 2.0 * (theta - phi) + sigma / 2.0;
      break;
  }
  return re;
}

double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period) {
  params.validate();
  check_period(protocol, params, period);
  const auto transfer = effective_transfer(protocol, params);
  const double d = params.downtime;
  const double r = params.recovery();
  const double theta = transfer.theta;
  const double phi = transfer.phi;
  switch (protocol) {
    case Protocol::DoubleNbl:
      return d + r + theta + period / 2.0;  // Eq. (7)
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      return d + 2.0 * r + theta - phi + period / 2.0;  // Eq. (8)
    case Protocol::Triple:
      return d + r + theta + period / 2.0;  // Eq. (14)
    case Protocol::TripleBof:
      // Derived like Eq. (8) but with two extra blocking transfers and the
      // 2*phi overlapped overhead removed from the lost-work integral.
      return d + 3.0 * r + theta + period / 2.0 - 2.0 * phi +
             phi * theta / period;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double expected_failure_cost_from_parts(Protocol protocol,
                                        const Parameters& params,
                                        double period) {
  const auto parts = period_parts(protocol, params, period);
  const auto re = expected_reexecution(protocol, params, period);
  const double d = params.downtime;
  const double r = params.recovery();
  double recovery = r;
  if (protocol == Protocol::DoubleBof || protocol == Protocol::DoubleBlocking) {
    recovery = 2.0 * r;
  } else if (protocol == Protocol::TripleBof) {
    recovery = 3.0 * r;
  }
  return d + recovery +
         (parts.part1 * re.re1 + parts.part2 * re.re2 + parts.part3 * re.re3) /
             period;
}

double waste_fault_free(Protocol protocol, const Parameters& params,
                        double period) {
  params.validate();
  check_period(protocol, params, period);
  const auto transfer = effective_transfer(protocol, params);
  if (is_triple(protocol)) return 2.0 * transfer.phi / period;
  return (params.local_ckpt + transfer.phi) / period;
}

double waste_failure(Protocol protocol, const Parameters& params,
                     double period) {
  return expected_failure_cost(protocol, params, period) / params.mtbf;
}

double waste(Protocol protocol, const Parameters& params, double period) {
  const double ff = waste_fault_free(protocol, params, period);
  const double fail = waste_failure(protocol, params, period);
  if (ff >= 1.0 || fail >= 1.0) return 1.0;
  const double total = 1.0 - (1.0 - fail) * (1.0 - ff);  // Eq. (5)
  return std::clamp(total, 0.0, 1.0);
}

double expected_makespan(Protocol protocol, const Parameters& params,
                         double period, double t_base) {
  if (!(t_base >= 0.0)) {
    throw std::invalid_argument("expected_makespan: t_base must be >= 0");
  }
  const double w = waste(protocol, params, period);
  if (w >= 1.0) return std::numeric_limits<double>::infinity();
  return t_base / (1.0 - w);
}

}  // namespace dckpt::model
