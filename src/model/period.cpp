#include "model/period.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/waste.hpp"
#include "util/math.hpp"

namespace dckpt::model {

namespace {

/// Raw (unclamped) closed-form optimum; NaN when the argument of the square
/// root is negative (platform MTBF too small for the formula's domain).
double closed_form_raw(Protocol protocol, const Parameters& params) {
  const auto transfer = effective_transfer(protocol, params);
  const double d = params.downtime;
  const double r = params.recovery();
  const double theta = transfer.theta;
  const double phi = transfer.phi;
  const double delta = params.local_ckpt;
  const double m = params.mtbf;
  switch (protocol) {
    case Protocol::DoubleNbl:
      return std::sqrt(2.0 * (delta + phi) * (m - r - d - theta));
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      return std::sqrt(2.0 * (delta + phi) * (m - 2.0 * r - d - theta + phi));
    case Protocol::Triple:
    case Protocol::TripleBof:
      return 2.0 * std::sqrt(phi * (m - d - r - theta));
  }
  return std::nan("");
}

OptimalPeriod finalize_objective(Protocol protocol, const Parameters& params,
                                 double raw,
                                 const std::function<double(double)>& f) {
  OptimalPeriod result;
  result.raw = raw;
  const double lo = min_period(protocol, params);
  if (!std::isfinite(raw) || raw < lo) {
    result.period = lo;
    result.clamped = true;
  } else {
    result.period = raw;
  }
  result.waste = f(result.period);
  result.feasible = result.waste < 1.0;
  return result;
}

OptimalPeriod finalize(Protocol protocol, const Parameters& params,
                       double raw) {
  return finalize_objective(protocol, params, raw, [&](double period) {
    return waste(protocol, params, period);
  });
}

}  // namespace

OptimalPeriod optimal_period_closed_form(Protocol protocol,
                                         const Parameters& params) {
  params.validate();
  return finalize(protocol, params, closed_form_raw(protocol, params));
}

OptimalPeriod optimal_period_numeric(Protocol protocol,
                                     const Parameters& params) {
  params.validate();
  return optimal_period_numeric_objective(
      protocol, params,
      [&](double period) { return waste(protocol, params, period); });
}

OptimalPeriod optimal_period_numeric_objective(
    Protocol protocol, const Parameters& params,
    const std::function<double(double)>& objective) {
  params.validate();
  const double lo = min_period(protocol, params);
  // Upper bracket: generously beyond both the closed-form estimate and the
  // MTBF (waste grows once F(P) ~ M, so the optimum cannot sit far above M).
  const double guess = closed_form_raw(protocol, params);
  double hi = 4.0 * params.mtbf + 10.0 * lo;
  if (std::isfinite(guess)) hi = std::max(hi, 4.0 * guess);
  // waste() saturates at 1.0, so the objective has flat plateaus wherever the
  // platform is infeasible -- near lo (period barely above the checkpoint
  // cost) and for large P (failures dominate). Brent's golden-section steps
  // can stall on those plateaus and report a boundary, so first locate the
  // basin with a coarse log-spaced scan and hand Brent the bracketing
  // sub-interval around the best sample.
  constexpr int kScanPoints = 64;
  const double ratio = hi / lo;
  double best_x = lo;
  double best_f = objective(lo);
  double xs[kScanPoints + 1];
  for (int i = 0; i <= kScanPoints; ++i) {
    xs[i] = lo * std::pow(ratio, static_cast<double>(i) / kScanPoints);
    const double f = objective(xs[i]);
    if (f < best_f) {
      best_f = f;
      best_x = xs[i];
    }
  }
  double bracket_lo = lo;
  double bracket_hi = hi;
  for (int i = 0; i <= kScanPoints; ++i) {
    if (xs[i] == best_x) {
      bracket_lo = i > 0 ? xs[i - 1] : lo;
      bracket_hi = i < kScanPoints ? xs[i + 1] : hi;
      break;
    }
  }
  const auto brent =
      util::minimize_brent(objective, bracket_lo, bracket_hi, 1e-10, 300);
  OptimalPeriod result =
      finalize_objective(protocol, params,
                         objective(brent.x) <= best_f ? brent.x : best_x,
                         objective);
  // finalize() clamps; the optimizer result is already in-domain, but the
  // boundary optimum (P = lo) is common for TRIPLE at phi ~ 0.
  if (objective(lo) <= result.waste) {
    result.period = lo;
    result.raw = brent.x;
    result.clamped = true;
    result.waste = objective(lo);
    result.feasible = result.waste < 1.0;
  }
  return result;
}

double waste_at_optimal_period(Protocol protocol, const Parameters& params) {
  return optimal_period_closed_form(protocol, params).waste;
}

JointOptimum optimal_overhead_and_period(Protocol protocol,
                                         const Parameters& params,
                                         int grid_points) {
  params.validate();
  if (grid_points < 2) {
    throw std::invalid_argument("optimal_overhead_and_period: grid too small");
  }
  JointOptimum best;
  best.optimum.waste = 2.0;  // worse than any real waste
  const int first = params.alpha == 0.0 ? grid_points : 0;
  for (int i = first; i <= grid_points; ++i) {
    const double phi = params.remote_blocking * static_cast<double>(i) /
                       static_cast<double>(grid_points);
    const auto opt =
        optimal_period_closed_form(protocol, params.with_overhead(phi));
    if (opt.waste < best.optimum.waste) {
      best.overhead = phi;
      best.optimum = opt;
    }
  }
  return best;
}

}  // namespace dckpt::model
