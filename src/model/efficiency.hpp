// Cross-protocol comparison utilities: evaluate every protocol at its own
// optimal period and rank by waste or by success probability -- the queries
// behind the paper's Figures 5/8 (waste ratios) and the protocol-selection
// guidance in the conclusion.
#pragma once

#include <vector>

#include "model/parameters.hpp"
#include "model/period.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct ProtocolEvaluation {
  Protocol protocol = Protocol::DoubleNbl;
  OptimalPeriod optimum;        ///< period + waste at the optimum
  double risk_window = 0.0;     ///< exposure window length
  double success_probability = 0.0;  ///< for the given mission time
};

/// Evaluates `protocols` on `params`, each at its closed-form optimal
/// period; `mission_time` feeds the success-probability column.
std::vector<ProtocolEvaluation> evaluate_protocols(
    const std::vector<Protocol>& protocols, const Parameters& params,
    double mission_time);

/// Waste of `candidate` divided by waste of `reference`, both at their own
/// optimal periods (the paper's Fig. 5/8 y-axis). Returns +inf when the
/// reference waste is 0.
double waste_ratio(Protocol candidate, Protocol reference,
                   const Parameters& params);

/// Protocol with the smallest waste at its optimal period.
Protocol best_protocol_by_waste(const std::vector<Protocol>& protocols,
                                const Parameters& params);

/// Protocol with the highest success probability for `mission_time`.
Protocol best_protocol_by_risk(const std::vector<Protocol>& protocols,
                               const Parameters& params, double mission_time);

}  // namespace dckpt::model
