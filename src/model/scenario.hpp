// Evaluation scenarios (paper Table I) and the hardware reasoning behind
// them, so users can derive their own parameter sets from machine specs.
//
//   Scenario   D     delta   phi        R     alpha   n
//   Base       0     2 s     [0, 4]     4 s   10      324 x 32
//   Exa        60 s  30 s    [0, 60]    60 s  10      10^6
//
// Base reproduces Ni et al.'s setting: 512 MB per node, SSD-speed local
// checkpoint (~2 s), network upload ~4 s. Exa is the IESP "slim" exascale
// projection: 10^6 nodes, 64 GB/core-class memory per node behind a
// 1 TB/s/node network and 500 Gb/s local storage bus.
#pragma once

#include <string>
#include <vector>

#include "model/parameters.hpp"

namespace dckpt::model {

struct Scenario {
  std::string name;
  Parameters params;       ///< phi defaults to 0; sweep with with_overhead()
  double phi_max = 0.0;    ///< largest phi considered (= R in the paper)
  double default_mtbf = 0.0;  ///< M used where figures fix it (7 h)

  /// Parameters at a given overhead ratio phi/R in [0, 1].
  Parameters at_phi_ratio(double ratio) const;
};

/// Table I "Base".
Scenario base_scenario();

/// Table I "Exa".
Scenario exa_scenario();

/// All paper scenarios.
std::vector<Scenario> paper_scenarios();

/// Derivation helper: buddy-checkpoint parameters from machine capabilities.
struct HardwareSpec {
  double checkpoint_bytes = 512.0 * 1024 * 1024;  ///< image size per node
  double local_bandwidth = 256.0 * 1024 * 1024;   ///< bytes/s to local store
  double network_bandwidth = 128.0 * 1024 * 1024; ///< bytes/s node-to-node
  double downtime = 0.0;                          ///< D
  double alpha = 10.0;
  std::uint64_t nodes = 1024;
  double node_mtbf_years = 10.0;  ///< individual node MTBF

  /// delta = bytes/local_bw, R = bytes/net_bw, M = node_mtbf / n.
  Parameters derive() const;
};

}  // namespace dckpt::model
