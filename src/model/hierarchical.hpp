// Two-level (hierarchical) checkpointing model (extension).
//
// The paper's conclusion proposes combining in-memory buddy checkpointing
// with a slower protected tier. This module models exactly that:
//
//   Level 1  buddy protocol (any of the five), period P1: absorbs ordinary
//            node failures with the waste model of Sec. III/V.
//   Level 2  global checkpoint to stable storage every P2 seconds, blocking
//            cost C: absorbs *fatal* level-1 failures (a whole group's
//            copies lost), which now roll the application back to the last
//            global checkpoint instead of killing it.
//
// With rho = fatal_failure_rate(protocol, params) (Eq. 11/16's per-time
// hazard) the waste composes multiplicatively, in the same renewal-reward
// first-order style as the paper's Eq. 4-5:
//
//   WASTE = 1 - (1 - w1)(1 - C/P2)(1 - rho (D + R_g + P2/2))
//
// and the optimal level-2 period is Daly-like:  P2* = sqrt(2 C / rho).
// Because rho is tiny for sane platforms, P2* is hours-to-days: the stable
// storage sees a checkpoint rarely -- the scalability win of the hierarchy.
#pragma once

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct HierarchicalParams {
  Protocol protocol = Protocol::Triple;  ///< level-1 buddy protocol
  Parameters level1;                     ///< platform + overlap parameters
  double global_ckpt = 600.0;      ///< C: blocking global checkpoint [s]
  double global_recovery = 600.0;  ///< R_g: reload from stable storage [s]

  void validate() const;
};

struct HierarchicalEvaluation {
  double level1_period = 0.0;  ///< P1* (closed form, Sec. III-B/V-B)
  double level2_period = 0.0;  ///< P2* = sqrt(2 C / rho), clamped >= C
  double level1_waste = 0.0;   ///< w1 at P1*
  double level2_waste = 0.0;   ///< combined level-2 overhead factor
  double total_waste = 0.0;    ///< composed waste
  double fatal_rate = 0.0;     ///< rho
  bool feasible = true;
};

/// Waste of the two-level scheme at explicit periods (P2 >= C > 0).
double hierarchical_waste(const HierarchicalParams& params, double p1,
                          double p2);

/// Closed-form optimal pair (P1*, P2*) and the waste there.
HierarchicalEvaluation optimize_hierarchical(const HierarchicalParams& params);

/// Mean time between *unrecoverable* events without level 2 -- i.e. the
/// expected platform lifetime a single-level deployment would get before a
/// restart-from-scratch: 1 / rho.
double mean_time_between_fatal(Protocol protocol, const Parameters& params);

}  // namespace dckpt::model
