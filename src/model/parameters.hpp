// Platform/protocol parameter set (the paper's notation, Sec. II-III):
//
//   D      downtime: failure detection + replacement-node allocation [s]
//   delta  local checkpoint duration (double protocols' part 1) [s]
//   R      blocking remote transfer of one checkpoint image (= theta_min) [s]
//   alpha  overlap speedup factor (see OverlapModel)
//   phi    chosen computation overhead during an overlapped transfer,
//          phi in [0, R] [work units = s]
//   n      number of platform nodes (risk assessment)
//   mtbf   *platform* MTBF M [s]; individual-node MTBF is n * M
//
// Time units and work units coincide (unit application speed).
#pragma once

#include <cstdint>
#include <string>

#include "model/overlap.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct Parameters {
  double downtime = 0.0;          ///< D
  double local_ckpt = 0.0;        ///< delta
  double remote_blocking = 1.0;   ///< R = theta_min
  double alpha = 10.0;            ///< overlap speedup factor
  double overhead = 0.0;          ///< phi
  std::uint64_t nodes = 2;        ///< n
  double mtbf = 3600.0;           ///< platform MTBF M

  /// Throws std::invalid_argument with a precise message when any field is
  /// out of domain (e.g. phi outside [0, R], n < 2, non-finite values).
  void validate() const;

  /// Overlap law induced by (R, alpha).
  OverlapModel overlap() const { return OverlapModel(remote_blocking, alpha); }

  /// theta(phi) under the overlap law.
  double theta() const { return overlap().theta_of_phi(overhead); }

  /// Recovery time for the faulty node's own image: R = theta_min.
  double recovery() const noexcept { return remote_blocking; }

  /// Individual-node MTBF (M_ind = n * M) and failure rate lambda = 1/(n*M).
  double node_mtbf() const noexcept {
    return mtbf * static_cast<double>(nodes);
  }
  double lambda() const noexcept { return 1.0 / node_mtbf(); }

  /// Copy with a different phi (the evaluation sweeps phi at fixed platform).
  Parameters with_overhead(double phi) const {
    Parameters p = *this;
    p.overhead = phi;
    return p;
  }

  /// Copy with a different platform MTBF.
  Parameters with_mtbf(double m) const {
    Parameters p = *this;
    p.mtbf = m;
    return p;
  }

  std::string describe() const;
};

/// Shortest admissible period for `protocol` (sigma >= 0):
/// delta + theta for double protocols, 2 * theta for triples.
/// DoubleBlocking pins theta = phi = R regardless of `params.overhead`.
double min_period(Protocol protocol, const Parameters& params);

/// Effective (theta, phi) actually used by `protocol` in fault-free mode.
/// Identity for all protocols except DoubleBlocking, which forces the
/// blocking exchange (theta = phi = R).
struct EffectiveTransfer {
  double theta = 0.0;
  double phi = 0.0;
};
EffectiveTransfer effective_transfer(Protocol protocol,
                                     const Parameters& params);

}  // namespace dckpt::model
