// Centralized-stable-storage baselines (paper Sec. VII).
//
// Classic coordinated checkpointing writes the *whole application footprint*
// to remote stable storage every period. Young's and Daly's first-order
// optimal periods are
//
//   T_young = sqrt(2 M C) + C
//   T_daly  = sqrt(2 (M + D + R_c) C) + C
//
// with C the (global) checkpoint time. The paper contrasts these with buddy
// checkpointing, whose delta is a *single-node* local checkpoint, hence the
// much larger optimal period and smaller waste. We expose the same waste
// decomposition so all protocols can be compared on one axis; stable storage
// makes the fatal-failure probability 1 (never at risk) by construction.
#pragma once

#include <cstdint>

namespace dckpt::model {

struct CentralizedParams {
  double checkpoint = 60.0;  ///< C: time to write a global checkpoint [s]
  double recovery = 60.0;    ///< R_c: time to reload a global checkpoint [s]
  double downtime = 0.0;     ///< D
  double mtbf = 3600.0;      ///< platform MTBF M

  void validate() const;
};

/// Young's first-order optimal period.
double young_period(const CentralizedParams& params);

/// Daly's refined first-order optimal period.
double daly_period(const CentralizedParams& params);

/// Expected time lost per failure: D + R_c + P/2 (blocking checkpoint, no
/// overlap; same renewal argument as the paper's Eq. 6 with a single part).
double centralized_failure_cost(const CentralizedParams& params,
                                double period);

/// Product-form waste for blocking centralized checkpointing with period P:
/// 1 - (1 - (D + R_c + P/2)/M)(1 - C/P), clamped to [0, 1].
double centralized_waste(const CentralizedParams& params, double period);

/// Waste at Daly's period -- headline baseline number.
double centralized_waste_at_optimum(const CentralizedParams& params);

}  // namespace dckpt::model
