// Differential-checkpoint (dcp) extension of the waste model.
//
// With a dcp stack of size K, only every K-th commit exchanges full images;
// the K - 1 commits in between move content-hash block deltas. For a
// per-page dirty fraction d per period, a block spanning c >= 1 pages is
// dirty when any of its pages changed:
//
//   d_b = 1 - (1 - d)^max(1, B / page)        (block dirty fraction)
//
// Every commit additionally pays the hash scan h (a fraction of the full
// image volume), so the average per-commit volume relative to a full
// exchange is the effective dirty fraction
//
//   m = (1/K)(1 + h) + (1 - 1/K)(d_b + h)     (delta_eff = delta * m)
//
// which scales the checkpoint parts of the period (part 1 and part 2 both
// shrink to m times their full-image length). Recovery pays for the chain:
// a failure lands uniformly between full exchanges, so the expected replay
// walks (K - 1)/2 delta layers of relative volume d_b on top of the base:
//
//   g = 1 + d_b (K - 1) / 2                   (recovery multiplier)
//
// Composition with waste.hpp mirrors the simulator geometry exactly: the
// theta/phi/delta terms of WASTE_ff and of the F closed forms scale by m,
// the protocol's recovery transfers (R, 2R, 3R) scale by g, and the
// downtime and P/2 terms are untouched. stack_size == 0 disables the axis
// and reduces everything to the fail-stop model verbatim.
#pragma once

#include <cstdint>

#include "model/parameters.hpp"
#include "model/period.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Differential-checkpoint configuration (the analytic mirror of the
/// runtime's dcp_stack_size/dcp_block_size knobs plus the workload's dirty
/// fraction and the hash-scan overhead).
struct DcpSpec {
  double dirty_fraction = 1.0;    ///< d: per-page dirty probability / period
  std::size_t block_size = 4096;  ///< B: differential block size, bytes
  std::size_t page_size = 4096;   ///< memory page granularity, bytes
  std::uint64_t stack_size = 0;   ///< K: commits per full exchange; 0 = off
  double hash_overhead = 0.0;     ///< h: hash scan, fraction of full volume

  bool enabled() const noexcept { return stack_size > 0; }

  /// Throws std::invalid_argument when d is outside [0, 1], a size is 0,
  /// or h is negative/non-finite.
  void validate() const;
};

/// d_b: probability that a block is dirty, given the per-page dirty
/// fraction and the block/page size ratio.
double block_dirty_fraction(const DcpSpec& spec);

/// m: average per-commit exchange volume relative to a full image
/// (including the hash scan). 1 when the axis is disabled.
double checkpoint_volume_multiplier(const DcpSpec& spec);

/// g: expected recovery-transfer multiplier for replaying base + chain.
/// 1 when the axis is disabled.
double recovery_multiplier(const DcpSpec& spec);

/// Total waste with differential checkpointing, clamped to [0, 1]. Reduces
/// to waste() when the axis is disabled.
double waste_with_dcp(Protocol protocol, const Parameters& params,
                      double period, const DcpSpec& spec);

/// Numeric optimum of waste_with_dcp over the admissible period domain:
/// cheaper commits pull the optimal period down, costlier recovery pushes
/// it back up -- no closed form, so the period is certified numerically.
OptimalPeriod optimal_period_with_dcp(Protocol protocol,
                                      const Parameters& params,
                                      const DcpSpec& spec);

}  // namespace dckpt::model
