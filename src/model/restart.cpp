#include "model/restart.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "model/period.hpp"
#include "model/risk.hpp"
#include "model/waste.hpp"

namespace dckpt::model {

double expected_time_with_restarts(double makespan, double rho) {
  if (!(makespan >= 0.0) || !(rho >= 0.0)) {
    throw std::invalid_argument("expected_time_with_restarts: negative input");
  }
  if (rho == 0.0 || makespan == 0.0) return makespan;
  const double exponent = rho * makespan;
  if (exponent > 700.0) return std::numeric_limits<double>::infinity();
  // (e^(rho T) - 1)/rho; expm1 keeps accuracy when rho T is tiny.
  return std::expm1(exponent) / rho;
}

RestartEvaluation evaluate_with_restarts(Protocol protocol,
                                         const Parameters& params,
                                         double t_base) {
  if (!(t_base > 0.0)) {
    throw std::invalid_argument("evaluate_with_restarts: t_base must be > 0");
  }
  RestartEvaluation eval;
  const auto opt = optimal_period_closed_form(protocol, params);
  eval.period = opt.period;
  eval.fatal_rate = fatal_failure_rate(protocol, params);
  if (!opt.feasible) {
    eval.feasible = false;
    eval.makespan = std::numeric_limits<double>::infinity();
    eval.expected_total = std::numeric_limits<double>::infinity();
    eval.effective_waste = 1.0;
    eval.attempts = std::numeric_limits<double>::infinity();
    return eval;
  }
  eval.makespan = expected_makespan(protocol, params, opt.period, t_base);
  eval.expected_total =
      expected_time_with_restarts(eval.makespan, eval.fatal_rate);
  eval.attempts = std::exp(
      std::min(700.0, eval.fatal_rate * eval.makespan));
  eval.effective_waste =
      std::isinf(eval.expected_total)
          ? 1.0
          : 1.0 - t_base / eval.expected_total;
  eval.feasible = eval.effective_waste < 1.0;
  return eval;
}

Protocol best_protocol_by_effective_waste(
    const std::vector<Protocol>& protocols, const Parameters& params,
    double t_base) {
  if (protocols.empty()) {
    throw std::invalid_argument("best_protocol_by_effective_waste: empty set");
  }
  Protocol best = protocols.front();
  double best_waste = evaluate_with_restarts(best, params, t_base)
                          .effective_waste;
  for (Protocol protocol : protocols) {
    const double w =
        evaluate_with_restarts(protocol, params, t_base).effective_waste;
    if (w < best_waste) {
      best_waste = w;
      best = protocol;
    }
  }
  return best;
}

}  // namespace dckpt::model
