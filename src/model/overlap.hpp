// The paper's overlap model (Sec. II).
//
// A remote checkpoint transfer can be stretched: sending at full network
// speed takes theta_min seconds and blocks computation entirely
// (overhead phi = theta_min); slowing the transfer down frees cycles for the
// application. The paper posits a linear law
//
//     theta(phi) = theta_min + alpha * (theta_min - phi),   phi in [0, theta_min]
//
// so full overlap (phi = 0) is reached at theta_max = (1 + alpha) * theta_min.
// alpha measures how fast overhead decays as the transfer is stretched; the
// paper uses alpha = 10 ("conservative" communication-to-computation ratio).
#pragma once

namespace dckpt::model {

class OverlapModel {
 public:
  /// theta_min: blocking transfer duration (the paper's R). alpha >= 0.
  OverlapModel(double theta_min, double alpha);

  double theta_min() const noexcept { return theta_min_; }
  double alpha() const noexcept { return alpha_; }

  /// Longest useful transfer duration: theta at which phi reaches 0.
  double theta_max() const noexcept { return (1.0 + alpha_) * theta_min_; }

  /// Transfer duration that achieves computation overhead `phi`.
  /// Requires phi in [0, theta_min].
  double theta_of_phi(double phi) const;

  /// Inverse map: overhead produced by a transfer stretched to `theta`.
  /// Requires theta in [theta_min, theta_max] (alpha > 0).
  double phi_of_theta(double theta) const;

  /// Fraction of full application speed sustained during a transfer of
  /// duration theta(phi): (theta - phi) / theta.
  double work_rate_during_transfer(double phi) const;

 private:
  double theta_min_;
  double alpha_;
};

}  // namespace dckpt::model
