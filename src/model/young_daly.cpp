#include "model/young_daly.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dckpt::model {

void CentralizedParams::validate() const {
  const bool ok = std::isfinite(checkpoint) && checkpoint > 0.0 &&
                  std::isfinite(recovery) && recovery >= 0.0 &&
                  std::isfinite(downtime) && downtime >= 0.0 &&
                  std::isfinite(mtbf) && mtbf > 0.0;
  if (!ok) throw std::invalid_argument("CentralizedParams: out of domain");
}

double young_period(const CentralizedParams& params) {
  params.validate();
  return std::sqrt(2.0 * params.mtbf * params.checkpoint) + params.checkpoint;
}

double daly_period(const CentralizedParams& params) {
  params.validate();
  return std::sqrt(2.0 * (params.mtbf + params.downtime + params.recovery) *
                   params.checkpoint) +
         params.checkpoint;
}

double centralized_failure_cost(const CentralizedParams& params,
                                double period) {
  params.validate();
  if (!(period > 0.0)) {
    throw std::invalid_argument("centralized_failure_cost: period <= 0");
  }
  return params.downtime + params.recovery + period / 2.0;
}

double centralized_waste(const CentralizedParams& params, double period) {
  params.validate();
  if (!(period >= params.checkpoint)) {
    throw std::invalid_argument("centralized_waste: period < checkpoint");
  }
  const double ff = params.checkpoint / period;
  const double fail = centralized_failure_cost(params, period) / params.mtbf;
  if (ff >= 1.0 || fail >= 1.0) return 1.0;
  return std::clamp(1.0 - (1.0 - fail) * (1.0 - ff), 0.0, 1.0);
}

double centralized_waste_at_optimum(const CentralizedParams& params) {
  const double period = std::max(daly_period(params), params.checkpoint);
  return centralized_waste(params, period);
}

}  // namespace dckpt::model
