#include "model/parameters.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dckpt::model {

namespace {

void check(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("Parameters: " + message);
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void Parameters::validate() const {
  check(finite_nonneg(downtime), "downtime (D) must be finite and >= 0");
  check(finite_nonneg(local_ckpt), "local_ckpt (delta) must be >= 0");
  check(std::isfinite(remote_blocking) && remote_blocking > 0.0,
        "remote_blocking (R) must be > 0");
  check(finite_nonneg(alpha), "alpha must be >= 0");
  check(finite_nonneg(overhead), "overhead (phi) must be >= 0");
  check(overhead <= remote_blocking, "overhead (phi) must be <= R");
  check(nodes >= 2, "nodes (n) must be >= 2");
  check(std::isfinite(mtbf) && mtbf > 0.0, "mtbf (M) must be > 0");
}

std::string Parameters::describe() const {
  std::ostringstream out;
  out << "D=" << downtime << "s delta=" << local_ckpt
      << "s R=" << remote_blocking << "s alpha=" << alpha
      << " phi=" << overhead << "s n=" << nodes << " M=" << mtbf << "s";
  return out.str();
}

double min_period(Protocol protocol, const Parameters& params) {
  const auto transfer = effective_transfer(protocol, params);
  if (is_triple(protocol)) return 2.0 * transfer.theta;
  return params.local_ckpt + transfer.theta;
}

EffectiveTransfer effective_transfer(Protocol protocol,
                                     const Parameters& params) {
  if (protocol == Protocol::DoubleBlocking) {
    return {params.remote_blocking, params.remote_blocking};
  }
  return {params.theta(), params.overhead};
}

}  // namespace dckpt::model
