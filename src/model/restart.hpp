// Expected completion time under fatal failures (extension).
//
// The paper evaluates performance (waste) and risk (success probability)
// as separate criteria. For job-level planning the two combine naturally:
// a fatal failure forces a restart from scratch, so the *expected* wall
// clock to finish is
//
//   E[T_total] = (e^(rho T) - 1) / rho
//
// for a run of failure-free-makespan T under fatal failures arriving as a
// Poisson process of rate rho = fatal_failure_rate(protocol, params)
// (memoryless restarts; standard renewal result, exact when the fatal
// hazard is constant -- which is the regime of Eq. 11/16). The *effective
// waste* folds performance and risk into one number:
//
//   WASTE_eff = 1 - t_base / E[T_total]
//
// which lets DoubleNBL / DoubleBoF / Triple be ranked on a single axis --
// the comparison the paper's conclusion calls for.
#pragma once

#include <vector>

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

struct RestartEvaluation {
  double period = 0.0;            ///< checkpoint period used (optimal)
  double makespan = 0.0;          ///< failure-free-of-fatal makespan T
  double fatal_rate = 0.0;        ///< rho, fatal failures per second
  double expected_total = 0.0;    ///< E[T_total] including restarts
  double effective_waste = 0.0;   ///< 1 - t_base / E[T_total]
  double attempts = 0.0;          ///< expected number of attempts e^(rho T)
  bool feasible = true;           ///< false when no progress is possible
};

/// Expected total time (including restarts) to complete a run whose
/// fatal-free duration is `makespan`, under fatal rate `rho`.
double expected_time_with_restarts(double makespan, double rho);

/// Full evaluation of `protocol` on `params` for an application of
/// `t_base` seconds of work, at the closed-form optimal period.
RestartEvaluation evaluate_with_restarts(Protocol protocol,
                                         const Parameters& params,
                                         double t_base);

/// The protocol minimizing the effective waste (single-axis ranking).
Protocol best_protocol_by_effective_waste(
    const std::vector<Protocol>& protocols, const Parameters& params,
    double t_base);

}  // namespace dckpt::model
