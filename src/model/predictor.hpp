// Fault-prediction extension of the waste model (arXiv:1207.6936 /
// arXiv:1302.4558): a predictor with precision p and recall r announces a
// fraction r of failures ahead of time; every alarm (true or false) triggers
// a blocking proactive checkpoint of cost C_p.
//
// A true alarm leads its failure by a uniform draw in (0, w) when the
// prediction window w is positive, and by exactly C_p when w == 0 (the
// just-in-time limit). Only alarms whose lead is at least C_p actually save
// the in-progress work -- the proactive checkpoint must complete before the
// failure lands -- so the *handled* recall is
//
//   r_t = r * q,   q = 1             when w == 0
//                  q = max(0, w - C_p) / w  otherwise.
//
// First-order composition with the fail-stop waste W0(P) of waste.hpp:
//
//   W_pred(P) = 1 - (1 - W0(P; M/(1 - r_t)))
//                   (1 - lambda (r/p) C_p)
//                   (1 - lambda r_t (D + R_rb + E[residual]))
//   E[residual] = (w - C_p)/2 when w > 0, else 0
//
// The first factor is the fail-stop waste at the *effective* MTBF
// M/(1 - r_t): the failures the predictor handles no longer cost a period
// rollback, so the rollback-bearing failure rate shrinks to lambda(1 - r_t)
// -- which is also why the optimal period grows like 1/sqrt(1 - r_t), the
// papers' headline closed form. The second factor charges every alarm
// (true alarms arrive at lambda r; precision p means a fraction (1-p) of
// all alarms are false, so the total alarm rate is lambda r / p) its
// proactive checkpoint C_p. The third factor charges each handled failure
// its unavoidable downtime D, recovery transfer R_rb (the same
// protocol-dependent multiple of R a fail-stop rollback pays) and the
// expected work completed after the proactive commit and lost anyway
// (uniform lead in (C_p, w) leaves (w - C_p)/2 on average; zero in the
// just-in-time limit).
//
// Deliberately neglected, mirroring the first-order fail-stop model:
// alarm/failure interactions (an alarm landing during repair is dropped),
// the skip-if-just-committed optimization, and degraded-rate re-execution
// after a predicted failure.
#pragma once

#include "model/parameters.hpp"
#include "model/period.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Fault-predictor configuration of the waste model (the analytic mirror of
/// the simulator's pred_precision/pred_recall/pred_window/proactive_cost
/// knobs).
struct PredictorSpec {
  double precision = 1.0;      ///< p: fraction of alarms that are true
  double recall = 0.0;         ///< r: fraction of failures predicted
  double window = 0.0;         ///< w: alarm lead-time window width, s
  double proactive_cost = 0.0; ///< C_p: blocking proactive checkpoint, s

  /// Throws std::invalid_argument on recall/precision outside [0, 1],
  /// precision == 0 with recall > 0, or non-finite/negative window/cost.
  void validate() const;
};

/// Handled recall r_t = r * q: the fraction of failures whose alarm leads by
/// at least C_p, so the proactive checkpoint completes before the failure.
double effective_recall(const PredictorSpec& spec);

/// Total waste with fault prediction and proactive checkpoints, clamped to
/// [0, 1]; returns 1 when any factor saturates. Reduces to waste() when
/// spec.recall == 0.
double waste_with_predictor(Protocol protocol, const Parameters& params,
                            double period, const PredictorSpec& spec);

/// Numeric optimum of waste_with_predictor over the admissible period
/// domain (Brent scan via optimal_period_numeric_objective). Tracks the
/// papers' T_opt ~ T_opt(0) / sqrt(1 - r_t) scaling: handled failures stop
/// paying rollbacks, so longer periods become affordable.
OptimalPeriod optimal_period_with_predictor(Protocol protocol,
                                            const Parameters& params,
                                            const PredictorSpec& spec);

}  // namespace dckpt::model
