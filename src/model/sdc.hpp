// Silent-error (SDC) extension of the waste model: verified checkpoints.
//
// Every k periods the application blocks for a verification of cost V; a
// silent strike (platform rate lambda_s) is caught by the next verification
// and rolled back to the newest checkpoint committed before the strike.
// First-order composition with the fail-stop waste W0(P) of waste.hpp:
//
//   W_sdc(P) = 1 - (1 - W0(P)) (1 - V/(kP)) (1 - lambda_s L(P))   (Sec. 8)
//   L(P)     = R_rb + (k+1) P / 2
//
// The verification term V/(kP) is the fraction of each k-period interval
// spent verifying. The strike-loss term: a strike lands uniformly in the
// interval [0, kP) between verifications; detection waits until its end, and
// the rollback target is the commit at the start of the strike's period
// (floor(s/P) * P), so the expected re-executed span is
// E[kP - floor(s/P) P] = (k+1) P / 2, plus the recovery transfer R_rb (the
// same protocol-dependent multiple of R the fail-stop rollback pays).
//
// Deliberately neglected, mirroring the first-order fail-stop model:
// strike/failure interactions, degraded-rate re-execution after a verified
// rollback, and retention-depth exhaustion (the model assumes keep_last is
// large enough that a clean rung always exists; the simulator's fatal-accept
// path covers the complement).
#pragma once

#include <cstdint>

#include "model/parameters.hpp"
#include "model/period.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Verified-checkpoint configuration of the SDC waste model (the analytic
/// mirror of the simulator's sdc_rate/verify_cost/verify_every knobs).
struct SdcSpec {
  double rate = 0.0;               ///< lambda_s: platform strike rate, 1/s
  double verify_cost = 0.0;        ///< V: blocking verification time, s
  std::uint64_t verify_every = 1;  ///< k: periods per verification

  /// Throws std::invalid_argument on non-finite/negative rate or cost, or
  /// verify_every == 0.
  void validate() const;
};

/// Recovery transfer a verified rollback pays: the same protocol-dependent
/// multiple of R that a fail-stop rollback incurs (R for the overlapped
/// protocols, 2R / 3R for the blocking-on-failure variants).
double sdc_recovery_cost(Protocol protocol, const Parameters& params);

/// Total waste with silent errors and verified checkpoints, clamped to
/// [0, 1]; returns 1 when any factor saturates (the platform cannot
/// progress). Reduces to waste() when spec.rate == 0 && spec.verify_cost == 0.
double waste_with_sdc(Protocol protocol, const Parameters& params,
                      double period, const SdcSpec& spec);

/// Numeric optimum of waste_with_sdc over the admissible period domain
/// (Brent scan via optimal_period_numeric_objective). The verification term
/// pushes the optimum above the fail-stop one; the strike-loss term pushes
/// it back down -- no closed form, so the period is certified numerically.
OptimalPeriod optimal_period_with_sdc(Protocol protocol,
                                      const Parameters& params,
                                      const SdcSpec& spec);

}  // namespace dckpt::model
