// Waste model (paper Sec. III and V).
//
// For a period P, the expected fraction of resources doing no useful work is
//
//   WASTE(P) = 1 - (1 - WASTE_fail)(1 - WASTE_ff)               (Eq. 4-5)
//   WASTE_ff   = (delta + phi) / P        (double protocols)
//              = 2 phi / P                (triple protocols)
//   WASTE_fail = F(P) / M
//
// where F is the expected time lost per failure, computed by conditioning on
// which of the three parts of the period the failure strikes (Eq. 6 / 13):
//
//   F = D + recovery + (len1 * RE1 + len2 * RE2 + len3 * RE3) / P
//
// Closed forms (validated by unit tests against the RE decomposition):
//
//   F_nbl = D + R + theta + P/2                                  (Eq. 7)
//   F_bof = D + 2R + theta - phi + P/2                           (Eq. 8)
//   F_tri = D + R + theta + P/2                                  (Eq. 14)
//
// DoubleBlocking is DoubleBof evaluated at the blocking point
// (theta = phi = R). TripleBof is our extension: add the two blocking
// replacement transfers (2R) and drop the 2*phi overlapped re-execution
// overhead, mirroring how the paper derives BOF from NBL.
#pragma once

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Lengths of the three parts of the period for `protocol` with period `P`.
/// Throws if P < min_period(protocol, params).
struct PeriodParts {
  double part1 = 0.0;  ///< delta (double) or theta (triple)
  double part2 = 0.0;  ///< theta
  double part3 = 0.0;  ///< sigma = P - part1 - part2
};
PeriodParts period_parts(Protocol protocol, const Parameters& params,
                         double period);

/// Work accomplished per fault-free period: W = P - delta - phi (double),
/// P - 2 phi (triple), P - delta - R (DoubleBlocking).
double work_per_period(Protocol protocol, const Parameters& params,
                       double period);

/// Expected re-execution times RE_1..RE_3 conditioned on the failure
/// striking part 1, 2 or 3 (exposed for unit testing the F closed forms).
struct ReExecution {
  double re1 = 0.0;
  double re2 = 0.0;
  double re3 = 0.0;
};
ReExecution expected_reexecution(Protocol protocol, const Parameters& params,
                                 double period);

/// Expected total time lost per failure, F(P) (closed form).
double expected_failure_cost(Protocol protocol, const Parameters& params,
                             double period);

/// Same value computed from the RE decomposition (Eq. 6/13); used by tests
/// to certify the closed form.
double expected_failure_cost_from_parts(Protocol protocol,
                                        const Parameters& params,
                                        double period);

/// Fault-free waste WASTE_ff(P).
double waste_fault_free(Protocol protocol, const Parameters& params,
                        double period);

/// Failure-induced waste WASTE_fail(P) = F(P) / M.
double waste_failure(Protocol protocol, const Parameters& params,
                     double period);

/// Total waste by the product composition (Eq. 5), clamped to [0, 1].
/// Returns 1 when the platform cannot progress (F >= M or WASTE_ff >= 1).
double waste(Protocol protocol, const Parameters& params, double period);

/// Expected makespan for an application of fault-free work `t_base`:
/// T = t_base / (1 - WASTE). Returns +inf when WASTE >= 1.
double expected_makespan(Protocol protocol, const Parameters& params,
                         double period, double t_base);

}  // namespace dckpt::model
