#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/sdc.hpp"
#include "model/waste.hpp"

namespace dckpt::model {

void PredictorSpec::validate() const {
  if (!std::isfinite(recall) || recall < 0.0 || recall > 1.0) {
    throw std::invalid_argument(
        "PredictorSpec: recall must be finite and in [0, 1]");
  }
  if (!std::isfinite(precision) || precision < 0.0 || precision > 1.0) {
    throw std::invalid_argument(
        "PredictorSpec: precision must be finite and in [0, 1]");
  }
  if (recall > 0.0 && !(precision > 0.0)) {
    throw std::invalid_argument(
        "PredictorSpec: prediction requires precision > 0");
  }
  if (!std::isfinite(window) || window < 0.0) {
    throw std::invalid_argument(
        "PredictorSpec: window must be finite and >= 0");
  }
  if (!std::isfinite(proactive_cost) || proactive_cost < 0.0) {
    throw std::invalid_argument(
        "PredictorSpec: proactive_cost must be finite and >= 0");
  }
}

double effective_recall(const PredictorSpec& spec) {
  if (spec.recall <= 0.0) return 0.0;
  if (spec.window <= 0.0) return spec.recall;  // just-in-time limit
  const double usable =
      std::max(0.0, spec.window - spec.proactive_cost) / spec.window;
  return spec.recall * usable;
}

double waste_with_predictor(Protocol protocol, const Parameters& params,
                            double period, const PredictorSpec& spec) {
  spec.validate();
  if (spec.recall <= 0.0) return waste(protocol, params, period);
  const double r_t = effective_recall(spec);
  // Handled failures stop paying rollbacks, so the rollback-bearing rate
  // shrinks to lambda (1 - r_t): fail-stop waste at the effective MTBF
  // M / (1 - r_t). A perfect predictor (r_t = 1) leaves a vanishing
  // unpredicted rate; cap the scaling rather than feeding an infinite MTBF
  // through Parameters::validate.
  const double survivor = std::max(1.0 - r_t, 1e-12);
  const double base =
      waste(protocol, params.with_mtbf(params.mtbf / survivor), period);
  if (base >= 1.0) return 1.0;
  const double lambda = 1.0 / params.mtbf;
  const double alarm_fraction =
      lambda * (spec.recall / spec.precision) * spec.proactive_cost;
  if (alarm_fraction >= 1.0) return 1.0;
  const double residual =
      spec.window > 0.0 ? (spec.window - spec.proactive_cost) / 2.0 : 0.0;
  const double handled_loss = params.downtime +
                              sdc_recovery_cost(protocol, params) +
                              std::max(residual, 0.0);
  const double handled_fraction = lambda * r_t * handled_loss;
  if (handled_fraction >= 1.0) return 1.0;
  const double w = 1.0 - (1.0 - base) * (1.0 - alarm_fraction) *
                             (1.0 - handled_fraction);
  return w < 0.0 ? 0.0 : (w > 1.0 ? 1.0 : w);
}

OptimalPeriod optimal_period_with_predictor(Protocol protocol,
                                            const Parameters& params,
                                            const PredictorSpec& spec) {
  spec.validate();
  return optimal_period_numeric_objective(
      protocol, params,
      [&](double period) {
        return waste_with_predictor(protocol, params, period, spec);
      });
}

}  // namespace dckpt::model
