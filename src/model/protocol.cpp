#include "model/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace dckpt::model {

std::optional<Protocol> protocol_from_name(std::string_view name) noexcept {
  std::string lowered(name);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  for (Protocol protocol : kAllProtocols) {
    std::string candidate(protocol_name(protocol));
    std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (candidate == lowered) return protocol;
  }
  return std::nullopt;
}

Protocol parse_protocol_name(const std::string& name) {
  if (const auto protocol = protocol_from_name(name)) return *protocol;
  std::string valid;
  for (Protocol protocol : kAllProtocols) {
    if (!valid.empty()) valid += "|";
    valid += std::string(protocol_name(protocol));
  }
  throw std::invalid_argument("unknown protocol '" + name + "' (one of " +
                              valid + ", case-insensitive)");
}

}  // namespace dckpt::model
