// Risk model (paper Sec. III-C and V-C).
//
// In-memory checkpoint storage is not stable storage: after a failure of
// node p, the application cannot survive a failure of p's buddy until p has
// (a) recovered and (b) re-received a replica of the buddy's image. The
// length of that exposure window is
//
//   Risk_nbl    = D + R + theta          (buddy image re-sent overlapped)
//   Risk_bof    = D + 2R                 (both images blocking)
//   Risk_tri    = D + R + 2*theta        (two overlapped buddy images)
//   Risk_tribof = D + 3R                 (Sec. IV, blocking triple variant)
//
// With per-node failure rate lambda = 1/(nM) and total execution time T, the
// first-order fatal-failure probabilities per group give (Eq. 11, 12, 16):
//
//   P_double = (1 - 2 lambda^2 T Risk)^(n/2)
//   P_triple = (1 - 6 lambda^3 T Risk^2)^(n/3)
//   P_base   = (1 - lambda T_base)^n     (no checkpointing at all)
//
// Note: the paper fixes [1]'s missing factor 2 in P_double.
#pragma once

#include <cstdint>

#include "model/parameters.hpp"
#include "model/protocol.hpp"

namespace dckpt::model {

/// Exposure-window length after a single failure.
double risk_window(Protocol protocol, const Parameters& params);

/// Success probability of an execution of expected duration
/// `execution_time` (the paper also applies this to whole platform
/// exploitation periods). Dispatches to the pair/triple formula.
double success_probability(Protocol protocol, const Parameters& params,
                           double execution_time);

/// Eq. (11): pair-based protocols, explicit risk window.
double success_probability_double(double lambda, double execution_time,
                                  double risk, std::uint64_t nodes);

/// Eq. (16): triple-based protocols, explicit risk window.
double success_probability_triple(double lambda, double execution_time,
                                  double risk, std::uint64_t nodes);

/// Eq. (12): probability that an unprotected run of length t_base finishes
/// before any node fails.
double success_probability_no_checkpoint(double lambda, double t_base,
                                         std::uint64_t nodes);

/// Expected number of fatal failures per unit time (hazard of the whole
/// application); useful to compare exposure across protocols without fixing
/// an execution length.
double fatal_failure_rate(Protocol protocol, const Parameters& params);

}  // namespace dckpt::model
