// Recovery paths: rebuild a failed node's state from the surviving replicas.
//
// After node p fails, its replacement must (paper Sec. II/IV):
//   1. fetch p's own committed image (from the buddy that stores it) and
//      restore it -- recover_node();
//   2. re-replicate the images p was storing for its buddies, so a later
//      buddy failure stays survivable -- restore_replicas().
// Step 2 is exactly what the risk window measures: until it completes, the
// group cannot take another hit.
//
// Stores are addressed through a span of pointers indexed by node id, so
// callers can keep BuddyStores wherever they live (test vectors, runtime
// workers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/ring.hpp"

namespace dckpt::ckpt {

struct RecoveryReport {
  std::uint64_t node = 0;          ///< recovered node
  std::uint64_t source = 0;        ///< node that supplied the image
  std::uint64_t version = 0;       ///< committed version restored
  bool hash_verified = false;      ///< content hash matched
};

/// Finds the committed image of `node` on one of its group peers. Throws
/// std::runtime_error when no surviving replica exists (a fatal failure).
const BuddyStore& locate_replica(std::uint64_t node,
                                 const GroupAssignment& groups,
                                 std::span<BuddyStore* const> stores);

/// Restores `node`'s memory from the surviving replica and verifies the
/// content hash against `expected_hash`. Throws std::runtime_error on fatal
/// loss or hash mismatch.
RecoveryReport recover_node(std::uint64_t node, const GroupAssignment& groups,
                            std::span<BuddyStore* const> stores,
                            PageStore& memory, std::uint64_t expected_hash);

/// Step 2: re-files into `node`'s (replacement) storage the committed images
/// it was holding for its peers -- and, for pair topologies, the node's own
/// local copy -- fetched from the peers' surviving copies. Returns how many
/// images were restored.
std::size_t restore_replicas(std::uint64_t node, const GroupAssignment& groups,
                             std::span<BuddyStore* const> stores);

}  // namespace dckpt::ckpt
