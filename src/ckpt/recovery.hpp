// Recovery paths: rebuild a failed node's state from the surviving replicas.
//
// After node p fails, its replacement must (paper Sec. II/IV):
//   1. fetch p's own committed image from a surviving replica and restore
//      it -- select_replica()/recover_node();
//   2. re-replicate the images p was storing for its buddies, so a later
//      buddy failure stays survivable -- restore_replicas().
// Step 2 is exactly what the risk window measures: until it completes, the
// group cannot take another hit.
//
// Every restore point verifies the image's content hash: a corrupt or torn
// replica is *skipped*, not restored, and the ladder falls through to the
// next surviving copy -- the local copy first for pairs, then the preferred
// buddy, then (triples) the secondary. Outcomes are typed, never thrown:
// exhausting the ladder is a normal (degraded-mode) result the runtimes
// account for, not an exception a campaign has to string-match.
//
// Stores are addressed through a span of pointers indexed by node id, so
// callers can keep BuddyStores wherever they live (test vectors, runtime
// workers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/ring.hpp"

namespace dckpt::ckpt {

/// How a replica lookup ended.
enum class RecoveryStatus {
  Ok,         ///< first surviving candidate verified and was used
  FailedOver, ///< a corrupt/torn copy was skipped; a later candidate served
  Exhausted,  ///< no surviving clean replica -- data loss (degraded mode)
};

struct RecoveryReport {
  std::uint64_t node = 0;      ///< recovered node
  std::uint64_t source = 0;    ///< node that supplied the image
  std::uint64_t version = 0;   ///< committed version restored
  bool hash_verified = false;  ///< content hash matched (always, on success)
};

/// Result of walking the replica ladder for one node.
struct RecoveryOutcome {
  RecoveryStatus status = RecoveryStatus::Exhausted;
  RecoveryReport report;            ///< meaningful unless Exhausted
  std::optional<Snapshot> image;    ///< the verified image, unless Exhausted
  std::size_t corrupt_skipped = 0;  ///< replicas rejected by the hash check
  std::size_t candidates_tried = 0; ///< replicas examined (present images)
  std::size_t torn_skipped = 0;     ///< rungs rejected for a torn dcp layer
  std::size_t replayed_layers = 0;  ///< dcp layers replayed on success

  bool ok() const noexcept { return status != RecoveryStatus::Exhausted; }
};

/// Walks `node`'s replica ladder -- pairs: local copy then preferred buddy;
/// triples: preferred then secondary buddy -- verifying each present image
/// against `expected_hash` and returning the first clean one. Corrupt or
/// torn images are counted and skipped. Never throws on data loss; throws
/// std::invalid_argument only on a malformed directory.
///
/// When a rung carries a differential chain (dcp), the rung's image is the
/// replay base + every chained layer, and the rung is rejected -- one
/// corrupt_skipped, like a damaged full image -- when the base no longer
/// hashes to the oldest layer's recorded base_hash (corrupt base), any
/// layer fails its self hash (torn layer; additionally counted in
/// torn_skipped), or the replayed tip misses `expected_hash`.
RecoveryOutcome select_replica(std::uint64_t node,
                               const GroupAssignment& groups,
                               std::span<BuddyStore* const> stores,
                               std::uint64_t expected_hash);

/// select_replica() plus the restore into `memory` on success.
RecoveryOutcome recover_node(std::uint64_t node, const GroupAssignment& groups,
                             std::span<BuddyStore* const> stores,
                             PageStore& memory, std::uint64_t expected_hash);

/// Result of re-filling a replacement node's buddy storage.
struct ReplicationOutcome {
  std::size_t restored = 0;         ///< images re-filed into the store
  std::size_t corrupt_skipped = 0;  ///< source copies rejected by the hash
  std::size_t unavailable = 0;      ///< owners with no clean surviving copy
  std::size_t chains_replayed = 0;  ///< sources flattened from a dcp chain
  std::size_t layers_replayed = 0;  ///< total dcp layers those replays walked
};

/// Step 2: re-files into `node`'s (replacement) storage the committed images
/// it was holding for its peers -- and, for pair topologies, the node's own
/// local copy -- fetched from the peers' surviving copies. Each candidate
/// source is verified against `expected_hashes[owner]` (indexed by node id);
/// corrupt sources are skipped, and an owner with no clean copy anywhere is
/// counted `unavailable` instead of aborting the whole refill.
ReplicationOutcome restore_replicas(
    std::uint64_t node, const GroupAssignment& groups,
    std::span<BuddyStore* const> stores,
    std::span<const std::uint64_t> expected_hashes);

/// How a rollback-ladder walk over the retained checkpoint sets ended.
/// Used by silent-error recovery: when a verification proves the committed
/// set carries corruption, recovery walks *back in time* through the
/// keep-last-l retention ring instead of sideways through replicas.
enum class RollbackStatus {
  Ok,          ///< the committed set (depth 0) itself is usable
  RolledBack,  ///< an older retained set was selected (depth > 0)
  Exhausted,   ///< no retained set qualifies -- detected-but-unrecoverable
};

/// Typed result of the ladder walk -- no exception path. `depth` counts the
/// sets that must be dropped to make the selected set the committed one.
struct RollbackOutcome {
  RollbackStatus status = RollbackStatus::Exhausted;
  std::size_t depth = 0;  ///< meaningful unless Exhausted

  bool ok() const noexcept { return status != RollbackStatus::Exhausted; }
};

/// Walks the rollback ladder newest -> oldest over `retained` restore
/// points (depth 0 first) and returns the shallowest depth accepted by
/// `usable`. Ok at depth 0, RolledBack at depth > 0, Exhausted when no
/// depth qualifies.
RollbackOutcome select_rollback_set(
    std::size_t retained, const std::function<bool(std::size_t)>& usable);

/// True when every node of the platform can restore a hash-verified image
/// of itself from retained set `depth` through its replica ladder (pairs:
/// local copy then preferred buddy; triples: preferred then secondary).
/// `expected_hashes[node]` is the content hash recorded for that set.
bool set_restorable(std::size_t depth, const GroupAssignment& groups,
                    std::span<BuddyStore* const> stores,
                    std::span<const std::uint64_t> expected_hashes);

}  // namespace dckpt::ckpt
