// Versioned in-memory checkpoint storage with atomic set promotion.
//
// Coordinated protocols must switch between *global* snapshot sets
// atomically (paper Sec. IV): at any instant a node holds the last
// successful set and possibly an unfinished current set. A failure discards
// the unfinished set; only a completed global exchange promotes it.
//
// BuddyStore is the per-node container: it files images by (owner, version)
// into the staging area, and `promote(version)` moves the staged set into
// the committed slot. `drop_node(node)` models the loss of a node's memory
// (its own staged and committed images vanish with it -- callers then
// recover from the surviving replicas on other nodes).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "ckpt/page_store.hpp"

namespace dckpt::ckpt {

class BuddyStore {
 public:
  /// Storage belonging to `node`; `capacity_images` bounds how many images
  /// the node may hold per slot set (2 for double/triple protocols).
  explicit BuddyStore(std::uint64_t node, std::size_t capacity_images = 2);

  std::uint64_t node() const noexcept { return node_; }

  /// Files an image into the staging set. Throws when the staging set is
  /// full with images of other versions or capacity would be exceeded.
  void stage(const Snapshot& image);

  /// Promotes the staged images of `version` into the committed set,
  /// replacing it. Throws when nothing of that version is staged.
  void promote(std::uint64_t version);

  /// Discards any staged images (failure before completion).
  void discard_staged();

  /// Recovery path: files an image straight into the committed set,
  /// bypassing staging (used when re-replicating after a failure).
  /// Capacity-checked like stage().
  void restore_committed(const Snapshot& image);

  /// Fault injection (chaos harness): replaces the committed image of
  /// `owner` with a damaged copy -- a silent bit-flip, or a torn
  /// (prefix-only) image when `torn` is set. Returns false when this node
  /// holds no committed image of `owner` (nothing to damage). The slot
  /// stays occupied: corruption is only discovered when a restore path
  /// verifies the content hash.
  bool corrupt_committed(std::uint64_t owner, bool torn = false);

  /// Committed image of `owner`, if this node stores one.
  std::optional<Snapshot> committed_for(std::uint64_t owner) const;

  /// Staged image of `owner`, if present.
  std::optional<Snapshot> staged_for(std::uint64_t owner) const;

  std::size_t committed_count() const noexcept { return committed_.size(); }
  std::size_t staged_count() const noexcept { return staged_.size(); }

  /// Version of the committed set (0 when empty).
  std::uint64_t committed_version() const noexcept {
    return committed_version_;
  }

  /// Total bytes resident (committed + staged) -- the paper's "constant
  /// memory" claim is asserted against this in tests.
  std::size_t resident_bytes() const;

 private:
  std::uint64_t node_;
  std::size_t capacity_;
  std::map<std::uint64_t, Snapshot> committed_;  ///< keyed by owner
  std::map<std::uint64_t, Snapshot> staged_;
  std::uint64_t committed_version_ = 0;
};

}  // namespace dckpt::ckpt
