// Versioned in-memory checkpoint storage with atomic set promotion.
//
// Coordinated protocols must switch between *global* snapshot sets
// atomically (paper Sec. IV): at any instant a node holds the last
// successful set and possibly an unfinished current set. A failure discards
// the unfinished set; only a completed global exchange promotes it.
//
// BuddyStore is the per-node container: it files images by (owner, version)
// into the staging area, and `promote(version)` moves the staged set into
// the committed slot. `drop_node(node)` models the loss of a node's memory
// (its own staged and committed images vanish with it -- callers then
// recover from the surviving replicas on other nodes).
//
// Keep-last-l retention: with `retain_sets` > 1 every promotion pushes the
// outgoing committed set onto a bounded history ring, so recovery can walk
// back past a committed image that a later verification proved silently
// corrupted. Depth 0 is always the committed set, depth d > 0 the set
// promoted d commits ago. `drop_newest(count)` rolls the ring back, making
// an older set the committed one again.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "ckpt/dcp.hpp"
#include "ckpt/page_store.hpp"

namespace dckpt::ckpt {

class BuddyStore {
 public:
  /// Storage belonging to `node`; `capacity_images` bounds how many images
  /// the node may hold per slot set (2 for double/triple protocols).
  /// `retain_sets` is the keep-last-l retention depth: the committed set
  /// plus up to retain_sets - 1 older sets stay resident.
  explicit BuddyStore(std::uint64_t node, std::size_t capacity_images = 2,
                      std::size_t retain_sets = 1);

  std::uint64_t node() const noexcept { return node_; }

  /// Files an image into the staging set. Throws when the staging set is
  /// full with images of other versions or capacity would be exceeded.
  void stage(const Snapshot& image);

  /// Promotes the staged images of `version` into the committed set. The
  /// outgoing committed set moves into the retention history (bounded by
  /// retain_sets); with the default retain_sets = 1 it is simply replaced.
  /// Throws when nothing of that version is staged.
  void promote(std::uint64_t version);

  /// Discards any staged images (failure before completion).
  void discard_staged();

  /// Recovery path: files an image straight into the committed set,
  /// bypassing staging (used when re-replicating after a failure).
  /// Capacity-checked like stage().
  void restore_committed(const Snapshot& image);

  /// Fault injection (chaos harness): replaces the committed image of
  /// `owner` with a damaged copy -- a silent bit-flip, or a torn
  /// (prefix-only) image when `torn` is set. Returns false when this node
  /// holds no committed image of `owner` (nothing to damage). The slot
  /// stays occupied: corruption is only discovered when a restore path
  /// verifies the content hash.
  bool corrupt_committed(std::uint64_t owner, bool torn = false);

  /// Committed image of `owner`, if this node stores one.
  std::optional<Snapshot> committed_for(std::uint64_t owner) const;

  /// Retained image of `owner` at `depth` sets back: depth 0 is the
  /// committed set, depth d the set promoted d commits ago. nullopt when
  /// the store holds no such set or no image of `owner` in it.
  std::optional<Snapshot> committed_at(std::size_t depth,
                                       std::uint64_t owner) const;

  /// Staged image of `owner`, if present.
  std::optional<Snapshot> staged_for(std::uint64_t owner) const;

  // -- Differential chains (content-hash dcp) --------------------------
  //
  // Between full exchanges a dcp-enabled coordinator commits BlockDelta
  // layers on the same designated holders. The chain hangs off the
  // committed base image: promote() (a new full set) clears every chain,
  // restore_committed() files a *flattened* image so the receiver's chain
  // resets, and losing the node drops chains with the rest of the store.

  /// Appends a differential layer to `owner`'s chain. Returns false (and
  /// files nothing) when this node holds no committed base for `owner` --
  /// a chain cannot grow on a missing base.
  bool append_delta(const BlockDelta& layer);

  /// Differential layers currently chained on `owner`'s committed base,
  /// oldest first (empty when none).
  const std::vector<BlockDelta>& chain_for(std::uint64_t owner) const;

  /// Fault injection (chaos harness): tears the chain layer at 1-based
  /// `depth` counted from the base (depth 1 = oldest layer). Returns false
  /// when `owner`'s chain is shorter than `depth`.
  bool corrupt_delta(std::uint64_t owner, std::size_t depth);

  /// Rolls the retention ring back `count` sets: the committed set is
  /// discarded and the next-oldest retained set becomes committed. Rolling
  /// past the oldest retained set leaves the store empty.
  void drop_newest(std::size_t count);

  std::size_t committed_count() const noexcept { return committed_.size(); }
  std::size_t staged_count() const noexcept { return staged_.size(); }

  /// Older sets currently retained behind the committed one.
  std::size_t history_depth() const noexcept { return history_.size(); }

  /// Version of the committed set (0 when empty).
  std::uint64_t committed_version() const noexcept {
    return committed_version_;
  }

  /// Total bytes resident (committed + staged + retained history) -- the
  /// paper's "constant memory" claim is asserted against this in tests.
  std::size_t resident_bytes() const;

 private:
  struct RetainedSet {
    std::map<std::uint64_t, Snapshot> images;  ///< keyed by owner
    std::uint64_t version = 0;
  };

  std::uint64_t node_;
  std::size_t capacity_;
  std::size_t retain_;
  std::map<std::uint64_t, Snapshot> committed_;  ///< keyed by owner
  std::map<std::uint64_t, Snapshot> staged_;
  std::deque<RetainedSet> history_;  ///< front = next-newest after committed
  std::map<std::uint64_t, std::vector<BlockDelta>> chains_;  ///< keyed by owner
  std::uint64_t committed_version_ = 0;
};

}  // namespace dckpt::ckpt
