// Content-hash differential checkpoints (dcpScalable-style).
//
// A full checkpoint moves the whole image; a differential checkpoint moves
// only the blocks whose content changed since the last commit. Dirty blocks
// are detected by comparing per-block FNV-1a hashes against the hash array
// recorded at the previous commit -- no caller-supplied dirty set and no
// dependence on COW pointer identity, so a page rewritten with identical
// bytes does *not* count as dirty (unlike delta.hpp's mprotect-style
// tracking). The block size is independent of the page size: coarser blocks
// cut hash-array memory at the cost of amplifying small writes.
//
// Restores replay a chain: one full base image plus up to K - 1 differential
// layers, where K is the dcp stack size (a full checkpoint every K commits
// bounds the chain). Each layer carries
//   * base_hash    -- content hash of the exact image it was diffed against,
//                     so a corrupt base is detected before replay even when a
//                     later layer would happen to overwrite the damage;
//   * result_hash  -- content hash of the image the replay must produce;
//   * a self hash over the layer's own metadata and payloads, so a torn
//     layer (truncated transfer) is detected without replaying anything.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/page_store.hpp"

namespace dckpt::ckpt {

/// Default differential block size (one OS page, like dcpBlockSize's
/// default granularity).
inline constexpr std::size_t kDefaultDcpBlockSize = kDefaultPageSize;

/// One dirty block: `index * block_size` is its byte offset; the tail block
/// may be shorter than block_size.
struct DcpBlock {
  std::size_t index = 0;
  std::vector<std::byte> payload;
};

/// One differential layer of a dcp chain.
class BlockDelta {
 public:
  BlockDelta() = default;
  BlockDelta(std::uint64_t owner, std::uint64_t base_version,
             std::uint64_t version, std::size_t size_bytes,
             std::size_t block_size, std::uint64_t base_hash,
             std::uint64_t result_hash, std::vector<DcpBlock> blocks);

  std::uint64_t owner() const noexcept { return owner_; }
  std::uint64_t base_version() const noexcept { return base_version_; }
  std::uint64_t version() const noexcept { return version_; }
  std::size_t size_bytes() const noexcept { return size_bytes_; }
  std::size_t block_size() const noexcept { return block_size_; }

  /// Content hash of the image this layer was diffed against.
  std::uint64_t base_hash() const noexcept { return base_hash_; }
  /// Content hash of the image replaying this layer must produce.
  std::uint64_t result_hash() const noexcept { return result_hash_; }

  std::size_t dirty_blocks() const noexcept { return blocks_.size(); }
  const std::vector<DcpBlock>& blocks() const noexcept { return blocks_; }

  /// Bytes a buddy transfer must actually move for this layer.
  std::size_t delta_bytes() const;

  /// Dirty fraction: dirty blocks / total blocks of the image.
  double dirty_ratio() const noexcept;

  /// Per-layer integrity: recomputes the self hash over the layer's
  /// metadata and payloads and compares it to the value recorded at
  /// construction. A torn layer fails this without any replay.
  bool verify_self() const;

 private:
  friend BlockDelta torn_layer_copy(const BlockDelta& layer);

  std::uint64_t self_hash() const;

  std::uint64_t owner_ = 0;
  std::uint64_t base_version_ = 0;
  std::uint64_t version_ = 0;
  std::size_t size_bytes_ = 0;
  std::size_t block_size_ = kDefaultDcpBlockSize;
  std::uint64_t base_hash_ = 0;
  std::uint64_t result_hash_ = 0;
  std::vector<DcpBlock> blocks_;
  std::uint64_t stored_self_hash_ = 0;
};

/// Per-block FNV-1a hash array of `image` (the dcpScalable hashArray): one
/// hash per block_size-sized block, tail block over the remaining bytes.
/// Throws std::invalid_argument when block_size == 0.
std::vector<std::uint64_t> block_hashes(const Snapshot& image,
                                        std::size_t block_size);

/// Diffs `current` against a base known only by its cached hash array --
/// the coordinator commit path, where the previous image itself is gone but
/// its block_hashes(), version and content hash were recorded at commit
/// time. `base_version` must predate current.version() and `base_hashes`
/// must cover current's layout exactly.
BlockDelta make_block_delta(const std::vector<std::uint64_t>& base_hashes,
                            std::uint64_t base_version,
                            std::uint64_t base_hash, const Snapshot& current,
                            std::size_t block_size);

/// Diffs `current` against `base` by per-block content hash.
/// `base_hashes` must be block_hashes(base, block_size) -- callers cache it
/// across commits so each diff scans only the new image. Both snapshots must
/// share owner and layout, with base.version() < current.version().
BlockDelta make_block_delta(const Snapshot& base,
                            const std::vector<std::uint64_t>& base_hashes,
                            const Snapshot& current, std::size_t block_size);

/// Convenience overload that rescans `base` for its hash array.
BlockDelta make_block_delta(const Snapshot& base, const Snapshot& current,
                            std::size_t block_size);

/// Replays one layer: base + delta = the image `delta` was diffed from.
/// Verifies owner, layout and version chaining (base.version() must equal
/// delta.base_version()); content verification against base_hash() /
/// result_hash() is the *caller's* job (the recovery ladder decides how to
/// react). Throws std::invalid_argument on a structural mismatch.
Snapshot apply_block_delta(const Snapshot& base, const BlockDelta& delta);

/// Fault injection (chaos harness): a copy of `layer` whose last dirty
/// block lost the tail half of its payload while the recorded self hash is
/// kept -- a torn (truncated) layer transfer. verify_self() on the copy
/// fails. A layer with no dirty blocks gets its recorded self hash flipped
/// instead (still detected, nothing to truncate).
BlockDelta torn_layer_copy(const BlockDelta& layer);

}  // namespace dckpt::ckpt
