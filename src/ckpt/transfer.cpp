#include "ckpt/transfer.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::ckpt {

namespace {

void check_spec(const TransferSpec& spec) {
  if (!(spec.image_bytes > 0.0) || !(spec.network_bandwidth > 0.0) ||
      !(spec.alpha >= 0.0) || !(spec.page_bytes > 0.0) ||
      !(spec.dirty_rate >= 0.0)) {
    throw std::invalid_argument("TransferSpec: out of domain");
  }
}

}  // namespace

double blocking_transfer_time(const TransferSpec& spec) {
  check_spec(spec);
  return spec.image_bytes / spec.network_bandwidth;
}

TransferPlan plan_transfer(const TransferSpec& spec, double phi) {
  check_spec(spec);
  const double theta_min = blocking_transfer_time(spec);
  const model::OverlapModel overlap(theta_min, spec.alpha);
  TransferPlan plan;
  plan.theta_min = theta_min;
  plan.phi = phi;
  plan.theta = overlap.theta_of_phi(phi);  // validates phi domain
  // Pages still waiting to upload at time t: (1 - t/theta) of the image.
  // With most-likely-dirty-first ordering, a write at time t lands on a
  // not-yet-uploaded page with probability ~ (1 - t/theta)/2; integrating
  // dirty_rate over [0, theta] gives theta * dirty_rate / 4.
  plan.expected_cow_pages = spec.dirty_rate * plan.theta / 4.0;
  const double total_pages = spec.image_bytes / spec.page_bytes;
  if (plan.expected_cow_pages > total_pages) {
    plan.expected_cow_pages = total_pages;
  }
  return plan;
}

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
}

std::uint64_t RetryPolicy::backoff_steps(std::uint64_t retry_index) const {
  if (retry_index == 0) {
    throw std::invalid_argument("RetryPolicy: retry_index is 1-based");
  }
  const std::uint64_t shift = retry_index - 1;
  if (shift >= 64 ||
      (base_delay_steps != 0 &&
       base_delay_steps > (~std::uint64_t{0} >> shift))) {
    return ~std::uint64_t{0};  // saturate: effectively "wait forever"
  }
  const std::uint64_t delay = base_delay_steps << shift;
  return delay == 0 ? 1 : delay;
}

double RetryPolicy::expected_transfer_attempts(double failure_rate) const {
  validate();
  if (!(failure_rate >= 0.0) || failure_rate >= 1.0) {
    throw std::invalid_argument(
        "RetryPolicy: failure_rate must be in [0, 1)");
  }
  // Truncated geometric: E[attempts] = sum_{i=0}^{A-1} p^i.
  double expected = 0.0;
  double p_i = 1.0;
  for (std::uint64_t i = 0; i < max_attempts; ++i) {
    expected += p_i;
    p_i *= failure_rate;
  }
  return expected;
}

double phi_for_deadline(const TransferSpec& spec, double deadline) {
  check_spec(spec);
  const double theta_min = blocking_transfer_time(spec);
  if (deadline < theta_min) {
    throw std::invalid_argument(
        "phi_for_deadline: deadline shorter than the blocking transfer");
  }
  if (spec.alpha == 0.0) return theta_min;  // no stretching possible
  const model::OverlapModel overlap(theta_min, spec.alpha);
  if (deadline >= overlap.theta_max()) return 0.0;
  return overlap.phi_of_theta(deadline);
}

}  // namespace dckpt::ckpt
