#include "ckpt/transfer.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::ckpt {

namespace {

void check_spec(const TransferSpec& spec) {
  if (!(spec.image_bytes > 0.0) || !(spec.network_bandwidth > 0.0) ||
      !(spec.alpha >= 0.0) || !(spec.page_bytes > 0.0) ||
      !(spec.dirty_rate >= 0.0)) {
    throw std::invalid_argument("TransferSpec: out of domain");
  }
}

}  // namespace

double blocking_transfer_time(const TransferSpec& spec) {
  check_spec(spec);
  return spec.image_bytes / spec.network_bandwidth;
}

TransferPlan plan_transfer(const TransferSpec& spec, double phi) {
  check_spec(spec);
  const double theta_min = blocking_transfer_time(spec);
  const model::OverlapModel overlap(theta_min, spec.alpha);
  TransferPlan plan;
  plan.theta_min = theta_min;
  plan.phi = phi;
  plan.theta = overlap.theta_of_phi(phi);  // validates phi domain
  // Pages still waiting to upload at time t: (1 - t/theta) of the image.
  // With most-likely-dirty-first ordering, a write at time t lands on a
  // not-yet-uploaded page with probability ~ (1 - t/theta)/2; integrating
  // dirty_rate over [0, theta] gives theta * dirty_rate / 4.
  plan.expected_cow_pages = spec.dirty_rate * plan.theta / 4.0;
  const double total_pages = spec.image_bytes / spec.page_bytes;
  if (plan.expected_cow_pages > total_pages) {
    plan.expected_cow_pages = total_pages;
  }
  return plan;
}

double phi_for_deadline(const TransferSpec& spec, double deadline) {
  check_spec(spec);
  const double theta_min = blocking_transfer_time(spec);
  if (deadline < theta_min) {
    throw std::invalid_argument(
        "phi_for_deadline: deadline shorter than the blocking transfer");
  }
  if (spec.alpha == 0.0) return theta_min;  // no stretching possible
  const model::OverlapModel overlap(theta_min, spec.alpha);
  if (deadline >= overlap.theta_max()) return 0.0;
  return overlap.phi_of_theta(deadline);
}

}  // namespace dckpt::ckpt
