// Page-granular application memory with copy-on-write snapshots.
//
// The paper's triple algorithm leans on fork(): a checkpoint is a COW image
// of the process, and pages are physically copied only when the application
// writes them before the upload finishes (Sec. IV). PageStore reproduces
// that mechanism in-process: memory is a vector of shared, immutable pages;
// snapshot() is O(#pages) pointer copies; writing a page that a live
// snapshot still references clones just that page.
//
// The copied-page count is exposed so benches can measure the COW pressure
// that the paper's phi parameter abstracts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dckpt::ckpt {

/// Default page size: 4 KiB, like the OS pages fork() shares.
inline constexpr std::size_t kDefaultPageSize = 4096;

/// Immutable checkpoint image: shared pages + integrity metadata.
class Snapshot {
 public:
  using Page = std::shared_ptr<const std::vector<std::byte>>;

  Snapshot() = default;
  Snapshot(std::vector<Page> pages, std::size_t size_bytes,
           std::uint64_t version, std::uint64_t owner);

  std::size_t size_bytes() const noexcept { return size_bytes_; }
  std::size_t page_count() const noexcept { return pages_.size(); }
  std::uint64_t version() const noexcept { return version_; }
  std::uint64_t owner() const noexcept { return owner_; }
  bool empty() const noexcept { return pages_.empty(); }

  /// FNV-1a over the content; cached after the first call.
  std::uint64_t content_hash() const;

  /// Integrity check at a restore point: does the content still hash to
  /// what the producer recorded at snapshot time? A torn (prefix-only)
  /// image fails this too -- the hash runs over fewer meaningful bytes.
  bool verify(std::uint64_t expected_hash) const {
    return content_hash() == expected_hash;
  }

  /// Copies the image back into a flat buffer (restore path).
  std::vector<std::byte> to_bytes() const;

  const std::vector<Page>& pages() const noexcept { return pages_; }

 private:
  std::vector<Page> pages_;
  std::size_t size_bytes_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t owner_ = 0;
  mutable std::uint64_t cached_hash_ = 0;
  mutable bool hash_valid_ = false;
};

class PageStore {
 public:
  explicit PageStore(std::size_t size_bytes,
                     std::size_t page_size = kDefaultPageSize);

  std::size_t size_bytes() const noexcept { return size_bytes_; }
  std::size_t page_size() const noexcept { return page_size_; }
  std::size_t page_count() const noexcept { return pages_.size(); }

  /// Reads `out.size()` bytes starting at `offset`.
  void read(std::size_t offset, std::span<std::byte> out) const;

  /// Writes `data` at `offset`, cloning any page still shared with a
  /// snapshot (copy-on-write).
  void write(std::size_t offset, std::span<const std::byte> data);

  /// Captures the current content as an immutable snapshot (cheap: shares
  /// all pages). `owner` tags the image with the producing node.
  Snapshot snapshot(std::uint64_t owner) ;

  /// Replaces the whole content from a snapshot (rollback/restore).
  void restore(const Snapshot& snapshot_image);

  /// Pages physically duplicated by COW since construction.
  std::uint64_t cow_copies() const noexcept { return cow_copies_; }

  /// Monotone version stamp incremented per snapshot.
  std::uint64_t version() const noexcept { return version_; }

 private:
  using MutablePage = std::shared_ptr<std::vector<std::byte>>;

  /// Ensures pages_[index] is uniquely owned before mutation.
  std::vector<std::byte>& writable_page(std::size_t index);

  std::size_t size_bytes_;
  std::size_t page_size_;
  std::vector<MutablePage> pages_;
  std::uint64_t cow_copies_ = 0;
  std::uint64_t version_ = 0;
};

/// FNV-1a 64-bit over a byte range (exposed for tests and recovery checks).
std::uint64_t fnv1a(std::span<const std::byte> data,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Fault-injection helpers (chaos harness): both return a *fresh* Snapshot
/// with its own pages and an unset hash cache, so verify() recomputes over
/// the damaged content instead of trusting the original's cached value.
///
/// corrupt_copy flips one byte of the first page -- a silent bit-flip in a
/// stored replica. torn_copy models a transfer that delivered only a
/// prefix: the first half of the pages survive, the rest read as zeros
/// (the layout stays restorable; the content does not verify).
Snapshot corrupt_copy(const Snapshot& image);
Snapshot torn_copy(const Snapshot& image);

}  // namespace dckpt::ckpt
