#include "ckpt/delta.hpp"

#include <algorithm>
#include <stdexcept>

namespace dckpt::ckpt {

SnapshotDelta::SnapshotDelta(std::uint64_t owner, std::uint64_t base_version,
                             std::uint64_t version, std::size_t size_bytes,
                             std::size_t page_count,
                             std::vector<DeltaPage> pages)
    : owner_(owner), base_version_(base_version), version_(version),
      size_bytes_(size_bytes), page_count_(page_count),
      pages_(std::move(pages)) {}

std::size_t SnapshotDelta::delta_bytes() const {
  // Clamp the dirty tail page to the logical remainder (content_hash and
  // to_bytes do the same); the allocated size over-reports transfer volume
  // whenever size_bytes % page_size != 0.
  std::size_t total = 0;
  for (const auto& entry : pages_) {
    const std::size_t page_span = entry.page->size();
    total += std::min(page_span, size_bytes_ - entry.index * page_span);
  }
  return total;
}

SnapshotDelta make_delta(const Snapshot& base, const Snapshot& current) {
  if (base.owner() != current.owner()) {
    throw std::invalid_argument("make_delta: owner mismatch");
  }
  if (base.page_count() != current.page_count() ||
      base.size_bytes() != current.size_bytes()) {
    throw std::invalid_argument("make_delta: layout mismatch");
  }
  if (base.version() >= current.version()) {
    throw std::invalid_argument(
        "make_delta: base must precede current in the snapshot lineage");
  }
  std::vector<DeltaPage> changed;
  for (std::size_t i = 0; i < current.page_count(); ++i) {
    if (base.pages()[i] != current.pages()[i]) {
      changed.push_back({i, current.pages()[i]});
    }
  }
  return SnapshotDelta(current.owner(), base.version(), current.version(),
                       current.size_bytes(), current.page_count(),
                       std::move(changed));
}

Snapshot apply_delta(const Snapshot& base, const SnapshotDelta& delta) {
  if (base.owner() != delta.owner()) {
    throw std::invalid_argument("apply_delta: owner mismatch");
  }
  if (base.version() != delta.base_version()) {
    throw std::invalid_argument(
        "apply_delta: delta was taken against a different base version");
  }
  if (base.page_count() != delta.page_count() ||
      base.size_bytes() != delta.size_bytes()) {
    throw std::invalid_argument("apply_delta: layout mismatch");
  }
  std::vector<Snapshot::Page> pages(base.pages());
  for (const auto& entry : delta.pages()) {
    if (entry.index >= pages.size()) {
      throw std::invalid_argument("apply_delta: page index out of range");
    }
    pages[entry.index] = entry.page;
  }
  return Snapshot(std::move(pages), delta.size_bytes(), delta.version(),
                  delta.owner());
}

}  // namespace dckpt::ckpt
