#include "ckpt/dcp.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace dckpt::ckpt {

namespace {

/// Folds a 64-bit word into an FNV-1a chain byte by byte (little-endian),
/// so the self hash is deterministic across platforms.
std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t seed) {
  std::byte bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::byte>((value >> (8 * i)) & 0xffU);
  }
  return fnv1a({bytes, 8}, seed);
}

std::size_t block_count(std::size_t size_bytes, std::size_t block_size) {
  return size_bytes == 0 ? 0 : (size_bytes + block_size - 1) / block_size;
}

}  // namespace

BlockDelta::BlockDelta(std::uint64_t owner, std::uint64_t base_version,
                       std::uint64_t version, std::size_t size_bytes,
                       std::size_t block_size, std::uint64_t base_hash,
                       std::uint64_t result_hash, std::vector<DcpBlock> blocks)
    : owner_(owner),
      base_version_(base_version),
      version_(version),
      size_bytes_(size_bytes),
      block_size_(block_size),
      base_hash_(base_hash),
      result_hash_(result_hash),
      blocks_(std::move(blocks)) {
  if (block_size_ == 0) {
    throw std::invalid_argument("BlockDelta: block_size must be > 0");
  }
  stored_self_hash_ = self_hash();
}

std::size_t BlockDelta::delta_bytes() const {
  std::size_t total = 0;
  for (const DcpBlock& block : blocks_) total += block.payload.size();
  return total;
}

double BlockDelta::dirty_ratio() const noexcept {
  const std::size_t count = block_count(size_bytes_, block_size_);
  return count ? static_cast<double>(blocks_.size()) /
                     static_cast<double>(count)
               : 0.0;
}

std::uint64_t BlockDelta::self_hash() const {
  std::uint64_t h = fnv1a_u64(owner_, 0xcbf29ce484222325ULL);
  h = fnv1a_u64(base_version_, h);
  h = fnv1a_u64(version_, h);
  h = fnv1a_u64(size_bytes_, h);
  h = fnv1a_u64(block_size_, h);
  h = fnv1a_u64(base_hash_, h);
  h = fnv1a_u64(result_hash_, h);
  h = fnv1a_u64(blocks_.size(), h);
  for (const DcpBlock& block : blocks_) {
    h = fnv1a_u64(block.index, h);
    h = fnv1a_u64(block.payload.size(), h);
    h = fnv1a({block.payload.data(), block.payload.size()}, h);
  }
  return h;
}

bool BlockDelta::verify_self() const {
  return self_hash() == stored_self_hash_;
}

std::vector<std::uint64_t> block_hashes(const Snapshot& image,
                                        std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("block_hashes: block_size must be > 0");
  }
  const std::vector<std::byte> bytes = image.to_bytes();
  const std::size_t count = block_count(bytes.size(), block_size);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t offset = b * block_size;
    const std::size_t len = std::min(block_size, bytes.size() - offset);
    hashes.push_back(fnv1a({bytes.data() + offset, len}));
  }
  return hashes;
}

BlockDelta make_block_delta(const std::vector<std::uint64_t>& base_hashes,
                            std::uint64_t base_version,
                            std::uint64_t base_hash, const Snapshot& current,
                            std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("make_block_delta: block_size must be > 0");
  }
  if (base_version >= current.version()) {
    throw std::invalid_argument(
        "make_block_delta: base must predate current (base v" +
        std::to_string(base_version) + ", current v" +
        std::to_string(current.version()) + ")");
  }
  const std::vector<std::byte> bytes = current.to_bytes();
  const std::size_t count = block_count(bytes.size(), block_size);
  if (base_hashes.size() != count) {
    throw std::invalid_argument(
        "make_block_delta: base hash array has " +
        std::to_string(base_hashes.size()) + " entries, want " +
        std::to_string(count));
  }
  std::vector<DcpBlock> blocks;
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t offset = b * block_size;
    const std::size_t len = std::min(block_size, bytes.size() - offset);
    if (fnv1a({bytes.data() + offset, len}) == base_hashes[b]) continue;
    blocks.push_back({b, std::vector<std::byte>(
                             bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                             bytes.begin() +
                                 static_cast<std::ptrdiff_t>(offset + len))});
  }
  return BlockDelta(current.owner(), base_version, current.version(),
                    bytes.size(), block_size, base_hash,
                    current.content_hash(), std::move(blocks));
}

BlockDelta make_block_delta(const Snapshot& base,
                            const std::vector<std::uint64_t>& base_hashes,
                            const Snapshot& current, std::size_t block_size) {
  if (base.owner() != current.owner()) {
    throw std::invalid_argument("make_block_delta: owner mismatch");
  }
  if (base.size_bytes() != current.size_bytes() ||
      base.page_count() != current.page_count()) {
    throw std::invalid_argument("make_block_delta: layout mismatch");
  }
  return make_block_delta(base_hashes, base.version(), base.content_hash(),
                          current, block_size);
}

BlockDelta make_block_delta(const Snapshot& base, const Snapshot& current,
                            std::size_t block_size) {
  return make_block_delta(base, block_hashes(base, block_size), current,
                          block_size);
}

Snapshot apply_block_delta(const Snapshot& base, const BlockDelta& delta) {
  if (base.owner() != delta.owner()) {
    throw std::invalid_argument("apply_block_delta: owner mismatch");
  }
  if (base.size_bytes() != delta.size_bytes()) {
    throw std::invalid_argument("apply_block_delta: layout mismatch");
  }
  if (base.version() != delta.base_version()) {
    throw std::invalid_argument(
        "apply_block_delta: delta diffed against v" +
        std::to_string(delta.base_version()) + ", base is v" +
        std::to_string(base.version()));
  }
  std::vector<std::byte> bytes = base.to_bytes();
  for (const DcpBlock& block : delta.blocks()) {
    const std::size_t offset = block.index * delta.block_size();
    if (offset > bytes.size() ||
        block.payload.size() > bytes.size() - offset) {
      throw std::invalid_argument(
          "apply_block_delta: block " + std::to_string(block.index) +
          " exceeds the image");
    }
    std::memcpy(bytes.data() + offset, block.payload.data(),
                block.payload.size());
  }
  // Repage on the base's exact per-page layout (pages may be allocated
  // larger than their meaningful tail), so the tip restores anywhere the
  // base would.
  std::vector<Snapshot::Page> pages;
  pages.reserve(base.page_count());
  std::size_t offset = 0;
  for (const Snapshot::Page& original : base.pages()) {
    auto page = std::make_shared<std::vector<std::byte>>(original->size(),
                                                         std::byte{0});
    const std::size_t take = std::min(page->size(), bytes.size() - offset);
    std::memcpy(page->data(), bytes.data() + offset, take);
    offset += take;
    pages.push_back(std::move(page));
  }
  return Snapshot(std::move(pages), bytes.size(), delta.version(),
                  delta.owner());
}

BlockDelta torn_layer_copy(const BlockDelta& layer) {
  BlockDelta torn = layer;
  if (torn.blocks_.empty()) {
    torn.stored_self_hash_ ^= 1;  // nothing to truncate; still detectable
    return torn;
  }
  std::vector<std::byte>& payload = torn.blocks_.back().payload;
  payload.resize(payload.size() / 2);  // prefix-only delivery
  return torn;
}

}  // namespace dckpt::ckpt
