#include "ckpt/ring.hpp"

#include <stdexcept>

namespace dckpt::ckpt {

GroupAssignment::GroupAssignment(std::uint64_t nodes, Topology topology)
    : nodes_(nodes), topology_(topology) {
  const auto gs = static_cast<std::uint64_t>(group_size());
  if (nodes == 0 || nodes % gs != 0) {
    throw std::invalid_argument(
        "GroupAssignment: nodes must be a positive multiple of group size");
  }
}

void GroupAssignment::check_node(std::uint64_t node) const {
  if (node >= nodes_) throw std::out_of_range("GroupAssignment: node id");
}

std::uint64_t GroupAssignment::group_of(std::uint64_t node) const {
  check_node(node);
  return node / static_cast<std::uint64_t>(group_size());
}

std::vector<std::uint64_t> GroupAssignment::members(std::uint64_t group) const {
  if (group >= group_count()) {
    throw std::out_of_range("GroupAssignment: group id");
  }
  const auto gs = static_cast<std::uint64_t>(group_size());
  std::vector<std::uint64_t> out;
  out.reserve(gs);
  for (std::uint64_t i = 0; i < gs; ++i) out.push_back(group * gs + i);
  return out;
}

std::uint64_t GroupAssignment::preferred_buddy(std::uint64_t node) const {
  check_node(node);
  const auto gs = static_cast<std::uint64_t>(group_size());
  const std::uint64_t base = (node / gs) * gs;
  return base + (node - base + 1) % gs;
}

std::uint64_t GroupAssignment::secondary_buddy(std::uint64_t node) const {
  check_node(node);
  if (topology_ != Topology::Triples) {
    throw std::logic_error("secondary_buddy: pairs have a single buddy");
  }
  const std::uint64_t base = (node / 3) * 3;
  return base + (node - base + 2) % 3;
}

std::vector<std::uint64_t> GroupAssignment::stored_for(
    std::uint64_t node) const {
  check_node(node);
  if (topology_ == Topology::Pairs) {
    return {preferred_buddy(node)};
  }
  // node is preferred buddy of its predecessor and secondary of the other.
  const std::uint64_t base = (node / 3) * 3;
  const std::uint64_t pred = base + (node - base + 2) % 3;
  const std::uint64_t other = base + (node - base + 1) % 3;
  return {pred, other};
}

}  // namespace dckpt::ckpt
