// Buddy-group topology: partitions node ids into pairs or triples and
// answers "who stores whose checkpoint".
//
// Pairs (double protocols): nodes (2k, 2k+1) exchange images.
// Triples: within (3k, 3k+1, 3k+2) buddies rotate as in the paper (Sec. IV):
// p's preferred buddy is p', p's secondary is p''; p' prefers p'' and keeps
// p as secondary; p'' prefers p and keeps p' as secondary.
#pragma once

#include <cstdint>
#include <vector>

namespace dckpt::ckpt {

enum class Topology { Pairs, Triples };

class GroupAssignment {
 public:
  /// `nodes` must be a positive multiple of the group size.
  GroupAssignment(std::uint64_t nodes, Topology topology);

  std::uint64_t nodes() const noexcept { return nodes_; }
  Topology topology() const noexcept { return topology_; }
  int group_size() const noexcept {
    return topology_ == Topology::Pairs ? 2 : 3;
  }
  std::uint64_t group_count() const noexcept {
    return nodes_ / static_cast<std::uint64_t>(group_size());
  }

  std::uint64_t group_of(std::uint64_t node) const;

  /// Members of a group, in node-id order.
  std::vector<std::uint64_t> members(std::uint64_t group) const;

  /// The node that receives `node`'s checkpoint first. For pairs: the buddy.
  /// For triples: the preferred buddy (next in the rotation).
  std::uint64_t preferred_buddy(std::uint64_t node) const;

  /// Triples only: the second receiver of `node`'s checkpoint.
  std::uint64_t secondary_buddy(std::uint64_t node) const;

  /// Nodes whose checkpoints `node` stores (inverse of the buddy maps).
  std::vector<std::uint64_t> stored_for(std::uint64_t node) const;

 private:
  void check_node(std::uint64_t node) const;

  std::uint64_t nodes_;
  Topology topology_;
};

}  // namespace dckpt::ckpt
