// Incremental (delta) checkpoints.
//
// Successive COW snapshots share every page the application did not touch,
// so "which pages changed" falls out of pointer identity for free -- the
// in-process equivalent of fork()-based dirty tracking. A delta carries
// only the changed pages; applying it to the base reconstructs the full
// image. This is the classic incremental-checkpoint optimization for buddy
// protocols: the paper's theta shrinks from S/B to S_dirty/B between full
// exchanges.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/page_store.hpp"

namespace dckpt::ckpt {

struct DeltaPage {
  std::size_t index = 0;
  Snapshot::Page page;
};

class SnapshotDelta {
 public:
  SnapshotDelta() = default;
  SnapshotDelta(std::uint64_t owner, std::uint64_t base_version,
                std::uint64_t version, std::size_t size_bytes,
                std::size_t page_count, std::vector<DeltaPage> pages);

  std::uint64_t owner() const noexcept { return owner_; }
  std::uint64_t base_version() const noexcept { return base_version_; }
  std::uint64_t version() const noexcept { return version_; }
  std::size_t changed_pages() const noexcept { return pages_.size(); }

  /// Bytes a buddy transfer must actually move.
  std::size_t delta_bytes() const;

  /// Dirty fraction: changed pages / total pages.
  double dirty_ratio() const noexcept {
    return page_count_ ? static_cast<double>(pages_.size()) /
                             static_cast<double>(page_count_)
                       : 0.0;
  }

  const std::vector<DeltaPage>& pages() const noexcept { return pages_; }
  std::size_t size_bytes() const noexcept { return size_bytes_; }
  std::size_t page_count() const noexcept { return page_count_; }

 private:
  std::uint64_t owner_ = 0;
  std::uint64_t base_version_ = 0;
  std::uint64_t version_ = 0;
  std::size_t size_bytes_ = 0;
  std::size_t page_count_ = 0;
  std::vector<DeltaPage> pages_;
};

/// Pages of `current` that differ from `base` (by COW identity -- a page
/// rewritten with identical content counts as changed, like mprotect-based
/// dirty tracking would). Both snapshots must come from the same store
/// lineage: same owner, same layout, base.version() < current.version().
SnapshotDelta make_delta(const Snapshot& base, const Snapshot& current);

/// Reconstructs the full image: base + delta = current. Verifies owner,
/// layout and version chaining.
Snapshot apply_delta(const Snapshot& base, const SnapshotDelta& delta);

}  // namespace dckpt::ckpt
