#include "ckpt/recovery.hpp"

#include <stdexcept>

namespace dckpt::ckpt {

namespace {

void check_directory(const GroupAssignment& groups,
                     std::span<BuddyStore* const> stores) {
  if (stores.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: store/topology size mismatch");
  }
  for (const BuddyStore* store : stores) {
    if (!store) throw std::invalid_argument("recovery: null store");
  }
}

/// The ordered list of nodes that may hold `node`'s committed image:
/// pairs keep a local copy (preferred on restore -- no transfer), then the
/// preferred buddy; triples store on the preferred and secondary buddies.
std::vector<std::uint64_t> replica_ladder(std::uint64_t node,
                                          const GroupAssignment& groups) {
  if (groups.topology() == Topology::Pairs) {
    return {node, groups.preferred_buddy(node)};
  }
  return {groups.preferred_buddy(node), groups.secondary_buddy(node)};
}

/// Outcome of flattening one rung: the base image plus its differential
/// chain, or the typed reason the rung must be skipped.
enum class RungState { Clean, CorruptBase, TornLayer, BadTip };

struct RungImage {
  RungState state = RungState::BadTip;
  std::optional<Snapshot> tip;
  std::size_t layers = 0;
};

/// Replays `holder`'s chain for `owner` onto the committed base and
/// verifies the tip against `expected_hash`. An empty chain degenerates to
/// the plain full-image hash check. nullopt when the holder has no base.
std::optional<RungImage> flatten_rung(const BuddyStore& holder,
                                      std::uint64_t owner,
                                      std::uint64_t expected_hash) {
  auto base = holder.committed_for(owner);
  if (!base) return std::nullopt;
  RungImage rung;
  const std::vector<BlockDelta>& chain = holder.chain_for(owner);
  if (!chain.empty() && !base->verify(chain.front().base_hash())) {
    rung.state = RungState::CorruptBase;
    return rung;
  }
  for (const BlockDelta& layer : chain) {
    if (!layer.verify_self()) {
      rung.state = RungState::TornLayer;
      return rung;
    }
  }
  Snapshot tip = std::move(*base);
  for (const BlockDelta& layer : chain) {
    tip = apply_block_delta(tip, layer);
  }
  if (!tip.verify(expected_hash)) {
    rung.state = RungState::BadTip;
    return rung;
  }
  rung.state = RungState::Clean;
  rung.tip = std::move(tip);
  rung.layers = chain.size();
  return rung;
}

}  // namespace

RecoveryOutcome select_replica(std::uint64_t node,
                               const GroupAssignment& groups,
                               std::span<BuddyStore* const> stores,
                               std::uint64_t expected_hash) {
  check_directory(groups, stores);
  RecoveryOutcome outcome;
  for (const std::uint64_t holder : replica_ladder(node, groups)) {
    auto rung = flatten_rung(*stores[holder], node, expected_hash);
    if (!rung) continue;
    ++outcome.candidates_tried;
    if (rung->state != RungState::Clean) {
      ++outcome.corrupt_skipped;
      if (rung->state == RungState::TornLayer) ++outcome.torn_skipped;
      continue;
    }
    outcome.status = outcome.corrupt_skipped > 0 ? RecoveryStatus::FailedOver
                                                 : RecoveryStatus::Ok;
    outcome.report.node = node;
    outcome.report.source = holder;
    outcome.report.version = rung->tip->version();
    outcome.report.hash_verified = true;
    outcome.replayed_layers = rung->layers;
    outcome.image = std::move(rung->tip);
    return outcome;
  }
  outcome.status = RecoveryStatus::Exhausted;
  outcome.report.node = node;
  return outcome;
}

RecoveryOutcome recover_node(std::uint64_t node, const GroupAssignment& groups,
                             std::span<BuddyStore* const> stores,
                             PageStore& memory, std::uint64_t expected_hash) {
  RecoveryOutcome outcome = select_replica(node, groups, stores,
                                           expected_hash);
  if (outcome.ok()) memory.restore(*outcome.image);
  return outcome;
}

ReplicationOutcome restore_replicas(
    std::uint64_t node, const GroupAssignment& groups,
    std::span<BuddyStore* const> stores,
    std::span<const std::uint64_t> expected_hashes) {
  check_directory(groups, stores);
  if (expected_hashes.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: expected-hash directory size");
  }
  ReplicationOutcome outcome;
  // For each image the node should hold, scan its group peers in id order
  // (the same order the oracle mirrors) for a clean surviving copy.
  const auto refill_one = [&](std::uint64_t owner) {
    for (std::uint64_t member : groups.members(groups.group_of(owner))) {
      if (member == node) continue;
      auto rung = flatten_rung(*stores[member], owner,
                               expected_hashes[owner]);
      if (!rung) continue;
      if (rung->state != RungState::Clean) {
        ++outcome.corrupt_skipped;
        continue;
      }
      // Refills always deliver the flattened tip, never the raw chain: the
      // receiver restarts its dcp lineage from a full image.
      stores[node]->restore_committed(*rung->tip);
      ++outcome.restored;
      if (rung->layers > 0) {
        ++outcome.chains_replayed;
        outcome.layers_replayed += rung->layers;
      }
      return;
    }
    ++outcome.unavailable;
  };
  for (std::uint64_t owner : groups.stored_for(node)) refill_one(owner);
  // Pair topology keeps a local copy of the node's own image too.
  if (groups.topology() == Topology::Pairs) refill_one(node);
  return outcome;
}

RollbackOutcome select_rollback_set(
    std::size_t retained, const std::function<bool(std::size_t)>& usable) {
  RollbackOutcome outcome;
  for (std::size_t depth = 0; depth < retained; ++depth) {
    if (!usable(depth)) continue;
    outcome.status =
        depth == 0 ? RollbackStatus::Ok : RollbackStatus::RolledBack;
    outcome.depth = depth;
    return outcome;
  }
  outcome.status = RollbackStatus::Exhausted;
  outcome.depth = retained;
  return outcome;
}

bool set_restorable(std::size_t depth, const GroupAssignment& groups,
                    std::span<BuddyStore* const> stores,
                    std::span<const std::uint64_t> expected_hashes) {
  check_directory(groups, stores);
  if (expected_hashes.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: expected-hash directory size");
  }
  for (std::uint64_t node = 0; node < groups.nodes(); ++node) {
    bool found = false;
    for (const std::uint64_t holder : replica_ladder(node, groups)) {
      auto image = stores[holder]->committed_at(depth, node);
      if (!image) continue;
      if (!image->verify(expected_hashes[node])) continue;
      found = true;
      break;
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace dckpt::ckpt
