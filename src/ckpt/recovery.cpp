#include "ckpt/recovery.hpp"

#include <stdexcept>
#include <string>

namespace dckpt::ckpt {

namespace {

void check_directory(const GroupAssignment& groups,
                     std::span<BuddyStore* const> stores) {
  if (stores.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: store/topology size mismatch");
  }
  for (const BuddyStore* store : stores) {
    if (!store) throw std::invalid_argument("recovery: null store");
  }
}

/// Searches the group's surviving stores (excluding `exclude`) for a
/// committed image of `owner`. Returns nullptr when none exists.
BuddyStore* find_holder(std::uint64_t owner, std::uint64_t exclude,
                        const GroupAssignment& groups,
                        std::span<BuddyStore* const> stores) {
  for (std::uint64_t member : groups.members(groups.group_of(owner))) {
    if (member == exclude) continue;
    if (stores[member]->committed_for(owner)) return stores[member];
  }
  return nullptr;
}

}  // namespace

const BuddyStore& locate_replica(std::uint64_t node,
                                 const GroupAssignment& groups,
                                 std::span<BuddyStore* const> stores) {
  check_directory(groups, stores);
  const BuddyStore* holder = find_holder(node, node, groups, stores);
  if (!holder) {
    throw std::runtime_error(
        "fatal failure: no surviving replica of node " + std::to_string(node));
  }
  return *holder;
}

RecoveryReport recover_node(std::uint64_t node, const GroupAssignment& groups,
                            std::span<BuddyStore* const> stores,
                            PageStore& memory, std::uint64_t expected_hash) {
  const BuddyStore& holder = locate_replica(node, groups, stores);
  const Snapshot image = *holder.committed_for(node);
  if (image.content_hash() != expected_hash) {
    throw std::runtime_error("recovery: checkpoint hash mismatch for node " +
                             std::to_string(node));
  }
  memory.restore(image);
  RecoveryReport report;
  report.node = node;
  report.source = holder.node();
  report.version = image.version();
  report.hash_verified = true;
  return report;
}

std::size_t restore_replicas(std::uint64_t node, const GroupAssignment& groups,
                             std::span<BuddyStore* const> stores) {
  check_directory(groups, stores);
  std::size_t restored = 0;
  for (std::uint64_t owner : groups.stored_for(node)) {
    const BuddyStore* holder = find_holder(owner, node, groups, stores);
    if (!holder) {
      throw std::runtime_error(
          "fatal failure: no surviving replica of node " +
          std::to_string(owner));
    }
    stores[node]->restore_committed(*holder->committed_for(owner));
    ++restored;
  }
  // Pair topology keeps a local copy of the node's own image too.
  if (groups.topology() == Topology::Pairs) {
    if (const BuddyStore* holder = find_holder(node, node, groups, stores)) {
      stores[node]->restore_committed(*holder->committed_for(node));
      ++restored;
    }
  }
  return restored;
}

}  // namespace dckpt::ckpt
