#include "ckpt/recovery.hpp"

#include <stdexcept>

namespace dckpt::ckpt {

namespace {

void check_directory(const GroupAssignment& groups,
                     std::span<BuddyStore* const> stores) {
  if (stores.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: store/topology size mismatch");
  }
  for (const BuddyStore* store : stores) {
    if (!store) throw std::invalid_argument("recovery: null store");
  }
}

/// The ordered list of nodes that may hold `node`'s committed image:
/// pairs keep a local copy (preferred on restore -- no transfer), then the
/// preferred buddy; triples store on the preferred and secondary buddies.
std::vector<std::uint64_t> replica_ladder(std::uint64_t node,
                                          const GroupAssignment& groups) {
  if (groups.topology() == Topology::Pairs) {
    return {node, groups.preferred_buddy(node)};
  }
  return {groups.preferred_buddy(node), groups.secondary_buddy(node)};
}

}  // namespace

RecoveryOutcome select_replica(std::uint64_t node,
                               const GroupAssignment& groups,
                               std::span<BuddyStore* const> stores,
                               std::uint64_t expected_hash) {
  check_directory(groups, stores);
  RecoveryOutcome outcome;
  for (const std::uint64_t holder : replica_ladder(node, groups)) {
    auto image = stores[holder]->committed_for(node);
    if (!image) continue;
    ++outcome.candidates_tried;
    if (!image->verify(expected_hash)) {
      ++outcome.corrupt_skipped;
      continue;
    }
    outcome.status = outcome.corrupt_skipped > 0 ? RecoveryStatus::FailedOver
                                                 : RecoveryStatus::Ok;
    outcome.report.node = node;
    outcome.report.source = holder;
    outcome.report.version = image->version();
    outcome.report.hash_verified = true;
    outcome.image = std::move(*image);
    return outcome;
  }
  outcome.status = RecoveryStatus::Exhausted;
  outcome.report.node = node;
  return outcome;
}

RecoveryOutcome recover_node(std::uint64_t node, const GroupAssignment& groups,
                             std::span<BuddyStore* const> stores,
                             PageStore& memory, std::uint64_t expected_hash) {
  RecoveryOutcome outcome = select_replica(node, groups, stores,
                                           expected_hash);
  if (outcome.ok()) memory.restore(*outcome.image);
  return outcome;
}

ReplicationOutcome restore_replicas(
    std::uint64_t node, const GroupAssignment& groups,
    std::span<BuddyStore* const> stores,
    std::span<const std::uint64_t> expected_hashes) {
  check_directory(groups, stores);
  if (expected_hashes.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: expected-hash directory size");
  }
  ReplicationOutcome outcome;
  // For each image the node should hold, scan its group peers in id order
  // (the same order the oracle mirrors) for a clean surviving copy.
  const auto refill_one = [&](std::uint64_t owner) {
    for (std::uint64_t member : groups.members(groups.group_of(owner))) {
      if (member == node) continue;
      auto image = stores[member]->committed_for(owner);
      if (!image) continue;
      if (!image->verify(expected_hashes[owner])) {
        ++outcome.corrupt_skipped;
        continue;
      }
      stores[node]->restore_committed(*image);
      ++outcome.restored;
      return;
    }
    ++outcome.unavailable;
  };
  for (std::uint64_t owner : groups.stored_for(node)) refill_one(owner);
  // Pair topology keeps a local copy of the node's own image too.
  if (groups.topology() == Topology::Pairs) refill_one(node);
  return outcome;
}

RollbackOutcome select_rollback_set(
    std::size_t retained, const std::function<bool(std::size_t)>& usable) {
  RollbackOutcome outcome;
  for (std::size_t depth = 0; depth < retained; ++depth) {
    if (!usable(depth)) continue;
    outcome.status =
        depth == 0 ? RollbackStatus::Ok : RollbackStatus::RolledBack;
    outcome.depth = depth;
    return outcome;
  }
  outcome.status = RollbackStatus::Exhausted;
  outcome.depth = retained;
  return outcome;
}

bool set_restorable(std::size_t depth, const GroupAssignment& groups,
                    std::span<BuddyStore* const> stores,
                    std::span<const std::uint64_t> expected_hashes) {
  check_directory(groups, stores);
  if (expected_hashes.size() != groups.nodes()) {
    throw std::invalid_argument("recovery: expected-hash directory size");
  }
  for (std::uint64_t node = 0; node < groups.nodes(); ++node) {
    bool found = false;
    for (const std::uint64_t holder : replica_ladder(node, groups)) {
      auto image = stores[holder]->committed_at(depth, node);
      if (!image) continue;
      if (!image->verify(expected_hashes[node])) continue;
      found = true;
      break;
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace dckpt::ckpt
