// Umbrella header for the in-memory buddy checkpoint storage substrate.
#pragma once

#include "ckpt/buddy_store.hpp"  // IWYU pragma: export
#include "ckpt/delta.hpp"        // IWYU pragma: export
#include "ckpt/page_store.hpp"   // IWYU pragma: export
#include "ckpt/recovery.hpp"     // IWYU pragma: export
#include "ckpt/ring.hpp"         // IWYU pragma: export
#include "ckpt/transfer.hpp"     // IWYU pragma: export
