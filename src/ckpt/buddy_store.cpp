#include "ckpt/buddy_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace dckpt::ckpt {

BuddyStore::BuddyStore(std::uint64_t node, std::size_t capacity_images,
                       std::size_t retain_sets)
    : node_(node), capacity_(capacity_images), retain_(retain_sets) {
  if (capacity_images == 0) {
    throw std::invalid_argument("BuddyStore: zero capacity");
  }
  if (retain_sets == 0) {
    throw std::invalid_argument("BuddyStore: zero retention");
  }
}

void BuddyStore::stage(const Snapshot& image) {
  if (image.empty()) throw std::invalid_argument("BuddyStore: empty image");
  if (!staged_.empty()) {
    const std::uint64_t current = staged_.begin()->second.version();
    if (image.version() != current) {
      throw std::logic_error(
          "BuddyStore: staging set already holds a different version");
    }
  }
  auto it = staged_.find(image.owner());
  if (it == staged_.end() && staged_.size() >= capacity_) {
    throw std::logic_error("BuddyStore: staging capacity exceeded");
  }
  staged_.insert_or_assign(image.owner(), image);
}

void BuddyStore::promote(std::uint64_t version) {
  if (staged_.empty() || staged_.begin()->second.version() != version) {
    throw std::logic_error("BuddyStore: no staged set of that version");
  }
  if (retain_ > 1) {
    // Outgoing committed set becomes history depth 1. The push happens even
    // for an empty set (a freshly replaced node): every store advances its
    // ring on every commit, so a given depth means the same commit on all
    // stores.
    history_.push_front(RetainedSet{std::move(committed_), committed_version_});
    while (history_.size() > retain_ - 1) history_.pop_back();
  }
  committed_ = std::move(staged_);
  staged_.clear();
  chains_.clear();  // a fresh full set supersedes every differential chain
  committed_version_ = version;
}

void BuddyStore::discard_staged() { staged_.clear(); }

void BuddyStore::restore_committed(const Snapshot& image) {
  if (image.empty()) throw std::invalid_argument("BuddyStore: empty image");
  auto it = committed_.find(image.owner());
  if (it == committed_.end() && committed_.size() >= capacity_) {
    throw std::logic_error("BuddyStore: committed capacity exceeded");
  }
  committed_.insert_or_assign(image.owner(), image);
  chains_.erase(image.owner());  // refills deliver flattened images
  committed_version_ = std::max(committed_version_, image.version());
}

bool BuddyStore::corrupt_committed(std::uint64_t owner, bool torn) {
  auto it = committed_.find(owner);
  if (it == committed_.end()) return false;
  it->second = torn ? torn_copy(it->second) : corrupt_copy(it->second);
  return true;
}

std::optional<Snapshot> BuddyStore::committed_for(std::uint64_t owner) const {
  auto it = committed_.find(owner);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::optional<Snapshot> BuddyStore::committed_at(std::size_t depth,
                                                 std::uint64_t owner) const {
  if (depth == 0) return committed_for(owner);
  if (depth - 1 >= history_.size()) return std::nullopt;
  const auto& images = history_[depth - 1].images;
  auto it = images.find(owner);
  if (it == images.end()) return std::nullopt;
  return it->second;
}

bool BuddyStore::append_delta(const BlockDelta& layer) {
  if (committed_.find(layer.owner()) == committed_.end()) return false;
  chains_[layer.owner()].push_back(layer);
  return true;
}

const std::vector<BlockDelta>& BuddyStore::chain_for(
    std::uint64_t owner) const {
  static const std::vector<BlockDelta> kEmpty;
  auto it = chains_.find(owner);
  return it == chains_.end() ? kEmpty : it->second;
}

bool BuddyStore::corrupt_delta(std::uint64_t owner, std::size_t depth) {
  auto it = chains_.find(owner);
  if (it == chains_.end() || depth == 0 || it->second.size() < depth) {
    return false;
  }
  BlockDelta& layer = it->second[depth - 1];
  layer = torn_layer_copy(layer);
  return true;
}

std::optional<Snapshot> BuddyStore::staged_for(std::uint64_t owner) const {
  auto it = staged_.find(owner);
  if (it == staged_.end()) return std::nullopt;
  return it->second;
}

void BuddyStore::drop_newest(std::size_t count) {
  if (count > 0) chains_.clear();  // chains belong to the discarded set
  for (std::size_t i = 0; i < count; ++i) {
    if (history_.empty()) {
      committed_.clear();
      committed_version_ = 0;
    } else {
      committed_ = std::move(history_.front().images);
      committed_version_ = history_.front().version;
      history_.pop_front();
    }
  }
}

std::size_t BuddyStore::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& [owner, image] : committed_) total += image.size_bytes();
  for (const auto& [owner, image] : staged_) total += image.size_bytes();
  for (const auto& set : history_) {
    for (const auto& [owner, image] : set.images) total += image.size_bytes();
  }
  for (const auto& [owner, chain] : chains_) {
    for (const BlockDelta& layer : chain) total += layer.delta_bytes();
  }
  return total;
}

}  // namespace dckpt::ckpt
