#include "ckpt/buddy_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace dckpt::ckpt {

BuddyStore::BuddyStore(std::uint64_t node, std::size_t capacity_images)
    : node_(node), capacity_(capacity_images) {
  if (capacity_images == 0) {
    throw std::invalid_argument("BuddyStore: zero capacity");
  }
}

void BuddyStore::stage(const Snapshot& image) {
  if (image.empty()) throw std::invalid_argument("BuddyStore: empty image");
  if (!staged_.empty()) {
    const std::uint64_t current = staged_.begin()->second.version();
    if (image.version() != current) {
      throw std::logic_error(
          "BuddyStore: staging set already holds a different version");
    }
  }
  auto it = staged_.find(image.owner());
  if (it == staged_.end() && staged_.size() >= capacity_) {
    throw std::logic_error("BuddyStore: staging capacity exceeded");
  }
  staged_.insert_or_assign(image.owner(), image);
}

void BuddyStore::promote(std::uint64_t version) {
  if (staged_.empty() || staged_.begin()->second.version() != version) {
    throw std::logic_error("BuddyStore: no staged set of that version");
  }
  committed_ = std::move(staged_);
  staged_.clear();
  committed_version_ = version;
}

void BuddyStore::discard_staged() { staged_.clear(); }

void BuddyStore::restore_committed(const Snapshot& image) {
  if (image.empty()) throw std::invalid_argument("BuddyStore: empty image");
  auto it = committed_.find(image.owner());
  if (it == committed_.end() && committed_.size() >= capacity_) {
    throw std::logic_error("BuddyStore: committed capacity exceeded");
  }
  committed_.insert_or_assign(image.owner(), image);
  committed_version_ = std::max(committed_version_, image.version());
}

bool BuddyStore::corrupt_committed(std::uint64_t owner, bool torn) {
  auto it = committed_.find(owner);
  if (it == committed_.end()) return false;
  it->second = torn ? torn_copy(it->second) : corrupt_copy(it->second);
  return true;
}

std::optional<Snapshot> BuddyStore::committed_for(std::uint64_t owner) const {
  auto it = committed_.find(owner);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::optional<Snapshot> BuddyStore::staged_for(std::uint64_t owner) const {
  auto it = staged_.find(owner);
  if (it == staged_.end()) return std::nullopt;
  return it->second;
}

std::size_t BuddyStore::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& [owner, image] : committed_) total += image.size_bytes();
  for (const auto& [owner, image] : staged_) total += image.size_bytes();
  return total;
}

}  // namespace dckpt::ckpt
