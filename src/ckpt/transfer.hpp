// Checkpoint-transfer timing under the paper's overlap law.
//
// Connects the physical quantities (image size, network bandwidth, COW page
// pressure) to the model parameters (R = theta_min, phi, theta(phi)):
//
//   theta_min = image_bytes / network_bandwidth
//   theta(phi) = theta_min + alpha (theta_min - phi)
//
// plan_transfer() answers "if I stretch the upload to theta seconds, what
// overhead phi do I pay and how many pages will COW duplicate?" -- the
// trade-off the paper describes for fork-based checkpointing: slower uploads
// reduce network pressure but leave more pages exposed to application
// writes. The COW estimate assumes the application rewrites its working set
// uniformly at `dirty_rate` pages/s while the upload is in flight and that
// upload order is most-likely-dirty-first (paper Sec. IV), halving exposure.
#pragma once

#include <cstdint>

#include "model/overlap.hpp"

namespace dckpt::ckpt {

struct TransferSpec {
  double image_bytes = 512.0 * 1024 * 1024;
  double network_bandwidth = 128.0 * 1024 * 1024;  ///< bytes/s
  double alpha = 10.0;
  double page_bytes = 4096.0;
  double dirty_rate = 0.0;  ///< application page writes per second
};

struct TransferPlan {
  double theta = 0.0;       ///< transfer duration
  double phi = 0.0;         ///< computation overhead paid
  double theta_min = 0.0;   ///< blocking duration (= model R)
  double expected_cow_pages = 0.0;  ///< pages duplicated during the upload
};

/// Blocking transfer time for the image (the model's R).
double blocking_transfer_time(const TransferSpec& spec);

/// Plan a transfer stretched to overhead `phi` (in [0, theta_min]).
TransferPlan plan_transfer(const TransferSpec& spec, double phi);

/// Inverse planning: the phi needed to finish within `deadline` seconds.
/// Throws when the deadline is shorter than the blocking time.
double phi_for_deadline(const TransferSpec& spec, double deadline);

/// Bounded retry with exponential backoff for checkpoint transfers.
///
/// A re-replication transfer can fail outright or deliver a torn
/// (prefix-only) image that the content-hash check rejects. Either way the
/// runtime re-issues it: retry i (1-based) waits base_delay_steps * 2^(i-1)
/// executed steps before the next attempt, and after `max_attempts` total
/// delivery attempts the refill is abandoned until the next committed
/// exchange re-creates every replica. Every waiting step extends the risk
/// window, so the waste accounting stays honest.
struct RetryPolicy {
  std::uint64_t max_attempts = 3;      ///< total delivery attempts (>= 1)
  std::uint64_t base_delay_steps = 1;  ///< backoff base, in executed steps

  void validate() const;  ///< throws std::invalid_argument

  /// Steps to wait before retry `retry_index` (1-based: the first retry is
  /// index 1). Always at least 1 -- a re-issued transfer cannot complete
  /// within the step that saw it fail. Saturates instead of overflowing.
  std::uint64_t backoff_steps(std::uint64_t retry_index) const;

  /// Expected delivery attempts when each attempt independently fails with
  /// probability `failure_rate` (capped by max_attempts) -- the bridge to
  /// the model's risk-window widening.
  double expected_transfer_attempts(double failure_rate) const;
};

}  // namespace dckpt::ckpt
