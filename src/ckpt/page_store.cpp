#include "ckpt/page_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dckpt::ckpt {

std::uint64_t fnv1a(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// ------------------------------------------------------------------ Snapshot

Snapshot::Snapshot(std::vector<Page> pages, std::size_t size_bytes,
                   std::uint64_t version, std::uint64_t owner)
    : pages_(std::move(pages)), size_bytes_(size_bytes), version_(version),
      owner_(owner) {}

std::uint64_t Snapshot::content_hash() const {
  if (!hash_valid_) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    std::size_t remaining = size_bytes_;
    for (const auto& page : pages_) {
      const std::size_t take = std::min(remaining, page->size());
      hash = fnv1a(std::span(page->data(), take), hash);
      remaining -= take;
    }
    cached_hash_ = hash;
    hash_valid_ = true;
  }
  return cached_hash_;
}

std::vector<std::byte> Snapshot::to_bytes() const {
  std::vector<std::byte> out;
  out.reserve(size_bytes_);
  std::size_t remaining = size_bytes_;
  for (const auto& page : pages_) {
    const std::size_t take = std::min(remaining, page->size());
    out.insert(out.end(), page->begin(), page->begin() + take);
    remaining -= take;
  }
  return out;
}

Snapshot corrupt_copy(const Snapshot& image) {
  if (image.empty()) {
    throw std::invalid_argument("corrupt_copy: empty image");
  }
  std::vector<Snapshot::Page> pages = image.pages();
  auto damaged = std::make_shared<std::vector<std::byte>>(*pages.front());
  if (damaged->empty()) {
    throw std::invalid_argument("corrupt_copy: zero-sized page");
  }
  (*damaged)[0] ^= std::byte{0x5a};
  pages.front() = std::move(damaged);
  return Snapshot(std::move(pages), image.size_bytes(), image.version(),
                  image.owner());
}

Snapshot torn_copy(const Snapshot& image) {
  if (image.empty()) {
    throw std::invalid_argument("torn_copy: empty image");
  }
  std::vector<Snapshot::Page> pages = image.pages();
  // Prefix-only delivery: pages past the halfway point never arrived and
  // read back as zeros. Keeping the page count intact keeps the image
  // structurally restorable -- detection must come from the content hash.
  for (std::size_t i = std::max<std::size_t>(pages.size() / 2, 1);
       i < pages.size(); ++i) {
    pages[i] =
        std::make_shared<std::vector<std::byte>>(pages[i]->size(),
                                                 std::byte{0});
  }
  // Mangle the first byte too (a torn stream header), so the tear is
  // detectable even when the lost tail happened to be all zeros already.
  auto head = std::make_shared<std::vector<std::byte>>(*pages.front());
  if (head->empty()) {
    throw std::invalid_argument("torn_copy: zero-sized page");
  }
  if (pages.size() == 1) {  // single page: the tear hits its second half
    std::fill(head->begin() + static_cast<std::ptrdiff_t>(head->size() / 2),
              head->end(), std::byte{0});
  }
  (*head)[0] ^= std::byte{0xa5};
  pages.front() = std::move(head);
  return Snapshot(std::move(pages), image.size_bytes(), image.version(),
                  image.owner());
}

// ----------------------------------------------------------------- PageStore

PageStore::PageStore(std::size_t size_bytes, std::size_t page_size)
    : size_bytes_(size_bytes), page_size_(page_size) {
  if (size_bytes == 0) throw std::invalid_argument("PageStore: zero size");
  if (page_size == 0) throw std::invalid_argument("PageStore: zero page size");
  const std::size_t count = (size_bytes + page_size - 1) / page_size;
  pages_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pages_.push_back(
        std::make_shared<std::vector<std::byte>>(page_size, std::byte{0}));
  }
}

void PageStore::read(std::size_t offset, std::span<std::byte> out) const {
  // Subtraction-safe: `offset + out.size()` can wrap for huge offsets,
  // passing the naive guard and running an out-of-bounds memcpy.
  if (offset > size_bytes_ || out.size() > size_bytes_ - offset) {
    throw std::out_of_range("PageStore::read past end");
  }
  std::size_t cursor = 0;
  while (cursor < out.size()) {
    const std::size_t pos = offset + cursor;
    const std::size_t page = pos / page_size_;
    const std::size_t in_page = pos % page_size_;
    const std::size_t take =
        std::min(out.size() - cursor, page_size_ - in_page);
    std::memcpy(out.data() + cursor, pages_[page]->data() + in_page, take);
    cursor += take;
  }
}

std::vector<std::byte>& PageStore::writable_page(std::size_t index) {
  MutablePage& page = pages_[index];
  if (page.use_count() > 1) {
    // A snapshot still references this page: clone before mutating.
    page = std::make_shared<std::vector<std::byte>>(*page);
    ++cow_copies_;
  }
  return *page;
}

void PageStore::write(std::size_t offset, std::span<const std::byte> data) {
  // Subtraction-safe for the same wrap hazard as read().
  if (offset > size_bytes_ || data.size() > size_bytes_ - offset) {
    throw std::out_of_range("PageStore::write past end");
  }
  std::size_t cursor = 0;
  while (cursor < data.size()) {
    const std::size_t pos = offset + cursor;
    const std::size_t page = pos / page_size_;
    const std::size_t in_page = pos % page_size_;
    const std::size_t take =
        std::min(data.size() - cursor, page_size_ - in_page);
    std::memcpy(writable_page(page).data() + in_page, data.data() + cursor,
                take);
    cursor += take;
  }
}

Snapshot PageStore::snapshot(std::uint64_t owner) {
  std::vector<Snapshot::Page> shared;
  shared.reserve(pages_.size());
  for (const auto& page : pages_) shared.push_back(page);
  return Snapshot(std::move(shared), size_bytes_, ++version_, owner);
}

void PageStore::restore(const Snapshot& snapshot_image) {
  if (snapshot_image.size_bytes() != size_bytes_ ||
      snapshot_image.page_count() != pages_.size()) {
    throw std::invalid_argument("PageStore::restore: layout mismatch");
  }
  // Re-share the snapshot's pages: restore is O(#pages), not O(bytes).
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    pages_[i] = std::const_pointer_cast<std::vector<std::byte>>(
        snapshot_image.pages()[i]);
  }
  // A snapshot taken after restoring a higher-versioned image must still
  // order after it, or make_delta rejects a legitimate post-failover delta
  // with "base must precede current".
  version_ = std::max(version_, snapshot_image.version());
}

}  // namespace dckpt::ckpt
