#include "net/overlap_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace dckpt::net {

void OverlapWorkload::validate() const {
  if (!(nic_bandwidth > 0.0) || !(compute_time >= 0.0) ||
      !(halo_bytes > 0.0) || !(checkpoint_bytes > 0.0)) {
    throw std::invalid_argument("OverlapWorkload: out of domain");
  }
}

double OverlapWorkload::step_time() const {
  return compute_time + halo_bytes / nic_bandwidth;
}

double OverlapWorkload::app_demand() const {
  return halo_bytes / step_time();
}

double OverlapWorkload::theta_min() const {
  return checkpoint_bytes / nic_bandwidth;
}

double OverlapWorkload::mechanistic_alpha() const {
  const double spare = nic_bandwidth - app_demand();
  if (spare <= 0.0) return kUncapped;
  return app_demand() / spare;
}

namespace {

/// Checkpoint rate taken *during halo phases* under each policy.
///
/// FairShare: the paced flow and the halo flow share the egress max-min
/// fair, so the checkpoint keeps min(pace, B/2).
///
/// Scavenger: the checkpoint prefers the idle compute windows (full B) and
/// intrudes on halo phases only enough to hold the pace schedule. The
/// per-cycle bandwidth balance  B c + y H/(B - y) = pace (c + H/(B - y))
/// gives the minimal intrusion rate
///   y = (pace H - c B (B - pace)) / (H - c (B - pace)),  clamped to [0, B).
double halo_phase_ckpt_rate(const OverlapWorkload& w, double pace,
                            SharingPolicy policy) {
  const double b = w.nic_bandwidth;
  if (policy == SharingPolicy::FairShare) {
    return std::min(pace, b / 2.0);
  }
  const double c = w.compute_time;
  const double h = w.halo_bytes;
  const double denominator = h - c * (b - pace);
  if (denominator <= 0.0) {
    // Compute windows alone can absorb the whole schedule.
    return 0.0;
  }
  const double numerator = pace * h - c * b * (b - pace);
  if (numerator <= 0.0) return 0.0;
  return std::min(numerator / denominator, b * (1.0 - 1e-9));
}

/// Checkpoint rate during compute windows.
double compute_phase_ckpt_rate(const OverlapWorkload& w, double pace,
                               SharingPolicy policy) {
  // FairShare: the paced flow never exceeds its pacing. Scavenger: the
  // window is idle, catch up at full NIC speed.
  return policy == SharingPolicy::FairShare ? pace : w.nic_bandwidth;
}

}  // namespace

OverlapMeasurement measure_overlap(const OverlapWorkload& workload,
                                   double theta_target,
                                   SharingPolicy policy) {
  workload.validate();
  const double b = workload.nic_bandwidth;
  if (!(theta_target >= workload.theta_min() * (1.0 - 1e-12))) {
    throw std::invalid_argument(
        "measure_overlap: theta_target below the blocking time");
  }
  const double pace = std::min(b, workload.checkpoint_bytes / theta_target);
  const double ckpt_halo_rate =
      halo_phase_ckpt_rate(workload, pace, policy);
  const double ckpt_compute_rate =
      compute_phase_ckpt_rate(workload, pace, policy);
  const double halo_rate = b - ckpt_halo_rate;
  if (halo_rate <= 0.0) {
    // Fully blocking: the app is frozen for the whole transfer.
    return {theta_target, workload.theta_min(), workload.theta_min()};
  }
  const double halo_duration = workload.halo_bytes / halo_rate;
  // Scavenger sends at most its per-cycle quota during compute windows.
  const double cycle = workload.compute_time + halo_duration;
  const double quota_per_cycle = pace * cycle;
  const double compute_budget = ckpt_compute_rate * workload.compute_time;
  const double compute_bytes =
      policy == SharingPolicy::Scavenger
          ? std::min(compute_budget, quota_per_cycle)
          : compute_budget;

  // Cycle-wise integration until the checkpoint drains, with exact partial
  // phases. Work is counted in fault-free seconds: compute contributes its
  // duration, a halo phase contributes H/B regardless of how long it took.
  double remaining = workload.checkpoint_bytes;
  double now = 0.0;
  double work = 0.0;
  const double total = workload.checkpoint_bytes;
  while (remaining > total * 1e-12) {
    // Compute window.
    if (workload.compute_time > 0.0 && compute_bytes > 0.0) {
      const double window_rate = compute_bytes / workload.compute_time;
      if (remaining <= compute_bytes) {
        const double dt = remaining / window_rate;
        now += dt;
        work += dt;
        remaining = 0.0;
        break;
      }
      remaining -= compute_bytes;
    }
    now += workload.compute_time;
    work += workload.compute_time;
    // Halo window.
    if (ckpt_halo_rate > 0.0 &&
        remaining <= ckpt_halo_rate * halo_duration) {
      const double dt = remaining / ckpt_halo_rate;
      now += dt;
      work += dt * halo_rate / b;
      remaining = 0.0;
      break;
    }
    remaining -= ckpt_halo_rate * halo_duration;
    now += halo_duration;
    work += workload.halo_bytes / b;
    if (ckpt_halo_rate == 0.0 && compute_bytes == 0.0) {
      throw std::logic_error("measure_overlap: checkpoint cannot progress");
    }
  }

  OverlapMeasurement measurement;
  measurement.theta_target = theta_target;
  measurement.theta = now;
  measurement.phi = now - work;
  return measurement;
}

std::vector<OverlapMeasurement> measure_overlap_curve(
    const OverlapWorkload& workload, SharingPolicy policy, int points,
    double theta_max_factor) {
  workload.validate();
  if (points < 2 || !(theta_max_factor > 1.0)) {
    throw std::invalid_argument("measure_overlap_curve: bad sweep spec");
  }
  std::vector<OverlapMeasurement> curve;
  curve.reserve(points);
  for (double target : util::log_space(workload.theta_min(),
                                       workload.theta_min() * theta_max_factor,
                                       points)) {
    curve.push_back(measure_overlap(workload, target, policy));
  }
  return curve;
}

double fit_alpha(const std::vector<OverlapMeasurement>& points,
                 double theta_min) {
  // theta - theta_min = alpha (theta_min - phi): least squares through the
  // origin on x = theta_min - phi, y = theta - theta_min.
  double sxy = 0.0, sxx = 0.0;
  for (const auto& point : points) {
    const double x = theta_min - point.phi;
    const double y = point.theta - theta_min;
    if (x <= 0.0) continue;  // at or beyond the fully blocking end
    // Beyond theta_max the law saturates at phi = 0; those points are off
    // the line by construction and would bias the slope.
    if (point.phi <= 1e-12 * theta_min) continue;
    sxy += x * y;
    sxx += x * x;
  }
  if (sxx == 0.0) {
    throw std::invalid_argument("fit_alpha: no usable points");
  }
  return sxy / sxx;
}

}  // namespace dckpt::net
