#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dckpt::net {

FlatNetwork::FlatNetwork(std::uint64_t nodes, double nic_bandwidth)
    : nodes_(nodes), nic_(nic_bandwidth) {
  if (nodes < 2) throw std::invalid_argument("FlatNetwork: need >= 2 nodes");
  if (!(nic_bandwidth > 0.0) || !std::isfinite(nic_bandwidth)) {
    throw std::invalid_argument("FlatNetwork: bandwidth must be > 0");
  }
}

std::vector<double> FlatNetwork::fair_rates(
    const std::vector<Flow>& flows) const {
  const std::size_t flow_count = flows.size();
  std::vector<double> rates(flow_count, 0.0);
  if (flow_count == 0) return rates;

  // Ports: egress 2i, ingress 2i+1.
  std::vector<double> remaining(2 * nodes_, nic_);
  std::vector<int> unfixed_on_port(2 * nodes_, 0);
  std::vector<bool> fixed(flow_count, false);

  for (const Flow& flow : flows) {
    if (flow.src >= nodes_ || flow.dst >= nodes_ || flow.src == flow.dst) {
      throw std::invalid_argument("FlatNetwork: bad flow endpoints");
    }
    if (!(flow.rate_cap > 0.0)) {
      throw std::invalid_argument("FlatNetwork: rate cap must be > 0");
    }
    ++unfixed_on_port[2 * flow.src];
    ++unfixed_on_port[2 * flow.dst + 1];
  }

  std::size_t fixed_count = 0;
  while (fixed_count < flow_count) {
    // Fair share of the tightest port among unfixed flows.
    double port_share = kUncapped;
    for (std::size_t p = 0; p < remaining.size(); ++p) {
      if (unfixed_on_port[p] > 0) {
        port_share =
            std::min(port_share, remaining[p] / unfixed_on_port[p]);
      }
    }
    // The binding constraint may instead be some flow's pacing cap.
    double cap_min = kUncapped;
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (!fixed[f]) cap_min = std::min(cap_min, flows[f].rate_cap);
    }
    const double level = std::min(port_share, cap_min);

    auto fix_flow = [&](std::size_t f, double rate) {
      rates[f] = rate;
      fixed[f] = true;
      ++fixed_count;
      remaining[2 * flows[f].src] -= rate;
      remaining[2 * flows[f].dst + 1] -= rate;
      --unfixed_on_port[2 * flows[f].src];
      --unfixed_on_port[2 * flows[f].dst + 1];
    };

    bool progressed = false;
    if (cap_min < port_share) {
      // Cap-limited flows saturate below the water level: fix them first.
      for (std::size_t f = 0; f < flow_count; ++f) {
        if (!fixed[f] && flows[f].rate_cap <= level) {
          fix_flow(f, flows[f].rate_cap);
          progressed = true;
        }
      }
    } else {
      // Identify the bottleneck ports *before* fixing anything (fixing
      // changes the shares), then fix every unfixed flow through one.
      constexpr double kTolerance = 1.0 + 1e-12;
      std::vector<bool> bottleneck(remaining.size(), false);
      for (std::size_t p = 0; p < remaining.size(); ++p) {
        if (unfixed_on_port[p] > 0 &&
            remaining[p] / unfixed_on_port[p] <= level * kTolerance) {
          bottleneck[p] = true;
        }
      }
      for (std::size_t f = 0; f < flow_count; ++f) {
        if (fixed[f]) continue;
        if (bottleneck[2 * flows[f].src] ||
            bottleneck[2 * flows[f].dst + 1]) {
          fix_flow(f, std::min(level, flows[f].rate_cap));
          progressed = true;
        }
      }
    }
    if (!progressed) {
      throw std::logic_error("FlatNetwork::fair_rates failed to converge");
    }
  }
  return rates;
}

}  // namespace dckpt::net
