// Mechanistic measurement of the paper's overlap law.
//
// The paper *postulates* theta(phi) = theta_min + alpha (theta_min - phi)
// and treats alpha as a given. Here we measure phi(theta) from first
// principles: an application alternates compute bursts with halo exchanges
// on its NIC while a checkpoint transfer of S bytes, paced to finish in a
// target theta, contends for the same egress port. Two sharing policies:
//
//   FairShare  checkpoint and halo traffic split the NIC max-min fair
//              (TCP-like);
//   Scavenger  the checkpoint only uses bandwidth the application leaves
//              idle (background/priority queuing, what Charm++-style
//              runtimes approximate).
//
// The fluid analysis of the Scavenger policy reproduces the paper's linear
// law exactly, with a mechanistic overlap factor
//
//   alpha = A / (B - A),   A = average app egress demand, B = NIC bandwidth
//
// (alpha = 10 corresponds to the app using ~91% of the NIC -- the paper's
// "conservative assumption on the communication-to-computation ratio").
// The bench bench_ablation_overlap_law compares both measured curves with
// the paper's line.
#pragma once

#include <vector>

#include "net/network.hpp"

namespace dckpt::net {

enum class SharingPolicy { FairShare, Scavenger };

struct OverlapWorkload {
  double nic_bandwidth = 128.0 * 1024 * 1024;  ///< B [bytes/s]
  double compute_time = 0.01;                  ///< c per step [s]
  double halo_bytes = 12.0 * 1024 * 1024;      ///< H per step
  double checkpoint_bytes = 512.0 * 1024 * 1024;  ///< S

  void validate() const;

  /// Fault-free step duration c + H/B.
  double step_time() const;

  /// Average application egress demand A = H / step_time.
  double app_demand() const;

  /// Blocking checkpoint transfer time theta_min = S / B.
  double theta_min() const;

  /// Mechanistic overlap factor alpha = A / (B - A); +inf when the app
  /// saturates the NIC.
  double mechanistic_alpha() const;
};

struct OverlapMeasurement {
  double theta_target = 0.0;  ///< requested transfer duration (pacing)
  double theta = 0.0;         ///< measured transfer duration
  double phi = 0.0;           ///< measured lost work during the transfer
};

/// Runs the contention experiment for one pacing target
/// (theta_target >= theta_min). Returns the measured (theta, phi).
OverlapMeasurement measure_overlap(const OverlapWorkload& workload,
                                   double theta_target,
                                   SharingPolicy policy);

/// Sweeps `points` pacing targets between theta_min and `theta_max_factor`
/// times theta_min (log-spaced).
std::vector<OverlapMeasurement> measure_overlap_curve(
    const OverlapWorkload& workload, SharingPolicy policy, int points = 12,
    double theta_max_factor = 20.0);

/// Least-squares fit of the paper's linear law theta = theta_min +
/// alpha (theta_min - phi) to measured points; returns alpha.
double fit_alpha(const std::vector<OverlapMeasurement>& points,
                 double theta_min);

}  // namespace dckpt::net
