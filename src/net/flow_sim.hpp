// Flow-level network simulation: fluid transfers with piecewise-constant
// max-min fair rates. Between events (flow arrival or completion) rates are
// constant; the simulator advances to the next event, integrates progress,
// and recomputes the allocation -- the standard flow-level methodology.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace dckpt::net {

struct FlowRequest {
  Flow flow;
  double bytes = 0.0;   ///< transfer size
  double start = 0.0;   ///< arrival time
  std::uint64_t tag = 0;  ///< caller's identifier
  /// Fraction of `bytes` that actually arrives, in (0, 1]. Below 1 the
  /// sender dies mid-transfer: the flow occupies the network only for the
  /// delivered prefix and completes *torn* -- the flow-level analogue of
  /// the checkpoint layer's torn replica images (appended; default keeps
  /// older callers whole).
  double deliver_fraction = 1.0;
};

struct FlowCompletion {
  std::uint64_t tag = 0;
  double start = 0.0;
  double finish = 0.0;
  double bytes = 0.0;  ///< requested size (what the caller asked to move)
  // Appended: torn-delivery accounting. delivered_bytes == bytes and
  // torn == false for every whole transfer.
  double delivered_bytes = 0.0;
  bool torn = false;

  double duration() const noexcept { return finish - start; }
  double mean_rate() const noexcept {
    return duration() > 0.0 ? delivered_bytes / duration() : 0.0;
  }
};

class FlowSimulator {
 public:
  explicit FlowSimulator(FlatNetwork network);

  /// Queues a transfer; requests may be submitted in any order.
  void submit(const FlowRequest& request);

  /// Runs until every submitted flow completes; returns completions sorted
  /// by finish time. The simulator can be reused after run().
  std::vector<FlowCompletion> run();

 private:
  FlatNetwork network_;
  std::vector<FlowRequest> pending_;
};

}  // namespace dckpt::net
