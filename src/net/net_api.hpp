// Umbrella header for the flow-level network substrate and the overlap-law
// measurement experiment.
#pragma once

#include "net/flow_sim.hpp"            // IWYU pragma: export
#include "net/network.hpp"             // IWYU pragma: export
#include "net/overlap_experiment.hpp"  // IWYU pragma: export
