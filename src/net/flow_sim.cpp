#include "net/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dckpt::net {

FlowSimulator::FlowSimulator(FlatNetwork network)
    : network_(std::move(network)) {}

void FlowSimulator::submit(const FlowRequest& request) {
  if (!(request.bytes > 0.0) || !std::isfinite(request.bytes)) {
    throw std::invalid_argument("FlowSimulator: bytes must be > 0");
  }
  if (!(request.start >= 0.0) || !std::isfinite(request.start)) {
    throw std::invalid_argument("FlowSimulator: start must be >= 0");
  }
  if (!(request.deliver_fraction > 0.0) || request.deliver_fraction > 1.0) {
    throw std::invalid_argument(
        "FlowSimulator: deliver_fraction must be in (0, 1]");
  }
  pending_.push_back(request);
}

std::vector<FlowCompletion> FlowSimulator::run() {
  struct Live {
    FlowRequest request;
    double remaining;
    bool active = false;
    bool done = false;
  };
  std::vector<Live> live;
  live.reserve(pending_.size());
  for (const auto& request : pending_) {
    // A torn delivery only moves (and only occupies the network for) the
    // surviving prefix.
    live.push_back(
        {request, request.bytes * request.deliver_fraction, false, false});
  }
  pending_.clear();

  std::vector<FlowCompletion> completions;
  completions.reserve(live.size());
  double now = 0.0;

  while (completions.size() < live.size()) {
    // Activate arrivals and find the next arrival beyond `now`.
    double next_arrival = std::numeric_limits<double>::infinity();
    for (auto& entry : live) {
      if (entry.done) continue;
      if (entry.request.start <= now) {
        entry.active = true;
      } else {
        next_arrival = std::min(next_arrival, entry.request.start);
      }
    }

    // Gather the active set and its fair allocation.
    std::vector<Flow> flows;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].active && !live[i].done) {
        flows.push_back(live[i].request.flow);
        index.push_back(i);
      }
    }
    if (flows.empty()) {
      if (!std::isfinite(next_arrival)) {
        throw std::logic_error("FlowSimulator: stalled with pending flows");
      }
      now = next_arrival;
      continue;
    }
    const auto rates = network_.fair_rates(flows);

    // Next completion under these rates.
    double next_completion = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < index.size(); ++k) {
      if (rates[k] > 0.0) {
        next_completion =
            std::min(next_completion, now + live[index[k]].remaining / rates[k]);
      }
    }
    const double horizon = std::min(next_completion, next_arrival);
    if (!std::isfinite(horizon)) {
      throw std::logic_error("FlowSimulator: no progress possible");
    }
    const double dt = horizon - now;

    // Integrate and harvest completions (tolerate float dust).
    for (std::size_t k = 0; k < index.size(); ++k) {
      Live& entry = live[index[k]];
      entry.remaining -= rates[k] * dt;
      if (entry.remaining <= entry.request.bytes * 1e-12) {
        entry.done = true;
        FlowCompletion completion;
        completion.tag = entry.request.tag;
        completion.start = entry.request.start;
        completion.finish = horizon;
        completion.bytes = entry.request.bytes;
        completion.delivered_bytes =
            entry.request.bytes * entry.request.deliver_fraction;
        completion.torn = entry.request.deliver_fraction < 1.0;
        completions.push_back(completion);
      }
    }
    now = horizon;
  }

  std::sort(completions.begin(), completions.end(),
            [](const FlowCompletion& a, const FlowCompletion& b) {
              return a.finish < b.finish;
            });
  return completions;
}

}  // namespace dckpt::net
