// Flat network model with max-min fair bandwidth sharing.
//
// The overlap law theta(phi) the paper postulates comes from checkpoint
// traffic contending with application messages on the node interconnect.
// To study that mechanism we model the network the way flow-level
// simulators do: every node has an egress and an ingress port of fixed
// capacity (full-bisection core), and the rates of concurrently active
// flows are the max-min fair allocation subject to optional per-flow caps
// (pacing) -- the classic progressive-filling solution.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dckpt::net {

inline constexpr double kUncapped = std::numeric_limits<double>::infinity();

/// One point-to-point transfer demand.
struct Flow {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double rate_cap = kUncapped;  ///< pacing limit [bytes/s]
};

class FlatNetwork {
 public:
  /// `nodes` hosts, each with `nic_bandwidth` bytes/s in each direction.
  FlatNetwork(std::uint64_t nodes, double nic_bandwidth);

  std::uint64_t nodes() const noexcept { return nodes_; }
  double nic_bandwidth() const noexcept { return nic_; }

  /// Max-min fair rates for the given concurrently-active flows
  /// (progressive filling with caps). Flows with src == dst are rejected.
  /// Complexity O(F^2) -- fine for the flow counts we simulate.
  std::vector<double> fair_rates(const std::vector<Flow>& flows) const;

 private:
  std::uint64_t nodes_;
  double nic_;
};

}  // namespace dckpt::net
