// Parameter-sweep driver: runs Monte-Carlo campaigns over a grid of
// (protocol, MTBF, phi) points with one shared thread pool, producing a
// flat result table. Benches and examples use this instead of hand-rolled
// triple loops.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "model/dcp.hpp"
#include "model/protocol.hpp"
#include "sim/runner.hpp"

namespace dckpt::sim {

struct SweepPoint {
  model::Protocol protocol = model::Protocol::DoubleNbl;
  double mtbf = 0.0;
  double phi = 0.0;
  double period = 0.0;        ///< period actually simulated
  double model_waste = 0.0;   ///< analytic waste at that period
  MonteCarloResult result;
  double weibull_shape = 0.0;  ///< injector shape (0 = exponential)
  /// Clustered-model (nonexponential.hpp) waste at the expected-makespan
  /// horizon; equals model_waste when weibull_shape is 0.
  double model_waste_weibull = 0.0;
  /// Verified-checkpoint model (sdc.hpp) waste at the simulated period;
  /// equals model_waste when the sweep runs without verification.
  double model_waste_sdc = 0.0;
  /// Fault-prediction model (predictor.hpp) waste at the simulated period;
  /// equals model_waste when the sweep runs without prediction.
  double model_waste_pred = 0.0;
  /// Differential-checkpoint model (dcp.hpp) waste at the simulated period;
  /// equals model_waste when the sweep runs without dcp.
  double model_waste_dcp = 0.0;
};

/// Timing/throughput snapshot handed to SweepSpec::progress after every
/// grid point (completed or skipped as infeasible). All durations are wall
/// seconds measured on a steady clock.
struct SweepProgress {
  std::size_t points_done = 0;     ///< feasible points completed so far
  std::size_t points_skipped = 0;  ///< infeasible points skipped so far
  std::size_t points_total = 0;    ///< full grid size
  std::uint64_t trials_done = 0;   ///< Monte-Carlo trials completed so far
  double elapsed = 0.0;            ///< since run_sweep started
  double point_elapsed = 0.0;      ///< the grid point just finished
  double trials_per_sec = 0.0;     ///< aggregate campaign throughput
  /// Row just produced; nullptr when the point was skipped as infeasible.
  const SweepPoint* point = nullptr;
};

struct SweepSpec {
  std::vector<model::Protocol> protocols;
  std::vector<double> mtbfs;
  std::vector<double> phi_ratios;   ///< phi / R
  model::Parameters base;           ///< template; mtbf/overhead overridden
  double t_base_in_mtbfs = 25.0;    ///< t_base = factor * M
  std::uint64_t trials = 60;
  std::uint64_t seed = 0x5eed;
  std::size_t threads = 0;
  /// Weibull shape for failure injection (0 = exponential). When > 0 every
  /// point simulates Weibull inter-failure times of matched per-node mean
  /// and the row additionally carries the clustered-model waste.
  double weibull_shape = 0.0;
  /// Silent-error axis (verify_every == 0 disables it, matching SimConfig).
  /// When enabled every point simulates verified checkpoints and the row
  /// additionally carries the (V, k, P) model waste.
  double sdc_rate = 0.0;           ///< platform strike rate, 1/s
  double verify_cost = 0.0;        ///< V: blocking verification time, s
  std::uint64_t verify_every = 0;  ///< k: periods per verification (0 = off)
  std::uint64_t keep_last = 1;     ///< l: retained committed checkpoint sets
  /// Fault-prediction axis (pred_recall == 0 disables it, matching
  /// SimConfig). When enabled every point simulates a (p, r, w) predictor
  /// with proactive checkpoints and the row additionally carries the
  /// predictor-model waste.
  double pred_precision = 1.0;  ///< p: fraction of alarms that are true
  double pred_recall = 0.0;     ///< r: fraction of failures predicted
  double pred_window = 0.0;     ///< w: alarm lead-time window width, s
  double proactive_cost = 0.0;  ///< C_p: blocking proactive checkpoint, s
  /// Differential-checkpoint axis (dcp.stack_size == 0 disables it,
  /// matching SimConfig). When enabled every point simulates dcp-scaled
  /// exchange/recovery geometry and the row additionally carries the
  /// dirty-fraction model waste. The default period stays the full-image
  /// closed form, so model_waste_dcp and the simulation read the *same*
  /// period -- pass `period` to study the dcp optimum instead.
  model::DcpSpec dcp;
  /// Optional period override; default: closed-form optimum per point.
  std::function<double(model::Protocol, const model::Parameters&)> period;
  /// Forwarded to MonteCarloOptions::metrics for every point.
  std::optional<MetricsSpec> metrics;
  /// Invoked after each grid point; unset = zero instrumentation cost
  /// beyond one clock read per point.
  std::function<void(const SweepProgress&)> progress;
};

/// Runs the full grid (skipping infeasible points) and returns one row per
/// feasible point, in (protocol, mtbf, phi) lexicographic order.
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

}  // namespace dckpt::sim
