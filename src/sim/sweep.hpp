// Parameter-sweep driver: runs Monte-Carlo campaigns over a grid of
// (protocol, MTBF, phi) points with one shared thread pool, producing a
// flat result table. Benches and examples use this instead of hand-rolled
// triple loops.
#pragma once

#include <functional>
#include <vector>

#include "model/protocol.hpp"
#include "sim/runner.hpp"

namespace dckpt::sim {

struct SweepPoint {
  model::Protocol protocol = model::Protocol::DoubleNbl;
  double mtbf = 0.0;
  double phi = 0.0;
  double period = 0.0;        ///< period actually simulated
  double model_waste = 0.0;   ///< analytic waste at that period
  MonteCarloResult result;
};

struct SweepSpec {
  std::vector<model::Protocol> protocols;
  std::vector<double> mtbfs;
  std::vector<double> phi_ratios;   ///< phi / R
  model::Parameters base;           ///< template; mtbf/overhead overridden
  double t_base_in_mtbfs = 25.0;    ///< t_base = factor * M
  std::uint64_t trials = 60;
  std::uint64_t seed = 0x5eed;
  std::size_t threads = 0;
  /// Optional period override; default: closed-form optimum per point.
  std::function<double(model::Protocol, const model::Parameters&)> period;
};

/// Runs the full grid (skipping infeasible points) and returns one row per
/// feasible point, in (protocol, mtbf, phi) lexicographic order.
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

}  // namespace dckpt::sim
