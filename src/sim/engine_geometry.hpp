// Static per-run protocol geometry shared by the scalar reference engine
// (protocol_sim.cpp) and the batched SoA kernel (batch_kernel.cpp).
//
// Both engines must advance a trial through *exactly* the same arithmetic:
// the batched kernel's contract is bit-identical TrialResults on the same
// RNG stream. Deriving the geometry once, in one translation-unit-shared
// function, guarantees the two paths agree on every derived constant
// (per-phase lengths, work rates, recovery windows) down to the last ulp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "model/dcp.hpp"
#include "model/parameters.hpp"
#include "model/protocol.hpp"
#include "model/risk.hpp"
#include "model/waste.hpp"
#include "util/rng.hpp"

namespace dckpt::sim::engine {

/// Per-run constants of the period state machine.
struct Geometry {
  double part1 = 0.0;
  double part2 = 0.0;
  double part3 = 0.0;
  double rate1 = 0.0;  ///< work rate during part 1
  double rate2 = 0.0;  ///< work rate during part 2
  double downtime = 0.0;
  double recover = 0.0;         ///< blocking recovery transfer time
  double reexec_overlap = 0.0;  ///< degraded window at re-execution start
  double overlap_rate = 0.0;    ///< work rate inside that window
  double risk = 0.0;            ///< exposure window length
  bool commit_after_part1 = false;  ///< triple protocols commit early
};

inline Geometry make_geometry(model::Protocol protocol,
                              const model::Parameters& params, double period,
                              const model::DcpSpec& dcp = {}) {
  using model::Protocol;
  const auto parts = model::period_parts(protocol, params, period);
  const auto transfer = model::effective_transfer(protocol, params);
  const double theta = transfer.theta;
  const double phi = transfer.phi;
  const double transfer_rate = (theta - phi) / theta;

  Geometry g;
  g.part1 = parts.part1;
  g.part2 = parts.part2;
  g.part3 = parts.part3;
  g.rate1 = model::is_triple(protocol) ? transfer_rate : 0.0;
  g.rate2 = transfer_rate;
  g.downtime = params.downtime;
  g.risk = model::risk_window(protocol, params);
  g.commit_after_part1 = model::is_triple(protocol);
  g.overlap_rate = transfer_rate;
  switch (protocol) {
    case Protocol::DoubleNbl:
      g.recover = params.recovery();
      g.reexec_overlap = theta;
      break;
    case Protocol::DoubleBof:
    case Protocol::DoubleBlocking:
      g.recover = 2.0 * params.recovery();
      g.reexec_overlap = 0.0;
      break;
    case Protocol::Triple:
      g.recover = params.recovery();
      g.reexec_overlap = 2.0 * theta;
      break;
    case Protocol::TripleBof:
      g.recover = 3.0 * params.recovery();
      g.reexec_overlap = 0.0;
      break;
  }
  // Differential checkpointing: the exchange phases shrink to the
  // effective dirty fraction m of their full-image length -- the compute
  // phase absorbs the difference so the period length stays exactly P
  // (the model's P/2 lost-work term is untouched) -- and the recovery
  // transfer grows by the expected base-plus-chain replay factor g.
  if (dcp.enabled()) {
    const double m = model::checkpoint_volume_multiplier(dcp);
    const double replay = model::recovery_multiplier(dcp);
    g.part1 = parts.part1 * m;
    g.part2 = parts.part2 * m;
    g.part3 = std::max(0.0, period - g.part1 - g.part2);
    g.recover *= replay;
  }
  return g;
}

/// Work threshold below which a trial counts as complete; shared so the
/// batched kernel terminates on exactly the same comparison.
inline constexpr double kWorkEpsilon = 1e-9;

/// Phase-remaining threshold that triggers a phase transition.
inline constexpr double kPhaseEpsilon = 1e-12;

/// Time to re-gain `deficit` units of work: degraded window first, then
/// full speed. Shared between the engines (same formula, same rounding).
inline double reexec_duration(const Geometry& geo, double deficit) {
  const double window = geo.reexec_overlap;
  const double degraded_gain = window * geo.overlap_rate;
  if (deficit <= degraded_gain || window == 0.0) {
    return geo.overlap_rate > 0.0
               ? deficit / (window > 0.0 ? geo.overlap_rate : 1.0)
               : (window > 0.0 ? std::numeric_limits<double>::infinity()
                               : deficit);
  }
  return window + (deficit - degraded_gain);
}

/// Livelock guard used by both engines.
inline double makespan_cap(double max_makespan, double t_base, double period) {
  return max_makespan > 0.0 ? max_makespan
                            : 1e4 * std::max(t_base, period);
}

/// Seed salt deriving the silent-error strike stream from a trial's master
/// stream seed: strikes and fail-stop failures draw from independent
/// generators, so enabling SDC never perturbs the failure arrival sequence
/// (nor vice versa). Shared so both engines salt identically.
inline constexpr std::uint64_t kSdcSeedSalt = 0xa24baed4963ee407ULL;

/// Advances the platform-wide Poisson strike clock: same literal ops as the
/// scalar exponential injector (one open-zero uniform, one log, one divide),
/// shared so both engines round identically.
inline double next_strike_time(double current, util::Xoshiro256ss& rng,
                               double sdc_rate) {
  return current + -std::log(rng.next_double_open_zero()) / sdc_rate;
}

/// Seed salts deriving the fault-predictor streams from a trial's master
/// stream seed (same discipline as kSdcSeedSalt): the per-failure
/// predicted/missed decision stream and the false-alarm Poisson clock are
/// independent of each other and of the failure/strike streams, so enabling
/// prediction never perturbs the arrival sequences. Shared so both engines
/// salt identically.
inline constexpr std::uint64_t kPredSeedSalt = 0x6a09e667f3bcc909ULL;
inline constexpr std::uint64_t kFalseAlarmSeedSalt = 0xbb67ae8584caa73bULL;

/// Platform false-alarm rate of a (p, r) predictor: true alarms arrive at
/// rate r/M, and precision p means a fraction (1 - p) of all alarms are
/// false, so false alarms arrive at (r/M)(1 - p)/p. Shared so both engines
/// round identically.
inline double false_alarm_rate(double mtbf, double precision, double recall) {
  return recall * (1.0 - precision) / precision / mtbf;
}

/// Retained-checkpoint ladder for verified rollback, the simulator's analog
/// of the runtime's keep-last-l retention ring. Rung 0 is the newest commit;
/// the ladder is seeded with the pristine initial state {level 0, taint 0}.
/// `taint` counts the silent strikes whose corruption the rung's snapshot
/// captured (the continuous-time mirror of the runtime's per-set epoch
/// bookkeeping); a rung is restorable iff its taint is zero. Shared by the
/// scalar engine and the batched kernel so ladder decisions are identical by
/// construction.
struct SdcLadder {
  struct Rung {
    double level = 0.0;        ///< work level the snapshot captured
    std::uint64_t taint = 0;   ///< strikes baked into the snapshot
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<Rung> rungs;  ///< index 0 = newest
  std::size_t capacity = 1;

  void reset(std::size_t keep_last) {
    capacity = keep_last;
    rungs.clear();
    rungs.push_back(Rung{});
  }

  /// Records a committed snapshot; the oldest rung past `capacity` is
  /// evicted (after which the initial state is no longer reachable).
  void push(double level, std::uint64_t taint) {
    rungs.insert(rungs.begin(), Rung{level, taint});
    if (rungs.size() > capacity) rungs.resize(capacity);
  }

  /// Taint of the newest rung (what a fail-stop rollback restores).
  std::uint64_t front_taint() const noexcept { return rungs.front().taint; }

  /// Shallowest restorable rung, or npos when every retained snapshot
  /// captured some strike.
  std::size_t first_clean() const noexcept {
    for (std::size_t d = 0; d < rungs.size(); ++d) {
      if (rungs[d].taint == 0) return d;
    }
    return npos;
  }

  /// Discards the `depth` newest rungs (they captured the corruption being
  /// rolled back over).
  void drop(std::size_t depth) {
    rungs.erase(rungs.begin(),
                rungs.begin() + static_cast<std::ptrdiff_t>(depth));
  }
};

}  // namespace dckpt::sim::engine
