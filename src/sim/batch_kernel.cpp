#include "sim/batch_kernel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "model/protocol.hpp"
#include "sim/engine_geometry.hpp"
#include "sim/failure_injector.hpp"

namespace dckpt::sim {
namespace {

using engine::Geometry;
using engine::kPhaseEpsilon;
using engine::kWorkEpsilon;

/// Raw xoshiro words per bulk refill (one cache-line-friendly block).
/// Kept modest: a trial consumes roughly two words per failure, so a large
/// block would mostly pre-generate words the trial never reads.
constexpr std::size_t kWordBlock = 64;
/// Pre-sampled failure events per refill of the exponential event ring.
/// Each pre-sampled event costs a log(); sampling far past the trial's last
/// failure is pure waste, so the block is small and refills amortize the
/// loop overhead rather than the sampling itself.
constexpr std::size_t kEventBlock = 8;

/// Conservative relative margin for the fast-path guards. It dwarfs the few
/// ulps of drift between the guard arithmetic and the exact per-step values
/// (< 10 rounding errors of 2^-53 each), so a passing guard *proves* the
/// scalar engine would see an event-free, cap-free, completion-free period,
/// while a near-boundary period merely falls back to exact stepping.
constexpr double kGuardMargin = 1.0 + 1e-12;

/// Margin for the multi-period fast-run bound: must dominate both
/// kGuardMargin and the rounding drift the += chains accumulate over
/// kMaxFastRun periods (~3 * kMaxFastRun ulps < 1e-10 relative).
constexpr double kMultiMargin = 1.0 + 2e-9;
constexpr double kInvMultiMargin = 1.0 / kMultiMargin;
constexpr std::size_t kMaxFastRun = 65536;

enum class Phase : std::uint8_t {
  Part1, Part2, Part3, Down, Recover, Reexec, Verify, Proactive
};

/// Open exposure window, the flat-vector mirror of RiskTracker's per-group
/// map. Failure times are strictly increasing within a trial, so pruning
/// globally on each failure drops only windows that could never influence a
/// later verdict -- decisions are identical to the lazy per-group pruning.
struct RiskWin {
  std::uint64_t group;
  std::uint64_t member;
  double expiry;
};

/// Exponential platform failures, pre-sampled in blocks.
///
/// PlatformExponentialInjector is a pure function of its RNG stream (peek
/// samples lazily, replacement is a no-op for the memoryless process), so
/// sampling kEventBlock arrivals ahead yields exactly the events the scalar
/// injector would produce on demand: per event one open-zero uniform for the
/// inter-arrival, then Lemire rejection words for the node id, in that order.
class ExpEventSource {
 public:
  void reset(std::uint64_t seed, double platform_mtbf, std::uint64_t nodes) {
    rng_ = util::Xoshiro256ss(seed);
    rate_ = 1.0 / platform_mtbf;  // same literal op as the scalar injector
    node_count_ = nodes;
    clock_ = 0.0;
    word_pos_ = kWordBlock;
    refill_events();
  }

  double peek_time() const noexcept { return times_[head_]; }
  std::uint64_t peek_node() const noexcept { return nodes_[head_]; }

  void pop() {
    if (++head_ == kEventBlock) refill_events();
  }

  void on_node_replaced(std::uint64_t, double, double) noexcept {
    // Memoryless process: replacement changes nothing (mirrors the scalar
    // injector exactly).
  }

 private:
  std::uint64_t word() {
    if (word_pos_ == kWordBlock) {
      rng_.fill(words_.data(), kWordBlock);
      word_pos_ = 0;
    }
    return words_[word_pos_++];
  }

  /// Lemire multiply-shift rejection, verbatim from Xoshiro256ss::next_below
  /// but consuming words from the bulk ring in the same order.
  std::uint64_t next_below(std::uint64_t bound) {
    std::uint64_t x = word();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = word();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  void refill_events() {
    head_ = 0;
    for (std::size_t i = 0; i < kEventBlock; ++i) {
      // (0, 1] uniform from the top 53 bits -- identical rounding to
      // Xoshiro256ss::next_double_open_zero.
      const double u =
          (static_cast<double>(word() >> 11) + 1.0) * 0x1.0p-53;
      clock_ += -std::log(u) / rate_;
      times_[i] = clock_;
      nodes_[i] = next_below(node_count_);
    }
  }

  util::Xoshiro256ss rng_{0};
  double rate_ = 1.0;
  std::uint64_t node_count_ = 1;
  double clock_ = 0.0;
  std::array<std::uint64_t, kWordBlock> words_{};
  std::size_t word_pos_ = kWordBlock;
  std::array<double, kEventBlock> times_{};
  std::array<std::uint64_t, kEventBlock> nodes_{};
  std::size_t head_ = 0;
};

/// Per-node renewal failures (Weibull et al.): wraps the real injector so
/// heap ordering, generation invalidation and draw order are identical by
/// construction. The cached next event is refreshed only at the points where
/// the scalar engine would observe peek() -- never between pop() and
/// on_node_replaced(), where the heap is in a transient state.
class RenewalEventSource {
 public:
  void set_law(const util::Weibull& weibull) { law_ = weibull; }

  void reset(std::uint64_t seed, double /*platform_mtbf*/,
             std::uint64_t nodes) {
    injector_ = std::make_unique<PerNodeInjector>(law_, nodes,
                                                  util::Xoshiro256ss(seed));
    next_ = injector_->peek();
  }

  double peek_time() const noexcept { return next_.time; }
  std::uint64_t peek_node() const noexcept { return next_.node; }

  void pop() { injector_->pop(); }

  void on_node_replaced(std::uint64_t node, double failure_time,
                        double rebirth_time) {
    injector_->on_node_replaced(node, failure_time, rebirth_time);
    next_ = injector_->peek();
  }

 private:
  util::Weibull law_{1.0, 1.0};
  std::unique_ptr<PerNodeInjector> injector_;
  FailureEvent next_{};
};

/// Cold (exact-path-only) per-lane state. The hot fields live in the SoA
/// arrays of WaveRunner; these are touched only around failures and the
/// completion endgame.
struct LaneCold {
  Phase phase = Phase::Part1;
  double rem = 0.0;      ///< phase_remaining
  double overlap = 0.0;  ///< degraded re-execution window left
  Phase resume_phase = Phase::Part1;
  double resume_rem = 0.0;
  double pre_failure_work = 0.0;
  double risk_open_until = 0.0;
  double time_down = 0.0;
  double time_recovering = 0.0;
  double time_reexecuting = 0.0;
  double time_at_risk = 0.0;
  std::uint64_t failures = 0;
  bool fatal = false;
  double fatal_time = 0.0;
  bool diverged = false;
  bool done = true;
  std::vector<RiskWin> risk;  ///< buffer reused across trials

  // Silent-error mirror of the scalar engine (cold: SDC lanes never take
  // the fast path, so none of this sits on the event-free hot loop).
  util::Xoshiro256ss sdc_rng{0};
  std::uint64_t live_taint = 0;
  std::uint64_t pending_taint = 0;
  engine::SdcLadder ladder;  ///< rung buffer reused across trials
  std::uint64_t periods_since_verify = 0;
  bool resume_fresh_period = false;
  double time_verifying = 0.0;
  std::uint64_t sdc_injected = 0;
  std::uint64_t verifications_run = 0;
  std::uint64_t sdc_detected = 0;
  std::uint64_t rollback_depth = 0;

  // Fault-prediction mirror of the scalar engine (cold: prediction lanes
  // never take the fast path either -- proactive commits splice into the
  // period structure just like verification does).
  util::Xoshiro256ss pred_rng{0};
  util::Xoshiro256ss false_rng{0};
  double next_true_alarm = 0.0;
  double next_false_alarm = 0.0;
  double pred_decided_for = 0.0;
  bool next_fail_predicted = false;
  Phase proactive_resume_phase = Phase::Part1;
  double proactive_resume_rem = 0.0;
  double time_proactive = 0.0;
  std::uint64_t alarms_raised = 0;
  std::uint64_t proactive_ckpts = 0;
  std::uint64_t true_predictions = 0;
  std::uint64_t missed_failures = 0;
};

template <class Source>
class WaveRunner {
 public:
  WaveRunner(const SimConfig& config, const MonteCarloOptions& options)
      : geo_(engine::make_geometry(config.protocol, config.params,
                                   config.period, config.dcp)),
        t_base_(config.t_base),
        cap_(engine::makespan_cap(config.max_makespan, config.t_base,
                                  config.period)),
        stop_on_fatal_(config.stop_on_fatal),
        mtbf_(config.params.mtbf),
        nodes_(config.params.nodes),
        seed_(options.seed),
        group_size_(
            static_cast<std::uint64_t>(model::group_size(config.protocol))),
        sdc_rate_(config.sdc_rate),
        verify_cost_(config.verify_cost),
        verify_every_(config.verify_every),
        keep_last_(config.keep_last),
        pred_recall_(config.pred_recall),
        pred_window_(config.pred_window),
        proactive_cost_(config.proactive_cost),
        false_rate_(config.pred_recall > 0.0
                        ? engine::false_alarm_rate(config.params.mtbf,
                                                   config.pred_precision,
                                                   config.pred_recall)
                        : 0.0) {
    // Precomputed per-phase constants. Each gain/loss is the product of the
    // exact operands the scalar advance() multiplies, so applying them in
    // phase order reproduces its rounded += sequence bit-for-bit.
    g1_ = geo_.rate1 * geo_.part1;
    l1_ = (1.0 - geo_.rate1) * geo_.part1;
    g2_ = geo_.rate2 * geo_.part2;
    l2_ = (1.0 - geo_.rate2) * geo_.part2;
    g3_ = 1.0 * geo_.part3;
    sum_parts_ = (geo_.part1 + geo_.part2) + geo_.part3;
    gain_ = (g1_ + g2_) + g3_;
    work_limit_ = t_base_ - (gain_ * kGuardMargin + 2.0 * kWorkEpsilon);
    // The fast path walks whole periods; any zero-length phase chains
    // through end_of_phase() recursion instead, and a work rate above 1
    // would invalidate the division-skip bound (no protocol has one, but
    // guard anyway).
    fast_ok_ = geo_.part1 > 0.0 && geo_.part2 > 0.0 && geo_.part3 > 0.0 &&
               gain_ > 0.0;
    // Verification splices extra phases into the period structure and
    // strikes are events the horizon guard knows nothing about, so SDC
    // trials always run the exact state machine. Same for prediction:
    // alarms are events and proactive commits splice into periods.
    fast_ok_ = fast_ok_ && verify_every_ == 0 && sdc_rate_ == 0.0 &&
               pred_recall_ == 0.0;
    rates_le_one_ = geo_.rate1 <= 1.0 && geo_.rate2 <= 1.0 &&
                    geo_.overlap_rate <= 1.0;
    if (fast_ok_) {
      // Reciprocals for the fast-run bound: the few extra ulps a multiply-
      // by-reciprocal adds over a true divide are absorbed by kMultiMargin
      // (1e-9 relative slack against ~1e-16 reciprocal rounding).
      inv_sum_parts_ = 1.0 / sum_parts_;
      inv_gain_ = 1.0 / gain_;
    }
  }

  /// See run_trials_batched.
  void run(std::size_t begin_trial, std::size_t end_trial,
           const std::function<void(const TrialResult&)>& sink,
           BatchKernelStats& stats) {
    for (std::size_t wave = begin_trial; wave < end_trial;
         wave += kBatchLanes) {
      const std::size_t count = std::min(kBatchLanes, end_trial - wave);
      for (std::size_t lane = 0; lane < count; ++lane) {
        load_lane(lane, wave + lane);
      }
      ++stats.waves;
      stats.lanes += count;
      std::size_t active = count;
      while (active > 0) {
        for (std::size_t lane = 0; lane < count; ++lane) {
          if (cold_[lane].done) continue;
          visit(lane, stats);
          if (cold_[lane].done) --active;
        }
      }
      for (std::size_t lane = 0; lane < count; ++lane) {
        sink(make_result(lane));
      }
    }
  }

  void set_law(const util::Weibull& weibull) {
    for (auto& src : sources_) src.set_law(weibull);
  }

 private:
  void load_lane(std::size_t lane, std::size_t trial) {
    const std::uint64_t stream_seed =
        seed_ ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
    sources_[lane].reset(stream_seed, mtbf_, nodes_);
    now_[lane] = 0.0;
    work_[lane] = 0.0;
    committed_[lane] = 0.0;
    pending_[lane] = 0.0;
    tc_[lane] = 0.0;
    LaneCold& c = cold_[lane];
    const Phase zero = Phase::Part1;
    c.phase = zero;
    c.rem = 0.0;
    c.overlap = 0.0;
    c.resume_phase = zero;
    c.resume_rem = 0.0;
    c.pre_failure_work = 0.0;
    c.risk_open_until = 0.0;
    c.time_down = 0.0;
    c.time_recovering = 0.0;
    c.time_reexecuting = 0.0;
    c.time_at_risk = 0.0;
    c.failures = 0;
    c.fatal = false;
    c.fatal_time = 0.0;
    c.diverged = false;
    c.done = false;
    c.risk.clear();
    c.live_taint = 0;
    c.pending_taint = 0;
    c.periods_since_verify = 0;
    c.resume_fresh_period = false;
    c.time_verifying = 0.0;
    c.sdc_injected = 0;
    c.verifications_run = 0;
    c.sdc_detected = 0;
    c.rollback_depth = 0;
    c.next_true_alarm = std::numeric_limits<double>::infinity();
    c.next_false_alarm = std::numeric_limits<double>::infinity();
    c.pred_decided_for = -std::numeric_limits<double>::infinity();
    c.next_fail_predicted = false;
    c.proactive_resume_phase = zero;
    c.proactive_resume_rem = 0.0;
    c.time_proactive = 0.0;
    c.alarms_raised = 0;
    c.proactive_ckpts = 0;
    c.true_predictions = 0;
    c.missed_failures = 0;
    next_sdc_[lane] = std::numeric_limits<double>::infinity();
    if (verify_every_ > 0) c.ladder.reset(keep_last_);
    if (sdc_rate_ > 0.0) {
      c.sdc_rng = util::Xoshiro256ss(stream_seed ^ engine::kSdcSeedSalt);
      next_sdc_[lane] = engine::next_strike_time(0.0, c.sdc_rng, sdc_rate_);
    }
    if (pred_recall_ > 0.0) {
      c.pred_rng = util::Xoshiro256ss(stream_seed ^ engine::kPredSeedSalt);
      c.false_rng =
          util::Xoshiro256ss(stream_seed ^ engine::kFalseAlarmSeedSalt);
      if (false_rate_ > 0.0) {
        c.next_false_alarm =
            engine::next_strike_time(0.0, c.false_rng, false_rate_);
      }
    }
    next_fail_[lane] = sources_[lane].peek_time();
    start_period(lane);
  }

  TrialResult make_result(std::size_t lane) const {
    const LaneCold& c = cold_[lane];
    TrialResult r;
    r.makespan = now_[lane];
    r.t_base = t_base_;
    r.failures = c.failures;
    r.fatal = c.fatal;
    r.fatal_time = c.fatal_time;
    r.diverged = c.diverged;
    r.time_checkpointing = tc_[lane];
    r.time_down = c.time_down;
    r.time_recovering = c.time_recovering;
    r.time_reexecuting = c.time_reexecuting;
    r.time_at_risk = c.time_at_risk;
    r.time_verifying = c.time_verifying;
    r.sdc_injected = c.sdc_injected;
    r.verifications_run = c.verifications_run;
    r.sdc_detected = c.sdc_detected;
    r.rollback_depth = c.rollback_depth;
    r.time_proactive = c.time_proactive;
    r.alarms_raised = c.alarms_raised;
    r.proactive_ckpts = c.proactive_ckpts;
    r.true_predictions = c.true_predictions;
    r.missed_failures = c.missed_failures;
    return r;
  }

  /// One unit of progress for a parked lane (invariant: immediately after
  /// start_period). The common case is a run of whole event-free periods.
  void visit(std::size_t lane, BatchKernelStats& stats) {
    const double n0 = now_[lane];
    // Conservative horizon past the whole period: if the next failure, the
    // cap and completion all clear it, the scalar engine provably takes the
    // no-event branch at every step of this period.
    const double horizon = (n0 + sum_parts_) * kGuardMargin;
    if (fast_ok_ && next_fail_[lane] >= horizon && horizon <= cap_ &&
        work_[lane] < work_limit_) {
      advance_fast_run(lane, stats);
      return;
    }
    step_exact(lane, stats);
  }

  /// Walks as many consecutive whole periods as can be *proved* event-free
  /// up front, so the inner loop carries no guards, calls or event peeks.
  ///
  /// Soundness: the per-period guard in visit() compares rounded state
  /// (now_k, work_k) against next_fail / cap_ / work_limit_. Over a run of
  /// n <= kMaxFastRun periods the rounded += chains drift from the exact
  /// affine values (n0 + k*sum_parts, w0 + k*gain) by at most ~3n ulps --
  /// under 1e-10 relative for n = 65536 -- so bounding the exact values
  /// with the much coarser kMultiMargin proves every period in the run
  /// would individually pass the guard. The first period is already proved
  /// by visit(), hence n >= 1 even when the coarse bound yields nothing.
  void advance_fast_run(std::size_t lane, BatchKernelStats& stats) {
    const double n0 = now_[lane];
    const double w0 = work_[lane];
    const double fail_lim =
        (next_fail_[lane] * kInvMultiMargin - n0) * inv_sum_parts_;
    const double cap_lim = (cap_ * kInvMultiMargin - n0) * inv_sum_parts_;
    const double work_lim =
        (work_limit_ * kInvMultiMargin - w0) * inv_gain_;
    const double bound =
        std::floor(std::min(std::min(fail_lim, cap_lim), work_lim));
    std::size_t n = 1;
    if (bound > 1.0) {
      n = std::min(static_cast<std::size_t>(bound), kMaxFastRun);
    }
    double w = w0;
    double t = n0;
    double tc = tc_[lane];
    double committed = committed_[lane];
    double pending = pending_[lane];
    for (std::size_t k = 0; k < n; ++k) {
      // The scalar engine's exact += sequence, three advances per period.
      const double w1 = w + g1_;
      const double w2 = w1 + g2_;
      const double w3 = w2 + g3_;
      t = ((t + geo_.part1) + geo_.part2) + geo_.part3;
      tc = (tc + l1_) + l2_;
      committed = pending;
      pending = w3;
      w = w3;
    }
    work_[lane] = w;
    now_[lane] = t;
    tc_[lane] = tc;
    committed_[lane] = committed;
    pending_[lane] = pending;
    stats.fast_periods += n;
  }

  double rate_of(const LaneCold& c) const noexcept {
    switch (c.phase) {
      case Phase::Part1:
        return geo_.rate1;
      case Phase::Part2:
        return geo_.rate2;
      case Phase::Part3:
        return 1.0;
      case Phase::Down:
      case Phase::Recover:
      case Phase::Verify:
      case Phase::Proactive:
        return 0.0;
      case Phase::Reexec:
        return c.overlap > 0.0 ? geo_.overlap_rate : 1.0;
    }
    return 0.0;
  }

  /// Exact port of Engine::advance.
  void advance(std::size_t lane, double rate, double dt) {
    LaneCold& c = cold_[lane];
    const double gained = rate * dt;
    work_[lane] += gained;
    now_[lane] += dt;
    switch (c.phase) {
      case Phase::Part1:
      case Phase::Part2: {
        const double lost = (1.0 - rate) * dt;
        tc_[lane] += lost;
        break;
      }
      case Phase::Part3:
        break;
      case Phase::Down:
        c.time_down += dt;
        break;
      case Phase::Recover:
        c.time_recovering += dt;
        break;
      case Phase::Reexec:
        c.time_reexecuting += dt;
        break;
      case Phase::Verify:
        c.time_verifying += dt;
        break;
      case Phase::Proactive:
        c.time_proactive += dt;
        break;
    }
    c.rem -= dt;
    if (c.phase == Phase::Reexec && c.overlap > 0.0) c.overlap -= dt;
  }

  /// Exact port of Engine::start_period. Returns true: the lane is at the
  /// park point (a fresh period just began).
  bool start_period(std::size_t lane) {
    LaneCold& c = cold_[lane];
    pending_[lane] = work_[lane];
    c.pending_taint = c.live_taint;
    c.phase = Phase::Part1;
    c.rem = geo_.part1;
    if (geo_.part1 == 0.0) return end_of_phase(lane);
    return true;
  }

  bool resume_interrupted(std::size_t lane) {
    LaneCold& c = cold_[lane];
    if (c.resume_fresh_period) {
      c.resume_fresh_period = false;
      return start_period(lane);
    }
    c.phase = c.resume_phase;
    c.rem = c.resume_rem;
    if (c.rem <= 0.0) return end_of_phase(lane);
    return false;
  }

  /// Exact port of Engine::commit_snapshot (a proactive commit taken after
  /// the period's snapshot was captured supersedes it).
  void commit_snapshot(std::size_t lane) {
    LaneCold& c = cold_[lane];
    if (pending_[lane] < committed_[lane]) return;
    committed_[lane] = pending_[lane];
    if (verify_every_ > 0) c.ladder.push(pending_[lane], c.pending_taint);
  }

  /// Exact port of Engine::end_of_period (park semantics of end_of_phase).
  bool end_of_period(std::size_t lane) {
    LaneCold& c = cold_[lane];
    if (verify_every_ > 0 && ++c.periods_since_verify >= verify_every_) {
      c.periods_since_verify = 0;
      c.phase = Phase::Verify;
      c.rem = verify_cost_;
      if (c.rem == 0.0) return end_of_phase(lane);
      return false;
    }
    return start_period(lane);
  }

  /// Exact port of Engine::end_of_phase. Returns true when the transition
  /// chain ended with start_period (the lane may park).
  bool end_of_phase(std::size_t lane) {
    LaneCold& c = cold_[lane];
    switch (c.phase) {
      case Phase::Part1:
        if (geo_.commit_after_part1) commit_snapshot(lane);
        c.phase = Phase::Part2;
        c.rem = geo_.part2;
        return false;
      case Phase::Part2:
        if (!geo_.commit_after_part1) commit_snapshot(lane);
        c.phase = Phase::Part3;
        c.rem = geo_.part3;
        if (geo_.part3 == 0.0) return end_of_period(lane);
        return false;
      case Phase::Part3:
        return end_of_period(lane);
      case Phase::Down:
        c.phase = Phase::Recover;
        c.rem = geo_.recover;
        if (c.rem == 0.0) return end_of_phase(lane);
        return false;
      case Phase::Recover: {
        const double deficit = c.pre_failure_work - work_[lane];
        if (deficit > kWorkEpsilon) {
          c.phase = Phase::Reexec;
          c.overlap = geo_.reexec_overlap;
          c.rem = engine::reexec_duration(geo_, deficit);
          return false;
        }
        return resume_interrupted(lane);
      }
      case Phase::Reexec:
        return resume_interrupted(lane);
      case Phase::Verify:
        return finish_verification(lane);
      case Phase::Proactive:
        committed_[lane] = work_[lane];
        if (verify_every_ > 0) c.ladder.push(work_[lane], c.live_taint);
        ++c.proactive_ckpts;
        c.phase = c.proactive_resume_phase;
        c.rem = c.proactive_resume_rem;
        if (c.rem <= 0.0) return end_of_phase(lane);
        return false;
    }
    return false;
  }

  /// Exact port of Engine::finish_verification.
  bool finish_verification(std::size_t lane) {
    LaneCold& c = cold_[lane];
    ++c.verifications_run;
    if (c.live_taint == 0) return start_period(lane);
    ++c.sdc_detected;
    const std::size_t depth = c.ladder.first_clean();
    if (depth == engine::SdcLadder::npos) {
      if (!c.fatal) {
        c.fatal = true;
        c.fatal_time = now_[lane];
      }
      c.live_taint = 0;
      return start_period(lane);
    }
    c.rollback_depth += depth;
    c.pre_failure_work = work_[lane];
    work_[lane] = c.ladder.rungs[depth].level;
    committed_[lane] = work_[lane];
    c.live_taint = 0;
    c.ladder.drop(depth);
    c.resume_fresh_period = true;
    c.overlap = 0.0;
    c.phase = Phase::Recover;
    c.rem = geo_.recover;
    if (c.rem == 0.0) return end_of_phase(lane);
    return false;
  }

  /// Flat-vector mirror of RiskTracker::on_failure (node ids come from the
  /// injector, hence always < nodes; the range check is compiled out).
  bool risk_on_failure(LaneCold& c, std::uint64_t node, double time) {
    const std::uint64_t group = node / group_size_;
    const std::uint64_t member = node % group_size_;
    std::erase_if(c.risk,
                  [time](const RiskWin& w) { return w.expiry <= time; });
    bool member_open = false;
    std::uint64_t distinct_others = 0;
    std::uint64_t seen_mask = 0;
    for (const RiskWin& w : c.risk) {
      if (w.group != group) continue;
      if (w.member == member) {
        member_open = true;
      } else if (!(seen_mask & (1ULL << w.member))) {
        seen_mask |= 1ULL << w.member;
        ++distinct_others;
      }
    }
    if (distinct_others >= group_size_ - 1) return true;
    const double expiry = time + geo_.risk;
    if (member_open) {
      for (RiskWin& w : c.risk) {
        if (w.group == group && w.member == member) {
          w.expiry = std::max(w.expiry, expiry);
        }
      }
    } else {
      c.risk.push_back(RiskWin{group, member, expiry});
    }
    return false;
  }

  /// Exact port of Engine::handle_failure. Returns false when the trial must
  /// stop (fatal failure with stop_on_fatal).
  bool handle_failure(std::size_t lane) {
    LaneCold& c = cold_[lane];
    Source& src = sources_[lane];
    const double t = next_fail_[lane];
    const std::uint64_t node = src.peek_node();
    src.pop();
    ++c.failures;
    if (pred_recall_ > 0.0) {
      // The decision for this failure was drawn when it first became the
      // pending event; settle the prediction scoreboard.
      if (c.next_fail_predicted) {
        ++c.true_predictions;
      } else {
        ++c.missed_failures;
      }
    }
    const bool fatal = risk_on_failure(c, node, t);
    const double window_close = t + geo_.risk;
    c.time_at_risk += std::min(geo_.risk, window_close - c.risk_open_until);
    c.risk_open_until = window_close;
    src.on_node_replaced(node, t, t + geo_.downtime);
    next_fail_[lane] = src.peek_time();
    if (fatal) {
      c.fatal = true;
      c.fatal_time = t;
      if (stop_on_fatal_) return false;
    }
    const bool in_failure_handling = c.phase == Phase::Down ||
                                     c.phase == Phase::Recover ||
                                     c.phase == Phase::Reexec;
    if (!in_failure_handling) {
      if (c.phase == Phase::Proactive) {
        // The failure kills the in-flight proactive checkpoint; after
        // repair the run resumes the phase the alarm had interrupted.
        c.resume_phase = c.proactive_resume_phase;
        c.resume_rem = c.proactive_resume_rem;
      } else {
        c.resume_phase = c.phase;
        c.resume_rem = c.rem;
      }
      c.pre_failure_work = work_[lane];
    }
    work_[lane] = committed_[lane];
    if (verify_every_ > 0) c.live_taint = c.ladder.front_taint();
    c.phase = Phase::Down;
    c.rem = geo_.downtime;
    c.overlap = 0.0;
    if (c.rem == 0.0) end_of_phase(lane);
    return true;
  }

  /// Exact port of Engine::decide_prediction (same RNG consumption: one
  /// decision per distinct pending-failure time, idempotent in between).
  void decide_prediction(std::size_t lane) {
    LaneCold& c = cold_[lane];
    const double fail_time = next_fail_[lane];
    if (fail_time == c.pred_decided_for) return;
    c.pred_decided_for = fail_time;
    c.next_fail_predicted = false;
    c.next_true_alarm = std::numeric_limits<double>::infinity();
    if (!std::isfinite(fail_time)) return;
    if (c.pred_rng.next_double_open_zero() > pred_recall_) return;
    c.next_fail_predicted = true;
    const double lead =
        pred_window_ > 0.0
            ? pred_window_ * c.pred_rng.next_double_open_zero()
            : proactive_cost_;
    c.next_true_alarm = std::max(fail_time - lead, now_[lane]);
  }

  /// Exact port of Engine::handle_alarm.
  void handle_alarm(std::size_t lane, bool true_alarm) {
    LaneCold& c = cold_[lane];
    ++c.alarms_raised;
    if (true_alarm) {
      c.next_true_alarm = std::numeric_limits<double>::infinity();
    } else {
      c.next_false_alarm = engine::next_strike_time(c.next_false_alarm,
                                                    c.false_rng, false_rate_);
    }
    const bool busy = c.phase == Phase::Down || c.phase == Phase::Recover ||
                      c.phase == Phase::Reexec || c.phase == Phase::Verify ||
                      c.phase == Phase::Proactive;
    if (busy || work_[lane] - committed_[lane] <= kWorkEpsilon) return;
    c.proactive_resume_phase = c.phase;
    c.proactive_resume_rem = c.rem;
    c.phase = Phase::Proactive;
    c.rem = proactive_cost_;
    if (c.rem == 0.0) end_of_phase(lane);
  }

  /// Exact port of Engine::run's event loop, entered from a park point.
  /// Runs until the trial finishes or a fresh period starts (re-park).
  void step_exact(std::size_t lane, BatchKernelStats& stats) {
    LaneCold& c = cold_[lane];
    for (;;) {
      ++stats.exact_steps;
      if (t_base_ - work_[lane] <= kWorkEpsilon) {
        c.done = true;
        return;
      }
      if (now_[lane] > cap_) {
        c.diverged = true;
        c.done = true;
        return;
      }
      const double rate = rate_of(c);
      double dt = c.rem;
      if (c.phase == Phase::Reexec && c.overlap > 0.0) {
        dt = std::min(dt, c.overlap);
      }
      if (rate > 0.0) {
        // The completion quotient binds only near the end of the trial;
        // skip the division whenever room > dt (safe since rate <= 1).
        const double room = t_base_ - work_[lane];
        if (!(rates_le_one_ && room > dt * kGuardMargin)) {
          dt = std::min(dt, room / rate);
        }
      }
      if (pred_recall_ > 0.0) decide_prediction(lane);
      // Event ordering on ties mirrors the scalar loop exactly:
      // alarm > strike > failure.
      const double next_alarm =
          std::min(c.next_true_alarm, c.next_false_alarm);
      const bool alarm_first = next_alarm <= next_sdc_[lane] &&
                               next_alarm <= next_fail_[lane];
      const bool strike_first =
          !alarm_first && next_sdc_[lane] <= next_fail_[lane];
      const double event_time =
          alarm_first ? next_alarm
                      : (strike_first ? next_sdc_[lane] : next_fail_[lane]);
      if (event_time < now_[lane] + dt) {
        advance(lane, rate, event_time - now_[lane]);
        if (alarm_first) {
          handle_alarm(lane, c.next_true_alarm <= c.next_false_alarm);
        } else if (strike_first) {
          ++c.sdc_injected;
          ++c.live_taint;
          next_sdc_[lane] =
              engine::next_strike_time(next_sdc_[lane], c.sdc_rng, sdc_rate_);
        } else if (!handle_failure(lane)) {
          c.done = true;
          return;
        }
        continue;
      }
      advance(lane, rate, dt);
      if (t_base_ - work_[lane] <= kWorkEpsilon) {
        c.done = true;
        return;
      }
      if (c.rem <= kPhaseEpsilon) {
        const bool parked = end_of_phase(lane);
        // A verification can end the run too (fatal-accept with
        // stop_on_fatal); mirror the scalar loop's post-transition check.
        if (c.fatal && stop_on_fatal_) {
          c.done = true;
          return;
        }
        if (parked) return;  // parked at a fresh period start
      }
    }
  }

  const Geometry geo_;
  const double t_base_;
  const double cap_;
  const bool stop_on_fatal_;
  const double mtbf_;
  const std::uint64_t nodes_;
  const std::uint64_t seed_;
  const std::uint64_t group_size_;
  const double sdc_rate_;
  const double verify_cost_;
  const std::uint64_t verify_every_;
  const std::uint64_t keep_last_;
  const double pred_recall_;
  const double pred_window_;
  const double proactive_cost_;
  const double false_rate_;

  double gain_ = 0.0;  ///< work gained per whole period
  double inv_sum_parts_ = 0.0, inv_gain_ = 0.0;  ///< set when fast_ok_
  double g1_ = 0.0, g2_ = 0.0, g3_ = 0.0;  ///< per-phase work gains
  double l1_ = 0.0, l2_ = 0.0;             ///< per-phase checkpointing losses
  double sum_parts_ = 0.0;
  double work_limit_ = 0.0;
  bool fast_ok_ = false;
  bool rates_le_one_ = false;

  // Hot per-lane state, structure-of-arrays.
  std::array<double, kBatchLanes> now_{};
  std::array<double, kBatchLanes> work_{};
  std::array<double, kBatchLanes> committed_{};
  std::array<double, kBatchLanes> pending_{};
  std::array<double, kBatchLanes> tc_{};
  std::array<double, kBatchLanes> next_fail_{};
  std::array<double, kBatchLanes> next_sdc_{};
  std::array<Source, kBatchLanes> sources_{};
  std::array<LaneCold, kBatchLanes> cold_{};
};

}  // namespace

void run_trials_batched(const SimConfig& config,
                        const MonteCarloOptions& options,
                        std::size_t begin_trial, std::size_t end_trial,
                        const std::function<void(const TrialResult&)>& sink,
                        BatchKernelStats& stats) {
  if (begin_trial >= end_trial) return;
  if (options.weibull) {
    auto runner =
        std::make_unique<WaveRunner<RenewalEventSource>>(config, options);
    runner->set_law(*options.weibull);
    runner->run(begin_trial, end_trial, sink, stats);
  } else {
    auto runner =
        std::make_unique<WaveRunner<ExpEventSource>>(config, options);
    runner->run(begin_trial, end_trial, sink, stats);
  }
}

}  // namespace dckpt::sim
