// Umbrella header for the discrete-event checkpoint-protocol simulator.
#pragma once

#include "sim/export.hpp"            // IWYU pragma: export
#include "sim/failure_injector.hpp"  // IWYU pragma: export
#include "sim/independent.hpp"       // IWYU pragma: export
#include "sim/log_stats.hpp"         // IWYU pragma: export
#include "sim/metrics.hpp"           // IWYU pragma: export
#include "sim/optimize.hpp"          // IWYU pragma: export
#include "sim/protocol_sim.hpp"      // IWYU pragma: export
#include "sim/risk_tracker.hpp"      // IWYU pragma: export
#include "sim/runner.hpp"            // IWYU pragma: export
#include "sim/server.hpp"            // IWYU pragma: export
#include "sim/service.hpp"           // IWYU pragma: export
#include "sim/sweep.hpp"             // IWYU pragma: export
#include "sim/trace.hpp"             // IWYU pragma: export
#include "sim/trace_injector.hpp"    // IWYU pragma: export
