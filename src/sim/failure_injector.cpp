#include "sim/failure_injector.hpp"

#include <cmath>
#include <stdexcept>

namespace dckpt::sim {

// ------------------------------------------- PlatformExponentialInjector

PlatformExponentialInjector::PlatformExponentialInjector(
    double platform_mtbf, std::uint64_t nodes, util::Xoshiro256ss rng)
    : rate_(1.0 / platform_mtbf), nodes_(nodes), rng_(rng) {
  if (!(platform_mtbf > 0.0) || !std::isfinite(platform_mtbf)) {
    throw std::invalid_argument("PlatformExponentialInjector: bad MTBF");
  }
  if (nodes == 0) {
    throw std::invalid_argument("PlatformExponentialInjector: zero nodes");
  }
}

void PlatformExponentialInjector::ensure_next() {
  if (has_next_) return;
  clock_ += -std::log(rng_.next_double_open_zero()) / rate_;
  next_ = {clock_, rng_.next_below(nodes_)};
  has_next_ = true;
}

FailureEvent PlatformExponentialInjector::peek() {
  ensure_next();
  return next_;
}

void PlatformExponentialInjector::pop() {
  ensure_next();
  has_next_ = false;
}

void PlatformExponentialInjector::on_node_replaced(std::uint64_t, double,
                                                   double) {
  // Memoryless process: replacement changes nothing.
}

// ------------------------------------------------------- PerNodeInjector

PerNodeInjector::PerNodeInjector(const util::Distribution& inter_arrival,
                                 std::uint64_t nodes, util::Xoshiro256ss rng)
    : rng_(rng), next_time_(nodes, 0.0), generation_(nodes, 0) {
  if (nodes == 0) throw std::invalid_argument("PerNodeInjector: zero nodes");
  dists_.reserve(nodes);
  for (std::uint64_t node = 0; node < nodes; ++node) {
    dists_.push_back(inter_arrival.clone());
  }
  for (std::uint64_t node = 0; node < nodes; ++node) push_node(node, 0.0);
}

PerNodeInjector::PerNodeInjector(
    std::vector<std::unique_ptr<util::Distribution>> laws,
    util::Xoshiro256ss rng)
    : dists_(std::move(laws)), rng_(rng), next_time_(dists_.size(), 0.0),
      generation_(dists_.size(), 0) {
  if (dists_.empty()) {
    throw std::invalid_argument("PerNodeInjector: zero nodes");
  }
  for (const auto& law : dists_) {
    if (!law) throw std::invalid_argument("PerNodeInjector: null law");
  }
  for (std::uint64_t node = 0; node < dists_.size(); ++node) {
    push_node(node, 0.0);
  }
}

void PerNodeInjector::push_node(std::uint64_t node, double from_time) {
  const double t = from_time + dists_[node]->sample(rng_);
  next_time_[node] = t;
  heap_.push(HeapEntry{t, node, generation_[node]});
}

void PerNodeInjector::refill() {
  if (has_top_) return;
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.top();
    if (entry.generation != generation_[entry.node]) {
      heap_.pop();  // stale: the node was reborn since this was scheduled
      continue;
    }
    top_ = {entry.time, entry.node};
    has_top_ = true;
    return;
  }
  throw std::logic_error("PerNodeInjector: heap exhausted");
}

FailureEvent PerNodeInjector::peek() {
  refill();
  return top_;
}

void PerNodeInjector::pop() {
  refill();
  heap_.pop();
  has_top_ = false;
  // The node keeps failing on its renewal schedule until on_node_replaced
  // reschedules it; schedule the next arrival from the consumed one so the
  // stream never dries up even if the caller ignores replacement.
  ++generation_[top_.node];
  push_node(top_.node, top_.time);
}

void PerNodeInjector::on_node_replaced(std::uint64_t node, double,
                                       double rebirth_time) {
  ++generation_[node];
  push_node(node, rebirth_time);
}

}  // namespace dckpt::sim
