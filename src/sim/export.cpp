#include "sim/export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "model/protocol.hpp"

namespace dckpt::sim {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("export: cannot open '" + path + "' for writing");
  }
  return out;
}

}  // namespace

util::JsonValue to_json(const util::RunningStats& stats) {
  auto v = util::JsonValue::object();
  v.set("count", stats.count());
  if (stats.count() > 0) {
    // min/max are +/-inf on an empty accumulator, which JSON cannot carry.
    v.set("mean", stats.mean());
    v.set("stddev", stats.stddev());
    v.set("min", stats.min());
    v.set("max", stats.max());
  }
  return v;
}

util::JsonValue to_json(const util::Histogram& histogram) {
  auto v = util::JsonValue::object();
  v.set("lo", histogram.lo());
  v.set("hi", histogram.hi());
  auto counts = util::JsonValue::array();
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    counts.push_back(histogram.bin(i));
  }
  v.set("counts", std::move(counts));
  v.set("underflow", histogram.underflow());
  v.set("overflow", histogram.overflow());
  v.set("nonfinite", histogram.nonfinite());
  return v;
}

util::JsonValue to_json(const util::ProportionEstimate& proportion) {
  auto v = util::JsonValue::object();
  v.set("trials", proportion.trials());
  v.set("successes", proportion.successes());
  v.set("estimate", proportion.estimate());
  return v;
}

util::JsonValue to_json(const MonteCarloResult& result) {
  auto v = util::JsonValue::object();
  v.set("record", "monte_carlo");
  v.set("trials", result.waste.count() + result.diverged);
  v.set("diverged", result.diverged);
  v.set("waste", to_json(result.waste));
  v.set("makespan", to_json(result.makespan));
  v.set("failures", to_json(result.failures));
  v.set("risk_time", to_json(result.risk_time));
  v.set("success", to_json(result.success));
  // Appended in PR 7 (append-only schema): silent-error aggregates.
  v.set("sdc_injected", to_json(result.sdc_injected));
  v.set("sdc_detected", to_json(result.sdc_detected));
  v.set("verify_time", to_json(result.verify_time));
  v.set("rollback_depth", to_json(result.rollback_depth));
  // Appended in PR 8 (append-only schema): fault-prediction aggregates.
  v.set("alarms_raised", to_json(result.alarms_raised));
  v.set("proactive_ckpts", to_json(result.proactive_ckpts));
  v.set("true_predictions", to_json(result.true_predictions));
  v.set("missed_failures", to_json(result.missed_failures));
  v.set("proactive_time", to_json(result.proactive_time));
  if (result.metrics) {
    auto histograms = util::JsonValue::object();
    histograms.set("waste", to_json(result.metrics->waste));
    histograms.set("slowdown", to_json(result.metrics->slowdown));
    histograms.set("failures", to_json(result.metrics->failures));
    histograms.set("risk_fraction", to_json(result.metrics->risk_fraction));
    v.set("histograms", std::move(histograms));
  }
  return v;
}

util::JsonValue to_json(const SweepPoint& point) {
  auto v = util::JsonValue::object();
  v.set("record", "sweep_point");
  v.set("protocol", model::protocol_name(point.protocol));
  v.set("mtbf", point.mtbf);
  v.set("phi", point.phi);
  v.set("period", point.period);
  v.set("model_waste", point.model_waste);
  v.set("sim", to_json(point.result));
  // Appended in PR 4 (append-only schema): clustered-failure model fields.
  v.set("weibull_shape", point.weibull_shape);
  v.set("model_waste_weibull", point.model_waste_weibull);
  // Appended in PR 7 (append-only schema): verified-checkpoint model waste.
  v.set("model_waste_sdc", point.model_waste_sdc);
  // Appended in PR 8 (append-only schema): fault-prediction model waste.
  v.set("model_waste_pred", point.model_waste_pred);
  // Appended in PR 9 (append-only schema): differential-checkpoint model
  // waste.
  v.set("model_waste_dcp", point.model_waste_dcp);
  return v;
}

util::JsonValue to_json(const TraceEvent& event) {
  auto v = util::JsonValue::object();
  v.set("record", "trace_event");
  v.set("time", event.time);
  v.set("kind", trace_kind_id(event.kind));
  v.set("node", event.node);
  v.set("work", event.work_level);
  return v;
}

void write_metrics_jsonl(std::ostream& out, const MonteCarloResult& result) {
  out << to_json(result).dump() << '\n';
}

void write_sweep_jsonl(std::ostream& out,
                       const std::vector<SweepPoint>& rows) {
  for (const auto& row : rows) out << to_json(row).dump() << '\n';
}

void write_trace_jsonl(std::ostream& out, const Trace& trace) {
  for (const auto& event : trace.events()) {
    out << to_json(event).dump() << '\n';
  }
}

void write_jsonl(std::ostream& out, const util::JsonValue& value) {
  out << value.dump() << '\n';
}

void save_jsonl(const std::string& path,
                const std::vector<util::JsonValue>& lines) {
  auto out = open_or_throw(path);
  for (const auto& line : lines) write_jsonl(out, line);
}

void save_metrics_jsonl(const std::string& path,
                        const MonteCarloResult& result) {
  auto out = open_or_throw(path);
  write_metrics_jsonl(out, result);
}

void save_sweep_jsonl(const std::string& path,
                      const std::vector<SweepPoint>& rows) {
  auto out = open_or_throw(path);
  write_sweep_jsonl(out, rows);
}

void save_trace_jsonl(const std::string& path, const Trace& trace) {
  auto out = open_or_throw(path);
  write_trace_jsonl(out, trace);
}

}  // namespace dckpt::sim
