// Long-running evaluation service behind `dckpt serve`.
//
// Answers waste / optimal-period / risk / Monte-Carlo queries over a
// line-oriented request protocol (one request line in, one JSON line out),
// so a planner frontend can keep a single warm process instead of paying
// CLI startup per what-if question. Requests are memoized through an LRU
// cache keyed on quantized scenario parameters, and kind=sim requests are
// batched onto the SoA Monte-Carlo kernel. Perf counters (qps, cache hit
// rate, kernel batch occupancy, latency quantiles) are exported in the
// repo's JSONL observability format. Protocol details: docs/SERVE.md.
//
// The class is transport-agnostic (no I/O): `dckpt serve` wraps it around
// stdin/stdout or a TCP socket, and tests drive it directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/runner.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/lru.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

/// Typed request failure. `code` lands in the `code` field of the
/// eval_error record (docs/SERVE.md error taxonomy): the service throws
/// `parse` (malformed request), `limit` (service cap exceeded) and
/// `internal`; transports reuse eval_error_json() for the conditions only
/// they can see (`busy`, `overlong`, `timeout`, `shutdown`).
class EvalError : public std::runtime_error {
 public:
  EvalError(std::string code, const std::string& what)
      : std::runtime_error(what), code_(std::move(code)) {}
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// One eval_error record: {"code": ..., "error": ..., "record": "eval_error"}.
util::JsonValue eval_error_json(const std::string& code,
                                const std::string& message);

/// Transport-level counters appended to every serve_stats record under the
/// "server" key (append-only, like every exported schema). The transport
/// (sim::Server) owns the values and registers the struct with
/// EvalService::set_transport_counters so STATS answers include them; in
/// stdin mode they stay zero.
struct ServerCounters {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t shed = 0;             ///< heavy requests refused (code=busy)
  std::uint64_t read_timeouts = 0;    ///< idle connections reaped
  std::uint64_t write_timeouts = 0;   ///< stalled writers reaped
  std::uint64_t overlong_lines = 0;   ///< lines over --max-line dropped
  std::uint64_t disconnects = 0;      ///< peers gone with unfinished business
  std::uint64_t peak_connections = 0; ///< high-water mark of open conns
  std::uint64_t drained = 0;          ///< heavy jobs finished after drain began
  util::JsonValue to_json() const;
};

struct EvalServiceOptions {
  /// Distinct quantized scenarios kept memoized.
  std::size_t cache_capacity = 1024;
  /// Monte-Carlo trials for kind=sim when the request does not say.
  std::uint64_t default_trials = 400;
  /// Upper bound on per-request trials (a service must not let one query
  /// monopolize the process).
  std::uint64_t max_trials = 200000;
  /// Worker threads for kind=sim campaigns (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Monte-Carlo engine for kind=sim requests. Defaults like every other
  /// entry point: batched unless DCKPT_ENGINE overrides it.
  SimEngine engine = engine_from_env();

  void validate() const;
};

class EvalService {
 public:
  /// Admission-control classes. Light requests (closed-form answers,
  /// cached sims, errors, STATS/QUIT) are answered inline; heavy requests
  /// (uncached kind=sim) go through the transport's bounded queue.
  enum class RequestClass { kLight, kHeavy };

  explicit EvalService(EvalServiceOptions options = {});

  /// Handles one request line ("EVAL k=v ..." or "STATS") and returns
  /// exactly one JSON document, no trailing newline. Malformed requests
  /// yield an eval_error record; this never throws.
  std::string handle_line(const std::string& line);

  /// Classifies a line without executing it: kHeavy iff it is a
  /// well-formed kind=sim EVAL whose answer is not already cached.
  /// Anything that would fail to parse is kLight (the error is cheap to
  /// produce). Never throws; does not touch cache counters.
  RequestClass classify_line(const std::string& line) const;

  /// Registers the transport's counter block; stats_json() embeds it under
  /// "server" (zeros when no transport registered). The pointee must
  /// outlive the service or be reset to nullptr.
  void set_transport_counters(const ServerCounters* counters) noexcept {
    transport_ = counters;
  }

  /// The serve_stats record (same JSON the STATS request returns).
  util::JsonValue stats_json() const;

  /// Kernel counters accumulated over every kind=sim request served.
  const BatchKernelStats& kernel_stats() const noexcept { return kernel_; }

 private:
  util::JsonValue handle_eval(const std::string& line);
  void record_latency(std::chrono::steady_clock::time_point start);

  EvalServiceOptions options_;
  util::ThreadPool pool_;
  util::LruCache<std::string, util::JsonValue> cache_;
  BatchKernelStats kernel_;
  util::Histogram latency_log_us_;  ///< log10(us + 1) per request
  std::uint64_t requests_ = 0;
  std::uint64_t evals_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t sim_trials_ = 0;
  std::chrono::steady_clock::time_point started_;
  const ServerCounters* transport_ = nullptr;
};

}  // namespace dckpt::sim
