// Long-running evaluation service behind `dckpt serve`.
//
// Answers waste / optimal-period / risk / Monte-Carlo queries over a
// line-oriented request protocol (one request line in, one JSON line out),
// so a planner frontend can keep a single warm process instead of paying
// CLI startup per what-if question. Requests are memoized through an LRU
// cache keyed on quantized scenario parameters, and kind=sim requests are
// batched onto the SoA Monte-Carlo kernel. Perf counters (qps, cache hit
// rate, kernel batch occupancy, latency quantiles) are exported in the
// repo's JSONL observability format. Protocol details: docs/SERVE.md.
//
// The class is transport-agnostic (no I/O): `dckpt serve` wraps it around
// stdin/stdout or a TCP socket, and tests drive it directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "sim/runner.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/lru.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

struct EvalServiceOptions {
  /// Distinct quantized scenarios kept memoized.
  std::size_t cache_capacity = 1024;
  /// Monte-Carlo trials for kind=sim when the request does not say.
  std::uint64_t default_trials = 400;
  /// Upper bound on per-request trials (a service must not let one query
  /// monopolize the process).
  std::uint64_t max_trials = 200000;
  /// Worker threads for kind=sim campaigns (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Monte-Carlo engine for kind=sim requests. Defaults like every other
  /// entry point: batched unless DCKPT_ENGINE overrides it.
  SimEngine engine = engine_from_env();

  void validate() const;
};

class EvalService {
 public:
  explicit EvalService(EvalServiceOptions options = {});

  /// Handles one request line ("EVAL k=v ..." or "STATS") and returns
  /// exactly one JSON document, no trailing newline. Malformed requests
  /// yield an eval_error record; this never throws.
  std::string handle_line(const std::string& line);

  /// The serve_stats record (same JSON the STATS request returns).
  util::JsonValue stats_json() const;

  /// Kernel counters accumulated over every kind=sim request served.
  const BatchKernelStats& kernel_stats() const noexcept { return kernel_; }

 private:
  util::JsonValue handle_eval(const std::string& line);
  void record_latency(std::chrono::steady_clock::time_point start);

  EvalServiceOptions options_;
  util::ThreadPool pool_;
  util::LruCache<std::string, util::JsonValue> cache_;
  BatchKernelStats kernel_;
  util::Histogram latency_log_us_;  ///< log10(us + 1) per request
  std::uint64_t requests_ = 0;
  std::uint64_t evals_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t sim_trials_ = 0;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace dckpt::sim
