#include "sim/optimize.hpp"

#include <algorithm>

#include "model/period.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

EmpiricalOptimum optimize_period_empirically(SimConfig config,
                                             const OptimizeOptions& options) {
  config.stop_on_fatal = false;
  const double lo = model::min_period(config.protocol, config.params);
  const auto model_opt =
      model::optimal_period_closed_form(config.protocol, config.params);
  const double hi =
      std::max(lo * 1.5, model_opt.period * options.period_hi_factor);
  config.period = lo;
  config.validate();

  util::ThreadPool pool(options.threads);
  MonteCarloOptions mc_options;
  mc_options.trials = options.trials_per_eval;
  mc_options.seed = options.seed;  // identical streams for every candidate
  mc_options.weibull = options.weibull;

  EmpiricalOptimum best;
  int evaluations = 0;
  MonteCarloResult at_best;
  const auto objective = [&](double period) {
    SimConfig candidate = config;
    candidate.period = std::max(period, lo);
    const auto mc = run_monte_carlo(candidate, mc_options, pool);
    ++evaluations;
    // Diverged trials mean waste ~ 1; penalize so the search backs off.
    if (mc.waste.count() == 0) return 1.0;
    const double penalty =
        static_cast<double>(mc.diverged) /
        static_cast<double>(mc.waste.count() + mc.diverged);
    return mc.waste.mean() * (1.0 - penalty) + penalty;
  };

  const auto result = util::minimize_golden_section(
      objective, lo, hi, /*x_tolerance=*/lo * 1e-3 + 1e-6,
      options.max_iterations);

  best.period = result.x;
  best.evaluations = evaluations;
  // Final high-confidence evaluation at the chosen period.
  SimConfig final_config = config;
  final_config.period = std::max(result.x, lo);
  MonteCarloOptions final_options = mc_options;
  final_options.trials = options.trials_per_eval * 4;
  const auto final_mc = run_monte_carlo(final_config, final_options, pool);
  best.waste = final_mc.waste.mean();
  best.waste_halfwidth = final_mc.waste.confidence_halfwidth();
  return best;
}

}  // namespace dckpt::sim
