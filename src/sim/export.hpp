// JSONL export of simulation results: Monte-Carlo metrics records,
// sweep-point tables and trace event logs, one JSON object per line so
// downstream tooling can stream-parse arbitrarily large campaigns.
//
// Schemas (documented in docs/OBSERVABILITY.md):
//   metrics record   {"record":"monte_carlo", "trials":..., "waste":{...},
//                     "makespan":{...}, "failures":{...}, "risk_time":{...},
//                     "success":{...}, "diverged":..., "histograms":{...}?}
//   sweep row        {"record":"sweep_point", "protocol":..., "mtbf":...,
//                     "phi":..., "period":..., "model_waste":...,
//                     "sim":{<metrics record>}}
//   trace event      {"record":"trace_event", "time":..., "kind":<stable
//                     trace_kind_id>, "node":..., "work":...}
//
// Numbers use shortest-round-trip formatting, so parse-back compares exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace dckpt::sim {

/// JSON object builders (shared by the writers below and by tests).
util::JsonValue to_json(const util::RunningStats& stats);
util::JsonValue to_json(const util::Histogram& histogram);
util::JsonValue to_json(const util::ProportionEstimate& proportion);
util::JsonValue to_json(const MonteCarloResult& result);
util::JsonValue to_json(const SweepPoint& point);
util::JsonValue to_json(const TraceEvent& event);

/// Stream writers: one JSON document per line.
void write_metrics_jsonl(std::ostream& out, const MonteCarloResult& result);
void write_sweep_jsonl(std::ostream& out, const std::vector<SweepPoint>& rows);
void write_trace_jsonl(std::ostream& out, const Trace& trace);

/// Generic JSONL writers for pre-built documents (the chaos layer routes
/// its records through these): one document per line.
void write_jsonl(std::ostream& out, const util::JsonValue& value);
void save_jsonl(const std::string& path,
                const std::vector<util::JsonValue>& lines);

/// File writers; throw std::runtime_error when `path` cannot be opened.
void save_metrics_jsonl(const std::string& path,
                        const MonteCarloResult& result);
void save_sweep_jsonl(const std::string& path,
                      const std::vector<SweepPoint>& rows);
void save_trace_jsonl(const std::string& path, const Trace& trace);

}  // namespace dckpt::sim
