// Simulation-side period optimization.
//
// The paper picks checkpoint periods from first-order closed forms. This
// module searches for the *empirically* optimal period by minimizing the
// Monte-Carlo waste estimate directly, using common random numbers (the
// same failure streams for every candidate period) so the objective is a
// smooth deterministic function of P and golden-section search applies.
// Benches compare the result against Eq. 9/10/15 to quantify how much the
// first-order approximation leaves on the table.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/protocol_sim.hpp"
#include "sim/runner.hpp"
#include "util/distributions.hpp"

namespace dckpt::sim {

struct EmpiricalOptimum {
  double period = 0.0;        ///< empirically best period
  double waste = 0.0;         ///< Monte-Carlo waste estimate there
  double waste_halfwidth = 0.0;  ///< 95% CI half-width at the optimum
  int evaluations = 0;        ///< objective evaluations performed
};

struct OptimizeOptions {
  std::uint64_t trials_per_eval = 40;  ///< Monte-Carlo size per candidate
  std::uint64_t seed = 0xc0ffee;       ///< common-random-numbers base seed
  std::size_t threads = 0;
  int max_iterations = 40;             ///< golden-section iterations
  double period_hi_factor = 6.0;       ///< upper bracket = factor * P_model
  /// Weibull inter-failure law for the injector; unset = exponential.
  std::optional<util::Weibull> weibull;
};

/// Minimizes simulated waste over the period, bracketing around the model's
/// closed-form optimum. `config.period` is ignored; `config.stop_on_fatal`
/// is forced off (waste is a conditional-on-survival metric in the paper).
EmpiricalOptimum optimize_period_empirically(SimConfig config,
                                             const OptimizeOptions& options);

}  // namespace dckpt::sim
