#include "sim/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dckpt::sim {

namespace {

/// A reply line never exceeds a few KiB, so one stack buffer per read is
/// plenty; level-triggered poll() re-arms for whatever is left.
constexpr std::size_t kReadChunk = 4096;

std::string first_token(const std::string& line) {
  std::istringstream in(line);
  std::string token;
  in >> token;
  return token;
}

}  // namespace

void ServerOptions::validate() const {
  if (max_conns == 0) {
    throw std::invalid_argument("ServerOptions: zero max_conns");
  }
  if (max_line == 0) {
    throw std::invalid_argument("ServerOptions: zero max_line");
  }
  if (queue_depth == 0) {
    throw std::invalid_argument("ServerOptions: zero queue_depth");
  }
  if (high_water == 0) {
    throw std::invalid_argument("ServerOptions: zero high_water");
  }
  if (read_idle_ms <= 0 || write_stall_ms <= 0) {
    throw std::invalid_argument("ServerOptions: deadlines must be positive");
  }
  if (port < 0 || port > 65535) {
    throw std::invalid_argument("ServerOptions: port out of range");
  }
}

Server::Server(EvalService& service, ServerOptions options)
    : service_(service), options_(options) {
  options_.validate();
  service_.set_transport_counters(&counters_);
}

Server::~Server() {
  service_.set_transport_counters(nullptr);
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listener_ >= 0) ::close(listener_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

std::int64_t Server::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Server::start() {
  listener_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    std::perror("serve: socket");
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  const int backlog =
      static_cast<int>(std::max<std::size_t>(options_.max_conns, 16));
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listener_, backlog) < 0) {
    std::perror("serve: bind/listen");
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  if (::pipe2(stop_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) {
    std::perror("serve: pipe2");
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  return true;
}

void Server::request_stop() noexcept {
  if (stop_pipe_[1] < 0) return;
  const char byte = 's';
  // Async-signal-safe by construction: one write() on a pre-opened fd.
  [[maybe_unused]] const auto ignored = ::write(stop_pipe_[1], &byte, 1);
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listener_ >= 0) {
    ::close(listener_);  // new connections are refused from here on
    listener_ = -1;
  }
}

void Server::close_conn(std::uint64_t id, bool peer_initiated) {
  const auto it = conns_.find(id);
  if (it == conns_.end() || it->second.fd < 0) return;
  if (peer_initiated && !it->second.saw_quit) ++counters_.disconnects;
  ::close(it->second.fd);
  it->second.fd = -1;
  doomed_.push_back(id);
}

void Server::note_answered() {
  ++answered_;
  if (stats_hook_ && stats_every_ > 0 && answered_ % stats_every_ == 0) {
    stats_hook_();
  }
}

void Server::push_reply(Connection& conn, std::string reply) {
  reply += '\n';
  const bool had_flushable = !conn.output.empty();
  conn.ready_bytes += reply.size();
  OutSlot slot;
  slot.data = std::move(reply);
  slot.ready = true;
  conn.output.push_back(std::move(slot));
  ++conn.next_slot_id;
  if (!had_flushable) conn.last_progress_ms = now_ms();
  note_answered();
}

void Server::dispatch(Connection& conn, const std::string& line) {
  const std::string command = first_token(line);
  if (command == "HEALTH") {
    // Transport-level liveness: answered even while draining, never
    // counted as a service request (it asks about the server, not the
    // models).
    auto v = util::JsonValue::object();
    v.set("record", "health");
    v.set("status", draining_ ? "draining" : "ok");
    v.set("connections", static_cast<std::uint64_t>(conns_.size()));
    v.set("queued", static_cast<std::uint64_t>(jobs_.size()));
    push_reply(conn, v.dump());
    return;
  }
  if (command == "DRAIN") {
    begin_drain();
    auto v = util::JsonValue::object();
    v.set("record", "drain");
    v.set("draining", true);
    push_reply(conn, v.dump());
    return;
  }
  if (command == "QUIT") {
    conn.saw_quit = true;
    conn.closing = true;
    conn.input.clear();  // nothing after QUIT is answered
    push_reply(conn, service_.handle_line(line));
    return;
  }
  if (draining_ && command != "STATS") {
    push_reply(conn, eval_error_json(
                         "shutdown",
                         "server is draining; no new work accepted")
                         .dump());
    return;
  }
  if (command == "EVAL" &&
      service_.classify_line(line) == EvalService::RequestClass::kHeavy) {
    if (jobs_.size() >= options_.queue_depth) {
      ++counters_.shed;
      push_reply(conn,
                 eval_error_json(
                     "busy", "simulation queue is full; retry with backoff")
                     .dump());
      return;
    }
    Job job;
    job.conn_id = conn.id;
    job.slot_id = conn.next_slot_id;
    job.line = line;
    jobs_.push_back(std::move(job));
    conn.output.emplace_back();  // pending slot holds this reply's place
    ++conn.next_slot_id;
    ++conn.pending_jobs;
    return;
  }
  push_reply(conn, service_.handle_line(line));
}

void Server::parse_lines(Connection& conn) {
  while (conn.fd >= 0 && !conn.closing) {
    if (conn.discarding) {
      const std::size_t nl = conn.input.find('\n');
      if (nl == std::string::npos) {
        conn.input.clear();
        return;
      }
      conn.input.erase(0, nl + 1);
      conn.discarding = false;
      continue;
    }
    const std::size_t nl = conn.input.find('\n');
    if (nl == std::string::npos) {
      if (conn.input.size() > options_.max_line) {
        ++counters_.overlong_lines;
        push_reply(conn,
                   eval_error_json("overlong",
                                   "request line exceeds the line limit")
                       .dump());
        conn.input.clear();
        conn.discarding = true;
      }
      return;
    }
    if (nl > options_.max_line) {
      ++counters_.overlong_lines;
      push_reply(conn, eval_error_json("overlong",
                                       "request line exceeds the line limit")
                           .dump());
      conn.input.erase(0, nl + 1);
      continue;
    }
    std::string line = conn.input.substr(0, nl);
    conn.input.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank lines and bare CRLF are keepalives
    dispatch(conn, line);
  }
}

void Server::read_ready(Connection& conn) {
  if (conn.fd < 0 || conn.closing) return;
  char chunk[kReadChunk];
  const auto got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
  if (got > 0) {
    conn.last_read_ms = now_ms();
    conn.input.append(chunk, static_cast<std::size_t>(got));
    parse_lines(conn);
    return;
  }
  if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return;
  }
  // EOF or a hard error: the peer is gone. Anything still owed to this
  // connection (partial line, queued replies, in-flight jobs) is dropped;
  // job results for a dead connection evaporate at completion time.
  close_conn(conn.id, /*peer_initiated=*/true);
}

void Server::flush(Connection& conn) {
  while (conn.fd >= 0 && !conn.output.empty() && conn.output.front().ready) {
    OutSlot& slot = conn.output.front();
    while (slot.sent < slot.data.size()) {
      const auto wrote =
          ::send(conn.fd, slot.data.data() + slot.sent,
                 slot.data.size() - slot.sent, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close_conn(conn.id, /*peer_initiated=*/true);
        return;
      }
      // A short send is normal under backpressure: keep the remainder
      // queued and let the next POLLOUT continue exactly where we left
      // off (the pre-rewrite server treated any send() >= 0 as complete
      // and truncated replies here).
      slot.sent += static_cast<std::size_t>(wrote);
      conn.ready_bytes -= static_cast<std::size_t>(wrote);
      conn.last_progress_ms = now_ms();
    }
    conn.output.pop_front();
    ++conn.popped_slots;
  }
  if (conn.fd >= 0 && conn.closing && conn.output.empty()) {
    close_conn(conn.id, /*peer_initiated=*/false);
  }
}

void Server::accept_ready() {
  while (conns_.size() < options_.max_conns) {
    const int fd =
        ::accept4(listener_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a racing client that went away
    if (options_.sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf,
                   sizeof(options_.sndbuf));
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.last_read_ms = now_ms();
    conn.last_progress_ms = conn.last_read_ms;
    ++counters_.accepted;
    conns_.emplace(conn.id, std::move(conn));
    counters_.peak_connections =
        std::max(counters_.peak_connections,
                 static_cast<std::uint64_t>(conns_.size()));
  }
}

void Server::run_one_job() {
  if (jobs_.empty()) return;
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  const std::string reply = service_.handle_line(job.line);
  if (draining_) ++counters_.drained;
  const auto it = conns_.find(job.conn_id);
  if (it == conns_.end() || it->second.fd < 0) return;  // peer gone: drop
  Connection& conn = it->second;
  const std::size_t index =
      static_cast<std::size_t>(job.slot_id - conn.popped_slots);
  OutSlot& slot = conn.output[index];
  slot.data = reply + "\n";
  slot.ready = true;
  conn.ready_bytes += slot.data.size();
  conn.last_progress_ms = now_ms();
  --conn.pending_jobs;
  note_answered();
  flush(conn);
  // The loop was blocked while the simulation ran; restart every idle and
  // stall clock so other clients are not billed for our compute time.
  const std::int64_t now = now_ms();
  for (auto& [id, other] : conns_) {
    other.last_read_ms = now;
    other.last_progress_ms = now;
  }
}

void Server::sweep_deadlines() {
  const std::int64_t now = now_ms();
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    const bool flushable = !conn.output.empty() && conn.output.front().ready &&
                           conn.output.front().sent <
                               conn.output.front().data.size();
    if (flushable) {
      if (now - conn.last_progress_ms >= options_.write_stall_ms) {
        ++counters_.write_timeouts;
        close_conn(id, /*peer_initiated=*/false);
        continue;
      }
    } else {
      // Nothing to write (or we are waiting on our own job): the stall
      // clock only measures a peer that stopped draining its replies.
      conn.last_progress_ms = now;
    }
    if (draining_) {
      if (conn.pending_jobs == 0 && conn.output.empty()) {
        close_conn(id, /*peer_initiated=*/false);
      }
      continue;
    }
    if (conn.output.empty() && conn.pending_jobs == 0 &&
        now - conn.last_read_ms >= options_.read_idle_ms) {
      ++counters_.read_timeouts;
      // Best-effort farewell; the socket is idle so this almost always
      // fits in the send buffer whole.
      const std::string farewell =
          eval_error_json("timeout", "closing idle connection").dump() + "\n";
      [[maybe_unused]] const auto ignored =
          ::send(conn.fd, farewell.data(), farewell.size(), MSG_NOSIGNAL);
      close_conn(id, /*peer_initiated=*/false);
    }
  }
}

int Server::poll_timeout_ms() const {
  if (!jobs_.empty()) return 0;
  const std::int64_t now = now_ms();
  std::int64_t nearest = 1000;
  for (const auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    if (!conn.output.empty()) {
      nearest = std::min(
          nearest, conn.last_progress_ms + options_.write_stall_ms - now);
    } else if (!draining_ && conn.pending_jobs == 0) {
      nearest =
          std::min(nearest, conn.last_read_ms + options_.read_idle_ms - now);
    }
  }
  if (draining_) nearest = std::min<std::int64_t>(nearest, 50);
  return static_cast<int>(std::clamp<std::int64_t>(nearest, 0, 1000));
}

int Server::run() {
  if (listener_ < 0 && !draining_) return 1;
  std::uint64_t once_conn_id = 0;

  for (;;) {
    // Reap connections closed during the previous iteration.
    for (const std::uint64_t id : doomed_) conns_.erase(id);
    doomed_.clear();

    if (draining_ && jobs_.empty() && conns_.empty()) break;
    if (options_.once && once_conn_id != 0 &&
        conns_.find(once_conn_id) == conns_.end()) {
      begin_drain();
      continue;
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;  // conn id per pollfd (0 = not a conn)
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    ids.push_back(0);
    const bool accepting = !draining_ && listener_ >= 0 &&
                           conns_.size() < options_.max_conns;
    if (accepting) {
      fds.push_back({listener_, POLLIN, 0});
      ids.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      const bool paused = conn.ready_bytes >= options_.high_water;
      if (!draining_ && !conn.closing && !paused) events |= POLLIN;
      if (!conn.output.empty() && conn.output.front().ready) {
        events |= POLLOUT;
      }
      if (draining_ && !conn.closing) events |= POLLIN;  // detect peer exit
      fds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          poll_timeout_ms());
    if (rc < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char drainbuf[64];
      while (::read(stop_pipe_[0], drainbuf, sizeof(drainbuf)) > 0) {
      }
      begin_drain();
    }
    std::size_t index = 1;
    if (accepting) {
      if (listener_ >= 0 && (fds[index].revents & POLLIN)) accept_ready();
      ++index;
    }
    for (; index < fds.size(); ++index) {
      const auto it = conns_.find(ids[index]);
      if (it == conns_.end() || it->second.fd < 0) continue;
      Connection& conn = it->second;
      const short revents = fds[index].revents;
      if (revents & POLLOUT) flush(conn);
      if (conn.fd >= 0 && (revents & (POLLIN | POLLHUP | POLLERR))) {
        if (draining_ || conn.closing) {
          // Input is not parsed anymore; we only care whether the peer
          // vanished while we flush.
          char sink[kReadChunk];
          const auto got = ::recv(conn.fd, sink, sizeof(sink), 0);
          if (got == 0 || (got < 0 && errno != EAGAIN && errno != EINTR &&
                           errno != EWOULDBLOCK)) {
            close_conn(conn.id, /*peer_initiated=*/true);
          }
        } else {
          read_ready(conn);
        }
      }
      if (conn.fd >= 0) flush(conn);
    }

    run_one_job();
    sweep_deadlines();

    if (options_.once && once_conn_id == 0 && !conns_.empty()) {
      once_conn_id = conns_.begin()->first;
    }
  }
  return 0;
}

}  // namespace dckpt::sim
