// Monte-Carlo driver: runs many independent executions of a SimConfig and
// aggregates waste, makespan and fatal-failure statistics.
//
// Reproducibility contract: trial k always uses RNG stream k split from the
// master seed, and trials are distributed over threads with deterministic
// static chunking -- results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/protocol_sim.hpp"
#include "util/distributions.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

/// Layout of the optional per-trial distribution collection. Bin edges are
/// fixed up front (not data-dependent) so per-chunk histograms merge by
/// plain count addition -- the result is bit-identical for any thread
/// count, preserving the runner's reproducibility contract.
struct MetricsSpec {
  std::size_t bins = 64;
  double max_slowdown = 4.0;     ///< makespan/t_base range [1, max_slowdown)
  double max_failures = 1024.0;  ///< failures-per-trial range [0, max_failures)

  void validate() const;
};

/// Per-trial distributions from one Monte-Carlo campaign. `waste` and
/// `risk_fraction` (time_at_risk/makespan) are dimensionless in [0, 1);
/// `slowdown` is makespan in units of t_base; `failures` counts per trial.
struct MonteCarloMetrics {
  util::Histogram waste;
  util::Histogram slowdown;
  util::Histogram failures;
  util::Histogram risk_fraction;
  /// Trials whose slowdown/risk-fraction ratios are undefined (t_base <= 0
  /// or makespan <= 0). Counted here instead of recording a sentinel 0.0
  /// that would land in the underflow bucket and skew quantiles.
  std::uint64_t degenerate = 0;

  explicit MonteCarloMetrics(const MetricsSpec& spec);

  void add(const TrialResult& trial);
  void merge(const MonteCarloMetrics& other);
};

/// Which trial-execution engine run_monte_carlo dispatches to. Both produce
/// bit-identical results (enforced by the scalar-vs-SoA equivalence tests);
/// the scalar path is kept as the slow reference oracle.
enum class SimEngine {
  kBatched,  ///< SoA batch kernel: pre-sampled variates, branch-light loop
  kScalar,   ///< one ProtocolSimulation object per trial (reference oracle)
};

/// Occupancy/throughput counters from the batched kernel, merged across
/// chunks. All zero when the scalar engine ran.
struct BatchKernelStats {
  std::uint64_t waves = 0;         ///< lane-batches launched
  std::uint64_t lanes = 0;         ///< trials placed into lanes
  std::uint64_t fast_periods = 0;  ///< periods advanced on the fast path
  std::uint64_t exact_steps = 0;   ///< micro-steps in the exact state machine

  /// Mean fraction of lanes filled per wave (1.0 = fully occupied).
  double occupancy(std::size_t lanes_per_wave) const noexcept {
    return waves == 0 ? 0.0
                      : static_cast<double>(lanes) /
                            (static_cast<double>(waves) *
                             static_cast<double>(lanes_per_wave));
  }

  void merge(const BatchKernelStats& other) noexcept {
    waves += other.waves;
    lanes += other.lanes;
    fast_periods += other.fast_periods;
    exact_steps += other.exact_steps;
  }
};

/// Engine override from the DCKPT_ENGINE environment variable ("scalar" or
/// "batched"); `fallback` when unset or unrecognized. Seeds the default of
/// MonteCarloOptions::engine, so CI can re-run the whole test suite under
/// the reference oracle without code changes.
SimEngine engine_from_env(SimEngine fallback = SimEngine::kBatched);

struct MonteCarloOptions {
  std::uint64_t trials = 1000;
  std::uint64_t seed = 0xdc4b7;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Inter-arrival law for per-node streams; unset = platform exponential
  /// (matches the paper's assumptions and is O(1) per failure).
  std::optional<util::Weibull> weibull;
  /// Enables distribution collection; unset keeps the hot loop free of any
  /// histogram work.
  std::optional<MetricsSpec> metrics;
  /// Trial-execution engine. The batched SoA kernel is the default (unless
  /// DCKPT_ENGINE overrides it); the scalar object-at-a-time path is the
  /// bit-identical reference oracle. Explicit assignment always wins.
  SimEngine engine = engine_from_env();
};

struct MonteCarloResult {
  util::RunningStats waste;            ///< per-trial waste 1 - t_base/T
  util::RunningStats makespan;
  util::RunningStats failures;         ///< failures per trial
  util::RunningStats risk_time;        ///< per-trial exposed wall-clock, s
  util::ProportionEstimate success;    ///< trial finished without fatal
  std::uint64_t diverged = 0;          ///< trials that hit the makespan cap
  // Silent-error aggregates (all zero when SimConfig::verify_every is 0).
  util::RunningStats sdc_injected;     ///< silent strikes per trial
  util::RunningStats sdc_detected;     ///< detecting verifications per trial
  util::RunningStats verify_time;      ///< per-trial verification wall-clock
  util::RunningStats rollback_depth;   ///< summed rollback depth per trial
  // Fault-prediction aggregates (all zero when SimConfig::pred_recall is 0).
  util::RunningStats alarms_raised;    ///< alarms per trial (true + false)
  util::RunningStats proactive_ckpts;  ///< proactive commits per trial
  util::RunningStats true_predictions; ///< predicted failures per trial
  util::RunningStats missed_failures;  ///< unpredicted failures per trial
  util::RunningStats proactive_time;   ///< per-trial proactive wall-clock
  /// Present iff MonteCarloOptions::metrics was set.
  std::optional<MonteCarloMetrics> metrics;
  /// Batched-kernel occupancy counters (all zero under SimEngine::kScalar).
  BatchKernelStats kernel;
};

/// Folds one finished trial into the aggregate result, in trial order.
/// Shared by the scalar chunk loop and the batched kernel so both paths
/// feed RunningStats/histograms through the exact same sequence of adds
/// (Welford updates are order-sensitive; this keeps them bit-identical).
void accumulate_trial(MonteCarloResult& result, const TrialResult& trial);

/// Runs `options.trials` independent executions of `config`.
MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options);

/// Same, reusing an existing pool (benches sweep many configs).
MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options,
                                 util::ThreadPool& pool);

}  // namespace dckpt::sim
