// Monte-Carlo driver: runs many independent executions of a SimConfig and
// aggregates waste, makespan and fatal-failure statistics.
//
// Reproducibility contract: trial k always uses RNG stream k split from the
// master seed, and trials are distributed over threads with deterministic
// static chunking -- results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/protocol_sim.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

struct MonteCarloOptions {
  std::uint64_t trials = 1000;
  std::uint64_t seed = 0xdc4b7;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Inter-arrival law for per-node streams; unset = platform exponential
  /// (matches the paper's assumptions and is O(1) per failure).
  std::optional<util::Weibull> weibull;
};

struct MonteCarloResult {
  util::RunningStats waste;            ///< per-trial waste 1 - t_base/T
  util::RunningStats makespan;
  util::RunningStats failures;         ///< failures per trial
  util::ProportionEstimate success;    ///< trial finished without fatal
  std::uint64_t diverged = 0;          ///< trials that hit the makespan cap
};

/// Runs `options.trials` independent executions of `config`.
MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options);

/// Same, reusing an existing pool (benches sweep many configs).
MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options,
                                 util::ThreadPool& pool);

}  // namespace dckpt::sim
