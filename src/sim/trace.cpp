#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace dckpt::sim {

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::PeriodStart:
      return "period-start";
    case TraceKind::LocalCheckpointDone:
      return "local-ckpt-done";
    case TraceKind::RemoteExchangeDone:
      return "remote-exchange-done";
    case TraceKind::PreferredCopyDone:
      return "preferred-copy-done";
    case TraceKind::Failure:
      return "failure";
    case TraceKind::Rollback:
      return "rollback";
    case TraceKind::DowntimeEnd:
      return "downtime-end";
    case TraceKind::RecoveryEnd:
      return "recovery-end";
    case TraceKind::ReexecutionEnd:
      return "reexecution-end";
    case TraceKind::RiskWindowOpen:
      return "risk-window-open";
    case TraceKind::RiskWindowClose:
      return "risk-window-close";
    case TraceKind::FatalFailure:
      return "FATAL-failure";
    case TraceKind::ApplicationDone:
      return "application-done";
    case TraceKind::Alarm:
      return "alarm";
    case TraceKind::ProactiveCommit:
      return "proactive-commit";
  }
  return "?";
}

const char* trace_kind_id(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::PeriodStart:
      return "period_start";
    case TraceKind::LocalCheckpointDone:
      return "local_checkpoint_done";
    case TraceKind::RemoteExchangeDone:
      return "remote_exchange_done";
    case TraceKind::PreferredCopyDone:
      return "preferred_copy_done";
    case TraceKind::Failure:
      return "failure";
    case TraceKind::Rollback:
      return "rollback";
    case TraceKind::DowntimeEnd:
      return "downtime_end";
    case TraceKind::RecoveryEnd:
      return "recovery_end";
    case TraceKind::ReexecutionEnd:
      return "reexecution_end";
    case TraceKind::RiskWindowOpen:
      return "risk_window_open";
    case TraceKind::RiskWindowClose:
      return "risk_window_close";
    case TraceKind::FatalFailure:
      return "fatal_failure";
    case TraceKind::ApplicationDone:
      return "application_done";
    case TraceKind::Alarm:
      return "alarm";
    case TraceKind::ProactiveCommit:
      return "proactive_commit";
  }
  return "unknown";
}

std::optional<TraceKind> parse_trace_kind_id(std::string_view id) noexcept {
  constexpr TraceKind kinds[] = {
      TraceKind::PeriodStart,    TraceKind::LocalCheckpointDone,
      TraceKind::RemoteExchangeDone, TraceKind::PreferredCopyDone,
      TraceKind::Failure,        TraceKind::Rollback,
      TraceKind::DowntimeEnd,    TraceKind::RecoveryEnd,
      TraceKind::ReexecutionEnd, TraceKind::RiskWindowOpen,
      TraceKind::RiskWindowClose, TraceKind::FatalFailure,
      TraceKind::ApplicationDone, TraceKind::Alarm,
      TraceKind::ProactiveCommit};
  for (TraceKind kind : kinds) {
    if (id == trace_kind_id(kind)) return kind;
  }
  return std::nullopt;
}

std::string TraceEvent::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "t=%12.3f  %-22s node=%-6llu work=%.3f",
                time, trace_kind_name(kind),
                static_cast<unsigned long long>(node), work_level);
  return buf;
}

std::string Trace::render() const {
  std::ostringstream out;
  for (const auto& event : events_) out << event.to_string() << "\n";
  return out.str();
}

}  // namespace dckpt::sim
