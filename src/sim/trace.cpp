#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace dckpt::sim {

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::PeriodStart:
      return "period-start";
    case TraceKind::LocalCheckpointDone:
      return "local-ckpt-done";
    case TraceKind::RemoteExchangeDone:
      return "remote-exchange-done";
    case TraceKind::PreferredCopyDone:
      return "preferred-copy-done";
    case TraceKind::Failure:
      return "failure";
    case TraceKind::Rollback:
      return "rollback";
    case TraceKind::DowntimeEnd:
      return "downtime-end";
    case TraceKind::RecoveryEnd:
      return "recovery-end";
    case TraceKind::ReexecutionEnd:
      return "reexecution-end";
    case TraceKind::RiskWindowOpen:
      return "risk-window-open";
    case TraceKind::RiskWindowClose:
      return "risk-window-close";
    case TraceKind::FatalFailure:
      return "FATAL-failure";
    case TraceKind::ApplicationDone:
      return "application-done";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "t=%12.3f  %-22s node=%-6llu work=%.3f",
                time, trace_kind_name(kind),
                static_cast<unsigned long long>(node), work_level);
  return buf;
}

std::string Trace::render() const {
  std::ostringstream out;
  for (const auto& event : events_) out << event.to_string() << "\n";
  return out.str();
}

}  // namespace dckpt::sim
