#include "sim/service.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "model/model_api.hpp"
#include "sim/batch_kernel.hpp"

namespace dckpt::sim {

namespace {

/// Latency histogram layout: log10(microseconds + 1) over [0, 7) -- from
/// sub-microsecond cache hits to multi-second Monte-Carlo campaigns at
/// 0.05-decade resolution. Documented in docs/SERVE.md; keep in sync.
constexpr double kLatencyLogLo = 0.0;
constexpr double kLatencyLogHi = 7.0;
constexpr std::size_t kLatencyBins = 140;

/// Quantizes one numeric request parameter for the cache key. %.6g folds
/// noise beyond six significant digits (1e-6 relative), so clients sending
/// 25200.0000001 and 25200 share an entry; it is also exactly the rounding
/// a planner UI slider produces.
std::string quantize(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

struct Request {
  std::string kind;
  std::string protocol = "triple";
  std::string scenario = "base";
  double mtbf = 25200.0;
  double phi_ratio = 0.25;
  double nodes = 0.0;
  double period = 0.0;   ///< 0 = closed-form optimum
  double tbase = 100000.0;
  double trials = 0.0;   ///< 0 = service default
  double seed = 42.0;
  double weibull_shape = 0.0;
  double mission_hours = 24.0;
};

/// Largest double that casts to an integer type without UB headroom
/// worries: every integer up to 2^53 is exactly representable.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

double parse_number(const std::string& key, const std::string& text) {
  double value = 0.0;
  try {
    std::size_t used = 0;
    value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw EvalError("parse",
                    "bad numeric value for '" + key + "': " + text);
  }
  // std::stod happily accepts "nan" and "inf"; every request parameter is
  // a physical quantity, so non-finite values are always client errors
  // (and would otherwise flow into casts and comparisons as poison).
  if (!std::isfinite(value)) {
    throw EvalError("parse",
                    "non-finite value for '" + key + "': " + text);
  }
  return value;
}

/// Guards the double -> uint64 casts: a negative or over-2^53 double makes
/// the cast undefined behavior, so reject the request instead.
void require_castable_count(const std::string& key, double value) {
  if (value < 0.0 || value > kMaxExactInteger) {
    throw EvalError("parse", "'" + key +
                                 "' must be a non-negative integer <= 2^53");
  }
}

Request parse_request(const std::string& line) {
  Request req;
  std::istringstream in(line);
  std::string token;
  in >> token;  // consume "EVAL"
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      req.kind = value;
    } else if (key == "protocol") {
      req.protocol = value;
    } else if (key == "scenario") {
      req.scenario = value;
    } else if (key == "mtbf") {
      req.mtbf = parse_number(key, value);
    } else if (key == "phi-ratio") {
      req.phi_ratio = parse_number(key, value);
    } else if (key == "nodes") {
      req.nodes = parse_number(key, value);
    } else if (key == "period") {
      req.period = parse_number(key, value);
    } else if (key == "tbase") {
      req.tbase = parse_number(key, value);
    } else if (key == "trials") {
      req.trials = parse_number(key, value);
    } else if (key == "seed") {
      req.seed = parse_number(key, value);
    } else if (key == "weibull-shape") {
      req.weibull_shape = parse_number(key, value);
    } else if (key == "mission-hours") {
      req.mission_hours = parse_number(key, value);
    } else {
      throw std::invalid_argument("unknown key '" + key + "'");
    }
  }
  if (req.kind.empty()) {
    throw std::invalid_argument("missing kind= (waste|period|risk|sim)");
  }
  if (req.scenario != "base" && req.scenario != "exa") {
    throw std::invalid_argument("scenario must be base or exa");
  }
  require_castable_count("seed", req.seed);
  require_castable_count("trials", req.trials);
  require_castable_count("nodes", req.nodes);
  if (req.period < 0.0) {
    throw EvalError("parse", "'period' must be >= 0 (0 = closed-form)");
  }
  return req;
}

model::Parameters params_from(const Request& req) {
  const auto scenario = req.scenario == "exa" ? model::exa_scenario()
                                              : model::base_scenario();
  auto params =
      scenario.at_phi_ratio(req.phi_ratio).with_mtbf(req.mtbf);
  if (req.nodes > 0.0) {
    params.nodes = static_cast<std::uint64_t>(req.nodes);
  }
  params.validate();
  return params;
}

/// Canonical cache key: every parameter that influences the answer, in a
/// fixed order, quantized. period=0 keys the "optimal period" variant.
std::string cache_key(const Request& req) {
  std::string key = req.kind;
  key += '|';
  key += req.protocol;
  key += '|';
  key += req.scenario;
  for (const double v :
       {req.mtbf, req.phi_ratio, req.nodes, req.period, req.tbase, req.trials,
        req.seed, req.weibull_shape, req.mission_hours}) {
    key += '|';
    key += quantize(v);
  }
  return key;
}

double resolve_period(model::Protocol protocol,
                      const model::Parameters& params, double requested) {
  if (requested > 0.0) return requested;
  const auto opt = model::optimal_period_closed_form(protocol, params);
  if (!opt.feasible) {
    throw std::invalid_argument(
        "platform stalls at the closed-form optimum; pass period= explicitly");
  }
  return opt.period;
}

}  // namespace

util::JsonValue eval_error_json(const std::string& code,
                                const std::string& message) {
  auto v = util::JsonValue::object();
  v.set("record", "eval_error");
  v.set("code", code);
  v.set("error", message);
  return v;
}

util::JsonValue ServerCounters::to_json() const {
  auto v = util::JsonValue::object();
  v.set("accepted", accepted);
  v.set("shed", shed);
  v.set("read_timeouts", read_timeouts);
  v.set("write_timeouts", write_timeouts);
  v.set("overlong_lines", overlong_lines);
  v.set("disconnects", disconnects);
  v.set("peak_connections", peak_connections);
  v.set("drained", drained);
  return v;
}

void EvalServiceOptions::validate() const {
  if (cache_capacity == 0) {
    throw std::invalid_argument("EvalServiceOptions: zero cache_capacity");
  }
  if (default_trials == 0 || max_trials < default_trials) {
    throw std::invalid_argument(
        "EvalServiceOptions: need 0 < default_trials <= max_trials");
  }
}

EvalService::EvalService(EvalServiceOptions options)
    : options_(options),
      pool_(options.threads),
      cache_((options.validate(), options.cache_capacity)),
      latency_log_us_(kLatencyLogLo, kLatencyLogHi, kLatencyBins),
      started_(std::chrono::steady_clock::now()) {}

std::string EvalService::handle_line(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  ++requests_;
  std::istringstream in(line);
  std::string command;
  in >> command;
  std::string response;
  if (command == "EVAL") {
    ++evals_;
    try {
      response = handle_eval(line).dump();
    } catch (const EvalError& error) {
      ++errors_;
      response = eval_error_json(error.code(), error.what()).dump();
    } catch (const std::invalid_argument& error) {
      // Argument validation below the service (model parameter checks,
      // protocol-name parsing) is still the client's fault.
      ++errors_;
      response = eval_error_json("parse", error.what()).dump();
    } catch (const std::exception& error) {
      ++errors_;
      response = eval_error_json("internal", error.what()).dump();
    }
  } else if (command == "STATS") {
    response = stats_json().dump();
  } else if (command == "QUIT") {
    auto v = util::JsonValue::object();
    v.set("record", "bye");
    response = v.dump();
  } else {
    ++errors_;
    response = eval_error_json("parse", "unknown command '" + command +
                                            "' (expected EVAL, STATS or QUIT)")
                   .dump();
  }
  record_latency(start);
  return response;
}

EvalService::RequestClass EvalService::classify_line(
    const std::string& line) const {
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command != "EVAL") return RequestClass::kLight;
  try {
    const Request req = parse_request(line);
    if (req.kind != "sim") return RequestClass::kLight;
    // A cached sim replays in microseconds: admit it inline rather than
    // burning a queue slot (and possibly a busy rejection) on it.
    return cache_.contains(cache_key(req)) ? RequestClass::kLight
                                           : RequestClass::kHeavy;
  } catch (const std::exception&) {
    return RequestClass::kLight;  // the error record is cheap to produce
  }
}

util::JsonValue EvalService::handle_eval(const std::string& line) {
  const Request req = parse_request(line);
  const std::string key = cache_key(req);
  if (util::JsonValue* hit = cache_.get(key)) {
    util::JsonValue response = *hit;
    response.set("cached", true);
    return response;
  }

  const auto protocol = model::parse_protocol_name(req.protocol);
  const auto params = params_from(req);
  auto v = util::JsonValue::object();
  v.set("record", "eval");
  v.set("kind", req.kind);
  v.set("protocol", model::protocol_name(protocol));

  if (req.kind == "waste") {
    const double period = resolve_period(protocol, params, req.period);
    v.set("period", period);
    v.set("waste", model::waste(protocol, params, period));
    v.set("min_period", model::min_period(protocol, params));
  } else if (req.kind == "period") {
    const auto opt = model::optimal_period_closed_form(protocol, params);
    v.set("period", opt.period);
    v.set("waste", opt.waste);
    v.set("feasible", opt.feasible);
  } else if (req.kind == "risk") {
    const double mission = req.mission_hours * 3600.0;
    v.set("risk_window", model::risk_window(protocol, params));
    v.set("success_probability",
          model::success_probability(protocol, params, mission));
    v.set("mission_hours", req.mission_hours);
  } else if (req.kind == "sim") {
    if (params.nodes > 100000) {
      throw EvalError("limit", "nodes too large for kind=sim (keep <= 100000)");
    }
    SimConfig config;
    config.protocol = protocol;
    config.params = params;
    config.t_base = req.tbase;
    config.stop_on_fatal = false;
    config.period = resolve_period(protocol, params, req.period);

    MonteCarloOptions mc_options;
    const std::uint64_t trials =
        req.trials > 0.0 ? static_cast<std::uint64_t>(req.trials)
                         : options_.default_trials;
    if (trials > options_.max_trials) {
      throw EvalError("limit", "trials exceeds the service limit");
    }
    mc_options.trials = trials;
    mc_options.seed = static_cast<std::uint64_t>(req.seed);
    mc_options.threads = options_.threads;
    mc_options.engine = options_.engine;
    if (req.weibull_shape > 0.0) {
      mc_options.weibull = util::Weibull::from_mean(req.weibull_shape,
                                                    params.node_mtbf());
    }
    const auto mc = run_monte_carlo(config, mc_options, pool_);
    kernel_.merge(mc.kernel);
    sim_trials_ += trials;
    v.set("period", config.period);
    v.set("trials", trials);
    v.set("waste_mean", mc.waste.mean());
    v.set("waste_halfwidth", mc.waste.confidence_halfwidth());
    v.set("makespan_mean", mc.makespan.mean());
    v.set("failures_mean", mc.failures.mean());
    v.set("survival", mc.success.estimate());
    v.set("diverged", mc.diverged);
  } else {
    throw std::invalid_argument("unknown kind '" + req.kind +
                                "' (waste|period|risk|sim)");
  }

  cache_.put(key, v);
  v.set("cached", false);
  return v;
}

void EvalService::record_latency(
    std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  latency_log_us_.add(std::log10(us + 1.0));
}

util::JsonValue EvalService::stats_json() const {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  auto v = util::JsonValue::object();
  v.set("record", "serve_stats");
  v.set("uptime_s", uptime);
  v.set("requests", requests_);
  v.set("evals", evals_);
  v.set("errors", errors_);
  v.set("qps", uptime > 0.0 ? static_cast<double>(requests_) / uptime : 0.0);

  auto cache = util::JsonValue::object();
  cache.set("hits", cache_.hits());
  cache.set("misses", cache_.misses());
  cache.set("evictions", cache_.evictions());
  cache.set("hit_rate", cache_.hit_rate());
  cache.set("size", static_cast<std::uint64_t>(cache_.size()));
  cache.set("capacity", static_cast<std::uint64_t>(cache_.capacity()));
  v.set("cache", std::move(cache));

  auto kernel = util::JsonValue::object();
  kernel.set("waves", kernel_.waves);
  kernel.set("lanes", kernel_.lanes);
  kernel.set("fast_periods", kernel_.fast_periods);
  kernel.set("exact_steps", kernel_.exact_steps);
  kernel.set("occupancy", kernel_.occupancy(kBatchLanes));
  v.set("kernel", std::move(kernel));

  auto latency = util::JsonValue::object();
  const std::uint64_t in_range = latency_log_us_.total_count() -
                                 latency_log_us_.underflow() -
                                 latency_log_us_.overflow() -
                                 latency_log_us_.nonfinite();
  latency.set("count", latency_log_us_.total_count());
  if (in_range > 0) {
    // Stored as log10(us + 1); undo the transform for the exported values.
    latency.set("p50_us",
                std::pow(10.0, latency_log_us_.quantile(0.5)) - 1.0);
    latency.set("p99_us",
                std::pow(10.0, latency_log_us_.quantile(0.99)) - 1.0);
  }
  v.set("latency", std::move(latency));
  v.set("sim_trials", sim_trials_);

  static const ServerCounters kNoTransport{};
  v.set("server", (transport_ ? *transport_ : kNoTransport).to_json());
  return v;
}

}  // namespace dckpt::sim
