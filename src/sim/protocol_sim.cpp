#include "sim/protocol_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/risk.hpp"
#include "model/waste.hpp"
#include "sim/engine_geometry.hpp"

namespace dckpt::sim {

namespace {

using engine::Geometry;
using engine::kWorkEpsilon;

enum class Phase {
  Part1, Part2, Part3, Down, Recover, Reexec, Verify, Proactive
};

Geometry make_geometry(const SimConfig& config) {
  return engine::make_geometry(config.protocol, config.params, config.period,
                               config.dcp);
}

/// Full mutable engine state.
struct Engine {
  const SimConfig& config;
  const Geometry geo;
  FailureInjector& injector;
  RiskTracker risk_tracker;
  Trace* trace;

  double now = 0.0;
  double work = 0.0;       ///< current application state level
  double committed = 0.0;  ///< level of the last committed snapshot set
  double pending = 0.0;    ///< level captured by the in-flight snapshot

  Phase phase = Phase::Part1;
  double phase_remaining = 0.0;

  // Failure-handling context.
  double pre_failure_work = 0.0;       ///< level to restore via re-execution
  Phase resume_phase = Phase::Part1;   ///< interrupted phase to resume
  double resume_remaining = 0.0;
  double overlap_remaining = 0.0;      ///< degraded re-execution window left
  double risk_open_until = 0.0;        ///< latest risk-window expiry seen

  // Silent-error state (active when verify_every > 0 / sdc_rate > 0).
  util::Xoshiro256ss sdc_rng;
  double next_sdc = std::numeric_limits<double>::infinity();
  std::uint64_t live_taint = 0;     ///< strikes present in the live state
  std::uint64_t pending_taint = 0;  ///< live_taint when `pending` was captured
  engine::SdcLadder ladder;
  std::uint64_t periods_since_verify = 0;
  /// Set by a verified rollback: its Recover/Reexec chain ends in a fresh
  /// period, not a saved phase (resuming Part3-with-zero-remaining instead
  /// would re-enter the boundary hook and double-count the period).
  bool resume_fresh_period = false;

  // Fault-prediction state (active when pred_recall > 0).
  util::Xoshiro256ss pred_rng;   ///< per-failure decision + lead draws
  util::Xoshiro256ss false_rng;  ///< false-alarm Poisson clock
  double false_rate = 0.0;
  double next_true_alarm = std::numeric_limits<double>::infinity();
  double next_false_alarm = std::numeric_limits<double>::infinity();
  /// Failure time the last predictor decision was drawn for (one decision
  /// per distinct pending-failure time; -inf = none yet).
  double pred_decided_for = -std::numeric_limits<double>::infinity();
  bool next_fail_predicted = false;
  Phase proactive_resume_phase = Phase::Part1;  ///< interrupted by the alarm
  double proactive_resume_remaining = 0.0;

  TrialResult result;

  Engine(const SimConfig& cfg, std::unique_ptr<FailureInjector>& inj,
         std::uint64_t stream_seed, Trace* tr)
      : config(cfg), geo(make_geometry(cfg)), injector(*inj),
        risk_tracker(cfg.params.nodes, model::group_size(cfg.protocol)),
        trace(tr), sdc_rng(stream_seed ^ engine::kSdcSeedSalt),
        pred_rng(stream_seed ^ engine::kPredSeedSalt),
        false_rng(stream_seed ^ engine::kFalseAlarmSeedSalt) {
    if (config.verify_every > 0) ladder.reset(config.keep_last);
    if (config.sdc_rate > 0.0) {
      next_sdc = engine::next_strike_time(0.0, sdc_rng, config.sdc_rate);
    }
    if (config.pred_recall > 0.0) {
      false_rate = engine::false_alarm_rate(
          config.params.mtbf, config.pred_precision, config.pred_recall);
      if (false_rate > 0.0) {
        next_false_alarm =
            engine::next_strike_time(0.0, false_rng, false_rate);
      }
    }
  }

  void record(TraceKind kind, std::uint64_t node = 0) {
    if (trace) trace->record(now, kind, node, work);
  }

  double current_rate() const {
    switch (phase) {
      case Phase::Part1:
        return geo.rate1;
      case Phase::Part2:
        return geo.rate2;
      case Phase::Part3:
        return 1.0;
      case Phase::Down:
      case Phase::Recover:
      case Phase::Verify:
      case Phase::Proactive:
        return 0.0;
      case Phase::Reexec:
        return overlap_remaining > 0.0 ? geo.overlap_rate : 1.0;
    }
    return 0.0;
  }

  bool in_failure_handling() const {
    return phase == Phase::Down || phase == Phase::Recover ||
           phase == Phase::Reexec;
  }

  void start_period() {
    pending = work;
    pending_taint = live_taint;
    phase = Phase::Part1;
    phase_remaining = geo.part1;
    record(TraceKind::PeriodStart);
    if (geo.part1 == 0.0) end_of_phase();  // degenerate delta = 0
  }

  /// Charges `dt` of wall-clock at the current phase rate, updating work
  /// and the loss breakdown.
  void advance(double dt) {
    const double rate = current_rate();
    // Multiply-then-add through named temporaries: keeps the arithmetic a
    // plain rounded product plus a rounded sum even under -ffp-contract=fast
    // (no silent FMA fusion), so the batched kernel can reproduce it
    // bit-exactly from precomputed per-phase products.
    const double gained = rate * dt;
    work += gained;
    now += dt;
    switch (phase) {
      case Phase::Part1:
      case Phase::Part2: {
        const double lost = (1.0 - rate) * dt;
        result.time_checkpointing += lost;
        break;
      }
      case Phase::Part3:
        break;
      case Phase::Down:
        result.time_down += dt;
        break;
      case Phase::Recover:
        result.time_recovering += dt;
        break;
      case Phase::Reexec:
        result.time_reexecuting += dt;
        break;
      case Phase::Verify:
        result.time_verifying += dt;
        break;
      case Phase::Proactive:
        result.time_proactive += dt;
        break;
    }
    phase_remaining -= dt;
    if (phase == Phase::Reexec && overlap_remaining > 0.0) {
      overlap_remaining -= dt;
    }
  }

  /// Commits the in-flight snapshot and records it on the retention ladder
  /// (with the taint it captured) when verification is enabled. A proactive
  /// commit taken after this period's snapshot was captured supersedes it:
  /// committed never regresses (a no-op without prediction, where pending
  /// is always >= committed).
  void commit_snapshot() {
    if (pending < committed) return;
    committed = pending;
    if (config.verify_every > 0) ladder.push(pending, pending_taint);
  }

  /// Period-boundary hook: runs the blocking verification when one is due,
  /// otherwise starts the next period directly.
  void end_of_period() {
    if (config.verify_every > 0 &&
        ++periods_since_verify >= config.verify_every) {
      periods_since_verify = 0;
      phase = Phase::Verify;
      phase_remaining = config.verify_cost;
      if (phase_remaining == 0.0) end_of_phase();
      return;
    }
    start_period();
  }

  void end_of_phase() {
    switch (phase) {
      case Phase::Part1:
        if (geo.commit_after_part1) {
          commit_snapshot();
          record(TraceKind::PreferredCopyDone);
        } else {
          record(TraceKind::LocalCheckpointDone);
        }
        phase = Phase::Part2;
        phase_remaining = geo.part2;
        break;
      case Phase::Part2:
        if (!geo.commit_after_part1) commit_snapshot();
        record(TraceKind::RemoteExchangeDone);
        phase = Phase::Part3;
        phase_remaining = geo.part3;
        if (geo.part3 == 0.0) end_of_period();
        break;
      case Phase::Part3:
        end_of_period();
        break;
      case Phase::Down:
        record(TraceKind::DowntimeEnd);
        phase = Phase::Recover;
        phase_remaining = geo.recover;
        if (phase_remaining == 0.0) end_of_phase();
        break;
      case Phase::Recover:
        record(TraceKind::RecoveryEnd);
        if (pre_failure_work - work > kWorkEpsilon) {
          phase = Phase::Reexec;
          overlap_remaining = geo.reexec_overlap;
          // Time to re-gain the deficit: degraded window first, then full
          // speed.
          phase_remaining = reexec_duration(pre_failure_work - work);
        } else {
          resume_interrupted();
        }
        break;
      case Phase::Reexec:
        record(TraceKind::ReexecutionEnd);
        resume_interrupted();
        break;
      case Phase::Verify:
        finish_verification();
        break;
      case Phase::Proactive:
        // The proactive snapshot commits at the alarm's work level and
        // lands on the retention ladder like any other commit.
        committed = work;
        if (config.verify_every > 0) ladder.push(work, live_taint);
        ++result.proactive_ckpts;
        record(TraceKind::ProactiveCommit);
        phase = proactive_resume_phase;
        phase_remaining = proactive_resume_remaining;
        if (phase_remaining <= 0.0) end_of_phase();
        break;
    }
  }

  /// Verification decision at the end of a Verify phase. A clean live state
  /// starts the next period; detected corruption rolls back to the
  /// shallowest clean ladder rung (recovery transfer, then re-execution of
  /// the discarded work); with no clean rung left the run is fatal and the
  /// corrupt state is accepted as the new truth (mirroring the runtime's
  /// fatal-accept semantics).
  void finish_verification() {
    ++result.verifications_run;
    if (live_taint == 0) {
      start_period();
      return;
    }
    ++result.sdc_detected;
    const std::size_t depth = ladder.first_clean();
    if (depth == engine::SdcLadder::npos) {
      if (!result.fatal) {
        result.fatal = true;
        result.fatal_time = now;
      }
      live_taint = 0;
      start_period();
      return;
    }
    result.rollback_depth += depth;
    record(TraceKind::Rollback);
    pre_failure_work = work;
    work = ladder.rungs[depth].level;
    committed = work;
    live_taint = 0;  // the selected rung is clean by construction
    ladder.drop(depth);
    resume_fresh_period = true;
    overlap_remaining = 0.0;
    phase = Phase::Recover;
    phase_remaining = geo.recover;
    if (phase_remaining == 0.0) end_of_phase();
  }

  double reexec_duration(double deficit) const {
    return engine::reexec_duration(geo, deficit);
  }

  void resume_interrupted() {
    if (resume_fresh_period) {
      resume_fresh_period = false;
      start_period();
      return;
    }
    phase = resume_phase;
    phase_remaining = resume_remaining;
    if (phase_remaining <= 0.0) {
      end_of_phase();
    }
  }

  void handle_failure(const FailureEvent& event) {
    injector.pop();
    ++result.failures;
    if (config.pred_recall > 0.0) {
      // The decision for this failure was drawn when it first became the
      // pending event; settle the prediction scoreboard.
      if (next_fail_predicted) {
        ++result.true_predictions;
      } else {
        ++result.missed_failures;
      }
    }
    record(TraceKind::Failure, event.node);
    const bool fatal =
        risk_tracker.on_failure(event.node, event.time, geo.risk);
    record(TraceKind::RiskWindowOpen, event.node);
    // Exposure accounting: windows all have length geo.risk and open in
    // time order, so the union grows by the part past the furthest expiry
    // (the full window when the previous one has already closed).
    const double window_close = event.time + geo.risk;
    result.time_at_risk += std::min(geo.risk, window_close - risk_open_until);
    risk_open_until = window_close;
    injector.on_node_replaced(event.node, event.time,
                              event.time + geo.downtime);
    if (fatal) {
      record(TraceKind::FatalFailure, event.node);
      result.fatal = true;
      result.fatal_time = event.time;
      if (config.stop_on_fatal) return;
    }
    if (!in_failure_handling()) {
      if (phase == Phase::Proactive) {
        // The failure kills the in-flight proactive checkpoint; after
        // repair the run resumes the phase the alarm had interrupted.
        resume_phase = proactive_resume_phase;
        resume_remaining = proactive_resume_remaining;
      } else {
        // Save the interrupted phase; it resumes at its offset after
        // repair.
        resume_phase = phase;
        resume_remaining = phase_remaining;
      }
      pre_failure_work = work;
    }
    // Failures inside Down/Recover/Reexec keep the saved context; the
    // rollback target and deficit are unchanged.
    record(TraceKind::Rollback, event.node);
    work = committed;
    // Restoring the newest committed snapshot re-introduces whatever silent
    // corruption it captured (and sheds strikes it predates).
    if (config.verify_every > 0) live_taint = ladder.front_taint();
    phase = Phase::Down;
    phase_remaining = geo.downtime;
    overlap_remaining = 0.0;
    if (phase_remaining == 0.0) end_of_phase();
  }

  /// A silent strike: taints the live state invisibly (no rollback, no
  /// downtime -- detection waits for the next verification).
  void handle_strike() {
    ++result.sdc_injected;
    ++live_taint;
    next_sdc = engine::next_strike_time(next_sdc, sdc_rng, config.sdc_rate);
  }

  /// One predictor decision per distinct pending-failure time: with
  /// probability r the failure is predicted and a true alarm is scheduled
  /// `lead` seconds ahead of it -- lead uniform in (0, w) when the window w
  /// is positive, exactly C_p when w == 0 (the alarm arrives just in time
  /// for the proactive checkpoint to complete as the failure lands).
  void decide_prediction(double fail_time) {
    if (fail_time == pred_decided_for) return;
    pred_decided_for = fail_time;
    next_fail_predicted = false;
    next_true_alarm = std::numeric_limits<double>::infinity();
    if (!std::isfinite(fail_time)) return;
    if (pred_rng.next_double_open_zero() > config.pred_recall) return;
    next_fail_predicted = true;
    const double lead =
        config.pred_window > 0.0
            ? config.pred_window * pred_rng.next_double_open_zero()
            : config.proactive_cost;
    next_true_alarm = std::max(fail_time - lead, now);
  }

  /// An alarm (true or false): unless the run is repairing/verifying, or a
  /// proactive checkpoint is already in flight, or nothing new would be
  /// saved (skip-if-just-committed), the current work level is captured by
  /// a blocking proactive checkpoint of cost C_p.
  void handle_alarm(bool true_alarm) {
    ++result.alarms_raised;
    record(TraceKind::Alarm);
    if (true_alarm) {
      next_true_alarm = std::numeric_limits<double>::infinity();
    } else {
      next_false_alarm =
          engine::next_strike_time(next_false_alarm, false_rng, false_rate);
    }
    if (in_failure_handling() || phase == Phase::Verify ||
        phase == Phase::Proactive || work - committed <= kWorkEpsilon) {
      return;
    }
    proactive_resume_phase = phase;
    proactive_resume_remaining = phase_remaining;
    phase = Phase::Proactive;
    phase_remaining = config.proactive_cost;
    if (phase_remaining == 0.0) end_of_phase();
  }

  TrialResult run() {
    result.t_base = config.t_base;
    const double cap =
        engine::makespan_cap(config.max_makespan, config.t_base, config.period);
    start_period();
    while (config.t_base - work > kWorkEpsilon) {
      if (now > cap) {
        result.diverged = true;
        break;
      }
      const double rate = current_rate();
      double dt = phase_remaining;
      // The work rate jumps when the degraded re-execution window closes;
      // never integrate across that boundary.
      if (phase == Phase::Reexec && overlap_remaining > 0.0) {
        dt = std::min(dt, overlap_remaining);
      }
      // Stop exactly when the application completes mid-phase.
      if (rate > 0.0) {
        dt = std::min(dt, (config.t_base - work) / rate);
      }
      const FailureEvent next_failure = injector.peek();
      if (config.pred_recall > 0.0) decide_prediction(next_failure.time);
      // Event ordering on ties: alarm > strike > failure. The alarm must
      // win its own failure's tie or a w=0 predictor could never save it; a
      // simultaneous strike + fail-stop failure taints the state first, so
      // the failure's rollback decides its fate.
      const double next_alarm = std::min(next_true_alarm, next_false_alarm);
      const bool alarm_first =
          next_alarm <= next_sdc && next_alarm <= next_failure.time;
      const bool strike_first = !alarm_first && next_sdc <= next_failure.time;
      const double event_time = alarm_first
                                    ? next_alarm
                                    : (strike_first ? next_sdc
                                                    : next_failure.time);
      if (event_time < now + dt) {
        advance(event_time - now);
        if (alarm_first) {
          handle_alarm(next_true_alarm <= next_false_alarm);
        } else if (strike_first) {
          handle_strike();
        } else {
          handle_failure(next_failure);
          if (result.fatal && config.stop_on_fatal) break;
        }
        continue;
      }
      advance(dt);
      if (config.t_base - work <= kWorkEpsilon) break;
      if (phase_remaining <= 1e-12) {
        end_of_phase();
        // A verification can end the run too: detected corruption with no
        // clean retained checkpoint left (no-op for fail-stop-only runs,
        // where fatal is only ever set inside handle_failure).
        if (result.fatal && config.stop_on_fatal) break;
      }
    }
    result.makespan = now;
    record(TraceKind::ApplicationDone);
    return result;
  }
};

}  // namespace

void SimConfig::validate() const {
  params.validate();
  if (!(t_base > 0.0) || !std::isfinite(t_base)) {
    throw std::invalid_argument("SimConfig: t_base must be > 0");
  }
  const double lo = model::min_period(protocol, params);
  if (!(period >= lo * (1.0 - 1e-12))) {
    throw std::invalid_argument("SimConfig: period below min_period");
  }
  if (params.nodes % static_cast<std::uint64_t>(model::group_size(protocol)) !=
      0) {
    throw std::invalid_argument(
        "SimConfig: nodes must be a multiple of the group size");
  }
  if (!(sdc_rate >= 0.0) || !std::isfinite(sdc_rate)) {
    throw std::invalid_argument("SimConfig: sdc_rate must be finite and >= 0");
  }
  if (!(verify_cost >= 0.0) || !std::isfinite(verify_cost)) {
    throw std::invalid_argument(
        "SimConfig: verify_cost must be finite and >= 0");
  }
  if (keep_last == 0) {
    throw std::invalid_argument("SimConfig: keep_last must be >= 1");
  }
  if (sdc_rate > 0.0 && verify_every == 0) {
    throw std::invalid_argument(
        "SimConfig: silent errors require verification enabled "
        "(verify_every > 0)");
  }
  if (!(pred_recall >= 0.0) || !std::isfinite(pred_recall) ||
      pred_recall > 1.0) {
    throw std::invalid_argument(
        "SimConfig: pred_recall must be finite and in [0, 1]");
  }
  if (!(pred_precision >= 0.0) || !std::isfinite(pred_precision) ||
      pred_precision > 1.0) {
    throw std::invalid_argument(
        "SimConfig: pred_precision must be finite and in [0, 1]");
  }
  if (pred_recall > 0.0 && !(pred_precision > 0.0)) {
    throw std::invalid_argument(
        "SimConfig: prediction requires pred_precision > 0");
  }
  if (!(pred_window >= 0.0) || !std::isfinite(pred_window)) {
    throw std::invalid_argument(
        "SimConfig: pred_window must be finite and >= 0");
  }
  if (!(proactive_cost >= 0.0) || !std::isfinite(proactive_cost)) {
    throw std::invalid_argument(
        "SimConfig: proactive_cost must be finite and >= 0");
  }
  dcp.validate();
}

ProtocolSimulation::ProtocolSimulation(SimConfig config,
                                       std::unique_ptr<FailureInjector> injector,
                                       std::uint64_t stream_seed)
    : config_(config), injector_(std::move(injector)),
      stream_seed_(stream_seed) {
  config_.validate();
  if (!injector_) {
    throw std::invalid_argument("ProtocolSimulation: null injector");
  }
  if (injector_->node_count() != config_.params.nodes) {
    throw std::invalid_argument(
        "ProtocolSimulation: injector/params node count mismatch");
  }
}

TrialResult ProtocolSimulation::run(Trace* trace) {
  Engine engine(config_, injector_, stream_seed_, trace);
  return engine.run();
}

TrialResult simulate_exponential(const SimConfig& config, std::uint64_t seed,
                                 Trace* trace) {
  auto injector = std::make_unique<PlatformExponentialInjector>(
      config.params.mtbf, config.params.nodes, util::Xoshiro256ss(seed));
  ProtocolSimulation simulation(config, std::move(injector), seed);
  return simulation.run(trace);
}

}  // namespace dckpt::sim
