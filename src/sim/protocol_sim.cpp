#include "sim/protocol_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/risk.hpp"
#include "model/waste.hpp"
#include "sim/engine_geometry.hpp"

namespace dckpt::sim {

namespace {

using engine::Geometry;
using engine::kWorkEpsilon;

enum class Phase { Part1, Part2, Part3, Down, Recover, Reexec };

Geometry make_geometry(const SimConfig& config) {
  return engine::make_geometry(config.protocol, config.params, config.period);
}

/// Full mutable engine state.
struct Engine {
  const SimConfig& config;
  const Geometry geo;
  FailureInjector& injector;
  RiskTracker risk_tracker;
  Trace* trace;

  double now = 0.0;
  double work = 0.0;       ///< current application state level
  double committed = 0.0;  ///< level of the last committed snapshot set
  double pending = 0.0;    ///< level captured by the in-flight snapshot

  Phase phase = Phase::Part1;
  double phase_remaining = 0.0;

  // Failure-handling context.
  double pre_failure_work = 0.0;       ///< level to restore via re-execution
  Phase resume_phase = Phase::Part1;   ///< interrupted phase to resume
  double resume_remaining = 0.0;
  double overlap_remaining = 0.0;      ///< degraded re-execution window left
  double risk_open_until = 0.0;        ///< latest risk-window expiry seen

  TrialResult result;

  Engine(const SimConfig& cfg, std::unique_ptr<FailureInjector>& inj,
         Trace* tr)
      : config(cfg), geo(make_geometry(cfg)), injector(*inj),
        risk_tracker(cfg.params.nodes, model::group_size(cfg.protocol)),
        trace(tr) {}

  void record(TraceKind kind, std::uint64_t node = 0) {
    if (trace) trace->record(now, kind, node, work);
  }

  double current_rate() const {
    switch (phase) {
      case Phase::Part1:
        return geo.rate1;
      case Phase::Part2:
        return geo.rate2;
      case Phase::Part3:
        return 1.0;
      case Phase::Down:
      case Phase::Recover:
        return 0.0;
      case Phase::Reexec:
        return overlap_remaining > 0.0 ? geo.overlap_rate : 1.0;
    }
    return 0.0;
  }

  bool in_failure_handling() const {
    return phase == Phase::Down || phase == Phase::Recover ||
           phase == Phase::Reexec;
  }

  void start_period() {
    pending = work;
    phase = Phase::Part1;
    phase_remaining = geo.part1;
    record(TraceKind::PeriodStart);
    if (geo.part1 == 0.0) end_of_phase();  // degenerate delta = 0
  }

  /// Charges `dt` of wall-clock at the current phase rate, updating work
  /// and the loss breakdown.
  void advance(double dt) {
    const double rate = current_rate();
    // Multiply-then-add through named temporaries: keeps the arithmetic a
    // plain rounded product plus a rounded sum even under -ffp-contract=fast
    // (no silent FMA fusion), so the batched kernel can reproduce it
    // bit-exactly from precomputed per-phase products.
    const double gained = rate * dt;
    work += gained;
    now += dt;
    switch (phase) {
      case Phase::Part1:
      case Phase::Part2: {
        const double lost = (1.0 - rate) * dt;
        result.time_checkpointing += lost;
        break;
      }
      case Phase::Part3:
        break;
      case Phase::Down:
        result.time_down += dt;
        break;
      case Phase::Recover:
        result.time_recovering += dt;
        break;
      case Phase::Reexec:
        result.time_reexecuting += dt;
        break;
    }
    phase_remaining -= dt;
    if (phase == Phase::Reexec && overlap_remaining > 0.0) {
      overlap_remaining -= dt;
    }
  }

  void end_of_phase() {
    switch (phase) {
      case Phase::Part1:
        if (geo.commit_after_part1) {
          committed = pending;
          record(TraceKind::PreferredCopyDone);
        } else {
          record(TraceKind::LocalCheckpointDone);
        }
        phase = Phase::Part2;
        phase_remaining = geo.part2;
        break;
      case Phase::Part2:
        if (!geo.commit_after_part1) committed = pending;
        record(TraceKind::RemoteExchangeDone);
        phase = Phase::Part3;
        phase_remaining = geo.part3;
        if (geo.part3 == 0.0) start_period();
        break;
      case Phase::Part3:
        start_period();
        break;
      case Phase::Down:
        record(TraceKind::DowntimeEnd);
        phase = Phase::Recover;
        phase_remaining = geo.recover;
        if (phase_remaining == 0.0) end_of_phase();
        break;
      case Phase::Recover:
        record(TraceKind::RecoveryEnd);
        if (pre_failure_work - work > kWorkEpsilon) {
          phase = Phase::Reexec;
          overlap_remaining = geo.reexec_overlap;
          // Time to re-gain the deficit: degraded window first, then full
          // speed.
          phase_remaining = reexec_duration(pre_failure_work - work);
        } else {
          resume_interrupted();
        }
        break;
      case Phase::Reexec:
        record(TraceKind::ReexecutionEnd);
        resume_interrupted();
        break;
    }
  }

  double reexec_duration(double deficit) const {
    return engine::reexec_duration(geo, deficit);
  }

  void resume_interrupted() {
    phase = resume_phase;
    phase_remaining = resume_remaining;
    if (phase_remaining <= 0.0) {
      end_of_phase();
    }
  }

  void handle_failure(const FailureEvent& event) {
    injector.pop();
    ++result.failures;
    record(TraceKind::Failure, event.node);
    const bool fatal =
        risk_tracker.on_failure(event.node, event.time, geo.risk);
    record(TraceKind::RiskWindowOpen, event.node);
    // Exposure accounting: windows all have length geo.risk and open in
    // time order, so the union grows by the part past the furthest expiry
    // (the full window when the previous one has already closed).
    const double window_close = event.time + geo.risk;
    result.time_at_risk += std::min(geo.risk, window_close - risk_open_until);
    risk_open_until = window_close;
    injector.on_node_replaced(event.node, event.time,
                              event.time + geo.downtime);
    if (fatal) {
      record(TraceKind::FatalFailure, event.node);
      result.fatal = true;
      result.fatal_time = event.time;
      if (config.stop_on_fatal) return;
    }
    if (!in_failure_handling()) {
      // Save the interrupted phase; it resumes at its offset after repair.
      resume_phase = phase;
      resume_remaining = phase_remaining;
      pre_failure_work = work;
    }
    // Failures inside Down/Recover/Reexec keep the saved context; the
    // rollback target and deficit are unchanged.
    record(TraceKind::Rollback, event.node);
    work = committed;
    phase = Phase::Down;
    phase_remaining = geo.downtime;
    overlap_remaining = 0.0;
    if (phase_remaining == 0.0) end_of_phase();
  }

  TrialResult run() {
    result.t_base = config.t_base;
    const double cap =
        engine::makespan_cap(config.max_makespan, config.t_base, config.period);
    start_period();
    while (config.t_base - work > kWorkEpsilon) {
      if (now > cap) {
        result.diverged = true;
        break;
      }
      const double rate = current_rate();
      double dt = phase_remaining;
      // The work rate jumps when the degraded re-execution window closes;
      // never integrate across that boundary.
      if (phase == Phase::Reexec && overlap_remaining > 0.0) {
        dt = std::min(dt, overlap_remaining);
      }
      // Stop exactly when the application completes mid-phase.
      if (rate > 0.0) {
        dt = std::min(dt, (config.t_base - work) / rate);
      }
      const FailureEvent next_failure = injector.peek();
      if (next_failure.time < now + dt) {
        advance(next_failure.time - now);
        handle_failure(next_failure);
        if (result.fatal && config.stop_on_fatal) break;
        continue;
      }
      advance(dt);
      if (config.t_base - work <= kWorkEpsilon) break;
      if (phase_remaining <= 1e-12) end_of_phase();
    }
    result.makespan = now;
    record(TraceKind::ApplicationDone);
    return result;
  }
};

}  // namespace

void SimConfig::validate() const {
  params.validate();
  if (!(t_base > 0.0) || !std::isfinite(t_base)) {
    throw std::invalid_argument("SimConfig: t_base must be > 0");
  }
  const double lo = model::min_period(protocol, params);
  if (!(period >= lo * (1.0 - 1e-12))) {
    throw std::invalid_argument("SimConfig: period below min_period");
  }
  if (params.nodes % static_cast<std::uint64_t>(model::group_size(protocol)) !=
      0) {
    throw std::invalid_argument(
        "SimConfig: nodes must be a multiple of the group size");
  }
}

ProtocolSimulation::ProtocolSimulation(SimConfig config,
                                       std::unique_ptr<FailureInjector> injector)
    : config_(config), injector_(std::move(injector)) {
  config_.validate();
  if (!injector_) {
    throw std::invalid_argument("ProtocolSimulation: null injector");
  }
  if (injector_->node_count() != config_.params.nodes) {
    throw std::invalid_argument(
        "ProtocolSimulation: injector/params node count mismatch");
  }
}

TrialResult ProtocolSimulation::run(Trace* trace) {
  Engine engine(config_, injector_, trace);
  return engine.run();
}

TrialResult simulate_exponential(const SimConfig& config, std::uint64_t seed,
                                 Trace* trace) {
  auto injector = std::make_unique<PlatformExponentialInjector>(
      config.params.mtbf, config.params.nodes, util::Xoshiro256ss(seed));
  ProtocolSimulation simulation(config, std::move(injector));
  return simulation.run(trace);
}

}  // namespace dckpt::sim
