#include "sim/risk_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace dckpt::sim {

RiskTracker::RiskTracker(std::uint64_t nodes, int group_size)
    : nodes_(nodes), group_size_(group_size) {
  if (group_size != 2 && group_size != 3) {
    throw std::invalid_argument("RiskTracker: group_size must be 2 or 3");
  }
  if (nodes == 0 || nodes % static_cast<std::uint64_t>(group_size) != 0) {
    throw std::invalid_argument(
        "RiskTracker: nodes must be a positive multiple of group_size");
  }
}

bool RiskTracker::on_failure(std::uint64_t node, double time,
                             double risk_window) {
  if (node >= nodes_) throw std::out_of_range("RiskTracker: node id");
  const std::uint64_t group = group_of(node);
  const std::uint64_t member = node % static_cast<std::uint64_t>(group_size_);
  auto& windows = open_[group];
  // Prune expired windows: exposure ended, replicas restored.
  std::erase_if(windows, [time](const Window& w) { return w.expiry <= time; });

  // Count distinct *other* members currently exposed. A repeated failure of
  // the same member (its replacement failing again) refreshes its window but
  // does not endanger additional replicas.
  bool member_already_open = false;
  std::uint64_t distinct_others = 0;
  std::uint64_t seen_mask = 0;
  for (const Window& w : windows) {
    if (w.member == member) {
      member_already_open = true;
    } else if (!(seen_mask & (1ULL << w.member))) {
      seen_mask |= 1ULL << w.member;
      ++distinct_others;
    }
  }

  const auto fatal_threshold =
      static_cast<std::uint64_t>(group_size_) - 1;  // 1 for pairs, 2 triples
  if (distinct_others >= fatal_threshold) {
    return true;  // every other member already exposed -> no copy survives
  }

  if (member_already_open) {
    // Refresh: keep the latest expiry for this member.
    for (Window& w : windows) {
      if (w.member == member) w.expiry = std::max(w.expiry, time + risk_window);
    }
  } else {
    windows.push_back(Window{member, time + risk_window});
  }
  if (windows.empty()) open_.erase(group);
  return false;
}

std::size_t RiskTracker::open_windows(double now) const {
  std::size_t count = 0;
  for (const auto& [group, windows] : open_) {
    count += static_cast<std::size_t>(
        std::count_if(windows.begin(), windows.end(),
                      [now](const Window& w) { return w.expiry > now; }));
  }
  return count;
}

}  // namespace dckpt::sim
