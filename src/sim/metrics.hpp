// Result records produced by one simulated execution and by Monte-Carlo
// aggregation over many executions.
#pragma once

#include <cstdint>

namespace dckpt::sim {

/// Outcome of a single simulated application execution.
struct TrialResult {
  double makespan = 0.0;       ///< wall-clock to finish t_base work
  double t_base = 0.0;         ///< useful work requested
  std::uint64_t failures = 0;  ///< non-fatal failures endured
  bool fatal = false;          ///< a group lost every copy of a checkpoint,
                               ///< or detected SDC had no clean rung left
  double fatal_time = 0.0;     ///< when the fatal failure struck (if fatal)
  bool diverged = false;       ///< hit the makespan cap before finishing

  /// Time-loss breakdown (with time_verifying, sums to makespan - t_base
  /// for non-fatal runs).
  double time_checkpointing = 0.0;  ///< part1/part2 slowdown + local ckpt
  double time_down = 0.0;           ///< downtime D accumulated
  double time_recovering = 0.0;     ///< recovery transfers
  double time_reexecuting = 0.0;    ///< lost work re-execution (incl. overlap
                                    ///< slowdown during re-execution)

  /// Wall-clock with at least one risk window open (union of the per-failure
  /// exposure windows; a buddy failure in this time would have been fatal).
  double time_at_risk = 0.0;

  // Silent-error accounting (all zero when SimConfig::verify_every is 0).
  double time_verifying = 0.0;        ///< wall-clock spent in Verify phases
  std::uint64_t sdc_injected = 0;     ///< silent strikes that hit the trial
  std::uint64_t verifications_run = 0;  ///< completed verification phases
  std::uint64_t sdc_detected = 0;     ///< verifications that found corruption
  std::uint64_t rollback_depth = 0;   ///< summed verified-rollback depths

  // Fault-prediction accounting (all zero when SimConfig::pred_recall is 0).
  double time_proactive = 0.0;        ///< wall-clock in proactive checkpoints
  std::uint64_t alarms_raised = 0;    ///< alarms delivered (true + false)
  std::uint64_t proactive_ckpts = 0;  ///< proactive commits actually taken
  std::uint64_t true_predictions = 0;  ///< failures announced by an alarm
  std::uint64_t missed_failures = 0;  ///< failures the predictor missed

  double waste() const noexcept {
    return makespan > 0.0 ? 1.0 - t_base / makespan : 0.0;
  }
};

}  // namespace dckpt::sim
