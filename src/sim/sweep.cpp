#include "sim/sweep.hpp"

#include "model/period.hpp"
#include "model/waste.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  util::ThreadPool pool(spec.threads);
  std::vector<SweepPoint> rows;
  for (auto protocol : spec.protocols) {
    for (double mtbf : spec.mtbfs) {
      for (double ratio : spec.phi_ratios) {
        auto params = spec.base.with_mtbf(mtbf).with_overhead(
            ratio * spec.base.remote_blocking);
        SweepPoint point;
        point.protocol = protocol;
        point.mtbf = mtbf;
        point.phi = params.overhead;
        if (spec.period) {
          point.period = spec.period(protocol, params);
        } else {
          const auto opt = model::optimal_period_closed_form(protocol, params);
          if (!opt.feasible) continue;
          point.period = opt.period;
        }
        point.model_waste =
            model::waste(protocol, params, point.period);
        if (point.model_waste >= 1.0) continue;

        SimConfig config;
        config.protocol = protocol;
        config.params = params;
        config.period = point.period;
        config.t_base = spec.t_base_in_mtbfs * mtbf;
        config.stop_on_fatal = false;
        MonteCarloOptions options;
        options.trials = spec.trials;
        options.seed = spec.seed;
        point.result = run_monte_carlo(config, options, pool);
        rows.push_back(std::move(point));
      }
    }
  }
  return rows;
}

}  // namespace dckpt::sim
