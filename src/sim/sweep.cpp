#include "sim/sweep.hpp"

#include <chrono>

#include "model/nonexponential.hpp"
#include "model/period.hpp"
#include "model/predictor.hpp"
#include "model/sdc.hpp"
#include "model/waste.hpp"
#include "util/distributions.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  util::ThreadPool pool(spec.threads);
  std::vector<SweepPoint> rows;
  SweepProgress progress;
  progress.points_total =
      spec.protocols.size() * spec.mtbfs.size() * spec.phi_ratios.size();
  const auto sweep_start = Clock::now();

  const auto report = [&](const SweepPoint* point, double point_elapsed) {
    if (!spec.progress) return;
    progress.elapsed = seconds_since(sweep_start);
    progress.point_elapsed = point_elapsed;
    progress.trials_per_sec =
        progress.elapsed > 0.0
            ? static_cast<double>(progress.trials_done) / progress.elapsed
            : 0.0;
    progress.point = point;
    spec.progress(progress);
  };

  for (auto protocol : spec.protocols) {
    for (double mtbf : spec.mtbfs) {
      for (double ratio : spec.phi_ratios) {
        const auto point_start = Clock::now();
        auto params = spec.base.with_mtbf(mtbf).with_overhead(
            ratio * spec.base.remote_blocking);
        SweepPoint point;
        point.protocol = protocol;
        point.mtbf = mtbf;
        point.phi = params.overhead;
        if (spec.period) {
          point.period = spec.period(protocol, params);
        } else {
          const auto opt = model::optimal_period_closed_form(protocol, params);
          if (!opt.feasible) {
            ++progress.points_skipped;
            report(nullptr, seconds_since(point_start));
            continue;
          }
          point.period = opt.period;
        }
        point.model_waste =
            model::waste(protocol, params, point.period);
        if (point.model_waste >= 1.0) {
          ++progress.points_skipped;
          report(nullptr, seconds_since(point_start));
          continue;
        }
        const double t_base = spec.t_base_in_mtbfs * mtbf;
        point.weibull_shape = spec.weibull_shape;
        point.model_waste_weibull = point.model_waste;
        if (spec.weibull_shape > 0.0) {
          // Horizon = expected makespan under the exponential model: the
          // startup-transient correction depends on how long the mission
          // actually runs, not on the fault-free work.
          const model::WeibullFailures failures{
              spec.weibull_shape,
              model::expected_makespan(protocol, params, point.period,
                                       t_base)};
          point.model_waste_weibull =
              model::waste(protocol, params, point.period, failures);
        }
        point.model_waste_sdc = point.model_waste;
        if (spec.verify_every > 0) {
          const model::SdcSpec sdc{spec.sdc_rate, spec.verify_cost,
                                   spec.verify_every};
          point.model_waste_sdc =
              model::waste_with_sdc(protocol, params, point.period, sdc);
        }
        point.model_waste_pred = point.model_waste;
        if (spec.pred_recall > 0.0) {
          const model::PredictorSpec pred{spec.pred_precision,
                                          spec.pred_recall, spec.pred_window,
                                          spec.proactive_cost};
          point.model_waste_pred =
              model::waste_with_predictor(protocol, params, point.period,
                                          pred);
        }
        point.model_waste_dcp = point.model_waste;
        if (spec.dcp.enabled()) {
          point.model_waste_dcp =
              model::waste_with_dcp(protocol, params, point.period, spec.dcp);
        }

        SimConfig config;
        config.protocol = protocol;
        config.params = params;
        config.period = point.period;
        config.t_base = t_base;
        config.stop_on_fatal = false;
        config.sdc_rate = spec.sdc_rate;
        config.verify_cost = spec.verify_cost;
        config.verify_every = spec.verify_every;
        config.keep_last = spec.keep_last;
        config.pred_precision = spec.pred_precision;
        config.pred_recall = spec.pred_recall;
        config.pred_window = spec.pred_window;
        config.proactive_cost = spec.proactive_cost;
        config.dcp = spec.dcp;
        MonteCarloOptions options;
        options.trials = spec.trials;
        options.seed = spec.seed;
        options.metrics = spec.metrics;
        if (spec.weibull_shape > 0.0) {
          options.weibull =
              util::Weibull::from_mean(spec.weibull_shape, params.node_mtbf());
        }
        point.result = run_monte_carlo(config, options, pool);
        rows.push_back(std::move(point));
        ++progress.points_done;
        progress.trials_done += spec.trials;
        report(&rows.back(), seconds_since(point_start));
      }
    }
  }
  return rows;
}

}  // namespace dckpt::sim
