// Trace-driven failure injection: replay recorded failure logs through the
// simulator instead of sampling a distribution. HPC failure studies publish
// such logs; this makes the simulator consumable for them and makes runs
// exactly reproducible across tools.
//
// File format: one event per line, `<time_seconds> <node_id>`, '#' comments
// and blank lines ignored; times must be non-decreasing.
#pragma once

#include <string>
#include <vector>

#include "sim/failure_injector.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace dckpt::sim {

/// Replays a fixed schedule; after the last event the source goes silent
/// (next failure at +infinity).
class TraceInjector final : public FailureInjector {
 public:
  /// `events` must be time-sorted; `nodes` bounds the node ids.
  TraceInjector(std::vector<FailureEvent> events, std::uint64_t nodes);

  FailureEvent peek() override;
  void pop() override;
  void on_node_replaced(std::uint64_t node, double failure_time,
                        double rebirth_time) override;
  std::uint64_t node_count() const override { return nodes_; }

  std::size_t remaining() const noexcept { return events_.size() - cursor_; }

 private:
  std::vector<FailureEvent> events_;
  std::size_t cursor_ = 0;
  std::uint64_t nodes_;
};

/// Parses a failure-log file. Throws std::runtime_error on I/O or format
/// errors (with line numbers).
std::vector<FailureEvent> load_failure_trace(const std::string& path);

/// Writes a failure log in the same format.
void save_failure_trace(const std::string& path,
                        const std::vector<FailureEvent>& events);

/// Synthesizes a trace: `nodes` independent renewal processes with the
/// given inter-arrival law, truncated at `horizon` seconds, merged and
/// time-sorted. (No rebirth semantics -- each node keeps its own renewal
/// clock -- which matches how public failure logs are collected.)
std::vector<FailureEvent> generate_failure_trace(
    const util::Distribution& inter_arrival, std::uint64_t nodes,
    double horizon, util::Xoshiro256ss rng);

}  // namespace dckpt::sim
