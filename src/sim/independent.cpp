#include "sim/independent.hpp"

#include <algorithm>

#include "model/protocol.hpp"

namespace dckpt::sim {

IndependentResult simulate_independent_groups(const SimConfig& config,
                                              std::uint64_t seed) {
  config.validate();
  const auto group_size =
      static_cast<std::uint64_t>(model::group_size(config.protocol));
  const std::uint64_t groups = config.params.nodes / group_size;

  // A group is a private platform: group_size nodes whose members keep the
  // same individual MTBF, so the group-level MTBF is node_mtbf/group_size.
  SimConfig group_config = config;
  group_config.params.nodes = group_size;
  group_config.params.mtbf =
      config.params.node_mtbf() / static_cast<double>(group_size);

  IndependentResult result;
  result.t_base = config.t_base;
  util::RunningStats makespans;
  for (std::uint64_t group = 0; group < groups; ++group) {
    const auto trial = simulate_exponential(
        group_config, seed ^ (0x9e3779b97f4a7c15ULL * (group + 1)));
    result.failures += trial.failures;
    if (trial.fatal) result.fatal = true;
    if (trial.diverged) {
      result.makespan = std::max(result.makespan, group_config.max_makespan);
      continue;
    }
    makespans.add(trial.makespan);
    result.makespan = std::max(result.makespan, trial.makespan);
  }
  result.mean_group_makespan = makespans.mean();
  return result;
}

}  // namespace dckpt::sim
