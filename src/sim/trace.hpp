// Optional event trace of a simulated execution: every phase transition,
// failure, rollback and commit, timestamped. Used by the trace example and
// by tests that assert protocol state-machine ordering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dckpt::sim {

enum class TraceKind {
  PeriodStart,
  LocalCheckpointDone,   ///< end of part 1 (double protocols)
  RemoteExchangeDone,    ///< end of part 2 -- snapshot set committed
  PreferredCopyDone,     ///< end of part 1 (triple) -- snapshot committed
  Failure,
  Rollback,
  DowntimeEnd,
  RecoveryEnd,
  ReexecutionEnd,
  RiskWindowOpen,
  RiskWindowClose,
  FatalFailure,
  ApplicationDone,
  // Appended in PR 8 (stable ids are extend-only): fault prediction.
  Alarm,            ///< predictor alarm delivered (true or false)
  ProactiveCommit,  ///< proactive checkpoint completed and committed
};

/// Human-oriented label for rendered traces (may change cosmetically).
const char* trace_kind_name(TraceKind kind) noexcept;

/// Stable machine-oriented identifier used in exported JSONL trace logs.
/// These strings are a compatibility contract: never renamed, only extended.
const char* trace_kind_id(TraceKind kind) noexcept;

/// Inverse of trace_kind_id; nullopt for unknown ids.
std::optional<TraceKind> parse_trace_kind_id(std::string_view id) noexcept;

struct TraceEvent {
  double time = 0.0;
  TraceKind kind = TraceKind::PeriodStart;
  std::uint64_t node = 0;     ///< node involved (failures/rollbacks), else 0
  double work_level = 0.0;    ///< application progress at the event
  std::string to_string() const;
};

class Trace {
 public:
  /// A disabled trace drops events (zero overhead in Monte-Carlo runs).
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  void record(double time, TraceKind kind, std::uint64_t node,
              double work_level) {
    if (enabled_) events_.push_back({time, kind, node, work_level});
  }

  bool enabled() const noexcept { return enabled_; }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// One line per event.
  std::string render() const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

}  // namespace dckpt::sim
