#include "sim/log_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/math.hpp"
#include "util/stats.hpp"

namespace dckpt::sim {

std::vector<double> trace_gaps(const std::vector<FailureEvent>& events) {
  std::vector<double> gaps;
  gaps.reserve(events.size());
  double previous = 0.0;
  for (const auto& event : events) {
    if (event.time < previous) {
      throw std::invalid_argument("trace_gaps: events not time-sorted");
    }
    gaps.push_back(event.time - previous);
    previous = event.time;
  }
  return gaps;
}

TraceStatistics analyze_trace(const std::vector<FailureEvent>& events) {
  if (events.size() < 2) {
    throw std::invalid_argument("analyze_trace: need at least 2 events");
  }
  const auto gaps = trace_gaps(events);
  util::RunningStats stats;
  for (double gap : gaps) stats.add(gap);
  std::unordered_set<std::uint64_t> nodes;
  for (const auto& event : events) nodes.insert(event.node);
  TraceStatistics out;
  out.events = events.size();
  out.span = events.back().time;
  out.platform_mtbf = stats.mean();
  out.gap_cv = stats.mean() > 0.0 ? stats.stddev() / stats.mean() : 0.0;
  out.distinct_nodes = nodes.size();
  return out;
}

double ks_statistic(std::vector<double> gaps, const util::Distribution& dist) {
  if (gaps.empty()) throw std::invalid_argument("ks_statistic: no gaps");
  std::sort(gaps.begin(), gaps.end());
  const double n = static_cast<double>(gaps.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const double model_cdf = dist.cdf(gaps[i]);
    const double empirical_hi = static_cast<double>(i + 1) / n;
    const double empirical_lo = static_cast<double>(i) / n;
    worst = std::max({worst, std::abs(model_cdf - empirical_hi),
                      std::abs(model_cdf - empirical_lo)});
  }
  return worst;
}

ExponentialFit fit_exponential(const std::vector<FailureEvent>& events) {
  const auto stats = analyze_trace(events);
  ExponentialFit fit;
  fit.mean = stats.platform_mtbf;
  fit.distribution = util::Exponential::from_mean(fit.mean);
  fit.ks_statistic = ks_statistic(trace_gaps(events), fit.distribution);
  return fit;
}

WeibullFit fit_weibull(const std::vector<FailureEvent>& events) {
  const auto stats = analyze_trace(events);
  WeibullFit fit;
  fit.mean = stats.platform_mtbf;
  // Method of moments: for Weibull, CV^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1,
  // monotone decreasing in k. Solve by bisection on k in [0.05, 50].
  const double target_cv = std::max(stats.gap_cv, 1e-6);
  const auto cv_of_shape = [](double shape) {
    const double g1 = std::tgamma(1.0 + 1.0 / shape);
    const double g2 = std::tgamma(1.0 + 2.0 / shape);
    return std::sqrt(std::max(0.0, g2 / (g1 * g1) - 1.0));
  };
  double lo = 0.05, hi = 50.0;
  // Clamp target into the achievable range to keep bisection well-posed.
  const double cv_lo = cv_of_shape(hi);  // small CV at large shape
  const double cv_hi = cv_of_shape(lo);  // huge CV at small shape
  const double cv = util::clamp(target_cv, cv_lo * 1.0000001,
                                cv_hi * 0.9999999);
  const auto root = util::find_root_bisection(
      [&](double shape) { return cv_of_shape(shape) - cv; }, lo, hi, 1e-10,
      200);
  fit.shape = root.x;
  fit.distribution = util::Weibull::from_mean(fit.shape, fit.mean);
  fit.ks_statistic = ks_statistic(trace_gaps(events), fit.distribution);
  return fit;
}

}  // namespace dckpt::sim
