// Batched structure-of-arrays Monte-Carlo kernel.
//
// Runs independent protocol-simulation trials in interleaved "waves" of
// kBatchLanes lanes. Each lane reproduces the scalar reference engine
// (ProtocolSimulation) bit-for-bit: identical RNG streams, identical
// floating-point operation sequences, identical decisions. Throughput comes
// from three structural changes, none of which alters the arithmetic:
//
//  * An event-free checkpointing period is advanced with precomputed
//    per-phase constants (gain_i = rate_i * part_i is the same rounded
//    product the scalar engine forms one step at a time), guarded by
//    conservative checks that fall back to exact stepping whenever a
//    failure, application completion, or the makespan cap could interfere
//    with the period.
//  * Failure variates are pre-sampled in blocks via bulk xoshiro word
//    generation, amortizing generator state traffic and transcendental
//    calls, and removing per-event virtual dispatch.
//  * Lanes are visited round-robin, so the out-of-order core overlaps many
//    independent dependency chains; the scalar engine is latency-bound on
//    a single now/work accumulation chain.
//
// The scalar engine stays in the tree as the reference oracle; the
// equivalence tests in tests/test_batch_kernel.cpp compare the two paths
// trial-by-trial on both injector families.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/protocol_sim.hpp"
#include "sim/runner.hpp"

namespace dckpt::sim {

/// Trials in flight per wave. Large enough to saturate the out-of-order
/// window with independent chains, small enough that the hot lane state
/// stays resident in L1.
inline constexpr std::size_t kBatchLanes = 32;

/// Runs trials [begin_trial, end_trial) of `config` and hands each finished
/// TrialResult to `sink` in ascending trial order (the order the scalar
/// runner would produce them -- Welford accumulation is order-sensitive).
/// Trial k uses the same derived RNG stream as the scalar path, so results
/// are bit-identical per trial. `config` must already be validated.
void run_trials_batched(const SimConfig& config,
                        const MonteCarloOptions& options,
                        std::size_t begin_trial, std::size_t end_trial,
                        const std::function<void(const TrialResult&)>& sink,
                        BatchKernelStats& stats);

}  // namespace dckpt::sim
