#include "sim/runner.hpp"

#include <mutex>
#include <vector>

namespace dckpt::sim {

namespace {

std::unique_ptr<FailureInjector> make_injector(
    const SimConfig& config, const MonteCarloOptions& options,
    const util::Xoshiro256ss& stream) {
  if (options.weibull) {
    return std::make_unique<PerNodeInjector>(*options.weibull,
                                             config.params.nodes, stream);
  }
  return std::make_unique<PlatformExponentialInjector>(
      config.params.mtbf, config.params.nodes, stream);
}

}  // namespace

MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options,
                                 util::ThreadPool& pool) {
  config.validate();

  // One chunk per thread times a small oversubscription factor keeps the
  // pool busy while preserving the deterministic chunk->stream mapping.
  const std::size_t chunks =
      std::min<std::uint64_t>(options.trials, pool.thread_count() * 4);
  std::vector<MonteCarloResult> partial(std::max<std::size_t>(chunks, 1));

  util::parallel_for_chunked(
      pool, options.trials, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        MonteCarloResult& local = partial[chunk];
        for (std::size_t trial = begin; trial < end; ++trial) {
          // Per-trial stream derived by seed mixing (SplitMix64 inside the
          // Xoshiro constructor): trial k gets the same stream regardless of
          // chunking or thread count.
          const util::Xoshiro256ss stream(
              options.seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
          ProtocolSimulation simulation(config,
                                        make_injector(config, options, stream));
          const TrialResult r = simulation.run();
          if (r.diverged) {
            ++local.diverged;
            continue;
          }
          local.waste.add(r.waste());
          local.makespan.add(r.makespan);
          local.failures.add(static_cast<double>(r.failures));
          local.success.add(!r.fatal);
        }
      });

  MonteCarloResult total;
  for (const auto& p : partial) {
    total.waste.merge(p.waste);
    total.makespan.merge(p.makespan);
    total.failures.merge(p.failures);
    total.success.merge(p.success);
    total.diverged += p.diverged;
  }
  return total;
}

MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options) {
  util::ThreadPool pool(options.threads);
  return run_monte_carlo(config, options, pool);
}

}  // namespace dckpt::sim
