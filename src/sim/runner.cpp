#include "sim/runner.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "sim/batch_kernel.hpp"

namespace dckpt::sim {

void MetricsSpec::validate() const {
  if (bins == 0) throw std::invalid_argument("MetricsSpec: zero bins");
  if (!(max_slowdown > 1.0)) {
    throw std::invalid_argument("MetricsSpec: max_slowdown must be > 1");
  }
  if (!(max_failures > 0.0)) {
    throw std::invalid_argument("MetricsSpec: max_failures must be > 0");
  }
}

MonteCarloMetrics::MonteCarloMetrics(const MetricsSpec& spec)
    : waste(0.0, 1.0, spec.bins),
      slowdown(1.0, spec.max_slowdown, spec.bins),
      failures(0.0, spec.max_failures, spec.bins),
      risk_fraction(0.0, 1.0, spec.bins) {}

void MonteCarloMetrics::add(const TrialResult& trial) {
  // A trial with no positive baseline or makespan has no defined slowdown
  // or risk fraction; recording a sentinel 0.0 would silently land in the
  // slowdown underflow bucket (its range starts at 1.0) and pull the
  // risk-fraction quantiles toward zero. Count it instead of polluting.
  if (!(trial.t_base > 0.0) || !(trial.makespan > 0.0)) {
    ++degenerate;
    return;
  }
  waste.add(trial.waste());
  slowdown.add(trial.makespan / trial.t_base);
  failures.add(static_cast<double>(trial.failures));
  risk_fraction.add(trial.time_at_risk / trial.makespan);
}

void MonteCarloMetrics::merge(const MonteCarloMetrics& other) {
  waste.merge(other.waste);
  slowdown.merge(other.slowdown);
  failures.merge(other.failures);
  risk_fraction.merge(other.risk_fraction);
  degenerate += other.degenerate;
}

void accumulate_trial(MonteCarloResult& result, const TrialResult& trial) {
  if (trial.diverged) {
    ++result.diverged;
    return;
  }
  result.waste.add(trial.waste());
  result.makespan.add(trial.makespan);
  result.failures.add(static_cast<double>(trial.failures));
  result.risk_time.add(trial.time_at_risk);
  result.success.add(!trial.fatal);
  result.sdc_injected.add(static_cast<double>(trial.sdc_injected));
  result.sdc_detected.add(static_cast<double>(trial.sdc_detected));
  result.verify_time.add(trial.time_verifying);
  result.rollback_depth.add(static_cast<double>(trial.rollback_depth));
  result.alarms_raised.add(static_cast<double>(trial.alarms_raised));
  result.proactive_ckpts.add(static_cast<double>(trial.proactive_ckpts));
  result.true_predictions.add(static_cast<double>(trial.true_predictions));
  result.missed_failures.add(static_cast<double>(trial.missed_failures));
  result.proactive_time.add(trial.time_proactive);
  if (result.metrics) result.metrics->add(trial);
}

SimEngine engine_from_env(SimEngine fallback) {
  const char* value = std::getenv("DCKPT_ENGINE");
  if (value == nullptr) return fallback;
  const std::string_view name(value);
  if (name == "scalar") return SimEngine::kScalar;
  if (name == "batched") return SimEngine::kBatched;
  return fallback;
}

namespace {

std::unique_ptr<FailureInjector> make_injector(
    const SimConfig& config, const MonteCarloOptions& options,
    const util::Xoshiro256ss& stream) {
  if (options.weibull) {
    return std::make_unique<PerNodeInjector>(*options.weibull,
                                             config.params.nodes, stream);
  }
  return std::make_unique<PlatformExponentialInjector>(
      config.params.mtbf, config.params.nodes, stream);
}

}  // namespace

MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options,
                                 util::ThreadPool& pool) {
  config.validate();
  if (options.metrics) options.metrics->validate();

  // A fixed chunk count (not a multiple of the thread count) keeps the pool
  // busy AND pins the stats merge tree: RunningStats::merge is exact in
  // content but not in floating-point association, so chunk boundaries must
  // not move with the thread count or the exported JSONL would differ in the
  // last ulp between -j1 and -j8 runs.
  constexpr std::size_t kChunks = 64;
  const std::size_t chunks = std::min<std::uint64_t>(options.trials, kChunks);
  // With trials == 0 there are no chunks; `partial` keeps one default slot
  // so the merge below runs and yields an empty (all-counts-zero) result.
  std::vector<MonteCarloResult> partial(std::max<std::size_t>(chunks, 1));

  util::parallel_for_chunked(
      pool, options.trials, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        MonteCarloResult& local = partial[chunk];
        if (options.metrics) local.metrics.emplace(*options.metrics);
        if (options.engine == SimEngine::kBatched) {
          run_trials_batched(
              config, options, begin, end,
              [&local](const TrialResult& r) { accumulate_trial(local, r); },
              local.kernel);
          return;
        }
        for (std::size_t trial = begin; trial < end; ++trial) {
          // Per-trial stream derived by seed mixing (SplitMix64 inside the
          // Xoshiro constructor): trial k gets the same stream regardless of
          // chunking or thread count.
          const std::uint64_t stream_seed =
              options.seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
          const util::Xoshiro256ss stream(stream_seed);
          ProtocolSimulation simulation(
              config, make_injector(config, options, stream), stream_seed);
          accumulate_trial(local, simulation.run());
        }
      });

  MonteCarloResult total;
  if (options.metrics) total.metrics.emplace(*options.metrics);
  for (const auto& p : partial) {
    total.waste.merge(p.waste);
    total.makespan.merge(p.makespan);
    total.failures.merge(p.failures);
    total.risk_time.merge(p.risk_time);
    total.success.merge(p.success);
    total.diverged += p.diverged;
    total.sdc_injected.merge(p.sdc_injected);
    total.sdc_detected.merge(p.sdc_detected);
    total.verify_time.merge(p.verify_time);
    total.rollback_depth.merge(p.rollback_depth);
    total.alarms_raised.merge(p.alarms_raised);
    total.proactive_ckpts.merge(p.proactive_ckpts);
    total.true_predictions.merge(p.true_predictions);
    total.missed_failures.merge(p.missed_failures);
    total.proactive_time.merge(p.proactive_time);
    total.kernel.merge(p.kernel);
    if (total.metrics && p.metrics) total.metrics->merge(*p.metrics);
  }
  return total;
}

MonteCarloResult run_monte_carlo(const SimConfig& config,
                                 const MonteCarloOptions& options) {
  util::ThreadPool pool(options.threads);
  return run_monte_carlo(config, options, pool);
}

}  // namespace dckpt::sim
