// poll()-based TCP front end for the evaluation service.
//
// `dckpt serve` used to handle one blocking client at a time; this server
// multiplexes N concurrent loopback connections over a single poll() loop
// while EvalService stays the pure request brain (src/sim/service.hpp).
// The transport concerns live here, and only here:
//
//   * per-connection read buffers with a max-line guard -- an overlong
//     line answers a typed eval_error (code=overlong) and the connection
//     survives, discarding until the next newline;
//   * per-connection deadlines -- read-idle (no request arriving) and
//     write-stall (a reader that stopped draining its replies);
//   * correct partial-write handling -- replies queue per connection and
//     flush as the socket drains, with a high-water mark that pauses
//     reading from a client whose replies are piling up;
//   * admission control -- light requests (closed-form answers, cached
//     sims, errors) are answered inline; heavy ones (uncached kind=sim)
//     enter a bounded FIFO and are shed with code=busy when it is full;
//   * graceful drain -- SIGINT/SIGTERM (via the async-signal-safe
//     request_stop()) or the DRAIN verb stop the listener, finish
//     in-flight heavy work, flush every reply, then exit.
//
// Replies always leave in request order: a heavy request occupies a
// pending output slot that blocks the flush of everything queued behind
// it until its job completes. Counters (shed, read_timeouts, ...) are
// exported in every serve_stats record under "server"; the chaos-style
// regression harness for all of this is tests/serve_torture.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/service.hpp"

namespace dckpt::sim {

struct ServerOptions {
  /// Loopback port to listen on; 0 lets the kernel pick (port() tells).
  int port = 0;
  /// Concurrent connections; the listener is not polled while at the cap,
  /// so further clients queue in the accept backlog.
  std::size_t max_conns = 64;
  /// Longest accepted request line in bytes (newline excluded). Beyond it
  /// the line answers code=overlong and is discarded.
  std::size_t max_line = 65536;
  /// Close a connection with nothing in flight after this long without a
  /// byte from the client (code=timeout farewell, best effort).
  int read_idle_ms = 30000;
  /// Close a connection whose queued replies made no progress toward the
  /// socket for this long.
  int write_stall_ms = 10000;
  /// Bounded heavy (uncached kind=sim) FIFO; at the bound new heavy
  /// requests answer code=busy instead of queueing.
  std::size_t queue_depth = 4;
  /// Pause reading from a connection once this many reply bytes are
  /// queued for it; reading resumes when the queue drains.
  std::size_t high_water = 262144;
  /// Per-connection SO_SNDBUF override; 0 keeps the kernel default. The
  /// torture harness shrinks it to force partial writes.
  int sndbuf = 0;
  /// Exit after the first accepted connection closes (tests, one-shot
  /// drivers); remaining connections drain gracefully.
  bool once = false;

  void validate() const;
};

/// Runs the poll loop around an EvalService. Single-threaded: light
/// requests and heavy jobs execute on the loop thread (requests are
/// CPU-bound; the win of the event loop is connection fairness and
/// bounded buffering, not parallel simulation).
class Server {
 public:
  /// Registers counters_ with the service so STATS answers include them;
  /// the service must outlive the server.
  Server(EvalService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on 127.0.0.1 and arms the self-pipe. Returns false
  /// (with a perror line) on socket failures.
  bool start();

  /// The bound port (valid after start()).
  int port() const noexcept { return port_; }

  /// Serves until drain completes (request_stop(), DRAIN, or --once).
  /// Returns 0 on a clean drain, 1 if start() was not called.
  int run();

  /// Async-signal-safe: begins a graceful drain from any thread or from a
  /// signal handler (writes one byte to the self-pipe).
  void request_stop() noexcept;

  bool draining() const noexcept { return draining_; }
  const ServerCounters& counters() const noexcept { return counters_; }

  /// Invokes `hook` on the loop thread every `every` answered requests
  /// (the --stats-every cadence); the caller owns the final flush.
  void set_stats_hook(std::uint64_t every, std::function<void()> hook) {
    stats_every_ = every;
    stats_hook_ = std::move(hook);
  }

 private:
  /// One queued reply. Heavy requests enqueue a not-ready slot that the
  /// finished job fills; flushing stops at the first not-ready slot so
  /// replies keep request order.
  struct OutSlot {
    std::string data;
    std::size_t sent = 0;
    bool ready = false;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string input;                ///< bytes without a newline yet
    std::deque<OutSlot> output;
    std::uint64_t next_slot_id = 0;   ///< id of the next slot pushed
    std::uint64_t popped_slots = 0;   ///< slots flushed and popped so far
    std::size_t ready_bytes = 0;      ///< unsent bytes in ready slots
    std::size_t pending_jobs = 0;     ///< heavy jobs still owed to us
    bool discarding = false;          ///< dropping an overlong line
    bool closing = false;             ///< close once output flushes
    bool saw_quit = false;            ///< peer ended the session politely
    std::int64_t last_read_ms = 0;    ///< read-idle deadline base
    std::int64_t last_progress_ms = 0;  ///< write-stall deadline base
  };

  struct Job {
    std::uint64_t conn_id = 0;
    std::uint64_t slot_id = 0;
    std::string line;
  };

  std::int64_t now_ms() const;
  void accept_ready();
  void read_ready(Connection& conn);
  void parse_lines(Connection& conn);
  void dispatch(Connection& conn, const std::string& line);
  void push_reply(Connection& conn, std::string reply);
  void flush(Connection& conn);
  void run_one_job();
  void sweep_deadlines();
  void begin_drain();
  void close_conn(std::uint64_t id, bool peer_initiated);
  void note_answered();
  int poll_timeout_ms() const;

  EvalService& service_;
  ServerOptions options_;
  ServerCounters counters_;
  int listener_ = -1;
  int port_ = 0;
  int stop_pipe_[2] = {-1, -1};     ///< self-pipe; write end is signal-safe
  bool draining_ = false;
  std::map<std::uint64_t, Connection> conns_;
  std::deque<Job> jobs_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t answered_ = 0;
  std::uint64_t stats_every_ = 0;
  std::function<void()> stats_hook_;
  std::vector<std::uint64_t> doomed_;  ///< conns to close after the sweep
};

}  // namespace dckpt::sim
