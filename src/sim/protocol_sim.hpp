// Discrete-event execution of one application run under a buddy-checkpointing
// protocol (the paper's evaluation substrate).
//
// The platform is coordinated: any failure rolls every node back to the last
// committed checkpoint set, so a single global timeline suffices. The engine
// is an exact event-driven integration of the period structure:
//
//   normal operation   Part1 -> Part2 -> Part3 -> Part1 -> ...
//   failure (any phase)   rollback to committed level, then
//                         Down(D) -> Recover -> Reexec -> resume the
//                         interrupted phase at its saved offset
//   verification          every k periods a blocking Verify(V) phase runs at
//                         the period boundary; detected silent corruption
//                         rolls back to the shallowest clean retained
//                         checkpoint (Recover -> Reexec -> fresh period)
//
// Work rates per phase follow the overlap model: 0 during a blocking local
// checkpoint, (theta - phi)/theta during overlapped transfers, 1 at full
// speed. Commit points: end of part 2 for pair protocols (both copies in
// place), end of part 1 for triple protocols (preferred-buddy copy in
// place). Re-execution runs degraded while recovery transfers are still
// streaming in (window theta for DoubleNBL, 2*theta for Triple, none for the
// blocking-on-failure variants), exactly mirroring the model's RE terms.
//
// Failures arriving *during* failure handling are processed too (the
// analytic model neglects them to first order): the rollback target is
// unchanged and downtime restarts. Fatal failures -- a buddy (or both
// buddies) struck inside the exposure window -- are detected by RiskTracker.
#pragma once

#include <memory>

#include "model/dcp.hpp"
#include "model/parameters.hpp"
#include "model/protocol.hpp"
#include "sim/failure_injector.hpp"
#include "sim/metrics.hpp"
#include "sim/risk_tracker.hpp"
#include "sim/trace.hpp"

namespace dckpt::sim {

struct SimConfig {
  model::Protocol protocol = model::Protocol::DoubleNbl;
  model::Parameters params;
  double period = 0.0;  ///< checkpoint period P (>= model::min_period)
  double t_base = 0.0;  ///< useful work to complete
  bool stop_on_fatal = true;   ///< end the run at the first fatal failure
  double max_makespan = 0.0;   ///< livelock guard; 0 = 10^4 * t_base

  // Silent-error (SDC) extension with verified checkpoints. Strikes arrive
  // as a platform-wide Poisson process at rate `sdc_rate` (drawn from a
  // salted copy of the trial's RNG stream, so enabling them never perturbs
  // the fail-stop arrival sequence). A strike silently taints the live
  // state; every snapshot captured afterwards inherits the taint, and a
  // fail-stop rollback re-introduces whatever taint the restored snapshot
  // carries. Every `verify_every` completed periods the run blocks for
  // `verify_cost` seconds of verification; a verification that finds the
  // live state tainted rolls back to the shallowest clean rung of the
  // keep-last-`keep_last` retained-checkpoint ladder (recovery transfer R,
  // then re-execution), or -- when every retained snapshot is tainted --
  // reports a fatal run and accepts the corrupt state as the new truth.
  double sdc_rate = 0.0;     ///< platform silent-error rate, strikes/s
  double verify_cost = 0.0;  ///< V: blocking verification time, s
  std::uint64_t verify_every = 0;  ///< k: periods per verification (0 = off)
  std::uint64_t keep_last = 1;     ///< l: retained committed checkpoint sets

  // Fault prediction (arXiv:1207.6936 / arXiv:1302.4558). A predictor with
  // recall r announces each upcoming failure independently with probability
  // r (one decision per pending failure, drawn from a salted copy of the
  // trial's RNG stream); precision p tunes an independent Poisson stream of
  // false alarms at platform rate (r/M)(1-p)/p. A true alarm leads its
  // failure by `proactive_cost` exactly when pred_window == 0 (just in
  // time), or by a uniform draw in (0, pred_window) otherwise. Every alarm
  // triggers a blocking proactive checkpoint of cost `proactive_cost`,
  // skipped while repairing/verifying or when nothing new would be saved.
  double pred_precision = 1.0;  ///< p: fraction of alarms that are true
  double pred_recall = 0.0;     ///< r: fraction of failures predicted (0=off)
  double pred_window = 0.0;     ///< w: alarm lead-time window width, s
  double proactive_cost = 0.0;  ///< C_p: blocking proactive checkpoint, s

  // Differential checkpointing (model/dcp.hpp). When enabled
  // (dcp.stack_size > 0) the exchange phases shrink to the effective dirty
  // fraction m of their full-image length (the compute phase absorbs the
  // difference, keeping the period length at P) and recovery transfers
  // grow by the expected base-plus-chain replay factor g. Composes with
  // every other axis (Weibull arrivals, SDC, prediction).
  model::DcpSpec dcp;

  void validate() const;
};

class ProtocolSimulation {
 public:
  /// The injector's node count must match params.nodes and be a multiple of
  /// the protocol's group size. `stream_seed` must be the same seed the
  /// injector's RNG stream was built from -- the silent-error strike stream
  /// is derived from it by salting (only consulted when sdc_rate > 0).
  ProtocolSimulation(SimConfig config,
                     std::unique_ptr<FailureInjector> injector,
                     std::uint64_t stream_seed = 0);

  /// Runs one complete execution. Pass a Trace to capture the event log.
  TrialResult run(Trace* trace = nullptr);

 private:
  SimConfig config_;
  std::unique_ptr<FailureInjector> injector_;
  std::uint64_t stream_seed_ = 0;
};

/// Convenience: simulate with a platform-level exponential injector seeded
/// from `seed`.
TrialResult simulate_exponential(const SimConfig& config, std::uint64_t seed,
                                 Trace* trace = nullptr);

}  // namespace dckpt::sim
