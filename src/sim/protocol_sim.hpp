// Discrete-event execution of one application run under a buddy-checkpointing
// protocol (the paper's evaluation substrate).
//
// The platform is coordinated: any failure rolls every node back to the last
// committed checkpoint set, so a single global timeline suffices. The engine
// is an exact event-driven integration of the period structure:
//
//   normal operation   Part1 -> Part2 -> Part3 -> Part1 -> ...
//   failure (any phase)   rollback to committed level, then
//                         Down(D) -> Recover -> Reexec -> resume the
//                         interrupted phase at its saved offset
//
// Work rates per phase follow the overlap model: 0 during a blocking local
// checkpoint, (theta - phi)/theta during overlapped transfers, 1 at full
// speed. Commit points: end of part 2 for pair protocols (both copies in
// place), end of part 1 for triple protocols (preferred-buddy copy in
// place). Re-execution runs degraded while recovery transfers are still
// streaming in (window theta for DoubleNBL, 2*theta for Triple, none for the
// blocking-on-failure variants), exactly mirroring the model's RE terms.
//
// Failures arriving *during* failure handling are processed too (the
// analytic model neglects them to first order): the rollback target is
// unchanged and downtime restarts. Fatal failures -- a buddy (or both
// buddies) struck inside the exposure window -- are detected by RiskTracker.
#pragma once

#include <memory>

#include "model/parameters.hpp"
#include "model/protocol.hpp"
#include "sim/failure_injector.hpp"
#include "sim/metrics.hpp"
#include "sim/risk_tracker.hpp"
#include "sim/trace.hpp"

namespace dckpt::sim {

struct SimConfig {
  model::Protocol protocol = model::Protocol::DoubleNbl;
  model::Parameters params;
  double period = 0.0;  ///< checkpoint period P (>= model::min_period)
  double t_base = 0.0;  ///< useful work to complete
  bool stop_on_fatal = true;   ///< end the run at the first fatal failure
  double max_makespan = 0.0;   ///< livelock guard; 0 = 10^4 * t_base

  void validate() const;
};

class ProtocolSimulation {
 public:
  /// The injector's node count must match params.nodes and be a multiple of
  /// the protocol's group size.
  ProtocolSimulation(SimConfig config,
                     std::unique_ptr<FailureInjector> injector);

  /// Runs one complete execution. Pass a Trace to capture the event log.
  TrialResult run(Trace* trace = nullptr);

 private:
  SimConfig config_;
  std::unique_ptr<FailureInjector> injector_;
};

/// Convenience: simulate with a platform-level exponential injector seeded
/// from `seed`.
TrialResult simulate_exponential(const SimConfig& config, std::uint64_t seed,
                                 Trace* trace = nullptr);

}  // namespace dckpt::sim
