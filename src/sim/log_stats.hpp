// Failure-log analysis: estimate model parameters from a failure trace.
//
// Closes the loop the paper leaves open between measured failure logs and
// the analytic model: given a (recorded or synthetic) trace, estimate the
// platform MTBF, fit an exponential and a Weibull inter-arrival law
// (method of moments), and quantify which fits better with a
// Kolmogorov-Smirnov statistic. The fitted MTBF plugs straight into
// model::Parameters::mtbf.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/failure_injector.hpp"
#include "util/distributions.hpp"

namespace dckpt::sim {

struct TraceStatistics {
  std::uint64_t events = 0;
  double span = 0.0;             ///< time covered by the trace
  double platform_mtbf = 0.0;    ///< mean platform-level inter-arrival gap
  double gap_cv = 0.0;           ///< coefficient of variation of the gaps
                                 ///< (1 for exponential, > 1 for clustered)
  std::uint64_t distinct_nodes = 0;
};

/// Basic statistics of a time-sorted trace. Throws on < 2 events.
TraceStatistics analyze_trace(const std::vector<FailureEvent>& events);

struct DistributionFit {
  double ks_statistic = 0.0;  ///< sup |F_empirical - F_fitted| over the gaps
  double mean = 0.0;          ///< fitted mean inter-arrival time
};

struct ExponentialFit : DistributionFit {
  util::Exponential distribution{1.0};
};

struct WeibullFit : DistributionFit {
  util::Weibull distribution{1.0, 1.0};
  double shape = 1.0;
};

/// Fits Exponential(mean = mean gap) to the platform-level gaps.
ExponentialFit fit_exponential(const std::vector<FailureEvent>& events);

/// Fits Weibull by the method of moments (shape from the gap CV via
/// bisection, scale from the mean) to the platform-level gaps.
WeibullFit fit_weibull(const std::vector<FailureEvent>& events);

/// Kolmogorov-Smirnov statistic of `gaps` against `dist` (exposed for
/// testing and for fitting other laws).
double ks_statistic(std::vector<double> gaps, const util::Distribution& dist);

/// Platform-level inter-arrival gaps of a time-sorted trace (first gap is
/// from t = 0 to the first event).
std::vector<double> trace_gaps(const std::vector<FailureEvent>& events);

}  // namespace dckpt::sim
