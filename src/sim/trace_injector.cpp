#include "sim/trace_injector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dckpt::sim {

TraceInjector::TraceInjector(std::vector<FailureEvent> events,
                             std::uint64_t nodes)
    : events_(std::move(events)), nodes_(nodes) {
  if (nodes == 0) throw std::invalid_argument("TraceInjector: zero nodes");
  double previous = -std::numeric_limits<double>::infinity();
  for (const auto& event : events_) {
    if (event.time < previous) {
      throw std::invalid_argument("TraceInjector: events not time-sorted");
    }
    if (event.node >= nodes) {
      throw std::invalid_argument("TraceInjector: node id out of range");
    }
    previous = event.time;
  }
}

FailureEvent TraceInjector::peek() {
  if (cursor_ >= events_.size()) {
    return {std::numeric_limits<double>::infinity(), 0};
  }
  return events_[cursor_];
}

void TraceInjector::pop() {
  if (cursor_ < events_.size()) ++cursor_;
}

void TraceInjector::on_node_replaced(std::uint64_t, double, double) {
  // A recorded trace already reflects whatever replacement policy the
  // original system had; nothing to reschedule.
}

std::vector<FailureEvent> load_failure_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_failure_trace: cannot open " + path);
  std::vector<FailureEvent> events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    FailureEvent event;
    if (!(fields >> event.time >> event.node) || event.time < 0.0 ||
        !std::isfinite(event.time)) {
      throw std::runtime_error("load_failure_trace: bad line " +
                               std::to_string(line_number) + " in " + path);
    }
    events.push_back(event);
  }
  if (!std::is_sorted(events.begin(), events.end(),
                      [](const FailureEvent& a, const FailureEvent& b) {
                        return a.time < b.time;
                      })) {
    throw std::runtime_error("load_failure_trace: trace not time-sorted: " +
                             path);
  }
  return events;
}

void save_failure_trace(const std::string& path,
                        const std::vector<FailureEvent>& events) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_failure_trace: cannot open " + path);
  out << "# dckpt failure trace: <time_seconds> <node_id>\n";
  out.precision(9);
  for (const auto& event : events) {
    out << std::fixed << event.time << ' ' << event.node << '\n';
  }
  if (!out) throw std::runtime_error("save_failure_trace: write failed");
}

std::vector<FailureEvent> generate_failure_trace(
    const util::Distribution& inter_arrival, std::uint64_t nodes,
    double horizon, util::Xoshiro256ss rng) {
  if (nodes == 0) {
    throw std::invalid_argument("generate_failure_trace: zero nodes");
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("generate_failure_trace: horizon must be > 0");
  }
  std::vector<FailureEvent> events;
  for (std::uint64_t node = 0; node < nodes; ++node) {
    double t = inter_arrival.sample(rng);
    while (t < horizon) {
      events.push_back({t, node});
      t += inter_arrival.sample(rng);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              return a.time < b.time;
            });
  return events;
}

}  // namespace dckpt::sim
