// Fatal-failure detection over buddy groups (pairs/triples).
//
// Semantics (paper Sec. III-C / V-C): a failure of node p at time t opens an
// exposure window of length `risk_window` during which p's checkpoint data
// exists on fewer replicas than the protocol guarantees. In a *pair*, a
// failure of p's buddy inside the window is fatal. In a *triple*, a failure
// of either remaining member inside the window opens a second window, and a
// failure of the last member inside both is fatal.
//
// Implementation: per group we keep the expiry times of currently-open
// windows, keyed by the member that failed; windows are pruned lazily.
// Nodes are grouped contiguously: group g = node / group_size.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dckpt::sim {

class RiskTracker {
 public:
  /// `nodes` must be divisible by `group_size` (2 or 3).
  RiskTracker(std::uint64_t nodes, int group_size);

  /// Registers a failure of `node` at `time` with exposure `risk_window`.
  /// Returns true when this failure is fatal (all group copies endangered).
  bool on_failure(std::uint64_t node, double time, double risk_window);

  /// Number of currently-open windows for diagnostics/tests.
  std::size_t open_windows(double now) const;

  std::uint64_t group_of(std::uint64_t node) const noexcept {
    return node / static_cast<std::uint64_t>(group_size_);
  }
  int group_size() const noexcept { return group_size_; }

 private:
  struct Window {
    std::uint64_t member;  ///< local index of the failed member in the group
    double expiry;
  };

  std::uint64_t nodes_;
  int group_size_;
  /// Sparse: only groups with open windows are present.
  std::unordered_map<std::uint64_t, std::vector<Window>> open_;
};

}  // namespace dckpt::sim
