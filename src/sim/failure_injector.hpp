// Failure arrival processes for the simulator.
//
// Two interchangeable sources of (time, node) failure events:
//
//  * PlatformExponentialInjector -- one Poisson process at platform rate
//    1/M; each arrival strikes a uniformly random node. For independent
//    exponential nodes this is *exactly* equivalent to n per-node processes
//    (superposition theorem) and costs O(1) per failure even at n = 10^6.
//
//  * PerNodeInjector -- n independent renewal processes with an arbitrary
//    inter-arrival Distribution (Weibull, LogNormal, ...), maintained as a
//    min-heap of per-node next-failure times. A failed node is replaced
//    after the downtime; the replacement's clock restarts (renewal with
//    rebirth). O(log n) per failure.
//
// Injectors are advanced lazily: peek() exposes the next failure, pop()
// consumes it, on_node_replaced() reschedules the failed node's stream.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace dckpt::sim {

struct FailureEvent {
  double time = 0.0;
  std::uint64_t node = 0;
};

class FailureInjector {
 public:
  virtual ~FailureInjector() = default;

  /// Next failure event (strictly increasing times across calls).
  virtual FailureEvent peek() = 0;

  /// Consumes the event returned by the last peek().
  virtual void pop() = 0;

  /// Notifies that `node` failed at `failure_time` and its replacement
  /// becomes fault-prone again at `rebirth_time` (>= failure_time).
  virtual void on_node_replaced(std::uint64_t node, double failure_time,
                                double rebirth_time) = 0;

  virtual std::uint64_t node_count() const = 0;
};

/// Memoryless platform-level injector (exact for exponential node lifetimes).
class PlatformExponentialInjector final : public FailureInjector {
 public:
  /// `platform_mtbf` is M (already divided by n).
  PlatformExponentialInjector(double platform_mtbf, std::uint64_t nodes,
                              util::Xoshiro256ss rng);

  FailureEvent peek() override;
  void pop() override;
  void on_node_replaced(std::uint64_t node, double failure_time,
                        double rebirth_time) override;
  std::uint64_t node_count() const override { return nodes_; }

 private:
  void ensure_next();

  double rate_;
  std::uint64_t nodes_;
  util::Xoshiro256ss rng_;
  double clock_ = 0.0;
  FailureEvent next_{};
  bool has_next_ = false;
};

/// General renewal injector: one clock per node, heap-ordered. Supports
/// heterogeneous fleets (per-node inter-arrival laws) -- real machines mix
/// healthy nodes with "lemons" whose MTBF is far below the fleet average.
class PerNodeInjector final : public FailureInjector {
 public:
  /// Homogeneous fleet: every node uses `inter_arrival`, whose mean is the
  /// *individual node* MTBF (n * M).
  PerNodeInjector(const util::Distribution& inter_arrival, std::uint64_t nodes,
                  util::Xoshiro256ss rng);

  /// Heterogeneous fleet: `laws[i]` is node i's inter-arrival law.
  PerNodeInjector(std::vector<std::unique_ptr<util::Distribution>> laws,
                  util::Xoshiro256ss rng);

  FailureEvent peek() override;
  void pop() override;
  void on_node_replaced(std::uint64_t node, double failure_time,
                        double rebirth_time) override;
  std::uint64_t node_count() const override { return next_time_.size(); }

 private:
  struct HeapEntry {
    double time;
    std::uint64_t node;
    std::uint64_t generation;  ///< invalidates stale entries after rebirth
    bool operator>(const HeapEntry& other) const noexcept {
      return time > other.time;
    }
  };

  void push_node(std::uint64_t node, double from_time);
  void refill();

  std::vector<std::unique_ptr<util::Distribution>> dists_;  ///< per node
  util::Xoshiro256ss rng_;
  std::vector<double> next_time_;
  std::vector<std::uint64_t> generation_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  bool has_top_ = false;
  FailureEvent top_{};
};

}  // namespace dckpt::sim
