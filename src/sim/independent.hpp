// Independent-group execution: quantifying the coordination penalty.
//
// The paper's protocols are *coordinated* -- a failure anywhere stalls the
// whole platform while one node recovers. If groups could instead recover
// privately (buddy pairs/triples are self-contained; with logged inter-group
// messages the rest of the machine keeps computing), each group runs its own
// timeline and the application finishes when the *slowest* group completes
// its share. This module simulates that regime by composing the existing
// single-group engine:
//
//   makespan_independent = max over groups of makespan_group
//
// where each group is a private platform of `group_size` nodes with MTBF
// node_mtbf/group_size. The gap to the coordinated makespan is the price of
// global synchrony (paid by coordination) vs the straggler effect plus
// logging costs (paid by independence).
#pragma once

#include <cstdint>

#include "sim/protocol_sim.hpp"
#include "util/stats.hpp"

namespace dckpt::sim {

struct IndependentResult {
  double makespan = 0.0;        ///< max over groups
  double mean_group_makespan = 0.0;
  std::uint64_t failures = 0;   ///< total across groups
  bool fatal = false;           ///< any group lost its data
  double waste() const noexcept {
    return makespan > 0.0 ? 1.0 - t_base / makespan : 0.0;
  }
  double t_base = 0.0;
};

/// Runs every group of `config.params.nodes` through its own private
/// timeline (config.period, config.t_base interpreted per group) and
/// aggregates. Group g uses an RNG stream derived from (seed, g).
IndependentResult simulate_independent_groups(const SimConfig& config,
                                              std::uint64_t seed);

}  // namespace dckpt::sim
