// Chaos campaigns: run a runtime coordinator (1-D chain or 2-D grid)
// through adversarial failure schedules and classify every run against the
// shadow oracle.
//
//   Survived        -- runtime finished, final hash equals the failure-free
//                      reference, every counter matches the oracle
//                      (including failovers around corrupt replicas and
//                      transfer retries -- surviving damage still counts as
//                      Survived when the final state is bit-exact).
//   FatalDetected   -- the schedule destroys or corrupts every replica of
//                      some node; the runtime detected that, entered
//                      degraded mode (typed fatal_node/fatal_step, no
//                      exception), and finished exactly as the oracle
//                      predicted, counters included.
//   Violated        -- anything else: wrong final state, fatal on a
//                      survivable schedule, silent survival of a fatal one,
//                      wrong fatal node/step, counter divergence, or an
//                      unexpected exception. Every violation is a bug in
//                      the runtime or the oracle.
//
// Each run carries a one-line `dckpt chaos ...` repro command (seed and
// schedule spelled out), so a campaign failure reproduces from the shell.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/schedule.hpp"
#include "chaos/shadow.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/grid.hpp"

namespace dckpt::chaos {

enum class ChaosOutcome { Survived, FatalDetected, Violated };

std::string_view outcome_name(ChaosOutcome outcome);

struct ChaosCampaignConfig {
  runtime::RuntimeConfig runtime;
  /// When set, the campaign targets the 2-D GridCoordinator instead of the
  /// 1-D chain: `runtime` is ignored, schedules come from
  /// scripted_grid_schedules(), and the oracle predicts through the grid's
  /// protocol shape (immediate commit, same refill clock). The kernel must
  /// be "heat" (the only 2-D kernel).
  std::optional<runtime::GridConfig> grid;
  std::string kernel = "heat";      ///< heat | wave | counter (grid: heat)
  std::uint64_t random_runs = 100;  ///< randomized schedules after scripted
  std::uint64_t campaign_seed = 1;  ///< root seed for the random draws
  std::uint64_t max_failures = 4;   ///< per random schedule
  bool include_scripted = true;     ///< prepend scripted_schedules()
  std::size_t threads = 0;          ///< campaign-level pool; 0 = hardware

  void validate() const;  ///< throws std::invalid_argument

  /// The oracle's view of whichever runtime this campaign targets.
  ShadowConfig shadow() const;
  /// "grid" or "chain" -- the stable target id used in exports.
  std::string_view target() const noexcept { return grid ? "grid" : "chain"; }
};

struct ChaosRunResult {
  std::uint64_t index = 0;
  std::string target = "chain";  ///< "chain" | "grid" (stable export id)
  ChaosSchedule schedule;
  ShadowPrediction predicted;
  runtime::RunReport report;
  ChaosOutcome outcome = ChaosOutcome::Violated;
  std::string detail;  ///< violation diagnosis or the runtime's fatal reason
  std::string repro;   ///< one-line `dckpt chaos ...` command
};

struct ChaosCampaignSummary {
  std::vector<ChaosRunResult> runs;  ///< scripted first, then random
  std::uint64_t survived = 0;
  std::uint64_t fatal_detected = 0;
  std::uint64_t violated = 0;
  std::uint64_t reference_hash = 0;  ///< failure-free final state hash
  std::string target = "chain";      ///< "chain" | "grid" (stable export id)
  std::string grid_geometry;         ///< "RxC" on grid campaigns, else ""
  std::string block_geometry;        ///< "RxC" on grid campaigns, else ""
};

/// Kernel factory for the names ChaosCampaignConfig::kernel accepts.
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<runtime::Kernel> make_kernel(const std::string& name);

/// 2-D kernel factory for grid campaigns ("heat" only).
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<runtime::GridKernel> make_grid_kernel(const std::string& name);

/// Failure-free reference run (single-threaded stepping; both coordinators
/// are thread-count invariant, so this hash is *the* correct final state).
runtime::RunReport reference_run(const ChaosCampaignConfig& config);

/// Runs the campaign's target runtime through `schedule` and classifies the
/// outcome against a caller-supplied oracle prediction. This is run_one()
/// with the prediction injectable -- the seam the mutation tests use to
/// prove the classifier actually flags divergence (feed it a prediction
/// from a deliberately wrong protocol shape and expect Violated).
ChaosRunResult classify_run(const ChaosCampaignConfig& config,
                            ChaosSchedule schedule,
                            const ShadowPrediction& predicted,
                            std::uint64_t reference_hash,
                            std::uint64_t index = 0);

/// Runs and classifies one schedule against the real oracle prediction.
/// `reference_hash` comes from reference_run(); `index` only labels the
/// result.
ChaosRunResult run_one(const ChaosCampaignConfig& config,
                       ChaosSchedule schedule, std::uint64_t reference_hash,
                       std::uint64_t index = 0);

/// Full campaign: scripted danger cases (optional) plus `random_runs`
/// seed-derived random schedules, executed across `threads` workers with
/// per-run results in deterministic (index) order regardless of thread
/// count.
ChaosCampaignSummary run_campaign(const ChaosCampaignConfig& config);

/// The `dckpt chaos` command line that replays `schedule` under `config`.
std::string repro_command(const ChaosCampaignConfig& config,
                          const ChaosSchedule& schedule);

}  // namespace dckpt::chaos
