// Chaos schedules: adversarial multi-failure injection plans against the
// runtime coordinators (1-D chain and 2-D grid).
//
// A ChaosSchedule is a named list of FailureInjections plus the seed that
// generated it (0 for hand-scripted plans), with a textual round-trip form
// -- the same grammar `runtime_demo --kill` and `dckpt chaos --schedule`
// speak, so every campaign run is reproducible from the command line:
//   step:node                  node loss (legacy form, unchanged)
//   step:corrupt:holder:owner  silently corrupt owner's committed image at
//                              rest on holder's store
//   step:torn:node             node's next refill delivery arrives torn
//   step:failxfer:node         node's next refill delivery fails outright
//   step:sdc:node              latent silent corruption of node's live
//                              memory (captured by later checkpoints; only
//                              valid when verification is enabled)
//   step:alarm:node            fault-predictor alarm: node is predicted to
//                              fail this step (proactive checkpoint fires
//                              before the step's losses)
//   step:alarm:node:window     same, predicting a loss anywhere within
//                              [step, step + window]
//   step:torndelta:node:depth  tear delta layer `depth` (1-based) of node's
//                              differential chain on its first replica
//                              holder (only valid when dcp is enabled)
//
// Three sources of schedules:
//   * scripted_schedules() -- the paper's named danger cases: failures
//     during the checkpoint exchange, double hits inside the
//     re-replication risk window, simultaneous losses across and within
//     groups, and back-to-back hits straddling the spare-allocation delay.
//     Takes the oracle's ShadowConfig, so it covers any runtime whose
//     protocol shape converts to one (both coordinators do).
//   * scripted_grid_schedules() -- the grid-specific danger families on
//     top of the generic set: rack-aligned buddy-group wipes (orthogonal
//     to the halo geometry), simultaneous losses along grid rows that span
//     several buddy groups, column wipes that take one member from many
//     racks, and vertical halo-neighbour double hits.
//   * random_schedule() -- seed-deterministic adversarial draws biased
//     toward the same timing windows (uniform placement almost never lands
//     inside a risk window by chance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/shadow.hpp"
#include "model/spares.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/grid.hpp"

namespace dckpt::chaos {

struct ChaosSchedule {
  std::string name;  ///< scenario family label ("risk-window-buddy", ...)
  std::vector<runtime::FailureInjection> failures;
  std::uint64_t seed = 0;  ///< generator seed; 0 = hand-scripted

  /// Round-trip textual form, comma-separated ("" when empty). Node losses
  /// keep the legacy "step:node" form; the other kinds use
  /// "step:corrupt:holder:owner" / "step:torn:node" / "step:failxfer:node".
  std::string spec() const;

  /// Parses the textual form. Throws std::invalid_argument naming the bad
  /// entry on malformed input (missing colon, non-numeric, unknown kind,
  /// trailing junk).
  static ChaosSchedule parse(const std::string& spec);
};

/// CLI front door for `--schedule`: parse() with the PR 1 error convention --
/// on malformed input prints "<program>: option --schedule: invalid value
/// '<spec>'" to stderr and exits(2).
ChaosSchedule parse_schedule_cli(const std::string& program,
                                 const std::string& spec);

/// Validates every injection against `config` (node in range, step below
/// total_steps, corrupt target a store that actually holds the owner's
/// replica under the topology). Throws std::invalid_argument otherwise.
void validate_schedule(const ChaosSchedule& schedule,
                       const ShadowConfig& config);

/// The scripted danger cases for `config` (every schedule valid for it):
/// single hits, exchange-window hits (when staging_steps > 0), same-group
/// double hits at the same step and inside the re-replication window,
/// cross-group simultaneous losses, repeated hits on one node, a
/// whole-group wipe, and the corruption/transfer-fault families
/// (corrupt-preferred-then-kill, corrupt-survivor-failover,
/// corrupt-both-replicas, latent-corruption-commit-heals,
/// torn-refill-in-risk-window, refill-retries-exhausted,
/// corrupt-refill-source). Survivable, failed-over and fatal plans are all
/// included -- the campaign's shadow oracle decides which is which.
std::vector<ChaosSchedule> scripted_schedules(const ShadowConfig& config);

/// The scripted set for the 2-D grid runtime: everything
/// scripted_schedules() produces for the grid's protocol shape, plus the
/// geometry-aware families ("rack-wipe", "grid-row-simultaneous",
/// "grid-column-simultaneous", "halo-neighbours-vertical",
/// "row-span-two-racks", "rack-straddles-rows" when the rack width does
/// not divide the row length). Buddy groups follow consecutive row-major
/// ids -- racks -- so these plans probe exactly the correlated,
/// topology-aligned failures the domain decomposition never sees.
std::vector<ChaosSchedule> scripted_grid_schedules(
    const runtime::GridConfig& config);

/// Seed-deterministic adversarial draw: picks 1..max_failures injections
/// using a mix of strategies (uniform, buddy hit inside the risk window,
/// simultaneous same/cross group, exchange window, repeat offender). The
/// same (config, seed, max_failures) triple always yields the same plan.
ChaosSchedule random_schedule(const ShadowConfig& config, std::uint64_t seed,
                              std::uint64_t max_failures = 4);

/// Maps the spare-pool model's expected replacement wait (Erlang-C, from
/// model/spares) plus detection time onto whole runtime steps of
/// `step_seconds` each -- the bridge between `model::SparePoolSpec` and
/// `RuntimeConfig::rereplication_delay_steps`. Always at least 1 step (a
/// pool never reacts faster than the step that detects the loss).
std::uint64_t spare_pool_delay_steps(const model::SparePoolSpec& spec,
                                     double platform_mtbf,
                                     double step_seconds);

}  // namespace dckpt::chaos
