// Shadow oracle: an abstract replica-state machine that predicts, without
// touching any application data, what the Coordinator must do under a
// failure schedule -- survive or report fatal data loss, and with exactly
// which accounting (rollbacks, replays, checkpoints, recoveries, refills,
// risk-window steps).
//
// The oracle tracks one bit per node -- "this node's buddy storage holds
// its committed set" -- because store contents are all-or-nothing: a
// committed exchange fills every store, a destroyed node empties its own,
// and a re-replication refill restores it wholesale. A rollback is fatal
// exactly when some node's committed image has no surviving holder.
//
// This is deliberately an *independent reimplementation* of the control
// flow in runtime/coordinator.cpp (same step/commit/refill ordering, none
// of the data movement): the chaos campaign runs both and any divergence
// -- outcome or counter -- is classified `violated`, i.e. a bug in one of
// the two. Property tests drive random schedules through the pair.
#pragma once

#include <cstdint>
#include <span>

#include "runtime/coordinator.hpp"

namespace dckpt::chaos {

struct ShadowPrediction {
  bool fatal = false;
  std::uint64_t fatal_step = 0;          ///< step of the unsurvivable rollback
  std::uint64_t unrecoverable_node = 0;  ///< first node with no replica left
  // Mirrors of the RunReport counters the oracle can derive.
  std::uint64_t steps_executed = 0;
  std::uint64_t replayed_steps = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t risk_steps = 0;
};

/// Runs the abstract machine for `config` under `failures` (same contract
/// as Coordinator::run: each injection fires at most once, in step order).
/// Throws std::invalid_argument on an out-of-range injection, like the
/// runtime does.
ShadowPrediction predict_outcome(
    const runtime::RuntimeConfig& config,
    std::span<const runtime::FailureInjection> failures);

}  // namespace dckpt::chaos
