// Shadow oracle: an abstract replica-state machine that predicts, without
// touching any application data, what a runtime coordinator must do under a
// failure schedule -- survive, fail over around corrupt replicas, or enter
// degraded mode after unrecoverable data loss -- and with exactly which
// accounting (rollbacks, replays, checkpoints, recoveries, failovers,
// refills, retries, corruption detections, risk-window and degraded steps).
//
// The oracle tracks a per-(holder, owner) image state -- absent, clean, or
// corrupt -- because corruption makes store contents no longer
// all-or-nothing: a committed exchange sets every designated slot clean, a
// destroyed node empties its own row, CorruptReplica flips one slot, and a
// refill delivery re-files slots one source scan at a time (skipping
// corrupt sources). A rollback walks each node's replica ladder exactly
// like the runtime: corrupt images are skipped (detected), a later clean
// candidate is a failover, and an exhausted ladder marks the node lost --
// the run continues degraded until the next commit readmits it.
//
// The machine is deliberately topology-agnostic: buddy placement follows
// racks (consecutive row-major node ids), not the application's domain
// decomposition, so the *same* step/commit/refill machine covers both the
// 1-D chain Coordinator and the 2-D GridCoordinator. ShadowConfig is the
// extracted protocol shape; it converts implicitly from either runtime
// config so existing call sites keep reading naturally.
//
// This is deliberately an *independent reimplementation* of the control
// flow in runtime/coordinator.cpp and runtime/grid.cpp (same
// step/commit/refill ordering, none of the data movement): the chaos
// campaign runs both and any divergence -- outcome or counter -- is
// classified `violated`, i.e. a bug in one of the two. Property tests
// drive random schedules through the pair.
#pragma once

#include <cstdint>
#include <span>

#include "runtime/coordinator.hpp"
#include "runtime/grid.hpp"

namespace dckpt::chaos {

/// The protocol shape the oracle steps: everything the step/commit/refill
/// machine needs, nothing the application layer adds on top. Both runtime
/// configs convert implicitly, so `predict_outcome(config.runtime, ...)`
/// and `predict_outcome(grid_config, ...)` both read naturally.
struct ShadowConfig {
  std::uint64_t nodes = 4;
  ckpt::Topology topology = ckpt::Topology::Pairs;
  std::uint64_t checkpoint_interval = 16;
  std::uint64_t total_steps = 128;
  std::uint64_t staging_steps = 0;  ///< 0 = immediate commit (the grid)
  std::uint64_t rereplication_delay_steps = 0;
  ckpt::RetryPolicy transfer_retry;  ///< refill retry/backoff policy
  std::uint64_t verify_every = 0;    ///< verification cadence; 0 = off
  std::uint64_t keep_last = 1;       ///< retained-set ladder depth (>= 1)
  std::uint64_t dcp_stack_size = 0;  ///< dcp commits per full exchange; 0 = off

  ShadowConfig() = default;
  ShadowConfig(const runtime::RuntimeConfig& config);  // NOLINT: implicit
  ShadowConfig(const runtime::GridConfig& config);     // NOLINT: implicit

  void validate() const;  ///< throws std::invalid_argument
};

struct ShadowPrediction {
  bool fatal = false;                    ///< run enters degraded mode
  std::uint64_t fatal_step = 0;          ///< step of the exhausted rollback
  std::uint64_t unrecoverable_node = 0;  ///< first node with no replica left
  // Mirrors of the RunReport counters the oracle can derive.
  std::uint64_t steps_executed = 0;
  std::uint64_t replayed_steps = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t risk_steps = 0;
  std::uint64_t failovers = 0;
  std::uint64_t transfer_retries = 0;
  std::uint64_t corrupt_images_detected = 0;
  std::uint64_t degraded_steps = 0;
  std::uint64_t hash_verified_recoveries = 0;
  std::uint64_t sdc_injected = 0;
  std::uint64_t verifications_run = 0;
  std::uint64_t sdc_detected = 0;
  std::uint64_t rollback_depth = 0;
  std::uint64_t alarms_raised = 0;
  std::uint64_t proactive_ckpts = 0;
  std::uint64_t true_predictions = 0;
  std::uint64_t missed_failures = 0;
  std::uint64_t delta_commits = 0;
  std::uint64_t full_commits = 0;
  std::uint64_t chain_replays = 0;
  std::uint64_t chain_replay_depth = 0;
  std::uint64_t torn_chain_failovers = 0;
};

/// Runs the abstract machine for `config` under `failures` (same contract
/// as the coordinators' run(): each injection fires at most once, in step
/// order, corruption before transfer-fault arming before losses within a
/// step). Throws std::invalid_argument on a malformed injection (node,
/// step, or corrupt target), exactly like the runtimes do.
ShadowPrediction predict_outcome(
    const ShadowConfig& config,
    std::span<const runtime::FailureInjection> failures);

}  // namespace dckpt::chaos
