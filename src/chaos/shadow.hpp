// Shadow oracle: an abstract replica-state machine that predicts, without
// touching any application data, what a runtime coordinator must do under a
// failure schedule -- survive or report fatal data loss, and with exactly
// which accounting (rollbacks, replays, checkpoints, recoveries, refills,
// risk-window steps).
//
// The oracle tracks one bit per node -- "this node's buddy storage holds
// its committed set" -- because store contents are all-or-nothing: a
// committed exchange fills every store, a destroyed node empties its own,
// and a re-replication refill restores it wholesale. A rollback is fatal
// exactly when some node's committed image has no surviving holder.
//
// The machine is deliberately topology-agnostic: buddy placement follows
// racks (consecutive row-major node ids), not the application's domain
// decomposition, so the *same* step/commit/refill machine covers both the
// 1-D chain Coordinator and the 2-D GridCoordinator. ShadowConfig is the
// extracted protocol shape; it converts implicitly from either runtime
// config so existing call sites keep reading naturally.
//
// This is deliberately an *independent reimplementation* of the control
// flow in runtime/coordinator.cpp and runtime/grid.cpp (same
// step/commit/refill ordering, none of the data movement): the chaos
// campaign runs both and any divergence -- outcome or counter -- is
// classified `violated`, i.e. a bug in one of the two. Property tests
// drive random schedules through the pair.
#pragma once

#include <cstdint>
#include <span>

#include "runtime/coordinator.hpp"
#include "runtime/grid.hpp"

namespace dckpt::chaos {

/// The protocol shape the oracle steps: everything the step/commit/refill
/// machine needs, nothing the application layer adds on top. Both runtime
/// configs convert implicitly, so `predict_outcome(config.runtime, ...)`
/// and `predict_outcome(grid_config, ...)` both read naturally.
struct ShadowConfig {
  std::uint64_t nodes = 4;
  ckpt::Topology topology = ckpt::Topology::Pairs;
  std::uint64_t checkpoint_interval = 16;
  std::uint64_t total_steps = 128;
  std::uint64_t staging_steps = 0;  ///< 0 = immediate commit (the grid)
  std::uint64_t rereplication_delay_steps = 0;

  ShadowConfig() = default;
  ShadowConfig(const runtime::RuntimeConfig& config);  // NOLINT: implicit
  ShadowConfig(const runtime::GridConfig& config);     // NOLINT: implicit

  void validate() const;  ///< throws std::invalid_argument
};

struct ShadowPrediction {
  bool fatal = false;
  std::uint64_t fatal_step = 0;          ///< step of the unsurvivable rollback
  std::uint64_t unrecoverable_node = 0;  ///< first node with no replica left
  // Mirrors of the RunReport counters the oracle can derive.
  std::uint64_t steps_executed = 0;
  std::uint64_t replayed_steps = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t risk_steps = 0;
};

/// Runs the abstract machine for `config` under `failures` (same contract
/// as the coordinators' run(): each injection fires at most once, in step
/// order). Throws std::invalid_argument on an out-of-range injection
/// (node or step), exactly like the runtimes do.
ShadowPrediction predict_outcome(
    const ShadowConfig& config,
    std::span<const runtime::FailureInjection> failures);

}  // namespace dckpt::chaos
