// JSONL export of chaos campaign results, routed through the generic
// writers in sim/export.
//
// Schemas (documented in docs/CHAOS.md):
//   campaign record  {"record":"chaos_campaign", "runs":..., "survived":...,
//                     "fatal_detected":..., "violated":...,
//                     "reference_hash":"<hex>", "target":"chain|grid",
//                     "grid":"RxC"?, "block":"RxC"?}
//   run record       {"record":"chaos_run", "index":..., "name":...,
//                     "seed":..., "schedule":"step:node,...",
//                     "outcome":"survived|fatal-detected|violated",
//                     "detail":...?, "repro":..., "predicted":{...},
//                     "report":{..., "final_hash":"<hex>"},
//                     "target":"chain|grid"}
//
// Schema evolution is append-only: new stable ids ("target", "grid",
// "block") are added after the existing keys and existing keys are never
// renumbered, renamed, or reordered -- downstream JSONL consumers written
// against an older schema keep working.
//
// 64-bit state hashes are serialized as fixed-width hex *strings*: JSON
// numbers are doubles here and would silently round them.
#pragma once

#include <iosfwd>
#include <string>

#include "chaos/campaign.hpp"
#include "util/json.hpp"

namespace dckpt::chaos {

util::JsonValue to_json(const ShadowPrediction& predicted);
util::JsonValue to_json(const runtime::RunReport& report);
util::JsonValue to_json(const ChaosRunResult& run);
util::JsonValue to_json(const ChaosCampaignSummary& summary);

/// One campaign record line, then one run record line per run.
void write_campaign_jsonl(std::ostream& out,
                          const ChaosCampaignSummary& summary);

/// File writer; throws std::runtime_error when `path` cannot be opened.
void save_campaign_jsonl(const std::string& path,
                         const ChaosCampaignSummary& summary);

}  // namespace dckpt::chaos
