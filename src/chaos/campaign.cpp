#include "chaos/campaign.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::chaos {

namespace {

/// First counter that diverges between runtime report and oracle, as a
/// "name: runtime X, oracle Y" diagnosis ("" when they agree). Fatal runs
/// now complete in degraded mode, so every counter is compared on every
/// run -- including the corruption/retry/degraded accounting.
std::string counter_divergence(const runtime::RunReport& report,
                               const ShadowPrediction& predicted) {
  const struct {
    const char* name;
    std::uint64_t got;
    std::uint64_t want;
  } counters[] = {
      {"steps_executed", report.steps_executed, predicted.steps_executed},
      {"replayed_steps", report.replayed_steps, predicted.replayed_steps},
      {"checkpoints", report.checkpoints, predicted.checkpoints},
      {"failures", report.failures, predicted.failures},
      {"rollbacks", report.rollbacks, predicted.rollbacks},
      {"recoveries", report.recoveries, predicted.recoveries},
      {"rereplications", report.rereplications, predicted.rereplications},
      {"risk_steps", report.risk_steps, predicted.risk_steps},
      {"failovers", report.failovers, predicted.failovers},
      {"transfer_retries", report.transfer_retries,
       predicted.transfer_retries},
      {"corrupt_images_detected", report.corrupt_images_detected,
       predicted.corrupt_images_detected},
      {"degraded_steps", report.degraded_steps, predicted.degraded_steps},
      {"hash_verified_recoveries", report.hash_verified_recoveries,
       predicted.hash_verified_recoveries},
      {"sdc_injected", report.sdc_injected, predicted.sdc_injected},
      {"verifications_run", report.verifications_run,
       predicted.verifications_run},
      {"sdc_detected", report.sdc_detected, predicted.sdc_detected},
      {"rollback_depth", report.rollback_depth, predicted.rollback_depth},
      {"alarms_raised", report.alarms_raised, predicted.alarms_raised},
      {"proactive_ckpts", report.proactive_ckpts, predicted.proactive_ckpts},
      {"true_predictions", report.true_predictions,
       predicted.true_predictions},
      {"missed_failures", report.missed_failures,
       predicted.missed_failures},
      {"delta_commits", report.delta_commits, predicted.delta_commits},
      {"full_commits", report.full_commits, predicted.full_commits},
      {"chain_replays", report.chain_replays, predicted.chain_replays},
      {"chain_replay_depth", report.chain_replay_depth,
       predicted.chain_replay_depth},
      {"torn_chain_failovers", report.torn_chain_failovers,
       predicted.torn_chain_failovers},
  };
  for (const auto& counter : counters) {
    if (counter.got != counter.want) {
      return std::string(counter.name) + ": runtime " +
             std::to_string(counter.got) + ", oracle " +
             std::to_string(counter.want);
    }
  }
  return "";
}

}  // namespace

std::string_view outcome_name(ChaosOutcome outcome) {
  switch (outcome) {
    case ChaosOutcome::Survived: return "survived";
    case ChaosOutcome::FatalDetected: return "fatal-detected";
    case ChaosOutcome::Violated: break;
  }
  return "violated";
}

void ChaosCampaignConfig::validate() const {
  if (grid) {
    grid->validate();
    if (kernel != "heat") {
      throw std::invalid_argument(
          "ChaosCampaignConfig: grid campaigns support only the heat kernel, "
          "got '" + kernel + "'");
    }
  } else {
    runtime.validate();
    if (kernel != "heat" && kernel != "wave" && kernel != "counter") {
      throw std::invalid_argument("ChaosCampaignConfig: unknown kernel '" +
                                  kernel + "'");
    }
    if (kernel == "wave" && runtime.cells_per_node % 2 != 0) {
      throw std::invalid_argument(
          "ChaosCampaignConfig: wave kernel packs two time levels and needs "
          "an even cells_per_node");
    }
  }
  if (random_runs > 0 && max_failures == 0) {
    throw std::invalid_argument(
        "ChaosCampaignConfig: max_failures must be > 0");
  }
}

ShadowConfig ChaosCampaignConfig::shadow() const {
  return grid ? ShadowConfig(*grid) : ShadowConfig(runtime);
}

std::unique_ptr<runtime::Kernel> make_kernel(const std::string& name) {
  if (name == "heat") return std::make_unique<runtime::HeatKernel>();
  if (name == "wave") return std::make_unique<runtime::WaveKernel>();
  if (name == "counter") return std::make_unique<runtime::CounterKernel>();
  throw std::invalid_argument("make_kernel: unknown kernel '" + name + "'");
}

std::unique_ptr<runtime::GridKernel> make_grid_kernel(
    const std::string& name) {
  if (name == "heat") return std::make_unique<runtime::HeatKernel2D>();
  throw std::invalid_argument("make_grid_kernel: unknown kernel '" + name +
                              "'");
}

namespace {

/// Executes the campaign's target runtime through one schedule
/// (single-threaded stepping -- the campaign parallelizes across runs).
runtime::RunReport execute_target(
    const ChaosCampaignConfig& config,
    std::span<const runtime::FailureInjection> failures) {
  if (config.grid) {
    runtime::GridConfig gc = *config.grid;
    gc.threads = 1;
    runtime::GridCoordinator coordinator(gc, make_grid_kernel(config.kernel));
    return coordinator.run(failures);
  }
  runtime::RuntimeConfig rc = config.runtime;
  rc.threads = 1;
  runtime::Coordinator coordinator(rc, make_kernel(config.kernel));
  return coordinator.run(failures);
}

}  // namespace

runtime::RunReport reference_run(const ChaosCampaignConfig& config) {
  config.validate();
  runtime::RunReport report = execute_target(config, {});
  if (report.fatal) {
    throw std::logic_error("reference_run: failure-free run reported fatal");
  }
  return report;
}

ChaosRunResult classify_run(const ChaosCampaignConfig& config,
                            ChaosSchedule schedule,
                            const ShadowPrediction& predicted,
                            std::uint64_t reference_hash,
                            std::uint64_t index) {
  config.validate();
  validate_schedule(schedule, config.shadow());

  ChaosRunResult result;
  result.index = index;
  result.target = config.target();
  result.schedule = std::move(schedule);
  result.repro = repro_command(config, result.schedule);
  result.predicted = predicted;

  try {
    result.report = execute_target(config, result.schedule.failures);
  } catch (const std::exception& error) {
    result.outcome = ChaosOutcome::Violated;
    result.detail = std::string("runtime threw: ") + error.what();
    return result;
  }

  const std::string divergence =
      counter_divergence(result.report, result.predicted);
  if (result.report.fatal) {
    if (!result.predicted.fatal) {
      result.outcome = ChaosOutcome::Violated;
      result.detail = "runtime lost data on a survivable schedule: " +
                      result.report.fatal_reason;
    } else if (result.report.fatal_node != result.predicted.unrecoverable_node ||
               result.report.fatal_step != result.predicted.fatal_step ||
               !result.report.degraded) {
      // Typed comparison -- no string matching on fatal_reason.
      result.outcome = ChaosOutcome::Violated;
      result.detail =
          "wrong fatal report: got node " +
          std::to_string(result.report.fatal_node) + " at step " +
          std::to_string(result.report.fatal_step) +
          (result.report.degraded ? "" : " (not degraded)") + ", want node " +
          std::to_string(result.predicted.unrecoverable_node) + " at step " +
          std::to_string(result.predicted.fatal_step);
    } else if (!divergence.empty()) {
      result.outcome = ChaosOutcome::Violated;
      result.detail = "accounting diverges from the oracle (" + divergence +
                      ")";
    } else {
      result.outcome = ChaosOutcome::FatalDetected;
      result.detail = result.report.fatal_reason;
    }
  } else {
    if (result.predicted.fatal) {
      result.outcome = ChaosOutcome::Violated;
      result.detail =
          "runtime claims survival of a schedule that destroys every replica "
          "of node " +
          std::to_string(result.predicted.unrecoverable_node);
    } else if (result.report.final_hash != reference_hash) {
      result.outcome = ChaosOutcome::Violated;
      result.detail = "final state diverges from the failure-free run";
    } else if (!divergence.empty()) {
      result.outcome = ChaosOutcome::Violated;
      result.detail = "accounting diverges from the oracle (" + divergence +
                      ")";
    } else {
      result.outcome = ChaosOutcome::Survived;
    }
  }
  return result;
}

ChaosRunResult run_one(const ChaosCampaignConfig& config,
                       ChaosSchedule schedule, std::uint64_t reference_hash,
                       std::uint64_t index) {
  config.validate();
  const ShadowPrediction predicted =
      predict_outcome(config.shadow(), schedule.failures);
  return classify_run(config, std::move(schedule), predicted, reference_hash,
                      index);
}

ChaosCampaignSummary run_campaign(const ChaosCampaignConfig& config) {
  config.validate();
  ChaosCampaignSummary summary;
  summary.target = config.target();
  if (config.grid) {
    summary.grid_geometry = std::to_string(config.grid->grid_rows) + "x" +
                            std::to_string(config.grid->grid_cols);
    summary.block_geometry = std::to_string(config.grid->block_rows) + "x" +
                             std::to_string(config.grid->block_cols);
  }
  summary.reference_hash = reference_run(config).final_hash;

  std::vector<ChaosSchedule> schedules;
  if (config.include_scripted) {
    schedules = config.grid ? scripted_grid_schedules(*config.grid)
                            : scripted_schedules(config.runtime);
  }
  const ShadowConfig shape = config.shadow();
  util::SplitMix64 seeder(config.campaign_seed);
  for (std::uint64_t i = 0; i < config.random_runs; ++i) {
    schedules.push_back(
        random_schedule(shape, seeder.next(), config.max_failures));
  }

  // One task per run; results land at their index, so the summary is
  // identical at any thread count.
  summary.runs.resize(schedules.size());
  util::ThreadPool pool(config.threads);
  util::parallel_for_chunked(
      pool, schedules.size(), schedules.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          summary.runs[i] = run_one(config, schedules[i],
                                    summary.reference_hash, i);
        }
      });

  for (const ChaosRunResult& run : summary.runs) {
    switch (run.outcome) {
      case ChaosOutcome::Survived: ++summary.survived; break;
      case ChaosOutcome::FatalDetected: ++summary.fatal_detected; break;
      case ChaosOutcome::Violated: ++summary.violated; break;
    }
  }
  return summary;
}

std::string repro_command(const ChaosCampaignConfig& config,
                          const ChaosSchedule& schedule) {
  std::string cmd = "dckpt chaos";
  if (config.grid) {
    const runtime::GridConfig& gc = *config.grid;
    cmd += " --topology=";
    cmd += gc.topology == ckpt::Topology::Pairs ? "pairs" : "triples";
    cmd += " --grid=" + std::to_string(gc.grid_rows) + "x" +
           std::to_string(gc.grid_cols);
    cmd += " --block=" + std::to_string(gc.block_rows) + "x" +
           std::to_string(gc.block_cols);
    cmd += " --steps=" + std::to_string(gc.total_steps);
    cmd += " --interval=" + std::to_string(gc.checkpoint_interval);
    cmd += " --rerepl-delay=" + std::to_string(gc.rereplication_delay_steps);
    cmd += " --retry-max=" + std::to_string(gc.transfer_retry.max_attempts);
    cmd += " --retry-base=" +
           std::to_string(gc.transfer_retry.base_delay_steps);
    cmd += " --verify-every=" + std::to_string(gc.verify_every);
    cmd += " --keep-last=" + std::to_string(gc.keep_last);
    cmd += " --dcp-stack=" + std::to_string(gc.dcp_stack_size);
    cmd += " --dcp-block=" + std::to_string(gc.dcp_block_size);
  } else {
    const runtime::RuntimeConfig& rc = config.runtime;
    cmd += " --topology=";
    cmd += rc.topology == ckpt::Topology::Pairs ? "pairs" : "triples";
    cmd += " --nodes=" + std::to_string(rc.nodes);
    cmd += " --cells=" + std::to_string(rc.cells_per_node);
    cmd += " --steps=" + std::to_string(rc.total_steps);
    cmd += " --interval=" + std::to_string(rc.checkpoint_interval);
    cmd += " --staging=" + std::to_string(rc.staging_steps);
    cmd += " --rerepl-delay=" + std::to_string(rc.rereplication_delay_steps);
    cmd += " --retry-max=" + std::to_string(rc.transfer_retry.max_attempts);
    cmd += " --retry-base=" +
           std::to_string(rc.transfer_retry.base_delay_steps);
    cmd += " --verify-every=" + std::to_string(rc.verify_every);
    cmd += " --keep-last=" + std::to_string(rc.keep_last);
    cmd += " --dcp-stack=" + std::to_string(rc.dcp_stack_size);
    cmd += " --dcp-block=" + std::to_string(rc.dcp_block_size);
  }
  cmd += " --kernel=" + config.kernel;
  cmd += " --seed=" + std::to_string(schedule.seed);
  cmd += " --schedule=" + schedule.spec();
  return cmd;
}

}  // namespace dckpt::chaos
