#include "chaos/schedule.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "ckpt/ring.hpp"
#include "util/rng.hpp"

namespace dckpt::chaos {

namespace {

[[noreturn]] void bad_entry(const std::string& entry) {
  throw std::invalid_argument(
      "ChaosSchedule: bad entry '" + entry +
      "' (want step:node, step:corrupt:holder:owner, step:torn:node, "
      "step:failxfer:node, step:sdc:node, step:alarm:node[:window] or "
      "step:torndelta:node:depth)");
}

std::uint64_t parse_number(std::string_view text, const std::string& entry) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    bad_entry(entry);
  }
  return value;
}

}  // namespace

std::string ChaosSchedule::spec() const {
  std::string text;
  for (const auto& failure : failures) {
    if (!text.empty()) text += ',';
    text += std::to_string(failure.step);
    switch (failure.kind) {
      case runtime::InjectionKind::NodeLoss:
        text += ':' + std::to_string(failure.node);
        break;
      case runtime::InjectionKind::CorruptReplica:
        text += ":corrupt:" + std::to_string(failure.node) + ':' +
                std::to_string(failure.owner);
        break;
      case runtime::InjectionKind::TornTransfer:
        text += ":torn:" + std::to_string(failure.node);
        break;
      case runtime::InjectionKind::FailTransfer:
        text += ":failxfer:" + std::to_string(failure.node);
        break;
      case runtime::InjectionKind::SilentError:
        text += ":sdc:" + std::to_string(failure.node);
        break;
      case runtime::InjectionKind::Alarm:
        text += ":alarm:" + std::to_string(failure.node);
        // The 3-field form round-trips a same-step prediction.
        if (failure.window > 0) text += ':' + std::to_string(failure.window);
        break;
      case runtime::InjectionKind::TornDelta:
        text += ":torndelta:" + std::to_string(failure.node) + ':' +
                std::to_string(failure.window);
        break;
    }
  }
  return text;
}

ChaosSchedule ChaosSchedule::parse(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("ChaosSchedule: empty spec");
  }
  ChaosSchedule schedule;
  schedule.name = "scripted";
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    std::vector<std::string_view> fields;
    const std::string_view view(entry);
    std::size_t start = 0;
    while (true) {
      const auto colon = view.find(':', start);
      fields.push_back(view.substr(
          start, colon == std::string_view::npos ? std::string_view::npos
                                                 : colon - start));
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    runtime::FailureInjection injection;
    if (fields.size() == 2) {
      injection.step = parse_number(fields[0], entry);
      injection.node = parse_number(fields[1], entry);
    } else if (fields.size() == 3 &&
               (fields[1] == "torn" || fields[1] == "failxfer" ||
                fields[1] == "sdc" || fields[1] == "alarm")) {
      injection.step = parse_number(fields[0], entry);
      injection.kind = fields[1] == "torn"
                           ? runtime::InjectionKind::TornTransfer
                       : fields[1] == "failxfer"
                           ? runtime::InjectionKind::FailTransfer
                       : fields[1] == "sdc"
                           ? runtime::InjectionKind::SilentError
                           : runtime::InjectionKind::Alarm;
      injection.node = parse_number(fields[2], entry);
    } else if (fields.size() == 4 && fields[1] == "alarm") {
      injection.step = parse_number(fields[0], entry);
      injection.kind = runtime::InjectionKind::Alarm;
      injection.node = parse_number(fields[2], entry);
      injection.window = parse_number(fields[3], entry);
    } else if (fields.size() == 4 && fields[1] == "torndelta") {
      injection.step = parse_number(fields[0], entry);
      injection.kind = runtime::InjectionKind::TornDelta;
      injection.node = parse_number(fields[2], entry);
      injection.window = parse_number(fields[3], entry);
    } else if (fields.size() == 4 && fields[1] == "corrupt") {
      injection.step = parse_number(fields[0], entry);
      injection.kind = runtime::InjectionKind::CorruptReplica;
      injection.node = parse_number(fields[2], entry);
      injection.owner = parse_number(fields[3], entry);
    } else {
      bad_entry(entry);
    }
    schedule.failures.push_back(injection);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return schedule;
}

ChaosSchedule parse_schedule_cli(const std::string& program,
                                 const std::string& spec) {
  try {
    return ChaosSchedule::parse(spec);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "%s: option --schedule: invalid value '%s'\n",
                 program.c_str(), spec.c_str());
    std::exit(2);
  }
}

void validate_schedule(const ChaosSchedule& schedule,
                       const ShadowConfig& config) {
  const ckpt::GroupAssignment groups(config.nodes, config.topology);
  const bool pairs = config.topology == ckpt::Topology::Pairs;
  for (const auto& failure : schedule.failures) {
    if (failure.node >= config.nodes) {
      throw std::invalid_argument("ChaosSchedule '" + schedule.name +
                                  "': node " + std::to_string(failure.node) +
                                  " out of range");
    }
    if (failure.step >= config.total_steps) {
      throw std::invalid_argument("ChaosSchedule '" + schedule.name +
                                  "': step " + std::to_string(failure.step) +
                                  " never executes");
    }
    if (failure.kind == runtime::InjectionKind::SilentError &&
        config.verify_every == 0) {
      throw std::invalid_argument(
          "ChaosSchedule '" + schedule.name +
          "': silent error requires verification enabled (verify_every > 0)");
    }
    if (failure.kind == runtime::InjectionKind::TornDelta) {
      if (config.dcp_stack_size == 0) {
        throw std::invalid_argument(
            "ChaosSchedule '" + schedule.name +
            "': torn delta requires differential checkpointing enabled "
            "(dcp_stack_size > 0)");
      }
      if (failure.window == 0 || failure.window >= config.dcp_stack_size) {
        throw std::invalid_argument(
            "ChaosSchedule '" + schedule.name + "': delta depth " +
            std::to_string(failure.window) + " outside [1, " +
            std::to_string(config.dcp_stack_size - 1) + "]");
      }
    }
    if (failure.kind == runtime::InjectionKind::CorruptReplica) {
      if (failure.owner >= config.nodes) {
        throw std::invalid_argument(
            "ChaosSchedule '" + schedule.name + "': owner " +
            std::to_string(failure.owner) + " out of range");
      }
      const bool holds =
          pairs ? (failure.node == failure.owner ||
                   failure.node == groups.preferred_buddy(failure.owner))
                : (failure.node == groups.preferred_buddy(failure.owner) ||
                   failure.node == groups.secondary_buddy(failure.owner));
      if (!holds) {
        throw std::invalid_argument(
            "ChaosSchedule '" + schedule.name + "': node " +
            std::to_string(failure.node) + " does not hold node " +
            std::to_string(failure.owner) + "'s replica");
      }
    }
  }
}

std::vector<ChaosSchedule> scripted_schedules(const ShadowConfig& config) {
  const std::uint64_t interval = config.checkpoint_interval;
  const std::uint64_t total = config.total_steps;
  const std::uint64_t gs = config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const auto step = [&](std::uint64_t s) {  // keep every plan executable
    return std::min(s, total - 1);
  };

  std::vector<ChaosSchedule> plans;
  const std::uint64_t c = step(2 * interval + config.staging_steps + 1);
  plans.push_back({"single-mid-run", {{c, 0}}, 0});
  plans.push_back({"before-first-commit", {{step(interval / 2), 0}}, 0});
  plans.push_back({"last-step", {{total - 1, 1}}, 0});
  if (config.staging_steps > 0) {
    // The exchange snapshotted at `interval` is still in flight.
    plans.push_back({"during-exchange", {{step(interval + 1), 1}}, 0});
  }
  plans.push_back({"same-step-group-double", {{c, 0}, {c, 1}}, 0});
  // Buddy hit one step after the rollback -- inside the re-replication
  // window whenever the configured delay exceeds the replayed distance.
  plans.push_back({"risk-window-buddy", {{c, 0}, {step(c + 1), 1}}, 0});
  if (config.rereplication_delay_steps > 0) {
    // Buddy hit well past the refill: the window must be closed again.
    plans.push_back(
        {"after-risk-window",
         {{c, 0},
          {step(c + interval + config.rereplication_delay_steps + 1), 1}},
         0});
  }
  if (config.nodes > gs) {
    plans.push_back({"cross-group-simultaneous", {{c, 0}, {c, gs}}, 0});
    plans.push_back(
        {"cross-group-staggered", {{c, 0}, {step(c + 1), gs + 1}}, 0});
  }
  plans.push_back({"repeat-offender", {{c, 0}, {step(c + interval), 0}}, 0});
  {
    ChaosSchedule wipe{"group-wipe", {}, 0};
    for (std::uint64_t member = 0; member < gs; ++member) {
      wipe.failures.push_back({c, member});
    }
    plans.push_back(std::move(wipe));
  }
  if (gs == 3) {
    plans.push_back({"triple-cascade",
                     {{c, 0}, {step(c + 1), 1}, {step(c + 2), 2}},
                     0});
  }

  // Corruption / transfer-fault families. Helpers name the replica ladder:
  // the victim's restore tries the local copy then the preferred buddy
  // (pairs) or the preferred then the secondary buddy (triples).
  using runtime::InjectionKind;
  const ckpt::GroupAssignment groups(config.nodes, config.topology);
  const std::uint64_t pre = c > 0 ? c - 1 : 0;  // corruption before the kill
  // Corrupt the victim's image on its preferred buddy, then kill it: pairs
  // lose both replicas (local died with the node) -- fatal, degraded
  // continuation; triples fail over to the secondary and finish bit-exact.
  plans.push_back({"corrupt-preferred-then-kill",
                   {{pre, groups.preferred_buddy(0),
                     InjectionKind::CorruptReplica, 0},
                    {c, 0}},
                   0});
  if (config.nodes > gs) {
    // Corrupt the first replica a *survivor* consults, then kill a node in
    // another group: the survivor's rollback must skip the corrupt copy and
    // fail over to the next ladder rung. Survivable on both topologies.
    const std::uint64_t first_rung =
        config.topology == ckpt::Topology::Pairs ? 0
                                                 : groups.preferred_buddy(0);
    plans.push_back({"corrupt-survivor-failover",
                     {{pre, first_rung, InjectionKind::CorruptReplica, 0},
                      {c, gs}},
                     0});
  }
  {
    // Every replica of the victim's image corrupted before the kill: the
    // ladder exhausts on either topology -- always fatal, always detected.
    ChaosSchedule both{"corrupt-both-replicas", {}, 0};
    if (config.topology == ckpt::Topology::Pairs) {
      both.failures.push_back({pre, 0, InjectionKind::CorruptReplica, 0});
      both.failures.push_back(
          {pre, groups.preferred_buddy(0), InjectionKind::CorruptReplica, 0});
    } else {
      both.failures.push_back(
          {pre, groups.preferred_buddy(0), InjectionKind::CorruptReplica, 0});
      both.failures.push_back(
          {pre, groups.secondary_buddy(0), InjectionKind::CorruptReplica, 0});
    }
    both.failures.push_back({c, 0});
    plans.push_back(std::move(both));
  }
  // Corruption planted, but the next committed exchange overwrites the
  // damaged slot before anything reads it: the later kill must recover
  // cleanly with zero detections -- latent corruption heals at commit.
  plans.push_back(
      {"latent-corruption-commit-heals",
       {{c, groups.preferred_buddy(0), InjectionKind::CorruptReplica, 0},
        {step(c + interval + config.staging_steps + 1), 0}},
       0});
  // The victim's refill delivery arrives torn: the receiver's hash check
  // rejects it and the retry (backoff) extends the risk window.
  plans.push_back({"torn-refill-in-risk-window",
                   {{c, 0, InjectionKind::TornTransfer, 0}, {c, 0}},
                   0});
  {
    // Every retry the policy allows fails outright: the refill is
    // abandoned and the store stays empty until the next commit.
    ChaosSchedule exhausted{"refill-retries-exhausted", {}, 0};
    for (std::uint64_t i = 0; i < config.transfer_retry.max_attempts; ++i) {
      exhausted.failures.push_back({c, 0, InjectionKind::FailTransfer, 0});
    }
    exhausted.failures.push_back({c, 0});
    plans.push_back(std::move(exhausted));
  }
  {
    // Kill a node, then corrupt one of its refill *sources* during the risk
    // window: the delivery must skip the corrupt source and re-file what it
    // can (partial refill -- some owners stay unavailable).
    ChaosSchedule source{"corrupt-refill-source", {}, 0};
    source.failures.push_back({c, 0});
    if (config.topology == ckpt::Topology::Pairs) {
      source.failures.push_back({step(c + 1), groups.preferred_buddy(0),
                                 InjectionKind::CorruptReplica, 0});
    } else {
      const std::uint64_t owner = groups.stored_for(0).front();
      const std::uint64_t survivor = groups.preferred_buddy(owner) == 0
                                         ? groups.secondary_buddy(owner)
                                         : groups.preferred_buddy(owner);
      source.failures.push_back(
          {step(c + 1), survivor, InjectionKind::CorruptReplica, owner});
    }
    plans.push_back(std::move(source));
  }

  // Silent-error families -- only when the config can detect them
  // (verify_every > 0), so existing configs keep their exact plan list.
  if (config.verify_every > 0) {
    using runtime::InjectionKind;
    const auto sdc = [&](std::uint64_t at, std::uint64_t node) {
      return runtime::FailureInjection{step(at), node,
                                       InjectionKind::SilentError, 0};
    };
    // One latent flip mid-period: the following commits capture it and the
    // next verification must either roll back past the corruption or
    // declare the detected loss fatal -- the ladder depth decides.
    plans.push_back({"sdc-single", {sdc(interval + 1, 0)}, 0});
    // Corruption before any commit exists: only the virtual initial entry
    // can save the run (and only while it is still inside the ladder).
    plans.push_back({"sdc-before-first-commit", {sdc(interval / 2, 0)}, 0});
    // A fail-stop loss lands while the corruption is still latent: the
    // rollback restores the tainted committed set, and the epoch must snap
    // back with it -- detection still happens at the next verification.
    plans.push_back({"sdc-then-kill", {sdc(c, 0), {step(c + 1), 0}}, 0});
    // Two nodes corrupted in one step: one verification, one rollback.
    plans.push_back({"sdc-double-node", {sdc(c, 0), sdc(c, 1)}, 0});
    // Corruption on the last executed step: only the end-of-run audit can
    // catch it -- nothing may escape into the final answer silently.
    plans.push_back({"sdc-last-step", {sdc(total - 1, 0)}, 0});
    // Repeated flips a period apart: epochs accumulate, every retained set
    // between them is tainted at a different level.
    plans.push_back({"sdc-repeat", {sdc(c, 0), sdc(c + interval, 0)}, 0});
  }

  // Fault-prediction families: alarms and the proactive checkpoints they
  // trigger. Valid under every config (no gating -- an alarm needs nothing
  // beyond an existing node and step).
  {
    using runtime::InjectionKind;
    const auto alarm = [&](std::uint64_t at, std::uint64_t node,
                           std::uint64_t window) {
      return runtime::FailureInjection{step(at), node, InjectionKind::Alarm,
                                       0, window};
    };
    // A true prediction: the alarm lands one step before the kill with a
    // window that covers it, so the proactive commit saves every step since
    // the last boundary and the scoreboard records a true prediction.
    plans.push_back({"alarm-predicts-kill", {alarm(pre, 0, 2), {c, 0}}, 0});
    // The just-in-time limit: alarm and loss in the same step. Alarms fire
    // at the top of the loop, before the step's losses, so even a window of
    // 0 commits ahead of the hit.
    plans.push_back({"alarm-same-step-kill", {alarm(c, 0, 0), {c, 0}}, 0});
    // False-alarm storm during a risk window: a kill opens the
    // re-replication window, then alarms hammer a survivor on consecutive
    // steps with no matching loss. Each proactive commit inside the window
    // closes it early -- the storm must not corrupt the refill bookkeeping,
    // and every alarm scores as false (the one real loss as missed).
    plans.push_back({"false-alarm-storm-risk-window",
                     {{c, 0},
                      alarm(c + 1, 1, 0),
                      alarm(c + 2, 1, 0),
                      alarm(c + 3, 1, 0)},
                     0});
    // Missed prediction at the commit boundary: the alarm fires on the
    // step right after a fresh periodic commit (when the exchange is
    // unstaged, skip-if-just-committed suppresses the proactive
    // checkpoint), and the kill arrives past the prediction window -- a
    // miss on the scoreboard either way.
    plans.push_back({"missed-prediction-at-commit-boundary",
                     {alarm(2 * interval, 1, 1),
                      {step(2 * interval + interval / 2 + 2), 1}},
                     0});
  }

  // Differential-chain families -- only when the config commits deltas
  // (dcp_stack_size > 1; a stack of 1 never grows a chain), so existing
  // configs keep their exact plan list. By step c the first full exchange
  // and at least one delta commit have both happened, so every ladder rung
  // carries a live chain.
  if (config.dcp_stack_size > 1) {
    using runtime::InjectionKind;
    // First rung of node 0's restore ladder (where TornDelta lands) and
    // the rung the walk falls back to.
    const std::uint64_t first_rung =
        config.topology == ckpt::Topology::Pairs ? 0
                                                 : groups.preferred_buddy(0);
    const std::uint64_t second_rung =
        config.topology == ckpt::Topology::Pairs
            ? groups.preferred_buddy(0)
            : groups.secondary_buddy(0);
    const auto torn = [&](std::uint64_t at, std::uint64_t node,
                          std::uint64_t depth) {
      return runtime::FailureInjection{step(at), node,
                                       InjectionKind::TornDelta, 0, depth};
    };
    // Tear the oldest delta layer of the victim's chain on its first
    // ladder rung, then kill it: triples fail over to the secondary's
    // intact chain; pairs lose the torn local copy with the node and
    // recover cleanly from the buddy -- either way the replayed tip must
    // match the committed hash bit-exact.
    plans.push_back({"dcp-torn-then-kill", {torn(c, 0, 1), {c, 0}}, 0});
    if (config.nodes > gs) {
      // A survivor's own first rung is torn when a loss elsewhere forces
      // the coordinated rollback: the walk must detect the torn layer
      // mid-chain, count the failover, and replay the next rung's chain.
      plans.push_back(
          {"dcp-torn-survivor-failover", {torn(pre, 0, 1), {c, gs}}, 0});
    }
    // Corrupt the diff *base* under live deltas: the chain's stored base
    // hash must reject the rung before any replay touches the damage.
    plans.push_back({"dcp-corrupt-base-then-kill",
                     {{c, first_rung, InjectionKind::CorruptReplica, 0},
                      {c, 0}},
                     0});
    // Every rung poisoned a different way -- torn chain on the first,
    // corrupt base on the second: the ladder exhausts, always fatal,
    // always detected.
    plans.push_back({"dcp-chain-exhausted",
                     {torn(c, 0, 1),
                      {c, second_rung, InjectionKind::CorruptReplica, 0},
                      {c, 0}},
                     0});
    // Second group member hit right after a chain replay, while the
    // victim's refill is still pending: the risk-window logic must hold
    // with chains exactly as with full images, and the pending refill
    // forces the next commit back to a full exchange.
    plans.push_back(
        {"dcp-replay-in-risk-window", {{c, 0}, {step(c + 1), 1}}, 0});
    // Torn layer planted, but the next full exchange clears every chain
    // before anything replays it: the later kill must recover cleanly
    // with zero torn-chain detections -- latent tears heal at the full.
    plans.push_back(
        {"dcp-torn-heals-at-full",
         {torn(c, 0, 1),
          {step(c + config.dcp_stack_size * interval + 1), 0}},
         0});
  }

  for (auto& plan : plans) validate_schedule(plan, config);
  return plans;
}

std::vector<ChaosSchedule> scripted_grid_schedules(
    const runtime::GridConfig& config) {
  const ShadowConfig shape(config);
  std::vector<ChaosSchedule> plans = scripted_schedules(shape);

  const std::uint64_t rows = config.grid_rows;
  const std::uint64_t cols = config.grid_cols;
  const std::uint64_t gs =
      config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const std::uint64_t total = config.total_steps;
  const auto step = [&](std::uint64_t s) {  // keep every plan executable
    return std::min(s, total - 1);
  };
  const std::uint64_t c = step(2 * config.checkpoint_interval + 1);
  const auto node_at = [&](std::uint64_t r, std::uint64_t col) {
    return r * cols + col;
  };

  // Rack-aligned wipe of the group holding the grid's centre node: every
  // replica of every member lives inside the wiped rack, so the plan is
  // fatal no matter where the rack happens to sit in the domain -- buddy
  // assignment follows racks, not the halo geometry.
  {
    const std::uint64_t centre = node_at(rows / 2, cols / 2);
    const std::uint64_t rack = centre / gs;
    ChaosSchedule wipe{"rack-wipe", {}, 0};
    for (std::uint64_t member = 0; member < gs; ++member) {
      wipe.failures.push_back({c, rack * gs + member});
    }
    plans.push_back(std::move(wipe));
  }
  // A rack whose members straddle a grid-row boundary (exists whenever the
  // group size does not divide the row length): wiping it kills workers
  // that never exchange a halo, yet is just as fatal.
  if (cols % gs != 0) {
    for (std::uint64_t rack = 0; rack < shape.nodes / gs; ++rack) {
      if ((rack * gs) / cols != (rack * gs + gs - 1) / cols) {
        ChaosSchedule wipe{"rack-straddles-rows", {}, 0};
        for (std::uint64_t member = 0; member < gs; ++member) {
          wipe.failures.push_back({c, rack * gs + member});
        }
        plans.push_back(std::move(wipe));
        break;
      }
    }
  }
  // Simultaneous loss of a full grid row: spans cols/gs racks, so whenever
  // a whole rack fits inside the row the plan is fatal -- the correlated,
  // topology-aligned pattern of a real rack/PDU event.
  {
    ChaosSchedule row{"grid-row-simultaneous", {}, 0};
    for (std::uint64_t col = 0; col < cols; ++col) {
      row.failures.push_back({c, node_at(rows / 2, col)});
    }
    plans.push_back(std::move(row));
  }
  // Simultaneous loss of a full grid column: consecutive victims are a full
  // row length apart, so with cols >= gs every rack loses at most one
  // member and the rollback must recover all of them at once.
  if (rows > 1) {
    ChaosSchedule column{"grid-column-simultaneous", {}, 0};
    for (std::uint64_t r = 0; r < rows; ++r) {
      column.failures.push_back({c, node_at(r, cols / 2)});
    }
    plans.push_back(std::move(column));
    // The same column lost one node per step: every hit rolls back while
    // the previous victims' refills are still pending -- survivable (one
    // member per rack), but it drives the refill clock through repeated
    // rollbacks.
    ChaosSchedule staggered{"grid-column-staggered", {}, 0};
    for (std::uint64_t r = 0; r < rows; ++r) {
      staggered.failures.push_back({step(c + r), node_at(r, cols / 2)});
    }
    plans.push_back(std::move(staggered));
    // Two halo neighbours across a row boundary (ids a full row apart).
    plans.push_back({"halo-neighbours-vertical",
                     {{c, node_at(0, cols / 2)}, {c, node_at(1, cols / 2)}},
                     0});
  }
  // Two same-step losses inside one grid row but in different racks.
  if (cols > gs) {
    plans.push_back(
        {"row-span-two-racks", {{c, node_at(0, 0)}, {c, node_at(0, gs)}}, 0});
  }
  // One rack member lost, its rack-mate one step later: inside the
  // re-replication window whenever the delay exceeds the replay distance.
  {
    const std::uint64_t rack = node_at(rows / 2, cols / 2) / gs;
    plans.push_back({"rack-risk-window",
                     {{c, rack * gs}, {step(c + 1), rack * gs + 1}},
                     0});
  }
  // Corrupt the centre-rack base node's preferred replica, then kill it:
  // the grid analogue of corrupt-preferred-then-kill (fatal for pairs,
  // secondary failover for triples), placed on the rack the halo geometry
  // cares about least.
  {
    const ckpt::GroupAssignment groups(shape.nodes, shape.topology);
    const std::uint64_t base = (node_at(rows / 2, cols / 2) / gs) * gs;
    const std::uint64_t pre = c > 0 ? c - 1 : 0;
    plans.push_back({"rack-corrupt-preferred",
                     {{pre, groups.preferred_buddy(base),
                       runtime::InjectionKind::CorruptReplica, base},
                      {c, base}},
                     0});
  }

  for (auto& plan : plans) validate_schedule(plan, shape);
  return plans;
}

ChaosSchedule random_schedule(const ShadowConfig& config, std::uint64_t seed,
                              std::uint64_t max_failures) {
  if (max_failures == 0) {
    throw std::invalid_argument("random_schedule: max_failures must be > 0");
  }
  util::Xoshiro256ss rng(seed);
  const std::uint64_t total = config.total_steps;
  const std::uint64_t interval = config.checkpoint_interval;
  const std::uint64_t gs = config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const std::uint64_t groups = config.nodes / gs;
  const std::uint64_t window = std::max<std::uint64_t>(
      config.rereplication_delay_steps, 1);

  const auto any_step = [&] { return 1 + rng.next_below(total - 1); };
  const auto any_node = [&] { return rng.next_below(config.nodes); };
  const auto group_member = [&](std::uint64_t group, std::uint64_t index) {
    return group * gs + index;
  };

  const ckpt::GroupAssignment assignment(config.nodes, config.topology);
  ChaosSchedule schedule;
  schedule.name = "random";
  schedule.seed = seed;
  const std::uint64_t count = 1 + rng.next_below(max_failures);
  // The silent-error and torn-delta motifs only exist when the config can
  // express them; the draw range stays 7 otherwise, so pre-existing
  // (config, seed) pairs reproduce their exact historical plans. Slot 7 is
  // the silent-error motif; when verification is off the slot passes
  // through to the torn-delta motif instead.
  const std::uint64_t motifs = 7 + (config.verify_every > 0 ? 1 : 0) +
                               (config.dcp_stack_size > 1 ? 1 : 0);
  while (schedule.failures.size() < count) {
    std::uint64_t motif = rng.next_below(motifs);
    if (motif == 7 && config.verify_every == 0) motif = 8;
    switch (motif) {
      case 0: {  // uniform single
        schedule.failures.push_back({any_step(), any_node()});
        break;
      }
      case 1: {  // simultaneous hit inside one group
        const std::uint64_t group = rng.next_below(groups);
        const std::uint64_t first = rng.next_below(gs);
        const std::uint64_t second = (first + 1 + rng.next_below(gs - 1)) % gs;
        const std::uint64_t at = any_step();
        schedule.failures.push_back({at, group_member(group, first)});
        schedule.failures.push_back({at, group_member(group, second)});
        break;
      }
      case 2: {  // buddy hit around the re-replication window
        const std::uint64_t group = rng.next_below(groups);
        const std::uint64_t first = rng.next_below(gs);
        const std::uint64_t second = (first + 1 + rng.next_below(gs - 1)) % gs;
        const std::uint64_t at = any_step();
        const std::uint64_t gap = 1 + rng.next_below(window + 2);
        schedule.failures.push_back({at, group_member(group, first)});
        schedule.failures.push_back(
            {std::min(at + gap, total - 1), group_member(group, second)});
        break;
      }
      case 3: {  // just after a checkpoint boundary (exchange window)
        const std::uint64_t boundaries = std::max<std::uint64_t>(
            (total - 1) / interval, 1);
        const std::uint64_t boundary =
            interval * (1 + rng.next_below(boundaries));
        const std::uint64_t offset =
            rng.next_below(std::max<std::uint64_t>(config.staging_steps, 1) +
                           1);
        schedule.failures.push_back(
            {std::min(boundary + offset, total - 1), any_node()});
        break;
      }
      case 4: {  // repeat offender
        const std::uint64_t node = any_node();
        const std::uint64_t at = any_step();
        schedule.failures.push_back({at, node});
        schedule.failures.push_back(
            {std::min(at + 1 + rng.next_below(interval), total - 1), node});
        break;
      }
      case 5: {  // corrupt a replica of the victim, then kill it
        const std::uint64_t victim = any_node();
        const bool first_holder = rng.next_below(2) == 0;
        const std::uint64_t holder =
            config.topology == ckpt::Topology::Pairs
                ? (first_holder ? victim
                                : assignment.preferred_buddy(victim))
                : (first_holder ? assignment.preferred_buddy(victim)
                                : assignment.secondary_buddy(victim));
        const std::uint64_t at = any_step();
        schedule.failures.push_back(
            {at, holder, runtime::InjectionKind::CorruptReplica, victim});
        schedule.failures.push_back(
            {std::min(at + rng.next_below(2), total - 1), victim});
        break;
      }
      case 6: {  // kill with a transfer fault armed against the refill
        const std::uint64_t node = any_node();
        const std::uint64_t at = any_step();
        schedule.failures.push_back(
            {at, node,
             rng.next_below(2) == 0 ? runtime::InjectionKind::TornTransfer
                                    : runtime::InjectionKind::FailTransfer,
             0});
        schedule.failures.push_back({at, node});
        break;
      }
      case 7: {  // silent error, sometimes chased by a fail-stop loss
        const std::uint64_t node = any_node();
        const std::uint64_t at = any_step();
        schedule.failures.push_back(
            {at, node, runtime::InjectionKind::SilentError, 0});
        if (rng.next_below(2) == 0) {
          schedule.failures.push_back(
              {std::min(at + 1 + rng.next_below(interval), total - 1),
               any_node()});
        }
        break;
      }
      default: {  // torn delta layer at a random depth, then kill the owner
        const std::uint64_t node = any_node();
        const std::uint64_t at = any_step();
        const std::uint64_t depth =
            1 + rng.next_below(config.dcp_stack_size - 1);
        schedule.failures.push_back(
            {at, node, runtime::InjectionKind::TornDelta, 0, depth});
        schedule.failures.push_back(
            {std::min(at + rng.next_below(2), total - 1), node});
        break;
      }
    }
  }
  schedule.failures.resize(count);  // motifs may overshoot by one
  validate_schedule(schedule, config);
  return schedule;
}

std::uint64_t spare_pool_delay_steps(const model::SparePoolSpec& spec,
                                     double platform_mtbf,
                                     double step_seconds) {
  if (!(step_seconds > 0.0) || !std::isfinite(step_seconds)) {
    throw std::invalid_argument(
        "spare_pool_delay_steps: step_seconds must be > 0");
  }
  const double wait = model::effective_downtime(spec, platform_mtbf);
  const double steps = std::ceil(wait / step_seconds);
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(steps), 1);
}

}  // namespace dckpt::chaos
