#include "chaos/schedule.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "ckpt/ring.hpp"
#include "util/rng.hpp"

namespace dckpt::chaos {

namespace {

std::uint64_t parse_number(std::string_view text, const std::string& entry) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    throw std::invalid_argument("ChaosSchedule: bad entry '" + entry +
                                "' (want step:node)");
  }
  return value;
}

}  // namespace

std::string ChaosSchedule::spec() const {
  std::string text;
  for (const auto& failure : failures) {
    if (!text.empty()) text += ',';
    text += std::to_string(failure.step) + ':' + std::to_string(failure.node);
  }
  return text;
}

ChaosSchedule ChaosSchedule::parse(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("ChaosSchedule: empty spec");
  }
  ChaosSchedule schedule;
  schedule.name = "scripted";
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("ChaosSchedule: bad entry '" + entry +
                                  "' (want step:node)");
    }
    schedule.failures.push_back(
        {parse_number(std::string_view(entry).substr(0, colon), entry),
         parse_number(std::string_view(entry).substr(colon + 1), entry)});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return schedule;
}

ChaosSchedule parse_schedule_cli(const std::string& program,
                                 const std::string& spec) {
  try {
    return ChaosSchedule::parse(spec);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "%s: option --schedule: invalid value '%s'\n",
                 program.c_str(), spec.c_str());
    std::exit(2);
  }
}

void validate_schedule(const ChaosSchedule& schedule,
                       const ShadowConfig& config) {
  for (const auto& failure : schedule.failures) {
    if (failure.node >= config.nodes) {
      throw std::invalid_argument("ChaosSchedule '" + schedule.name +
                                  "': node " + std::to_string(failure.node) +
                                  " out of range");
    }
    if (failure.step >= config.total_steps) {
      throw std::invalid_argument("ChaosSchedule '" + schedule.name +
                                  "': step " + std::to_string(failure.step) +
                                  " never executes");
    }
  }
}

std::vector<ChaosSchedule> scripted_schedules(const ShadowConfig& config) {
  const std::uint64_t interval = config.checkpoint_interval;
  const std::uint64_t total = config.total_steps;
  const std::uint64_t gs = config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const auto step = [&](std::uint64_t s) {  // keep every plan executable
    return std::min(s, total - 1);
  };

  std::vector<ChaosSchedule> plans;
  const std::uint64_t c = step(2 * interval + config.staging_steps + 1);
  plans.push_back({"single-mid-run", {{c, 0}}, 0});
  plans.push_back({"before-first-commit", {{step(interval / 2), 0}}, 0});
  plans.push_back({"last-step", {{total - 1, 1}}, 0});
  if (config.staging_steps > 0) {
    // The exchange snapshotted at `interval` is still in flight.
    plans.push_back({"during-exchange", {{step(interval + 1), 1}}, 0});
  }
  plans.push_back({"same-step-group-double", {{c, 0}, {c, 1}}, 0});
  // Buddy hit one step after the rollback -- inside the re-replication
  // window whenever the configured delay exceeds the replayed distance.
  plans.push_back({"risk-window-buddy", {{c, 0}, {step(c + 1), 1}}, 0});
  if (config.rereplication_delay_steps > 0) {
    // Buddy hit well past the refill: the window must be closed again.
    plans.push_back(
        {"after-risk-window",
         {{c, 0},
          {step(c + interval + config.rereplication_delay_steps + 1), 1}},
         0});
  }
  if (config.nodes > gs) {
    plans.push_back({"cross-group-simultaneous", {{c, 0}, {c, gs}}, 0});
    plans.push_back(
        {"cross-group-staggered", {{c, 0}, {step(c + 1), gs + 1}}, 0});
  }
  plans.push_back({"repeat-offender", {{c, 0}, {step(c + interval), 0}}, 0});
  {
    ChaosSchedule wipe{"group-wipe", {}, 0};
    for (std::uint64_t member = 0; member < gs; ++member) {
      wipe.failures.push_back({c, member});
    }
    plans.push_back(std::move(wipe));
  }
  if (gs == 3) {
    plans.push_back({"triple-cascade",
                     {{c, 0}, {step(c + 1), 1}, {step(c + 2), 2}},
                     0});
  }
  for (auto& plan : plans) validate_schedule(plan, config);
  return plans;
}

std::vector<ChaosSchedule> scripted_grid_schedules(
    const runtime::GridConfig& config) {
  const ShadowConfig shape(config);
  std::vector<ChaosSchedule> plans = scripted_schedules(shape);

  const std::uint64_t rows = config.grid_rows;
  const std::uint64_t cols = config.grid_cols;
  const std::uint64_t gs =
      config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const std::uint64_t total = config.total_steps;
  const auto step = [&](std::uint64_t s) {  // keep every plan executable
    return std::min(s, total - 1);
  };
  const std::uint64_t c = step(2 * config.checkpoint_interval + 1);
  const auto node_at = [&](std::uint64_t r, std::uint64_t col) {
    return r * cols + col;
  };

  // Rack-aligned wipe of the group holding the grid's centre node: every
  // replica of every member lives inside the wiped rack, so the plan is
  // fatal no matter where the rack happens to sit in the domain -- buddy
  // assignment follows racks, not the halo geometry.
  {
    const std::uint64_t centre = node_at(rows / 2, cols / 2);
    const std::uint64_t rack = centre / gs;
    ChaosSchedule wipe{"rack-wipe", {}, 0};
    for (std::uint64_t member = 0; member < gs; ++member) {
      wipe.failures.push_back({c, rack * gs + member});
    }
    plans.push_back(std::move(wipe));
  }
  // A rack whose members straddle a grid-row boundary (exists whenever the
  // group size does not divide the row length): wiping it kills workers
  // that never exchange a halo, yet is just as fatal.
  if (cols % gs != 0) {
    for (std::uint64_t rack = 0; rack < shape.nodes / gs; ++rack) {
      if ((rack * gs) / cols != (rack * gs + gs - 1) / cols) {
        ChaosSchedule wipe{"rack-straddles-rows", {}, 0};
        for (std::uint64_t member = 0; member < gs; ++member) {
          wipe.failures.push_back({c, rack * gs + member});
        }
        plans.push_back(std::move(wipe));
        break;
      }
    }
  }
  // Simultaneous loss of a full grid row: spans cols/gs racks, so whenever
  // a whole rack fits inside the row the plan is fatal -- the correlated,
  // topology-aligned pattern of a real rack/PDU event.
  {
    ChaosSchedule row{"grid-row-simultaneous", {}, 0};
    for (std::uint64_t col = 0; col < cols; ++col) {
      row.failures.push_back({c, node_at(rows / 2, col)});
    }
    plans.push_back(std::move(row));
  }
  // Simultaneous loss of a full grid column: consecutive victims are a full
  // row length apart, so with cols >= gs every rack loses at most one
  // member and the rollback must recover all of them at once.
  if (rows > 1) {
    ChaosSchedule column{"grid-column-simultaneous", {}, 0};
    for (std::uint64_t r = 0; r < rows; ++r) {
      column.failures.push_back({c, node_at(r, cols / 2)});
    }
    plans.push_back(std::move(column));
    // The same column lost one node per step: every hit rolls back while
    // the previous victims' refills are still pending -- survivable (one
    // member per rack), but it drives the refill clock through repeated
    // rollbacks.
    ChaosSchedule staggered{"grid-column-staggered", {}, 0};
    for (std::uint64_t r = 0; r < rows; ++r) {
      staggered.failures.push_back({step(c + r), node_at(r, cols / 2)});
    }
    plans.push_back(std::move(staggered));
    // Two halo neighbours across a row boundary (ids a full row apart).
    plans.push_back({"halo-neighbours-vertical",
                     {{c, node_at(0, cols / 2)}, {c, node_at(1, cols / 2)}},
                     0});
  }
  // Two same-step losses inside one grid row but in different racks.
  if (cols > gs) {
    plans.push_back(
        {"row-span-two-racks", {{c, node_at(0, 0)}, {c, node_at(0, gs)}}, 0});
  }
  // One rack member lost, its rack-mate one step later: inside the
  // re-replication window whenever the delay exceeds the replay distance.
  {
    const std::uint64_t rack = node_at(rows / 2, cols / 2) / gs;
    plans.push_back({"rack-risk-window",
                     {{c, rack * gs}, {step(c + 1), rack * gs + 1}},
                     0});
  }

  for (auto& plan : plans) validate_schedule(plan, shape);
  return plans;
}

ChaosSchedule random_schedule(const ShadowConfig& config, std::uint64_t seed,
                              std::uint64_t max_failures) {
  if (max_failures == 0) {
    throw std::invalid_argument("random_schedule: max_failures must be > 0");
  }
  util::Xoshiro256ss rng(seed);
  const std::uint64_t total = config.total_steps;
  const std::uint64_t interval = config.checkpoint_interval;
  const std::uint64_t gs = config.topology == ckpt::Topology::Pairs ? 2 : 3;
  const std::uint64_t groups = config.nodes / gs;
  const std::uint64_t window = std::max<std::uint64_t>(
      config.rereplication_delay_steps, 1);

  const auto any_step = [&] { return 1 + rng.next_below(total - 1); };
  const auto any_node = [&] { return rng.next_below(config.nodes); };
  const auto group_member = [&](std::uint64_t group, std::uint64_t index) {
    return group * gs + index;
  };

  ChaosSchedule schedule;
  schedule.name = "random";
  schedule.seed = seed;
  const std::uint64_t count = 1 + rng.next_below(max_failures);
  while (schedule.failures.size() < count) {
    switch (rng.next_below(5)) {
      case 0: {  // uniform single
        schedule.failures.push_back({any_step(), any_node()});
        break;
      }
      case 1: {  // simultaneous hit inside one group
        const std::uint64_t group = rng.next_below(groups);
        const std::uint64_t first = rng.next_below(gs);
        const std::uint64_t second = (first + 1 + rng.next_below(gs - 1)) % gs;
        const std::uint64_t at = any_step();
        schedule.failures.push_back({at, group_member(group, first)});
        schedule.failures.push_back({at, group_member(group, second)});
        break;
      }
      case 2: {  // buddy hit around the re-replication window
        const std::uint64_t group = rng.next_below(groups);
        const std::uint64_t first = rng.next_below(gs);
        const std::uint64_t second = (first + 1 + rng.next_below(gs - 1)) % gs;
        const std::uint64_t at = any_step();
        const std::uint64_t gap = 1 + rng.next_below(window + 2);
        schedule.failures.push_back({at, group_member(group, first)});
        schedule.failures.push_back(
            {std::min(at + gap, total - 1), group_member(group, second)});
        break;
      }
      case 3: {  // just after a checkpoint boundary (exchange window)
        const std::uint64_t boundaries = std::max<std::uint64_t>(
            (total - 1) / interval, 1);
        const std::uint64_t boundary =
            interval * (1 + rng.next_below(boundaries));
        const std::uint64_t offset =
            rng.next_below(std::max<std::uint64_t>(config.staging_steps, 1) +
                           1);
        schedule.failures.push_back(
            {std::min(boundary + offset, total - 1), any_node()});
        break;
      }
      default: {  // repeat offender
        const std::uint64_t node = any_node();
        const std::uint64_t at = any_step();
        schedule.failures.push_back({at, node});
        schedule.failures.push_back(
            {std::min(at + 1 + rng.next_below(interval), total - 1), node});
        break;
      }
    }
  }
  schedule.failures.resize(count);  // motifs may overshoot by one
  validate_schedule(schedule, config);
  return schedule;
}

std::uint64_t spare_pool_delay_steps(const model::SparePoolSpec& spec,
                                     double platform_mtbf,
                                     double step_seconds) {
  if (!(step_seconds > 0.0) || !std::isfinite(step_seconds)) {
    throw std::invalid_argument(
        "spare_pool_delay_steps: step_seconds must be > 0");
  }
  const double wait = model::effective_downtime(spec, platform_mtbf);
  const double steps = std::ceil(wait / step_seconds);
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(steps), 1);
}

}  // namespace dckpt::chaos
