#include "chaos/shadow.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ckpt/ring.hpp"

namespace dckpt::chaos {

ShadowConfig::ShadowConfig(const runtime::RuntimeConfig& config)
    : nodes(config.nodes), topology(config.topology),
      checkpoint_interval(config.checkpoint_interval),
      total_steps(config.total_steps), staging_steps(config.staging_steps),
      rereplication_delay_steps(config.rereplication_delay_steps) {}

ShadowConfig::ShadowConfig(const runtime::GridConfig& config)
    : nodes(config.nodes()), topology(config.topology),
      checkpoint_interval(config.checkpoint_interval),
      total_steps(config.total_steps), staging_steps(0),
      rereplication_delay_steps(config.rereplication_delay_steps) {}

void ShadowConfig::validate() const {
  const auto gs =
      static_cast<std::uint64_t>(topology == ckpt::Topology::Pairs ? 2 : 3);
  if (nodes == 0 || nodes % gs != 0) {
    throw std::invalid_argument(
        "ShadowConfig: nodes must be a positive multiple of the group size");
  }
  if (checkpoint_interval == 0 || total_steps == 0) {
    throw std::invalid_argument("ShadowConfig: zero interval or steps");
  }
  if (staging_steps > checkpoint_interval) {
    throw std::invalid_argument(
        "ShadowConfig: staging_steps must be <= checkpoint_interval");
  }
}

ShadowPrediction predict_outcome(
    const ShadowConfig& config,
    std::span<const runtime::FailureInjection> failures) {
  config.validate();
  const ckpt::GroupAssignment groups(config.nodes, config.topology);
  const bool pairs = config.topology == ckpt::Topology::Pairs;

  // Same upfront range validation as the runtimes: a schedule naming a
  // nonexistent node or a step past the run is a caller bug, loudly.
  for (const auto& failure : failures) {
    if (failure.node >= config.nodes) {
      throw std::invalid_argument("FailureInjection: node out of range");
    }
    if (failure.step >= config.total_steps) {
      throw std::invalid_argument("FailureInjection: step out of range");
    }
  }

  std::vector<runtime::FailureInjection> pending(failures.begin(),
                                                 failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const runtime::FailureInjection& a,
                      const runtime::FailureInjection& b) {
                     return a.step < b.step;
                   });

  ShadowPrediction out;
  std::vector<bool> store_ok(config.nodes, false);  // meaningful post-commit
  bool has_commit = false;
  std::uint64_t committed_step = 0;
  bool staging = false;
  std::uint64_t snapshot_step = 0;
  std::uint64_t commit_at = 0;
  std::vector<std::uint64_t> refill;
  std::uint64_t refill_due = 0;

  const auto commit = [&] {
    committed_step = snapshot_step;
    has_commit = true;
    staging = false;
    ++out.checkpoints;
    std::fill(store_ok.begin(), store_ok.end(), true);
    refill.clear();
  };

  std::uint64_t step = 0;
  while (step < config.total_steps) {
    bool failed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step) {
        store_ok[it->node] = false;  // destroy() empties the buddy store
        ++out.failures;
        failed = true;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    if (failed) {
      staging = false;
      refill.clear();
      ++out.rollbacks;
      if (has_commit) {
        // rollback_all in worker-id order: a node restores from its local
        // copy when the topology keeps one, else from a group peer
        // (counted as a recovery); no peer left means fatal data loss.
        for (std::uint64_t node = 0; node < config.nodes; ++node) {
          const bool has_local = pairs && store_ok[node];
          if (has_local) continue;
          ++out.recoveries;
          const bool survivable =
              pairs ? store_ok[groups.preferred_buddy(node)]
                    : store_ok[groups.preferred_buddy(node)] ||
                          store_ok[groups.secondary_buddy(node)];
          if (!survivable) {
            out.fatal = true;
            out.fatal_step = step;
            out.unrecoverable_node = node;
            return out;
          }
        }
        std::vector<std::uint64_t> empty;
        for (std::uint64_t node = 0; node < config.nodes; ++node) {
          if (!store_ok[node]) empty.push_back(node);
        }
        if (config.rereplication_delay_steps == 0) {
          for (const std::uint64_t node : empty) store_ok[node] = true;
          out.rereplications += empty.size();
        } else {
          refill = std::move(empty);
          refill_due = config.rereplication_delay_steps;
        }
      }
      const std::uint64_t resume = has_commit ? committed_step : 0;
      out.replayed_steps += step - resume;
      step = resume;
      continue;
    }

    ++step;
    ++out.steps_executed;
    if (!refill.empty()) {
      ++out.risk_steps;
      if (--refill_due == 0) {
        for (const std::uint64_t node : refill) store_ok[node] = true;
        out.rereplications += refill.size();
        refill.clear();
      }
    }
    if (staging && step == commit_at) commit();
    if (step % config.checkpoint_interval == 0 && step < config.total_steps &&
        !staging) {
      snapshot_step = step;
      staging = true;
      commit_at = step + config.staging_steps;
      if (config.staging_steps == 0) commit();
    }
  }
  return out;
}

}  // namespace dckpt::chaos
