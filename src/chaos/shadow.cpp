#include "chaos/shadow.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "ckpt/ring.hpp"

namespace dckpt::chaos {

ShadowConfig::ShadowConfig(const runtime::RuntimeConfig& config)
    : nodes(config.nodes), topology(config.topology),
      checkpoint_interval(config.checkpoint_interval),
      total_steps(config.total_steps), staging_steps(config.staging_steps),
      rereplication_delay_steps(config.rereplication_delay_steps),
      transfer_retry(config.transfer_retry),
      verify_every(config.verify_every), keep_last(config.keep_last),
      dcp_stack_size(config.dcp_stack_size) {}

ShadowConfig::ShadowConfig(const runtime::GridConfig& config)
    : nodes(config.nodes()), topology(config.topology),
      checkpoint_interval(config.checkpoint_interval),
      total_steps(config.total_steps), staging_steps(0),
      rereplication_delay_steps(config.rereplication_delay_steps),
      transfer_retry(config.transfer_retry),
      verify_every(config.verify_every), keep_last(config.keep_last),
      dcp_stack_size(config.dcp_stack_size) {}

void ShadowConfig::validate() const {
  const auto gs =
      static_cast<std::uint64_t>(topology == ckpt::Topology::Pairs ? 2 : 3);
  if (nodes == 0 || nodes % gs != 0) {
    throw std::invalid_argument(
        "ShadowConfig: nodes must be a positive multiple of the group size");
  }
  if (checkpoint_interval == 0 || total_steps == 0) {
    throw std::invalid_argument("ShadowConfig: zero interval or steps");
  }
  if (staging_steps > checkpoint_interval) {
    throw std::invalid_argument(
        "ShadowConfig: staging_steps must be <= checkpoint_interval");
  }
  if (keep_last == 0) {
    throw std::invalid_argument("ShadowConfig: keep_last must be >= 1");
  }
  if (dcp_stack_size > 0 &&
      (staging_steps != 0 || verify_every != 0 || keep_last != 1)) {
    throw std::invalid_argument(
        "ShadowConfig: dcp requires staging_steps == 0, verify_every == 0 "
        "and keep_last == 1");
  }
  transfer_retry.validate();
}

namespace {

/// Abstract state of one committed image slot on one holder.
enum class Image : unsigned char { Absent, Clean, Corrupt };

}  // namespace

ShadowPrediction predict_outcome(
    const ShadowConfig& config,
    std::span<const runtime::FailureInjection> failures) {
  config.validate();
  const ckpt::GroupAssignment groups(config.nodes, config.topology);
  const bool pairs = config.topology == ckpt::Topology::Pairs;
  const std::uint64_t n = config.nodes;

  // Same upfront validation as the runtimes (shared helper, so error
  // behaviour cannot drift).
  runtime::validate_injections(failures, n, config.total_steps,
                               config.topology, config.verify_every,
                               config.dcp_stack_size);

  std::vector<runtime::FailureInjection> pending(failures.begin(),
                                                 failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const runtime::FailureInjection& a,
                      const runtime::FailureInjection& b) {
                     return a.step < b.step;
                   });

  ShadowPrediction out;
  // img[holder * n + owner]: only designated slots ever leave Absent.
  std::vector<Image> img(n * n, Image::Absent);
  const auto slot = [&](std::uint64_t holder,
                        std::uint64_t owner) -> Image& {
    return img[holder * n + owner];
  };
  // dcp chains hanging off the committed slots: chain[holder * n + owner]
  // is one entry per delta layer, 0 = intact, 1 = torn. Empty everywhere
  // when the axis is off. Mirrors BuddyStore's chains_: a full commit
  // (promote) clears every chain, destroy drops the holder's row, a refill
  // files the flattened tip (receiver chain cleared).
  std::vector<std::vector<char>> chain(n * n);
  const auto chain_at = [&](std::uint64_t holder,
                            std::uint64_t owner) -> std::vector<char>& {
    return chain[holder * n + owner];
  };
  const auto chain_torn = [](const std::vector<char>& layers) {
    return std::any_of(layers.begin(), layers.end(),
                       [](char torn) { return torn != 0; });
  };
  std::uint64_t dcp_layers = 0;
  std::vector<char> lost(n, 0);
  std::uint64_t lost_count = 0;
  bool has_commit = false;
  std::uint64_t committed_step = 0;
  bool staging = false;
  std::uint64_t snapshot_step = 0;
  std::uint64_t commit_at = 0;

  // Silent-error mirror of the RecoveryEngine: live per-node corruption
  // epochs, the epochs the in-flight staged set captured, the retained-set
  // metadata ladder (front = committed, seeded with the virtual initial
  // entry), and -- mirroring the stores' keep-last ring -- the aged image
  // matrices at depth >= 1 (history[d-1] is depth d; corrupt slots age into
  // history when a corrupted committed image survives to the next commit).
  std::vector<std::uint64_t> sdc_epoch(n, 0);
  std::vector<std::uint64_t> staging_epochs(n, 0);
  struct RetainedSet {
    std::uint64_t step = 0;
    std::vector<std::uint64_t> epochs;
    bool initial = false;
  };
  std::deque<RetainedSet> sets;
  sets.push_back(RetainedSet{0, std::vector<std::uint64_t>(n, 0), true});
  std::deque<std::vector<Image>> history;
  std::uint64_t periods_since_verify = 0;
  const auto reset_to_initial = [&] {
    std::fill(sdc_epoch.begin(), sdc_epoch.end(), std::uint64_t{0});
    sets.clear();
    sets.push_back(RetainedSet{0, std::vector<std::uint64_t>(n, 0), true});
    history.clear();
  };

  struct RefillEntry {
    std::uint64_t node = 0;
    std::uint64_t due = 0;
    std::uint64_t attempt = 1;
    bool abandoned = false;
  };
  std::vector<RefillEntry> refill;
  std::vector<std::vector<runtime::InjectionKind>> armed(n);

  const auto committed_count = [&](std::uint64_t holder) {
    std::size_t count = 0;
    for (std::uint64_t owner = 0; owner < n; ++owner) {
      if (slot(holder, owner) != Image::Absent) ++count;  // corrupt occupies
    }
    return count;
  };

  // The owners `holder` is designated to store: what it keeps for its
  // peers, plus (pairs) its own local copy -- restore_replicas order.
  const auto designated_owners = [&](std::uint64_t holder) {
    std::vector<std::uint64_t> owners = groups.stored_for(holder);
    if (pairs) owners.push_back(holder);
    return owners;
  };

  // One refill delivery attempt; mirrors RecoveryEngine::attempt_delivery.
  const auto attempt_delivery = [&](RefillEntry& entry) {
    auto& faults = armed[entry.node];
    if (!faults.empty()) {
      const runtime::InjectionKind fault = faults.front();
      faults.erase(faults.begin());
      if (fault == runtime::InjectionKind::TornTransfer) {
        ++out.corrupt_images_detected;  // receiver rejects the torn bundle
      }
      if (entry.attempt >= config.transfer_retry.max_attempts) {
        entry.abandoned = true;
        return false;
      }
      entry.due = config.transfer_retry.backoff_steps(entry.attempt);
      ++entry.attempt;
      ++out.transfer_retries;
      return false;
    }
    // Real delivery: for each designated owner, scan the owner's group in
    // id order (skipping the receiver) for a clean surviving source.
    std::size_t restored = 0;
    for (const std::uint64_t owner : designated_owners(entry.node)) {
      // Owners with no clean source anywhere stay absent (unavailable).
      for (const std::uint64_t member :
           groups.members(groups.group_of(owner))) {
        if (member == entry.node) continue;
        const Image source = slot(member, owner);
        if (source == Image::Absent) continue;
        if (source == Image::Corrupt) {
          ++out.corrupt_images_detected;
          continue;
        }
        const std::vector<char>& src_chain = chain_at(member, owner);
        if (chain_torn(src_chain)) {
          // flatten_rung rejects a torn layer; the refill path counts the
          // rung as a corrupt source and keeps scanning.
          ++out.corrupt_images_detected;
          continue;
        }
        // Refills deliver the flattened tip: the receiver's slot restarts
        // its dcp lineage from a full image.
        slot(entry.node, owner) = Image::Clean;
        chain_at(entry.node, owner).clear();
        if (!src_chain.empty()) {
          ++out.chain_replays;
          out.chain_replay_depth += src_chain.size();
        }
        ++restored;
        break;
      }
    }
    if (restored > 0) ++out.rereplications;
    return true;
  };

  const auto deliver_due = [&] {
    for (auto it = refill.begin(); it != refill.end();) {
      if (!it->abandoned && it->due == 0 && attempt_delivery(*it)) {
        it = refill.erase(it);
      } else {
        ++it;
      }
    }
  };

  const auto commit = [&] {
    committed_step = snapshot_step;
    has_commit = true;
    staging = false;
    ++out.checkpoints;
    ++out.full_commits;
    // promote() drops every chain on every store; the new full set
    // restarts all dcp lineages.
    for (auto& layers : chain) layers.clear();
    dcp_layers = 0;
    // The outgoing committed matrix ages to depth 1 (every store pushes its
    // ring on every commit, even when empty) and the new set joins the
    // metadata ladder with its snapshot-time epochs.
    if (config.keep_last > 1) {
      history.push_front(img);
      while (history.size() > config.keep_last - 1) history.pop_back();
    }
    sets.push_front(RetainedSet{snapshot_step, staging_epochs, false});
    while (sets.size() > config.keep_last) sets.pop_back();
    // Promotion replaces every committed set: designated slots clean.
    for (std::uint64_t owner = 0; owner < n; ++owner) {
      if (pairs) {
        slot(owner, owner) = Image::Clean;
        slot(groups.preferred_buddy(owner), owner) = Image::Clean;
      } else {
        slot(groups.preferred_buddy(owner), owner) = Image::Clean;
        slot(groups.secondary_buddy(owner), owner) = Image::Clean;
      }
    }
    refill.clear();
    std::fill(lost.begin(), lost.end(), char{0});
    lost_count = 0;
  };

  // Prediction scoreboard, recomputed independently of the runtimes'
  // score_predictions: each alarm (step s, node v, window w) greedily
  // consumes the earliest unconsumed loss of node v with s <= step <= s + w;
  // every unconsumed loss is a missed failure. Static upfront computation is
  // valid because injections fire exactly once even across replays.
  {
    std::vector<runtime::FailureInjection> losses;
    std::vector<runtime::FailureInjection> alarms;
    for (const auto& failure : pending) {
      if (failure.kind == runtime::InjectionKind::NodeLoss) {
        losses.push_back(failure);
      } else if (failure.kind == runtime::InjectionKind::Alarm) {
        alarms.push_back(failure);
      }
    }
    std::vector<char> consumed(losses.size(), 0);
    for (const auto& alarm : alarms) {
      for (std::size_t i = 0; i < losses.size(); ++i) {
        if (consumed[i] || losses[i].node != alarm.node) continue;
        if (losses[i].step < alarm.step ||
            losses[i].step > alarm.step + alarm.window) {
          continue;
        }
        consumed[i] = 1;
        ++out.true_predictions;
        break;
      }
    }
    for (const char hit : consumed) {
      if (!hit) ++out.missed_failures;
    }
  }

  std::uint64_t step = 0;
  while (step < config.total_steps) {
    // Fault-predictor alarms fire at the top of the loop, before the
    // step's other injections, exactly as in both runtimes: the proactive
    // checkpoint they trigger commits ahead of the loss it predicts. The
    // skip rule (nothing committed yet at step 0, or a commit already
    // landed at exactly this step) and the supersession of any in-flight
    // staged exchange mirror Coordinator::proactive_checkpoint.
    {
      std::uint64_t fired = 0;
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->step == step && it->kind == runtime::InjectionKind::Alarm) {
          ++fired;
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
      if (fired > 0) {
        out.alarms_raised += fired;
        if (step != 0 && !(has_commit && committed_step == step)) {
          snapshot_step = step;
          staging_epochs = sdc_epoch;
          commit();
          ++out.proactive_ckpts;
        }
      }
    }

    // Fire this step's injections in the runtime's kind order.
    bool failed = false;
    const auto fire_kind = [&](runtime::InjectionKind kind, auto&& act) {
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->step == step && it->kind == kind) {
          act(*it);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    };
    fire_kind(runtime::InjectionKind::SilentError,
              [&](const runtime::FailureInjection& f) {
                ++sdc_epoch[f.node];
                ++out.sdc_injected;
              });
    fire_kind(runtime::InjectionKind::CorruptReplica,
              [&](const runtime::FailureInjection& f) {
                Image& target = slot(f.node, f.owner);
                if (target != Image::Absent) target = Image::Corrupt;
              });
    fire_kind(runtime::InjectionKind::TornDelta,
              [&](const runtime::FailureInjection& f) {
                // Tears the layer at 1-based depth f.window on the victim's
                // first ladder rung; no-op when the chain is shorter.
                const std::uint64_t holder =
                    pairs ? f.node : groups.preferred_buddy(f.node);
                std::vector<char>& layers = chain_at(holder, f.node);
                if (f.window > 0 && layers.size() >= f.window) {
                  layers[f.window - 1] = 1;
                }
              });
    fire_kind(runtime::InjectionKind::TornTransfer,
              [&](const runtime::FailureInjection& f) {
                armed[f.node].push_back(runtime::InjectionKind::TornTransfer);
              });
    fire_kind(runtime::InjectionKind::FailTransfer,
              [&](const runtime::FailureInjection& f) {
                armed[f.node].push_back(runtime::InjectionKind::FailTransfer);
              });
    fire_kind(runtime::InjectionKind::NodeLoss,
              [&](const runtime::FailureInjection& f) {
                // destroy() replaces the victim's buddy store wholesale --
                // every retained depth goes with it.
                for (std::uint64_t owner = 0; owner < n; ++owner) {
                  slot(f.node, owner) = Image::Absent;
                  chain_at(f.node, owner).clear();
                  for (auto& depth : history) {
                    depth[f.node * n + owner] = Image::Absent;
                  }
                }
                ++out.failures;
                failed = true;
              });

    if (failed) {
      staging = false;
      ++out.rollbacks;
      if (has_commit) {
        refill.clear();
        // Rollback in node-id order: each node walks its replica ladder
        // (pairs: local then preferred buddy; triples: preferred then
        // secondary), skipping corrupt images. Exhausted = lost, degraded.
        for (std::uint64_t node = 0; node < n; ++node) {
          if (lost[node]) {
            sdc_epoch[node] = 0;  // blank-restarts again, no ladder
            continue;
          }
          const std::uint64_t first =
              pairs ? node : groups.preferred_buddy(node);
          const std::uint64_t second = pairs
                                           ? groups.preferred_buddy(node)
                                           : groups.secondary_buddy(node);
          bool recovered = false;
          std::size_t corrupt_skipped = 0;
          std::size_t torn_skipped = 0;
          std::size_t replayed_layers = 0;
          std::uint64_t source = 0;
          for (const std::uint64_t holder : {first, second}) {
            const Image candidate = slot(holder, node);
            if (candidate == Image::Absent) continue;
            if (candidate == Image::Corrupt) {
              // A corrupt base fails the oldest layer's base_hash before
              // any torn check, so the rung counts exactly one skip.
              ++corrupt_skipped;
              continue;
            }
            const std::vector<char>& layers = chain_at(holder, node);
            if (chain_torn(layers)) {
              ++corrupt_skipped;
              ++torn_skipped;
              continue;
            }
            recovered = true;
            source = holder;
            replayed_layers = layers.size();
            break;
          }
          out.corrupt_images_detected += corrupt_skipped;
          out.torn_chain_failovers += torn_skipped;
          if (recovered) {
            if (source != node) {
              ++out.recoveries;
              ++out.hash_verified_recoveries;
            }
            if (corrupt_skipped > 0) ++out.failovers;
            if (replayed_layers > 0) {
              ++out.chain_replays;
              out.chain_replay_depth += replayed_layers;
            }
            // The live epoch snaps back to what the committed set captured.
            sdc_epoch[node] = sets.front().epochs[node];
            continue;
          }
          ++out.recoveries;
          lost[node] = 1;
          ++lost_count;
          if (!out.fatal) {
            out.fatal = true;
            out.fatal_step = step;
            out.unrecoverable_node = node;
          }
          sdc_epoch[node] = 0;  // fresh initial condition, no corruption
        }
        for (std::uint64_t node = 0; node < n; ++node) {
          if (committed_count(node) == 0) {
            refill.push_back(RefillEntry{
                node, config.rereplication_delay_steps, 1, false});
          }
        }
        if (config.rereplication_delay_steps == 0) deliver_due();
      } else {
        // Pre-first-commit rollback: everything re-initializes, so latent
        // corruption clears with it.
        reset_to_initial();
      }
      const std::uint64_t resume = has_commit ? committed_step : 0;
      out.replayed_steps += step - resume;
      step = resume;
      continue;
    }

    ++step;
    ++out.steps_executed;
    if (!refill.empty()) {
      ++out.risk_steps;
      for (RefillEntry& entry : refill) {
        if (!entry.abandoned && entry.due > 0) --entry.due;
      }
      deliver_due();
    }
    if (lost_count > 0) ++out.degraded_steps;
    if (staging && step == commit_at) commit();
    const bool boundary = step % config.checkpoint_interval == 0 &&
                          step < config.total_steps;
    if (config.verify_every > 0) {
      // Mirror of RecoveryEngine::verify_checkpoints and the coordinators'
      // cadence: every verify_every periods, after the period's commit and
      // before the next set stages, plus a final audit at step == total.
      if (boundary) ++periods_since_verify;
      const bool due =
          (boundary && periods_since_verify >= config.verify_every) ||
          step == config.total_steps;
      if (due) {
        periods_since_verify = 0;
        ++out.verifications_run;
        const bool dirty = std::any_of(
            sdc_epoch.begin(), sdc_epoch.end(),
            [](std::uint64_t e) { return e != 0; });
        if (dirty) {
          ++out.sdc_detected;
          // Ladder walk: shallowest retained set captured before every
          // live epoch and restorable by every node (a Clean ladder image
          // at that depth). The virtual initial entry is always usable.
          const auto matrix_at =
              [&](std::size_t depth) -> const std::vector<Image>& {
            return depth == 0 ? img : history[depth - 1];
          };
          const auto usable = [&](std::size_t depth) {
            const RetainedSet& set = sets[depth];
            if (set.initial) return true;
            if (std::any_of(set.epochs.begin(), set.epochs.end(),
                            [](std::uint64_t e) { return e != 0; })) {
              return false;
            }
            const std::vector<Image>& m = matrix_at(depth);
            for (std::uint64_t node = 0; node < n; ++node) {
              const std::uint64_t first =
                  pairs ? node : groups.preferred_buddy(node);
              const std::uint64_t second =
                  pairs ? groups.preferred_buddy(node)
                        : groups.secondary_buddy(node);
              if (m[first * n + node] != Image::Clean &&
                  m[second * n + node] != Image::Clean) {
                return false;
              }
            }
            return true;
          };
          std::size_t depth = 0;
          bool found = false;
          for (; depth < sets.size(); ++depth) {
            if (usable(depth)) {
              found = true;
              break;
            }
          }
          if (!found) {
            // Detected but unrecoverable: accept the corruption as the new
            // truth (fatal fields, run continues) -- fatal-accept.
            if (!out.fatal) {
              std::uint64_t culprit = 0;
              for (std::uint64_t node = 0; node < n; ++node) {
                if (sdc_epoch[node] != 0) {
                  culprit = node;
                  break;
                }
              }
              out.fatal = true;
              out.fatal_step = step;
              out.unrecoverable_node = culprit;
            }
            std::fill(sdc_epoch.begin(), sdc_epoch.end(), std::uint64_t{0});
          } else {
            ++out.rollbacks;
            out.rollback_depth += depth;
            staging = false;
            refill.clear();
            for (std::size_t i = 0; i < depth; ++i) {
              // drop_newest: the next-oldest matrix becomes committed.
              if (history.empty()) {
                std::fill(img.begin(), img.end(), Image::Absent);
              } else {
                img = std::move(history.front());
                history.pop_front();
              }
              sets.pop_front();
            }
            if (sets.front().initial) {
              reset_to_initial();
              std::fill(img.begin(), img.end(), Image::Absent);
              std::fill(lost.begin(), lost.end(), char{0});
              lost_count = 0;
              has_commit = false;
              committed_step = 0;
              out.replayed_steps += step;
              step = 0;
              continue;
            }
            // Install the selected set: restores are hash-verified time
            // travel, not peer recovery -- only rollback counters moved.
            for (std::uint64_t node = 0; node < n; ++node) {
              sdc_epoch[node] = sets.front().epochs[node];
            }
            committed_step = sets.front().step;
            std::fill(lost.begin(), lost.end(), char{0});
            lost_count = 0;
            for (std::uint64_t node = 0; node < n; ++node) {
              if (committed_count(node) == 0) {
                refill.push_back(RefillEntry{
                    node, config.rereplication_delay_steps, 1, false});
              }
            }
            if (config.rereplication_delay_steps == 0 && !refill.empty()) {
              deliver_due();
            }
            out.replayed_steps += step - committed_step;
            step = committed_step;
            continue;
          }
        }
      }
    }
    if (boundary && !staging) {
      // dcp cadence, same predicate as both coordinators: deltas between
      // full exchanges while the chain has room and the platform is whole
      // (no lost node, no pending refill -- only a full commit re-creates
      // every replica and closes the risk window).
      const bool delta_commit =
          config.dcp_stack_size > 0 && has_commit &&
          dcp_layers + 1 < config.dcp_stack_size && lost_count == 0 &&
          refill.empty();
      if (delta_commit) {
        committed_step = step;
        ++out.checkpoints;
        ++out.delta_commits;
        ++dcp_layers;
        // append_delta files the layer on every designated holder that
        // still has a committed base (even a corrupt one -- the store
        // cannot know); a destroyed store has nothing to chain on.
        for (std::uint64_t owner = 0; owner < n; ++owner) {
          const std::uint64_t h1 =
              pairs ? owner : groups.preferred_buddy(owner);
          const std::uint64_t h2 = pairs ? groups.preferred_buddy(owner)
                                         : groups.secondary_buddy(owner);
          for (const std::uint64_t holder : {h1, h2}) {
            if (slot(holder, owner) != Image::Absent) {
              chain_at(holder, owner).push_back(0);
            }
          }
        }
      } else {
        snapshot_step = step;
        staging = true;
        staging_epochs = sdc_epoch;
        commit_at = step + config.staging_steps;
        if (config.staging_steps == 0) commit();
      }
    }
  }
  return out;
}

}  // namespace dckpt::chaos
