#include "chaos/shadow.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ckpt/ring.hpp"

namespace dckpt::chaos {

ShadowPrediction predict_outcome(
    const runtime::RuntimeConfig& config,
    std::span<const runtime::FailureInjection> failures) {
  config.validate();
  const ckpt::GroupAssignment groups(config.nodes, config.topology);
  const bool pairs = config.topology == ckpt::Topology::Pairs;

  std::vector<runtime::FailureInjection> pending(failures.begin(),
                                                 failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const runtime::FailureInjection& a,
                      const runtime::FailureInjection& b) {
                     return a.step < b.step;
                   });

  ShadowPrediction out;
  std::vector<bool> store_ok(config.nodes, false);  // meaningful post-commit
  bool has_commit = false;
  std::uint64_t committed_step = 0;
  bool staging = false;
  std::uint64_t snapshot_step = 0;
  std::uint64_t commit_at = 0;
  std::vector<std::uint64_t> refill;
  std::uint64_t refill_due = 0;

  const auto commit = [&] {
    committed_step = snapshot_step;
    has_commit = true;
    staging = false;
    ++out.checkpoints;
    std::fill(store_ok.begin(), store_ok.end(), true);
    refill.clear();
  };

  std::uint64_t step = 0;
  while (step < config.total_steps) {
    bool failed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step) {
        if (it->node >= config.nodes) {
          throw std::invalid_argument("FailureInjection: node out of range");
        }
        store_ok[it->node] = false;  // destroy() empties the buddy store
        ++out.failures;
        failed = true;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    if (failed) {
      staging = false;
      refill.clear();
      ++out.rollbacks;
      if (has_commit) {
        // rollback_all in worker-id order: a node restores from its local
        // copy when the topology keeps one, else from a group peer
        // (counted as a recovery); no peer left means fatal data loss.
        for (std::uint64_t node = 0; node < config.nodes; ++node) {
          const bool has_local = pairs && store_ok[node];
          if (has_local) continue;
          ++out.recoveries;
          const bool survivable =
              pairs ? store_ok[groups.preferred_buddy(node)]
                    : store_ok[groups.preferred_buddy(node)] ||
                          store_ok[groups.secondary_buddy(node)];
          if (!survivable) {
            out.fatal = true;
            out.fatal_step = step;
            out.unrecoverable_node = node;
            return out;
          }
        }
        std::vector<std::uint64_t> empty;
        for (std::uint64_t node = 0; node < config.nodes; ++node) {
          if (!store_ok[node]) empty.push_back(node);
        }
        if (config.rereplication_delay_steps == 0) {
          for (const std::uint64_t node : empty) store_ok[node] = true;
          out.rereplications += empty.size();
        } else {
          refill = std::move(empty);
          refill_due = config.rereplication_delay_steps;
        }
      }
      const std::uint64_t resume = has_commit ? committed_step : 0;
      out.replayed_steps += step - resume;
      step = resume;
      continue;
    }

    ++step;
    ++out.steps_executed;
    if (!refill.empty()) {
      ++out.risk_steps;
      if (--refill_due == 0) {
        for (const std::uint64_t node : refill) store_ok[node] = true;
        out.rereplications += refill.size();
        refill.clear();
      }
    }
    if (staging && step == commit_at) commit();
    if (step % config.checkpoint_interval == 0 && step < config.total_steps &&
        !staging) {
      snapshot_step = step;
      staging = true;
      commit_at = step + config.staging_steps;
      if (config.staging_steps == 0) commit();
    }
  }
  return out;
}

}  // namespace dckpt::chaos
