// Umbrella header for the chaos campaign engine.
#pragma once

#include "chaos/campaign.hpp"  // IWYU pragma: export
#include "chaos/export.hpp"    // IWYU pragma: export
#include "chaos/schedule.hpp"  // IWYU pragma: export
#include "chaos/shadow.hpp"    // IWYU pragma: export
