#include "chaos/export.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "sim/export.hpp"

namespace dckpt::chaos {

namespace {

std::string hex64(std::uint64_t value) {
  char digits[16];
  std::string text = "0x";
  const auto [ptr, ec] = std::to_chars(digits, digits + 16, value, 16);
  (void)ec;
  text.append(16 - static_cast<std::size_t>(ptr - digits), '0');
  text.append(digits, ptr);
  return text;
}

}  // namespace

util::JsonValue to_json(const ShadowPrediction& predicted) {
  auto v = util::JsonValue::object();
  v.set("fatal", predicted.fatal);
  if (predicted.fatal) {
    v.set("fatal_step", predicted.fatal_step);
    v.set("unrecoverable_node", predicted.unrecoverable_node);
  }
  v.set("steps_executed", predicted.steps_executed);
  v.set("replayed_steps", predicted.replayed_steps);
  v.set("checkpoints", predicted.checkpoints);
  v.set("failures", predicted.failures);
  v.set("rollbacks", predicted.rollbacks);
  v.set("recoveries", predicted.recoveries);
  v.set("rereplications", predicted.rereplications);
  v.set("risk_steps", predicted.risk_steps);
  // Appended (PR 5): corruption/retry/degraded accounting.
  v.set("failovers", predicted.failovers);
  v.set("transfer_retries", predicted.transfer_retries);
  v.set("corrupt_images_detected", predicted.corrupt_images_detected);
  v.set("degraded_steps", predicted.degraded_steps);
  v.set("hash_verified_recoveries", predicted.hash_verified_recoveries);
  // Appended (PR 7): silent-error accounting.
  v.set("sdc_injected", predicted.sdc_injected);
  v.set("verifications_run", predicted.verifications_run);
  v.set("sdc_detected", predicted.sdc_detected);
  v.set("rollback_depth", predicted.rollback_depth);
  // Appended (PR 8): fault-prediction accounting.
  v.set("alarms_raised", predicted.alarms_raised);
  v.set("proactive_ckpts", predicted.proactive_ckpts);
  v.set("true_predictions", predicted.true_predictions);
  v.set("missed_failures", predicted.missed_failures);
  // Appended (PR 9): differential-checkpoint accounting.
  v.set("delta_commits", predicted.delta_commits);
  v.set("full_commits", predicted.full_commits);
  v.set("chain_replays", predicted.chain_replays);
  v.set("chain_replay_depth", predicted.chain_replay_depth);
  v.set("torn_chain_failovers", predicted.torn_chain_failovers);
  return v;
}

util::JsonValue to_json(const runtime::RunReport& report) {
  auto v = util::JsonValue::object();
  v.set("steps_executed", report.steps_executed);
  v.set("replayed_steps", report.replayed_steps);
  v.set("checkpoints", report.checkpoints);
  v.set("failures", report.failures);
  v.set("rollbacks", report.rollbacks);
  v.set("bytes_replicated", report.bytes_replicated);
  v.set("cow_copies", report.cow_copies);
  v.set("recoveries", report.recoveries);
  v.set("rereplications", report.rereplications);
  v.set("risk_steps", report.risk_steps);
  v.set("fatal", report.fatal);
  if (report.fatal) {
    v.set("fatal_reason", report.fatal_reason);
  } else {
    v.set("final_hash", hex64(report.final_hash));
  }
  // Appended (PR 5): corruption/retry/degraded accounting. Fatal runs now
  // complete, so they carry fatal_node/fatal_step and a final hash too.
  v.set("failovers", report.failovers);
  v.set("transfer_retries", report.transfer_retries);
  v.set("corrupt_images_detected", report.corrupt_images_detected);
  v.set("degraded_steps", report.degraded_steps);
  v.set("hash_verified_recoveries", report.hash_verified_recoveries);
  v.set("degraded", report.degraded);
  if (report.fatal) {
    v.set("fatal_node", report.fatal_node);
    v.set("fatal_step", report.fatal_step);
    v.set("final_hash", hex64(report.final_hash));
  }
  // Appended (PR 7): silent-error accounting.
  v.set("sdc_injected", report.sdc_injected);
  v.set("verifications_run", report.verifications_run);
  v.set("sdc_detected", report.sdc_detected);
  v.set("rollback_depth", report.rollback_depth);
  // Appended (PR 8): fault-prediction accounting.
  v.set("alarms_raised", report.alarms_raised);
  v.set("proactive_ckpts", report.proactive_ckpts);
  v.set("true_predictions", report.true_predictions);
  v.set("missed_failures", report.missed_failures);
  // Appended (PR 9): differential-checkpoint accounting.
  v.set("delta_commits", report.delta_commits);
  v.set("full_commits", report.full_commits);
  v.set("chain_replays", report.chain_replays);
  v.set("chain_replay_depth", report.chain_replay_depth);
  v.set("torn_chain_failovers", report.torn_chain_failovers);
  return v;
}

util::JsonValue to_json(const ChaosRunResult& run) {
  auto v = util::JsonValue::object();
  v.set("record", "chaos_run");
  v.set("index", run.index);
  v.set("name", run.schedule.name);
  v.set("seed", run.schedule.seed);
  v.set("schedule", run.schedule.spec());
  v.set("outcome", outcome_name(run.outcome));
  if (!run.detail.empty()) v.set("detail", run.detail);
  v.set("repro", run.repro);
  v.set("predicted", to_json(run.predicted));
  v.set("report", to_json(run.report));
  v.set("target", run.target);  // appended: keep older consumers working
  return v;
}

util::JsonValue to_json(const ChaosCampaignSummary& summary) {
  auto v = util::JsonValue::object();
  v.set("record", "chaos_campaign");
  v.set("runs", static_cast<std::uint64_t>(summary.runs.size()));
  v.set("survived", summary.survived);
  v.set("fatal_detected", summary.fatal_detected);
  v.set("violated", summary.violated);
  v.set("reference_hash", hex64(summary.reference_hash));
  v.set("target", summary.target);  // appended: keep older consumers working
  if (!summary.grid_geometry.empty()) {
    v.set("grid", summary.grid_geometry);
    v.set("block", summary.block_geometry);
  }
  return v;
}

void write_campaign_jsonl(std::ostream& out,
                          const ChaosCampaignSummary& summary) {
  sim::write_jsonl(out, to_json(summary));
  for (const ChaosRunResult& run : summary.runs) {
    sim::write_jsonl(out, to_json(run));
  }
}

void save_campaign_jsonl(const std::string& path,
                         const ChaosCampaignSummary& summary) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("chaos export: cannot open '" + path +
                             "' for writing");
  }
  write_campaign_jsonl(out, summary);
}

}  // namespace dckpt::chaos
