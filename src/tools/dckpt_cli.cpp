// dckpt -- unified command-line frontend for the double/triple
// checkpointing toolkit.
//
//   dckpt plan       protocol recommendation from machine specs
//   dckpt simulate   Monte-Carlo campaign for one configuration
//   dckpt sweep      Monte-Carlo campaigns over a (protocol, M, phi) grid
//   dckpt optimize   empirical period optimization (simulation-driven)
//   dckpt trace-gen  synthesize a failure trace file
//   dckpt trace-fit  analyze a failure trace, fit exponential/Weibull
//   dckpt hierarchy  two-level (buddy + stable storage) planning
//   dckpt spares     spare-pool sizing and its effect on downtime/waste
//   dckpt chaos      adversarial failure campaigns against the runtime
//   dckpt serve      long-running evaluation service (stdin or TCP)
//
// Every subcommand accepts --help.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/chaos_api.hpp"
#include "model/model_api.hpp"
#include "net/net_api.hpp"
#include "sim/sim_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace dckpt;

void add_platform_options(util::CliParser& cli) {
  cli.add_option("scenario", "base", "base | exa hardware constants");
  cli.add_option("mtbf", "25200", "platform MTBF, seconds");
  cli.add_option("phi-ratio", "0.25", "overhead fraction phi/R in [0,1]");
  cli.add_option("nodes", "0", "override node count (0 = scenario default)");
}

model::Parameters platform_from(const util::CliParser& cli) {
  const auto scenario = cli.get("scenario") == "exa" ? model::exa_scenario()
                                                     : model::base_scenario();
  auto params = scenario.at_phi_ratio(cli.get_double("phi-ratio"))
                    .with_mtbf(cli.get_double("mtbf"));
  if (const auto nodes = cli.get_int("nodes"); nodes > 0) {
    params.nodes = static_cast<std::uint64_t>(nodes);
  }
  params.validate();
  return params;
}

void add_sdc_options(util::CliParser& cli) {
  cli.add_option("sdc-rate", "0",
                 "platform silent-error rate, strikes/s (0 = off)");
  cli.add_option("verify-cost", "0", "blocking verification time V, seconds");
  cli.add_option("verify-every", "0",
                 "periods between verifications k (0 = verification off)");
  cli.add_option("keep-last", "1", "retained committed checkpoint sets l");
}

void apply_sdc_options(const util::CliParser& cli, sim::SimConfig& config) {
  config.sdc_rate = cli.get_double("sdc-rate");
  config.verify_cost = cli.get_double("verify-cost");
  config.verify_every = static_cast<std::uint64_t>(cli.get_int("verify-every"));
  config.keep_last = static_cast<std::uint64_t>(cli.get_int("keep-last"));
}

void add_predictor_options(util::CliParser& cli) {
  cli.add_option("pred-recall", "0",
                 "fault-predictor recall r in [0,1] (0 = predictor off)");
  cli.add_option("pred-precision", "1",
                 "fault-predictor precision p in (0,1]");
  cli.add_option("pred-window", "0",
                 "prediction-window width w, seconds (0 = just-in-time)");
  cli.add_option("proactive-cost", "0",
                 "proactive checkpoint cost C_p, seconds");
}

void apply_predictor_options(const util::CliParser& cli,
                             sim::SimConfig& config) {
  config.pred_recall = cli.get_double("pred-recall");
  config.pred_precision = cli.get_double("pred-precision");
  config.pred_window = cli.get_double("pred-window");
  config.proactive_cost = cli.get_double("proactive-cost");
}

model::PredictorSpec predictor_from(const sim::SimConfig& config) {
  return model::PredictorSpec{config.pred_precision, config.pred_recall,
                              config.pred_window, config.proactive_cost};
}

void add_dcp_options(util::CliParser& cli) {
  cli.add_option("dirty-fraction", "1",
                 "per-page dirty fraction per period d in [0,1]");
  cli.add_option("dcp-block", "4096", "differential block size B, bytes");
  cli.add_option("dcp-stack", "0",
                 "commits per full exchange K (0 = every commit full)");
  cli.add_option("hash-overhead", "0",
                 "content-hash scan cost h, fraction of a full image");
}

model::DcpSpec dcp_from(const util::CliParser& cli) {
  model::DcpSpec dcp;
  dcp.dirty_fraction = cli.get_double("dirty-fraction");
  dcp.block_size = static_cast<std::size_t>(cli.get_int("dcp-block"));
  dcp.stack_size = static_cast<std::uint64_t>(cli.get_int("dcp-stack"));
  dcp.hash_overhead = cli.get_double("hash-overhead");
  return dcp;
}

/// Splits a comma-separated list ("60,3600,86400") into doubles.
std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (!item.empty()) values.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

// ---------------------------------------------------------------- plan

int cmd_plan(int argc, const char* const* argv) {
  util::CliParser cli("dckpt plan", "rank protocols for a platform");
  add_platform_options(cli);
  cli.add_option("mission-hours", "24", "mission length for risk/restarts");
  if (!cli.parse(argc, argv)) return 0;
  const auto params = platform_from(cli);
  const double mission = cli.get_double("mission-hours") * 3600.0;

  std::printf("Platform: %s\n\n", params.describe().c_str());
  util::TextTable table({"Protocol", "P*", "Waste", "Risk window",
                         "P(success)", "Eff. waste (restarts)"});
  for (auto protocol : model::kAllProtocols) {
    const auto opt = model::optimal_period_closed_form(protocol, params);
    const auto restart =
        model::evaluate_with_restarts(protocol, params, mission);
    table.add_row({std::string(model::protocol_name(protocol)),
                   util::format_duration(opt.period),
                   opt.feasible ? util::format_percent(opt.waste, 2)
                                : "stalled",
                   util::format_duration(model::risk_window(protocol, params)),
                   util::format_fixed(
                       model::success_probability(protocol, params, mission),
                       6),
                   restart.feasible
                       ? util::format_percent(restart.effective_waste, 2)
                       : "stalled"});
  }
  std::printf("%s\n", table.render().c_str());
  const std::vector<model::Protocol> all(model::kAllProtocols.begin(),
                                         model::kAllProtocols.end());
  std::printf("recommended (effective waste): %s\n",
              std::string(model::protocol_name(
                  model::best_protocol_by_effective_waste(all, params,
                                                          mission)))
                  .c_str());
  return 0;
}

// ------------------------------------------------------------ simulate

int cmd_simulate(int argc, const char* const* argv) {
  util::CliParser cli("dckpt simulate", "Monte-Carlo campaign");
  add_platform_options(cli);
  cli.add_option("protocol", "triple", "protocol to simulate");
  cli.add_option("tbase", "100000", "application work, seconds");
  cli.add_option("trials", "500", "Monte-Carlo trials");
  cli.add_option("seed", "42", "master seed");
  cli.add_option("period", "0", "checkpoint period (0 = model optimum)");
  cli.add_option("weibull-shape", "0",
                 "use per-node Weibull streams with this shape (0 = exp)");
  cli.add_option("engine", "batched",
                 "batched | scalar trial engine (bit-identical results)");
  add_sdc_options(cli);
  add_predictor_options(cli);
  add_dcp_options(cli);
  cli.add_option("metrics-out", "",
                 "write a JSONL metrics record (with per-trial histograms)");
  cli.add_option("trace-out", "",
                 "write the JSONL event log of one traced execution");
  cli.add_option("metrics-bins", "64", "histogram bins for --metrics-out");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  config.params = platform_from(cli);
  if (config.params.nodes > 100000) {
    // Keep per-node bookkeeping tractable for the default CLI path.
    config.params.nodes = 99996;  // divisible by 2 and 3
    std::printf("note: node count capped at %llu for simulation\n",
                static_cast<unsigned long long>(config.params.nodes));
  }
  config.t_base = cli.get_double("tbase");
  config.stop_on_fatal = false;
  apply_sdc_options(cli, config);
  apply_predictor_options(cli, config);
  config.dcp = dcp_from(cli);
  const double period = cli.get_double("period");
  config.period =
      period > 0.0
          ? period
          : model::optimal_period_closed_form(config.protocol, config.params)
                .period;

  sim::MonteCarloOptions options;
  options.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (const auto engine = cli.get("engine"); engine == "scalar") {
    options.engine = sim::SimEngine::kScalar;
  } else if (engine != "batched") {
    throw std::invalid_argument("option --engine: invalid value '" + engine +
                                "' (expected batched or scalar)");
  }
  const double shape = cli.get_double("weibull-shape");
  if (shape > 0.0) {
    options.weibull =
        util::Weibull::from_mean(shape, config.params.node_mtbf());
  }
  if (!cli.get("metrics-out").empty()) {
    sim::MetricsSpec spec;
    spec.bins = static_cast<std::size_t>(cli.get_int("metrics-bins"));
    options.metrics = spec;
  }
  const auto mc = sim::run_monte_carlo(config, options);
  if (!cli.get("metrics-out").empty()) {
    sim::save_metrics_jsonl(cli.get("metrics-out"), mc);
    std::printf("[jsonl] wrote %s\n", cli.get("metrics-out").c_str());
  }
  if (!cli.get("trace-out").empty()) {
    // One extra execution with the event log enabled; uses trial 0's
    // stream so (under the default exponential law) the trace matches the
    // first Monte-Carlo trial.
    sim::Trace trace(true);
    sim::simulate_exponential(config, options.seed ^ 0x9e3779b97f4a7c15ULL,
                              &trace);
    sim::save_trace_jsonl(cli.get("trace-out"), trace);
    std::printf("[jsonl] wrote %s (%zu events)\n",
                cli.get("trace-out").c_str(), trace.events().size());
  }

  const double model_waste =
      model::waste(config.protocol, config.params, config.period);
  util::TextTable table({"metric", "value"});
  table.add_row({"period", util::format_duration(config.period)});
  table.add_row({"model waste", util::format_percent(model_waste, 2)});
  if (shape > 0.0) {
    // Clustered-failure model at the expected-makespan horizon, so the
    // row is directly comparable to the simulated Weibull waste.
    const model::WeibullFailures failures{
        shape, model::expected_makespan(config.protocol, config.params,
                                        config.period, config.t_base)};
    const double weibull_waste =
        model::waste(config.protocol, config.params, config.period, failures);
    table.add_row({"model waste (weibull k=" + util::format_fixed(shape, 2) +
                       ")",
                   util::format_percent(weibull_waste, 2)});
  }
  if (config.verify_every > 0) {
    const model::SdcSpec sdc{config.sdc_rate, config.verify_cost,
                             config.verify_every};
    table.add_row(
        {"model waste (verified ckpt)",
         util::format_percent(model::waste_with_sdc(config.protocol,
                                                    config.params,
                                                    config.period, sdc),
                              2)});
  }
  if (config.pred_recall > 0.0) {
    table.add_row({"model waste (predictor)",
                   util::format_percent(
                       model::waste_with_predictor(config.protocol,
                                                   config.params,
                                                   config.period,
                                                   predictor_from(config)),
                       2)});
  }
  if (config.dcp.enabled()) {
    table.add_row({"model waste (dcp)",
                   util::format_percent(
                       model::waste_with_dcp(config.protocol, config.params,
                                             config.period, config.dcp),
                       2)});
  }
  table.add_row({"sim waste",
                 util::format_percent(mc.waste.mean(), 2) + " +/- " +
                     util::format_percent(mc.waste.confidence_halfwidth(), 2)});
  table.add_row({"mean makespan", util::format_duration(mc.makespan.mean())});
  table.add_row({"mean failures/run",
                 util::format_fixed(mc.failures.mean(), 2)});
  if (config.verify_every > 0) {
    table.add_row({"mean strikes/run",
                   util::format_fixed(mc.sdc_injected.mean(), 2)});
    table.add_row({"mean detections/run",
                   util::format_fixed(mc.sdc_detected.mean(), 2)});
    table.add_row({"mean verify time/run",
                   util::format_duration(mc.verify_time.mean())});
    table.add_row({"mean rollback depth/run",
                   util::format_fixed(mc.rollback_depth.mean(), 2)});
  }
  if (config.pred_recall > 0.0) {
    table.add_row({"mean alarms/run",
                   util::format_fixed(mc.alarms_raised.mean(), 2)});
    table.add_row({"mean proactive ckpts/run",
                   util::format_fixed(mc.proactive_ckpts.mean(), 2)});
    table.add_row({"mean true predictions/run",
                   util::format_fixed(mc.true_predictions.mean(), 2)});
    table.add_row({"mean missed failures/run",
                   util::format_fixed(mc.missed_failures.mean(), 2)});
  }
  table.add_row({"survival rate",
                 util::format_fixed(mc.success.estimate(), 4)});
  table.add_row({"diverged trials", std::to_string(mc.diverged)});
  std::printf("%s", table.render().c_str());
  return 0;
}

// --------------------------------------------------------------- sweep

int cmd_sweep(int argc, const char* const* argv) {
  util::CliParser cli("dckpt sweep",
                      "Monte-Carlo campaigns over a (protocol, M, phi) grid");
  cli.add_option("scenario", "base", "base | exa hardware constants");
  cli.add_option("protocols", "all",
                 "comma list of protocol names, or 'all' / 'paper'");
  cli.add_option("mtbfs", "3600,14400,86400", "comma list of MTBFs, seconds");
  cli.add_option("phi-ratios", "0,0.25,0.5,1",
                 "comma list of overhead fractions phi/R");
  cli.add_option("nodes", "0", "override node count (0 = scenario default)");
  cli.add_option("tbase-mtbfs", "25", "t_base as a multiple of each MTBF");
  cli.add_option("trials", "60", "Monte-Carlo trials per grid point");
  cli.add_option("seed", "42", "master seed");
  cli.add_option("weibull-shape", "0",
                 "use per-node Weibull streams with this shape (0 = exp)");
  add_sdc_options(cli);
  add_predictor_options(cli);
  add_dcp_options(cli);
  cli.add_option("metrics-out", "", "write one JSONL sweep row per point");
  cli.add_option("metrics-bins", "64", "histogram bins for --metrics-out");
  cli.add_flag("progress", "print per-point progress and throughput");
  if (!cli.parse(argc, argv)) return 0;

  const auto scenario = cli.get("scenario") == "exa" ? model::exa_scenario()
                                                     : model::base_scenario();
  sim::SweepSpec spec;
  const std::string protocols = cli.get("protocols");
  if (protocols == "all") {
    spec.protocols.assign(model::kAllProtocols.begin(),
                          model::kAllProtocols.end());
  } else if (protocols == "paper") {
    spec.protocols.assign(model::kPaperProtocols.begin(),
                          model::kPaperProtocols.end());
  } else {
    std::size_t pos = 0;
    while (pos <= protocols.size()) {
      const auto comma = protocols.find(',', pos);
      const std::string item =
          protocols.substr(pos, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - pos);
      if (!item.empty()) {
        spec.protocols.push_back(model::parse_protocol_name(item));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  spec.mtbfs = parse_double_list(cli.get("mtbfs"));
  spec.phi_ratios = parse_double_list(cli.get("phi-ratios"));
  spec.base = scenario.params;
  if (const auto nodes = cli.get_int("nodes"); nodes > 0) {
    spec.base.nodes = static_cast<std::uint64_t>(nodes);
  } else if (spec.base.nodes > 100000) {
    spec.base.nodes = 99996;  // keep per-node bookkeeping tractable
  }
  spec.t_base_in_mtbfs = cli.get_double("tbase-mtbfs");
  spec.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  spec.weibull_shape = cli.get_double("weibull-shape");
  spec.sdc_rate = cli.get_double("sdc-rate");
  spec.verify_cost = cli.get_double("verify-cost");
  spec.verify_every = static_cast<std::uint64_t>(cli.get_int("verify-every"));
  spec.keep_last = static_cast<std::uint64_t>(cli.get_int("keep-last"));
  spec.pred_recall = cli.get_double("pred-recall");
  spec.pred_precision = cli.get_double("pred-precision");
  spec.pred_window = cli.get_double("pred-window");
  spec.proactive_cost = cli.get_double("proactive-cost");
  spec.dcp = dcp_from(cli);
  if (!cli.get("metrics-out").empty()) {
    sim::MetricsSpec metrics;
    metrics.bins = static_cast<std::size_t>(cli.get_int("metrics-bins"));
    spec.metrics = metrics;
  }
  if (cli.get_flag("progress")) {
    spec.progress = [](const sim::SweepProgress& p) {
      std::printf("[sweep] %zu done / %zu skipped / %zu total  "
                  "point %.2fs  total %.1fs  %.0f trials/s\n",
                  p.points_done, p.points_skipped, p.points_total,
                  p.point_elapsed, p.elapsed, p.trials_per_sec);
      std::fflush(stdout);
    };
  }

  const auto rows = sim::run_sweep(spec);
  const bool weibull = spec.weibull_shape > 0.0;
  const bool sdc = spec.verify_every > 0;
  const bool pred = spec.pred_recall > 0.0;
  const bool dcp = spec.dcp.enabled();
  std::vector<std::string> headers = {"protocol", "M", "phi", "P",
                                      "model waste", "sim waste",
                                      "mean risk time", "survival"};
  if (dcp) {
    headers.insert(headers.begin() + 5, "dcp model");
  }
  if (pred) {
    headers.insert(headers.begin() + 5, "pred model");
  }
  if (sdc) {
    headers.insert(headers.begin() + 5, "sdc model");
  }
  if (weibull) {
    headers.insert(headers.begin() + 5, "weibull model");
  }
  util::TextTable table(std::move(headers));
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        std::string(model::protocol_name(row.protocol)),
        util::format_duration(row.mtbf), util::format_fixed(row.phi, 1),
        util::format_duration(row.period),
        util::format_percent(row.model_waste, 2),
        util::format_percent(row.result.waste.mean(), 2) + " +/- " +
            util::format_percent(row.result.waste.confidence_halfwidth(), 2),
        util::format_duration(row.result.risk_time.mean()),
        util::format_fixed(row.result.success.estimate(), 4)};
    if (dcp) {
      cells.insert(cells.begin() + 5,
                   util::format_percent(row.model_waste_dcp, 2));
    }
    if (pred) {
      cells.insert(cells.begin() + 5,
                   util::format_percent(row.model_waste_pred, 2));
    }
    if (sdc) {
      cells.insert(cells.begin() + 5,
                   util::format_percent(row.model_waste_sdc, 2));
    }
    if (weibull) {
      cells.insert(cells.begin() + 5,
                   util::format_percent(row.model_waste_weibull, 2));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.render().c_str());
  if (!cli.get("metrics-out").empty()) {
    sim::save_sweep_jsonl(cli.get("metrics-out"), rows);
    std::printf("[jsonl] wrote %s (%zu rows)\n",
                cli.get("metrics-out").c_str(), rows.size());
  }
  return 0;
}

// ------------------------------------------------------------ optimize

int cmd_optimize(int argc, const char* const* argv) {
  util::CliParser cli("dckpt optimize",
                      "find the empirically optimal period by simulation");
  add_platform_options(cli);
  cli.add_option("protocol", "doublenbl", "protocol to optimize");
  cli.add_option("tbase", "50000", "application work per trial, seconds");
  cli.add_option("trials", "40", "trials per candidate period");
  cli.add_option("weibull-shape", "0",
                 "use per-node Weibull streams with this shape (0 = exp)");
  add_sdc_options(cli);
  add_predictor_options(cli);
  add_dcp_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  config.params = platform_from(cli);
  if (config.params.nodes > 100000) config.params.nodes = 99996;
  config.t_base = cli.get_double("tbase");
  apply_sdc_options(cli, config);
  apply_predictor_options(cli, config);
  config.dcp = dcp_from(cli);

  sim::OptimizeOptions options;
  options.trials_per_eval = static_cast<std::uint64_t>(cli.get_int("trials"));
  const double shape = cli.get_double("weibull-shape");
  if (shape > 0.0) {
    options.weibull =
        util::Weibull::from_mean(shape, config.params.node_mtbf());
  }
  const auto model_opt =
      model::optimal_period_closed_form(config.protocol, config.params);
  const auto empirical = sim::optimize_period_empirically(config, options);

  util::TextTable table({"source", "period", "waste"});
  table.add_row({"closed form (Eq. 9/10/15)",
                 util::format_duration(model_opt.period),
                 util::format_percent(model_opt.waste, 3)});
  if (shape > 0.0) {
    // Clustered-failure optimum at the horizon of the closed-form plan:
    // what the corrected objective would have picked.
    const model::WeibullFailures failures{
        shape, model::expected_makespan(config.protocol, config.params,
                                        model_opt.period, config.t_base)};
    const auto weibull_opt =
        model::optimal_period_numeric(config.protocol, config.params,
                                      failures);
    table.add_row({"numeric (weibull k=" + util::format_fixed(shape, 2) + ")",
                   util::format_duration(weibull_opt.period),
                   util::format_percent(weibull_opt.waste, 3)});
  }
  if (config.verify_every > 0) {
    // Verified-checkpoint objective: where the (V, k, P) model says the
    // period should move once verification overhead and strike losses bite.
    const model::SdcSpec sdc{config.sdc_rate, config.verify_cost,
                             config.verify_every};
    const auto sdc_opt =
        model::optimal_period_with_sdc(config.protocol, config.params, sdc);
    table.add_row({"numeric (verified ckpt)",
                   util::format_duration(sdc_opt.period),
                   util::format_percent(sdc_opt.waste, 3)});
  }
  if (config.pred_recall > 0.0) {
    // Predictor objective: handled failures cost a proactive checkpoint
    // instead of a rollback, so the optimum stretches by 1/sqrt(1 - r_t).
    const auto pred_opt = model::optimal_period_with_predictor(
        config.protocol, config.params, predictor_from(config));
    table.add_row({"numeric (predictor)",
                   util::format_duration(pred_opt.period),
                   util::format_percent(pred_opt.waste, 3)});
  }
  if (config.dcp.enabled()) {
    // dcp objective: cheaper commits pull the optimum down, costlier
    // chain-replay recovery pushes it back up.
    const auto dcp_opt = model::optimal_period_with_dcp(
        config.protocol, config.params, config.dcp);
    table.add_row({"numeric (dcp)",
                   util::format_duration(dcp_opt.period),
                   util::format_percent(dcp_opt.waste, 3)});
  }
  table.add_row({"empirical (simulation)",
                 util::format_duration(empirical.period),
                 util::format_percent(empirical.waste, 3) + " +/- " +
                     util::format_percent(empirical.waste_halfwidth, 3)});
  std::printf("%s", table.render().c_str());
  return 0;
}

// ------------------------------------------------------------ trace-gen

int cmd_trace_gen(int argc, const char* const* argv) {
  util::CliParser cli("dckpt trace-gen", "synthesize a failure trace file");
  cli.add_option("out", "failures.trace", "output path");
  cli.add_option("nodes", "64", "node count");
  cli.add_option("node-mtbf", "100000", "per-node mean inter-failure, s");
  cli.add_option("horizon", "1000000", "trace length, seconds");
  cli.add_option("weibull-shape", "0", "Weibull shape (0 = exponential)");
  cli.add_option("seed", "1", "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  const double mean = cli.get_double("node-mtbf");
  const double shape = cli.get_double("weibull-shape");
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<sim::FailureEvent> events;
  if (shape > 0.0) {
    events = sim::generate_failure_trace(util::Weibull::from_mean(shape, mean),
                                         nodes, cli.get_double("horizon"),
                                         rng);
  } else {
    events = sim::generate_failure_trace(util::Exponential::from_mean(mean),
                                         nodes, cli.get_double("horizon"),
                                         rng);
  }
  sim::save_failure_trace(cli.get("out"), events);
  std::printf("wrote %zu events to %s\n", events.size(),
              cli.get("out").c_str());
  return 0;
}

// ------------------------------------------------------------ trace-fit

int cmd_trace_fit(int argc, const char* const* argv) {
  util::CliParser cli("dckpt trace-fit",
                      "analyze a failure trace and fit distributions");
  cli.add_option("in", "failures.trace", "trace file to analyze");
  if (!cli.parse(argc, argv)) return 0;

  const auto events = sim::load_failure_trace(cli.get("in"));
  const auto stats = sim::analyze_trace(events);
  const auto exp_fit = sim::fit_exponential(events);
  const auto weib_fit = sim::fit_weibull(events);

  util::TextTable table({"quantity", "value"});
  table.add_row({"events", std::to_string(stats.events)});
  table.add_row({"span", util::format_duration(stats.span)});
  table.add_row({"distinct nodes", std::to_string(stats.distinct_nodes)});
  table.add_row({"platform MTBF", util::format_duration(stats.platform_mtbf)});
  table.add_row({"gap CV", util::format_fixed(stats.gap_cv, 3)});
  table.add_row({"exponential KS", util::format_fixed(exp_fit.ks_statistic,
                                                      4)});
  table.add_row({"Weibull shape", util::format_fixed(weib_fit.shape, 3)});
  table.add_row({"Weibull KS", util::format_fixed(weib_fit.ks_statistic, 4)});
  std::printf("%s\n", table.render().c_str());
  std::printf("model hint: Parameters::mtbf = %.1f s; %s fits better\n",
              stats.platform_mtbf,
              weib_fit.ks_statistic < exp_fit.ks_statistic * 0.9
                  ? "Weibull (bursty -- expect worse waste than the model)"
                  : "exponential (the paper's assumption holds)");
  return 0;
}

// ------------------------------------------------------------ hierarchy

int cmd_hierarchy(int argc, const char* const* argv) {
  util::CliParser cli("dckpt hierarchy",
                      "plan buddy level 1 + stable-storage level 2");
  add_platform_options(cli);
  cli.add_option("global-ckpt", "900", "global checkpoint cost, seconds");
  cli.add_option("global-recovery", "900", "global recovery cost, seconds");
  if (!cli.parse(argc, argv)) return 0;

  model::HierarchicalParams params;
  params.level1 = platform_from(cli);
  params.global_ckpt = cli.get_double("global-ckpt");
  params.global_recovery = cli.get_double("global-recovery");

  util::TextTable table({"Protocol", "MTBF_fatal", "P1*", "P2*", "w1",
                         "w total"});
  for (auto protocol : model::kAllProtocols) {
    params.protocol = protocol;
    const auto eval = model::optimize_hierarchical(params);
    table.add_row({std::string(model::protocol_name(protocol)),
                   util::format_duration(model::mean_time_between_fatal(
                       protocol, params.level1)),
                   util::format_duration(eval.level1_period),
                   std::isfinite(eval.level2_period)
                       ? util::format_duration(eval.level2_period)
                       : "never",
                   util::format_percent(eval.level1_waste, 2),
                   eval.feasible ? util::format_percent(eval.total_waste, 2)
                                 : "stalled"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// -------------------------------------------------------------- overlap

int cmd_overlap(int argc, const char* const* argv) {
  util::CliParser cli("dckpt overlap",
                      "measure the overlap factor alpha for a workload");
  cli.add_option("compute", "0.02", "compute time per step, seconds");
  cli.add_option("halo-mb", "16", "halo bytes per step, MiB");
  cli.add_option("nic-mbps", "128", "NIC bandwidth, MiB/s");
  cli.add_option("image-mb", "512", "checkpoint image, MiB");
  if (!cli.parse(argc, argv)) return 0;

  net::OverlapWorkload workload;
  workload.compute_time = cli.get_double("compute");
  workload.halo_bytes = cli.get_double("halo-mb") * 1024 * 1024;
  workload.nic_bandwidth = cli.get_double("nic-mbps") * 1024 * 1024;
  workload.checkpoint_bytes = cli.get_double("image-mb") * 1024 * 1024;
  workload.validate();

  const double mech = workload.mechanistic_alpha();
  const auto curve = net::measure_overlap_curve(
      workload, net::SharingPolicy::Scavenger, 10,
      std::isfinite(mech) ? 1.2 * (1.0 + mech) : 40.0);
  util::TextTable table({"theta", "phi"});
  for (const auto& point : curve) {
    table.add_row({util::format_duration(point.theta),
                   util::format_duration(point.phi)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("theta_min = %s, fitted alpha = %.2f (mechanistic %.2f)\n",
              util::format_duration(workload.theta_min()).c_str(),
              net::fit_alpha(curve, workload.theta_min()), mech);
  return 0;
}

// --------------------------------------------------------------- spares

int cmd_spares(int argc, const char* const* argv) {
  util::CliParser cli("dckpt spares",
                      "spare-pool sizing and its downtime/waste impact");
  add_platform_options(cli);
  cli.add_option("protocol", "doublenbl", "protocol for the waste column");
  cli.add_option("repair", "3600", "mean spare repair/return time, seconds");
  cli.add_option("detection", "30", "failure detection time, seconds");
  cli.add_option("max-spares", "32", "largest pool size to tabulate");
  if (!cli.parse(argc, argv)) return 0;

  const auto base = platform_from(cli);
  const auto protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  model::SparePoolSpec spec;
  spec.repair_time = cli.get_double("repair");
  spec.detection = cli.get_double("detection");

  util::TextTable table({"spares", "E[wait]", "D_eff", "Waste@P*"});
  const auto max_spares =
      static_cast<std::uint64_t>(cli.get_int("max-spares"));
  for (std::uint64_t c = 1; c <= max_spares; c *= 2) {
    spec.spares = c;
    std::string wait = "unstable", downtime = "-", waste = "-";
    try {
      const double w = model::expected_replacement_wait(spec, base.mtbf);
      const auto params = model::with_spare_pool(base, spec);
      wait = util::format_duration(w);
      downtime = util::format_duration(params.downtime);
      const auto opt = model::optimal_period_closed_form(protocol, params);
      waste = opt.feasible ? util::format_percent(opt.waste, 2) : "stalled";
    } catch (const std::invalid_argument&) {
      // fallthrough: pool unstable at this size
    }
    table.add_row({std::to_string(c), wait, downtime, waste});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// --------------------------------------------------------------- chaos

/// Parses "RxC" (or a bare "N", meaning NxN) for --grid / --block. On
/// malformed input prints the PR 1 error convention and exits(2).
std::pair<std::size_t, std::size_t> parse_geometry_cli(
    const char* program, const char* option, const std::string& text) {
  const auto fail = [&]() -> std::pair<std::size_t, std::size_t> {
    std::fprintf(stderr, "%s: option --%s: invalid value '%s'\n", program,
                 option, text.c_str());
    std::exit(2);
  };
  const auto parse_dim = [&](const std::string& part) {
    if (part.empty() ||
        part.find_first_not_of("0123456789") != std::string::npos) {
      fail();
    }
    const unsigned long long value = std::stoull(part);
    if (value == 0) fail();
    return static_cast<std::size_t>(value);
  };
  const std::size_t x = text.find('x');
  if (x == std::string::npos) {
    const std::size_t n = parse_dim(text);
    return {n, n};
  }
  return {parse_dim(text.substr(0, x)), parse_dim(text.substr(x + 1))};
}

int cmd_chaos(int argc, const char* const* argv) {
  util::CliParser cli("dckpt chaos",
                      "adversarial failure campaigns against the runtime");
  cli.add_option("topology", "pairs", "pairs | triples");
  cli.add_option("nodes", "8", "node count (multiple of the group size)");
  cli.add_option("cells", "64", "cells per node");
  cli.add_option("grid", "",
                 "target the 2-D grid runtime with RxC workers (row-major "
                 "ids; overrides --nodes/--cells/--staging)");
  cli.add_option("block", "8", "grid block size per worker, RxC or N (=NxN)");
  cli.add_option("steps", "96", "total steps");
  cli.add_option("interval", "12", "checkpoint interval, steps");
  cli.add_option("staging", "0", "staging (non-blocking exchange) steps");
  cli.add_option("rerepl-delay", "3",
                 "re-replication delay, steps (the risk window; 0 = instant)");
  cli.add_option("retry-max", "3",
                 "refill delivery attempts before the transfer is abandoned");
  cli.add_option("retry-base", "1",
                 "refill retry backoff base, steps (doubles per retry)");
  cli.add_option("verify-every", "0",
                 "verify checkpoints every N periods (0 = off; required for "
                 "sdc injections)");
  cli.add_option("keep-last", "1",
                 "retained committed checkpoint sets (rollback ladder depth)");
  cli.add_option("dcp-stack", "0",
                 "differential-checkpoint stack size K: commits per full "
                 "exchange (0 = every commit full; requires --staging 0, "
                 "--verify-every 0, --keep-last 1)");
  cli.add_option("dcp-block", "4096", "differential block size, bytes");
  cli.add_option("kernel", "heat", "heat | wave | counter");
  cli.add_option("runs", "100", "randomized schedules after the scripted set");
  cli.add_option("seed", "1", "campaign seed (or schedule seed with "
                 "--schedule, informational)");
  cli.add_option("max-failures", "4", "failures per random schedule");
  cli.add_option("schedule", "",
                 "run one schedule instead of a campaign; entries are "
                 "'step:node' (loss), 'step:corrupt:holder:owner', "
                 "'step:torn:node', 'step:failxfer:node', 'step:sdc:node', "
                 "'step:alarm:node[:window]', 'step:torndelta:node:depth'");
  cli.add_option("spares", "0",
                 "derive --rerepl-delay from an Erlang-C pool of this many "
                 "spares (0 = use --rerepl-delay)");
  cli.add_option("repair", "3600", "spare repair/return time, seconds");
  cli.add_option("detection", "30", "failure detection time, seconds");
  cli.add_option("mtbf", "25200", "platform MTBF for the spare pool, seconds");
  cli.add_option("step-seconds", "60", "wall-clock seconds per runtime step");
  cli.add_option("report-out", "", "write campaign + run records as JSONL");
  cli.add_option("threads", "0", "campaign workers (0 = hardware)");
  cli.add_flag("random-only", "skip the scripted danger cases");
  if (!cli.parse(argc, argv)) return 0;

  chaos::ChaosCampaignConfig config;
  const std::string topology = cli.get("topology");
  if (topology == "pairs") {
    config.runtime.topology = ckpt::Topology::Pairs;
  } else if (topology == "triples") {
    config.runtime.topology = ckpt::Topology::Triples;
  } else {
    std::fprintf(stderr, "dckpt chaos: option --topology: invalid value "
                 "'%s'\n", topology.c_str());
    std::exit(2);
  }
  config.runtime.nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  config.runtime.cells_per_node =
      static_cast<std::size_t>(cli.get_int("cells"));
  config.runtime.total_steps =
      static_cast<std::uint64_t>(cli.get_int("steps"));
  config.runtime.checkpoint_interval =
      static_cast<std::uint64_t>(cli.get_int("interval"));
  config.runtime.staging_steps =
      static_cast<std::uint64_t>(cli.get_int("staging"));
  config.runtime.rereplication_delay_steps =
      static_cast<std::uint64_t>(cli.get_int("rerepl-delay"));
  config.runtime.transfer_retry.max_attempts =
      static_cast<std::uint64_t>(cli.get_int("retry-max"));
  config.runtime.transfer_retry.base_delay_steps =
      static_cast<std::uint64_t>(cli.get_int("retry-base"));
  config.runtime.verify_every =
      static_cast<std::uint64_t>(cli.get_int("verify-every"));
  config.runtime.keep_last =
      static_cast<std::size_t>(cli.get_int("keep-last"));
  config.runtime.dcp_stack_size =
      static_cast<std::uint64_t>(cli.get_int("dcp-stack"));
  config.runtime.dcp_block_size =
      static_cast<std::size_t>(cli.get_int("dcp-block"));
  config.kernel = cli.get("kernel");
  config.random_runs = static_cast<std::uint64_t>(cli.get_int("runs"));
  config.campaign_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.max_failures =
      static_cast<std::uint64_t>(cli.get_int("max-failures"));
  config.include_scripted = !cli.get_flag("random-only");
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));

  if (!cli.get("grid").empty()) {
    if (config.runtime.staging_steps > 0) {
      std::fprintf(stderr, "dckpt chaos: --staging is not supported with "
                   "--grid (the grid commits immediately)\n");
      std::exit(2);
    }
    const auto [rows, cols] =
        parse_geometry_cli("dckpt chaos", "grid", cli.get("grid"));
    const auto [brows, bcols] =
        parse_geometry_cli("dckpt chaos", "block", cli.get("block"));
    runtime::GridConfig gc;
    gc.topology = config.runtime.topology;
    gc.grid_rows = rows;
    gc.grid_cols = cols;
    gc.block_rows = brows;
    gc.block_cols = bcols;
    gc.total_steps = config.runtime.total_steps;
    gc.checkpoint_interval = config.runtime.checkpoint_interval;
    gc.rereplication_delay_steps = config.runtime.rereplication_delay_steps;
    gc.transfer_retry = config.runtime.transfer_retry;
    gc.verify_every = config.runtime.verify_every;
    gc.keep_last = config.runtime.keep_last;
    gc.dcp_stack_size = config.runtime.dcp_stack_size;
    gc.dcp_block_size = config.runtime.dcp_block_size;
    config.grid = gc;
  }

  if (const auto spares = cli.get_int("spares"); spares > 0) {
    // Bridge from the spare-pool model: expected allocation wait -> steps.
    model::SparePoolSpec spec;
    spec.spares = static_cast<std::uint64_t>(spares);
    spec.repair_time = cli.get_double("repair");
    spec.detection = cli.get_double("detection");
    config.runtime.rereplication_delay_steps = chaos::spare_pool_delay_steps(
        spec, cli.get_double("mtbf"), cli.get_double("step-seconds"));
    if (config.grid) {
      config.grid->rereplication_delay_steps =
          config.runtime.rereplication_delay_steps;
    }
    std::printf("spare pool: %lld spares -> re-replication delay %llu "
                "steps\n",
                static_cast<long long>(spares),
                static_cast<unsigned long long>(
                    config.runtime.rereplication_delay_steps));
  }

  const auto print_violation = [](const chaos::ChaosRunResult& run) {
    std::printf("VIOLATED  run %llu (%s): %s\n",
                static_cast<unsigned long long>(run.index),
                run.schedule.name.c_str(), run.detail.c_str());
    std::printf("  repro: %s\n", run.repro.c_str());
  };

  if (!cli.get("schedule").empty()) {
    // Single-schedule mode: the repro path for campaign failures.
    chaos::ChaosSchedule schedule =
        chaos::parse_schedule_cli("dckpt chaos", cli.get("schedule"));
    schedule.seed = config.campaign_seed;
    const std::uint64_t reference =
        chaos::reference_run(config).final_hash;
    const auto run = chaos::run_one(config, std::move(schedule), reference);
    if (!cli.get("report-out").empty()) {
      std::vector<util::JsonValue> lines;
      lines.push_back(chaos::to_json(run));
      sim::save_jsonl(cli.get("report-out"), lines);
      std::printf("[jsonl] wrote %s\n", cli.get("report-out").c_str());
    }
    if (run.outcome == chaos::ChaosOutcome::Violated) {
      print_violation(run);
      return 1;
    }
    std::printf("%s  %s%s%s\n",
                std::string(chaos::outcome_name(run.outcome)).c_str(),
                run.schedule.spec().c_str(),
                run.detail.empty() ? "" : ": ", run.detail.c_str());
    std::printf("steps %llu (replayed %llu), checkpoints %llu, rollbacks "
                "%llu, recoveries %llu, rereplications %llu, risk steps "
                "%llu\n",
                static_cast<unsigned long long>(run.report.steps_executed),
                static_cast<unsigned long long>(run.report.replayed_steps),
                static_cast<unsigned long long>(run.report.checkpoints),
                static_cast<unsigned long long>(run.report.rollbacks),
                static_cast<unsigned long long>(run.report.recoveries),
                static_cast<unsigned long long>(run.report.rereplications),
                static_cast<unsigned long long>(run.report.risk_steps));
    std::printf("failovers %llu, transfer retries %llu, corrupt images "
                "detected %llu, degraded steps %llu, hash-verified "
                "recoveries %llu\n",
                static_cast<unsigned long long>(run.report.failovers),
                static_cast<unsigned long long>(run.report.transfer_retries),
                static_cast<unsigned long long>(
                    run.report.corrupt_images_detected),
                static_cast<unsigned long long>(run.report.degraded_steps),
                static_cast<unsigned long long>(
                    run.report.hash_verified_recoveries));
    std::printf("sdc injected %llu, verifications %llu, sdc detected %llu, "
                "rollback depth %llu\n",
                static_cast<unsigned long long>(run.report.sdc_injected),
                static_cast<unsigned long long>(run.report.verifications_run),
                static_cast<unsigned long long>(run.report.sdc_detected),
                static_cast<unsigned long long>(run.report.rollback_depth));
    std::printf("alarms %llu, proactive ckpts %llu, true predictions %llu, "
                "missed failures %llu\n",
                static_cast<unsigned long long>(run.report.alarms_raised),
                static_cast<unsigned long long>(run.report.proactive_ckpts),
                static_cast<unsigned long long>(run.report.true_predictions),
                static_cast<unsigned long long>(run.report.missed_failures));
    std::printf("delta commits %llu, full commits %llu, chain replays %llu, "
                "chain replay depth %llu, torn-chain failovers %llu\n",
                static_cast<unsigned long long>(run.report.delta_commits),
                static_cast<unsigned long long>(run.report.full_commits),
                static_cast<unsigned long long>(run.report.chain_replays),
                static_cast<unsigned long long>(
                    run.report.chain_replay_depth),
                static_cast<unsigned long long>(
                    run.report.torn_chain_failovers));
    return 0;
  }

  const auto summary = chaos::run_campaign(config);
  util::TextTable table({"outcome", "runs"});
  table.add_row({"survived", std::to_string(summary.survived)});
  table.add_row({"fatal-detected", std::to_string(summary.fatal_detected)});
  table.add_row({"violated", std::to_string(summary.violated)});
  std::printf("%s", table.render().c_str());
  std::printf("campaign: %zu runs, seed %llu\n", summary.runs.size(),
              static_cast<unsigned long long>(config.campaign_seed));
  for (const auto& run : summary.runs) {
    if (run.outcome == chaos::ChaosOutcome::Violated) print_violation(run);
  }
  if (!cli.get("report-out").empty()) {
    chaos::save_campaign_jsonl(cli.get("report-out"), summary);
    std::printf("[jsonl] wrote %s (%zu records)\n",
                cli.get("report-out").c_str(), summary.runs.size() + 1);
  }
  return summary.violated > 0 ? 1 : 0;
}

// --------------------------------------------------------------- serve

/// Appends one serve_stats JSONL record to `path` (no-op when empty).
void serve_append_stats(const sim::EvalService& service,
                        const std::string& path) {
  if (path.empty()) return;
  if (std::FILE* out = std::fopen(path.c_str(), "a")) {
    std::fprintf(out, "%s\n", service.stats_json().dump().c_str());
    std::fclose(out);
  } else {
    std::fprintf(stderr, "serve: cannot append to %s\n", path.c_str());
  }
}

/// Reads newline-terminated requests from stdin and answers on stdout.
int serve_stdin(sim::EvalService& service, std::uint64_t stats_every,
                const std::string& stats_out) {
  std::string line;
  std::uint64_t handled = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::printf("%s\n", service.handle_line(line).c_str());
    std::fflush(stdout);
    if (stats_every > 0 && ++handled % stats_every == 0) {
      serve_append_stats(service, stats_out);
    }
    if (line == "QUIT") break;
  }
  serve_append_stats(service, stats_out);
  return 0;
}

/// SIGINT/SIGTERM turn into a graceful drain of the running server. The
/// pointer is only non-null between sigaction install and restore below,
/// and request_stop() is async-signal-safe (one write to a self-pipe).
sim::Server* g_serve_server = nullptr;

void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

/// Serves the line protocol over loopback TCP: a poll()-based event loop
/// multiplexing up to --max-conns clients, with per-connection deadlines,
/// bounded reply queues, and busy-shedding of heavy work (sim::Server;
/// concurrency model in docs/SERVE.md). QUIT ends a client's connection;
/// with --once the server drains after the first connection closes.
int serve_tcp(sim::EvalService& service, const sim::ServerOptions& options,
              std::uint64_t stats_every, const std::string& stats_out) {
  sim::Server server(service, options);
  if (!server.start()) return 1;
  std::printf("serving on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  if (stats_every > 0 && !stats_out.empty()) {
    server.set_stats_hook(stats_every, [&service, &stats_out] {
      serve_append_stats(service, stats_out);
    });
  }

  g_serve_server = &server;
  struct sigaction action{};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);

  const int rc = server.run();

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  g_serve_server = nullptr;

  // The drain has flushed every connection; this is the final stats
  // record the shutdown contract promises (counters still registered).
  serve_append_stats(service, stats_out);
  return rc;
}

int cmd_serve(int argc, const char* const* argv) {
  util::CliParser cli("dckpt serve",
                      "long-running evaluation service (line protocol; see "
                      "docs/SERVE.md)");
  cli.add_option("port", "-1",
                 "listen on 127.0.0.1:PORT (0 = auto-pick; -1 = stdin mode)");
  cli.add_flag("once", "TCP mode: exit after the first connection closes");
  cli.add_option("trials", "400", "default trials for kind=sim requests");
  cli.add_option("max-trials", "200000", "reject sim requests above this");
  cli.add_option("threads", "1", "worker threads for sim requests");
  cli.add_option("cache-capacity", "1024", "LRU answer-cache entries");
  cli.add_option("stats-out", "",
                 "append serve_stats JSONL records to this file");
  cli.add_option("stats-every", "0",
                 "emit a stats record every N requests (0 = only at exit)");
  cli.add_option("max-conns", "64", "TCP: concurrent connections");
  cli.add_option("max-line", "65536",
                 "TCP: longest request line in bytes (overlong lines answer "
                 "code=overlong)");
  cli.add_option("read-timeout", "30000",
                 "TCP: close a connection idle for this many ms");
  cli.add_option("write-timeout", "10000",
                 "TCP: close a connection whose replies stall this many ms");
  cli.add_option("queue-depth", "4",
                 "TCP: bounded in-flight sim queue (full = code=busy)");
  cli.add_option("high-water", "262144",
                 "TCP: queued reply bytes before a client's reads pause");
  if (!cli.parse(argc, argv)) return 0;

  sim::EvalServiceOptions options;
  options.default_trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  options.max_trials = static_cast<std::uint64_t>(cli.get_int("max-trials"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity"));
  sim::EvalService service(options);

  const int port = static_cast<int>(cli.get_int("port"));
  const auto stats_every =
      static_cast<std::uint64_t>(cli.get_int("stats-every"));
  if (port < 0) {
    return serve_stdin(service, stats_every, cli.get("stats-out"));
  }
  sim::ServerOptions server_options;
  server_options.port = port;
  server_options.once = cli.get_flag("once");
  server_options.max_conns =
      static_cast<std::size_t>(cli.get_int("max-conns"));
  server_options.max_line = static_cast<std::size_t>(cli.get_int("max-line"));
  server_options.read_idle_ms = static_cast<int>(cli.get_int("read-timeout"));
  server_options.write_stall_ms =
      static_cast<int>(cli.get_int("write-timeout"));
  server_options.queue_depth =
      static_cast<std::size_t>(cli.get_int("queue-depth"));
  server_options.high_water =
      static_cast<std::size_t>(cli.get_int("high-water"));
  return serve_tcp(service, server_options, stats_every, cli.get("stats-out"));
}

void print_usage() {
  std::fputs(
      "dckpt -- double/triple checkpointing toolkit\n"
      "usage: dckpt <command> [options]\n\n"
      "commands:\n"
      "  plan        rank protocols for a platform\n"
      "  simulate    Monte-Carlo campaign for one configuration\n"
      "  sweep       Monte-Carlo campaigns over a (protocol, M, phi) grid\n"
      "  optimize    empirical period optimization\n"
      "  trace-gen   synthesize a failure trace file\n"
      "  trace-fit   analyze a failure trace, fit distributions\n"
      "  hierarchy   two-level (buddy + stable storage) planning\n"
      "  overlap     measure the overlap factor alpha for a workload\n"
      "  spares      spare-pool sizing\n"
      "  chaos       adversarial failure campaigns against the runtime\n"
      "  serve       long-running evaluation service (stdin or TCP)\n\n"
      "run 'dckpt <command> --help' for the command's options.\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "plan") return cmd_plan(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "sweep") return cmd_sweep(sub_argc, sub_argv);
    if (command == "optimize") return cmd_optimize(sub_argc, sub_argv);
    if (command == "trace-gen") return cmd_trace_gen(sub_argc, sub_argv);
    if (command == "trace-fit") return cmd_trace_fit(sub_argc, sub_argv);
    if (command == "hierarchy") return cmd_hierarchy(sub_argc, sub_argv);
    if (command == "overlap") return cmd_overlap(sub_argc, sub_argv);
    if (command == "spares") return cmd_spares(sub_argc, sub_argv);
    if (command == "chaos") return cmd_chaos(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dckpt %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "dckpt: unknown command '%s'\n\n", command.c_str());
  print_usage();
  return 1;
}
