#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dckpt::util {

namespace {

[[noreturn]] void exit_invalid_value(const std::string& program,
                                     const std::string& name,
                                     const std::string& value) {
  std::fprintf(stderr, "%s: option --%s: invalid value '%s'\n",
               program.c_str(), name.c_str(), value.c_str());
  std::exit(2);
}

}  // namespace

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help, false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"", help, true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.erase(eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option --%s\n%s", program_.c_str(),
                   name.c_str(), usage().c_str());
      return false;
    }
    if (it->second.is_flag) {
      if (inline_value) {
        std::fprintf(stderr, "%s: flag --%s takes no value\n", program_.c_str(),
                     name.c_str());
        return false;
      }
      values_[name] = std::string("1");
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else if (i + 1 < argc) {
      // `--mtbf --trials 5` almost certainly forgot the mtbf value; require
      // the explicit form for values that really start with a double dash.
      std::fprintf(stderr,
                   "%s: option --%s needs a value (got '%s'; use "
                   "--%s=%s if that is really the value)\n",
                   program_.c_str(), name.c_str(), argv[i + 1], name.c_str(),
                   argv[i + 1]);
      return false;
    } else {
      std::fprintf(stderr, "%s: option --%s needs a value\n", program_.c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto vit = values_.find(name);
  if (vit != values_.end()) return vit->second;
  auto oit = options_.find(name);
  if (oit == options_.end()) {
    throw std::invalid_argument("CliParser: undeclared option " + name);
  }
  return oit->second.default_value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) exit_invalid_value(program_, name, text);
    return value;
  } catch (const std::logic_error&) {  // invalid_argument / out_of_range
    exit_invalid_value(program_, name, text);
  }
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size()) exit_invalid_value(program_, name, text);
    return value;
  } catch (const std::logic_error&) {
    exit_invalid_value(program_, name, text);
  }
}

bool CliParser::get_flag(const std::string& name) const {
  auto vit = values_.find(name);
  return vit != values_.end() && vit->second == "1";
}

std::string CliParser::usage() const {
  std::string text = program_ + " -- " + description_ + "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    text += "  --" + name;
    if (!opt.is_flag) text += " <value> (default: " + opt.default_value + ")";
    text += "\n      " + opt.help + "\n";
  }
  text += "  --help\n      show this message\n";
  return text;
}

}  // namespace dckpt::util
