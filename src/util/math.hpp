// Scalar numerical routines used to cross-validate the paper's closed forms.
//
// The optimal checkpoint periods in the paper come from Maple. We re-derive
// them numerically by minimizing the exact waste function with a
// derivative-free minimizer; unit tests assert closed-form == numeric
// optimum. Nothing here is performance critical.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

namespace dckpt::util {

/// Result of a scalar optimization.
struct MinimizeResult {
  double x = 0.0;          ///< argmin
  double value = 0.0;      ///< f(argmin)
  int iterations = 0;      ///< iterations actually used
  bool converged = false;  ///< tolerance met before iteration cap
};

/// Golden-section search for a unimodal f on [lo, hi].
MinimizeResult minimize_golden_section(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       double x_tolerance = 1e-9,
                                       int max_iterations = 400);

/// Brent's minimizer (parabolic interpolation + golden section) on [lo, hi].
MinimizeResult minimize_brent(const std::function<double(double)>& f,
                              double lo, double hi,
                              double x_tolerance = 1e-10,
                              int max_iterations = 200);

/// Result of a root search.
struct RootResult {
  double x = 0.0;
  double residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite signs.
RootResult find_root_bisection(const std::function<double(double)>& f,
                               double lo, double hi,
                               double x_tolerance = 1e-12,
                               int max_iterations = 200);

/// Compensated (Kahan-Neumaier) accumulator for long reductions.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  double value() const noexcept { return sum_ + compensation_; }

  KahanSum& operator+=(double v) noexcept {
    add(v);
    return *this;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// Clamps x into [lo, hi] (asserts lo <= hi).
double clamp(double x, double lo, double hi);

/// Linear interpolation a + t*(b-a).
constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

/// Log-spaced grid of `count` points covering [lo, hi], lo > 0.
/// count == 1 yields {lo}.
std::vector<double> log_space(double lo, double hi, int count);

/// Linearly spaced grid of `count` points covering [lo, hi].
std::vector<double> lin_space(double lo, double hi, int count);

}  // namespace dckpt::util
