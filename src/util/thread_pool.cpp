#include "util/thread_pool.hpp"

#include <algorithm>

namespace dckpt::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  task_available_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  const std::size_t base = n / chunks;
  const std::size_t remainder = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < remainder ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(
        pool.submit([&body, c, begin, end] { body(c, begin, end); }));
    begin = end;
  }
  for (auto& f : futures) f.get();  // rethrows worker exceptions here
}

}  // namespace dckpt::util
