#include "util/math.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dckpt::util {

namespace {
constexpr double kGoldenRatio = 0.6180339887498949;  // (sqrt(5)-1)/2
}

MinimizeResult minimize_golden_section(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       double x_tolerance,
                                       int max_iterations) {
  if (!(lo < hi)) throw std::invalid_argument("golden_section: lo >= hi");
  double a = lo, b = hi;
  double x1 = b - kGoldenRatio * (b - a);
  double x2 = a + kGoldenRatio * (b - a);
  double f1 = f(x1), f2 = f(x2);
  MinimizeResult result;
  for (int i = 0; i < max_iterations; ++i) {
    result.iterations = i + 1;
    if (b - a <= x_tolerance) {
      result.converged = true;
      break;
    }
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGoldenRatio * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGoldenRatio * (b - a);
      f2 = f(x2);
    }
  }
  result.x = (a + b) / 2.0;
  result.value = f(result.x);
  return result;
}

MinimizeResult minimize_brent(const std::function<double(double)>& f,
                              double lo, double hi, double x_tolerance,
                              int max_iterations) {
  // Brent (1973), "Algorithms for Minimization without Derivatives", ch. 5.
  if (!(lo < hi)) throw std::invalid_argument("brent: lo >= hi");
  constexpr double kCGold = 0.3819660112501051;
  double a = lo, b = hi;
  double x = a + kCGold * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  MinimizeResult result;
  for (int i = 0; i < max_iterations; ++i) {
    result.iterations = i + 1;
    const double mid = (a + b) / 2.0;
    const double tol1 = x_tolerance * std::abs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - mid) <= tol2 - (b - a) / 2.0) {
      result.converged = true;
      break;
    }
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u_trial = x + d;
        if (u_trial - a < tol2 || b - u_trial < tol2) {
          d = (mid - x >= 0.0) ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= mid) ? a - x : b - x;
      d = kCGold * e;
    }
    const double u =
        (std::abs(d) >= tol1) ? x + d : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  return result;
}

RootResult find_root_bisection(const std::function<double(double)>& f,
                               double lo, double hi, double x_tolerance,
                               int max_iterations) {
  if (!(lo < hi)) throw std::invalid_argument("bisection: lo >= hi");
  double fa = f(lo), fb = f(hi);
  RootResult result;
  if (fa == 0.0) {
    result = {lo, 0.0, 0, true};
    return result;
  }
  if (fb == 0.0) {
    result = {hi, 0.0, 0, true};
    return result;
  }
  if ((fa > 0.0) == (fb > 0.0)) {
    throw std::invalid_argument("bisection: f(lo) and f(hi) have same sign");
  }
  double a = lo, b = hi;
  double mid = (a + b) / 2.0, fm = f(mid);
  for (int i = 0; i < max_iterations; ++i) {
    result.iterations = i + 1;
    mid = (a + b) / 2.0;
    fm = f(mid);
    if (fm == 0.0 || b - a <= x_tolerance) {
      result.converged = true;
      break;
    }
    if ((fm > 0.0) == (fa > 0.0)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
  }
  result.x = mid;
  result.residual = fm;
  return result;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double clamp(double x, double lo, double hi) {
  assert(lo <= hi);
  return std::min(std::max(x, lo), hi);
}

std::vector<double> log_space(double lo, double hi, int count) {
  if (lo <= 0.0 || hi < lo) throw std::invalid_argument("log_space: bad range");
  if (count <= 0) throw std::invalid_argument("log_space: count <= 0");
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    grid.push_back(lo);
    return grid;
  }
  const double llo = std::log(lo), lhi = std::log(hi);
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    grid.push_back(std::exp(lerp(llo, lhi, t)));
  }
  return grid;
}

std::vector<double> lin_space(double lo, double hi, int count) {
  if (hi < lo) throw std::invalid_argument("lin_space: bad range");
  if (count <= 0) throw std::invalid_argument("lin_space: count <= 0");
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    grid.push_back(lo);
    return grid;
  }
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    grid.push_back(lerp(lo, hi, t));
  }
  return grid;
}

}  // namespace dckpt::util
