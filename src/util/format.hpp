// Human-readable rendering of durations, rates and fractions for the bench
// tables (e.g. MTBF axis labels "1min", "4h", "1day" matching the paper's
// figures).
#pragma once

#include <string>

namespace dckpt::util {

/// "42s", "3.5min", "7h", "1.2day" -- shortest unit keeping value in [1, u).
std::string format_duration(double seconds);

/// "12.3%" with the given number of decimals.
std::string format_percent(double fraction, int decimals = 1);

/// Fixed-decimal double ("0.1234").
std::string format_fixed(double value, int decimals = 4);

/// Scientific with the given significant digits ("1.23e-07").
std::string format_scientific(double value, int significant = 3);

/// "1.5 GB/s", "512 MB" style byte quantities (binary units).
std::string format_bytes(double bytes);

}  // namespace dckpt::util
