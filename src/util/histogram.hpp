// Fixed-bin histogram with under/overflow tracking and quantile estimation.
// Used by the simulator to characterize makespan and lost-work distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dckpt::util {

class Histogram {
 public:
  /// `bins` equal-width bins covering [lo, hi). Finite samples outside the
  /// range are counted in dedicated underflow/overflow buckets; non-finite
  /// samples (NaN, +/-Inf) in a separate nonfinite bucket.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& other);

  std::uint64_t total_count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  /// NaN/Inf samples; they belong to no bin (a NaN would otherwise hit an
  /// undefined float->size_t cast) and are excluded from quantiles.
  std::uint64_t nonfinite() const noexcept { return nonfinite_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_lower_edge(std::size_t i) const noexcept;
  double bin_width() const noexcept { return width_; }

  /// Quantile estimate by linear interpolation within the containing bin.
  /// q in [0, 1]. In-range samples only (under/overflow excluded). When no
  /// in-range mass exists (empty histogram, or every sample landed in the
  /// underflow/overflow/nonfinite buckets) there is no distribution to
  /// invert: returns quiet NaN so callers cannot mistake the result for a
  /// real value at the lower edge.
  double quantile(double q) const;

  /// Multi-line ASCII rendering (for traces/examples), widest bar = `width`.
  std::string render(int width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nonfinite_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dckpt::util
