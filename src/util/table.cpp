#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace dckpt::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::vector<double>& cells,
                                int decimals) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_fixed(v, decimals));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      // right-pad all but the last column
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace dckpt::util
