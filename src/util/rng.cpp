#include "util/rng.hpp"

namespace dckpt::util {

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
  // All-zero state is the one fixed point of xoshiro; SplitMix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256ss::fill(std::uint64_t* out, std::size_t n) noexcept {
  std::uint64_t s0 = state_[0];
  std::uint64_t s1 = state_[1];
  std::uint64_t s2 = state_[2];
  std::uint64_t s3 = state_[3];
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  state_ = {s0, s1, s2, s3};
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Xoshiro256ss Xoshiro256ss::split(std::uint64_t stream_index) const noexcept {
  Xoshiro256ss child = *this;
  for (std::uint64_t i = 0; i <= stream_index; ++i) child.jump();
  return child;
}

}  // namespace dckpt::util
