#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dckpt::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (!std::isfinite(x)) {
    ++nonfinite_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard float edge at hi_
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nonfinite_ += other.nonfinite_;
  total_ += other.total_;
}

double Histogram::bin_lower_edge(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t in_range = total_ - underflow_ - overflow_ - nonfinite_;
  if (in_range == 0) return std::numeric_limits<double>::quiet_NaN();
  const double target = q * static_cast<double>(in_range);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - cumulative) / static_cast<double>(counts_[i])
                     : 0.0;
      return bin_lower_edge(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<int>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * width));
    out << "[" << bin_lower_edge(i) << ", " << bin_lower_edge(i) + width_
        << ") " << std::string(static_cast<std::size_t>(bar_len), '#') << " "
        << counts_[i] << "\n";
  }
  if (underflow_) out << "underflow: " << underflow_ << "\n";
  if (overflow_) out << "overflow: " << overflow_ << "\n";
  if (nonfinite_) out << "non-finite: " << nonfinite_ << "\n";
  return out.str();
}

}  // namespace dckpt::util
