// Streaming statistics for Monte-Carlo aggregation.
//
// RunningStats uses Welford's online algorithm: numerically stable for the
// millions of trial results the simulation benches accumulate, mergeable so
// per-thread accumulators can be combined without a reduction order bias.
#pragma once

#include <cstdint>
#include <limits>

namespace dckpt::util {

/// Welford online mean/variance with min/max, mergeable across threads.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Combines two accumulators (Chan et al. parallel variance).
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Standard error of the mean; 0 for n < 2.
  double standard_error() const noexcept;

  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Half-width of the normal-approximation confidence interval around the
  /// mean. `z` defaults to 1.959964 (95%).
  double confidence_halfwidth(double z = 1.959964) const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Bernoulli proportion estimate with Wilson confidence interval -- used for
/// fatal-failure probabilities, which are often tiny (Wald CI would be 0).
class ProportionEstimate {
 public:
  void add(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }

  void merge(const ProportionEstimate& other) noexcept {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  std::uint64_t trials() const noexcept { return trials_; }
  std::uint64_t successes() const noexcept { return successes_; }

  double estimate() const noexcept {
    return trials_ ? static_cast<double>(successes_) /
                         static_cast<double>(trials_)
                   : 0.0;
  }

  /// Wilson score interval [lo, hi] at confidence z (default 95%).
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };
  Interval wilson_interval(double z = 1.959964) const noexcept;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace dckpt::util
