#include "util/csv.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace dckpt::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  write_raw(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) {
    throw std::invalid_argument("CsvWriter: row arity mismatch in " + path_);
  }
  write_raw(cells);
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_fixed(v, 9));
  write_row(row);
}

void CsvWriter::write_raw(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace dckpt::util
