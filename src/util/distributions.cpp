#include "util/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dckpt::util {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

double sample_standard_normal(Xoshiro256ss& rng) {
  const double u1 = rng.next_double_open_zero();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0 && std::isfinite(rate), "Exponential: rate must be > 0");
}

Exponential Exponential::from_mean(double mean_value) {
  require(mean_value > 0.0, "Exponential: mean must be > 0");
  return Exponential(1.0 / mean_value);
}

double Exponential::sample(Xoshiro256ss& rng) const {
  return -std::log(rng.next_double_open_zero()) / rate_;
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::variance() const { return 1.0 / (rate_ * rate_); }

double Exponential::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

std::string Exponential::name() const {
  return "Exponential(rate=" + std::to_string(rate_) + ")";
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0 && std::isfinite(shape), "Weibull: shape must be > 0");
  require(scale > 0.0 && std::isfinite(scale), "Weibull: scale must be > 0");
}

Weibull Weibull::from_mean(double shape, double mean_value) {
  require(mean_value > 0.0, "Weibull: mean must be > 0");
  require(shape > 0.0, "Weibull: shape must be > 0");
  // mean = scale * Gamma(1 + 1/shape)  =>  scale = mean / Gamma(1 + 1/shape)
  const double scale = mean_value / std::tgamma(1.0 + 1.0 / shape);
  return Weibull(shape, scale);
}

double Weibull::sample(Xoshiro256ss& rng) const {
  // Inverse CDF: x = scale * (-ln U)^(1/shape).
  const double u = rng.next_double_open_zero();
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

std::string Weibull::name() const {
  return "Weibull(shape=" + std::to_string(shape_) +
         ",scale=" + std::to_string(scale_) + ")";
}

std::unique_ptr<Distribution> Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0 && std::isfinite(sigma), "LogNormal: sigma must be > 0");
  require(std::isfinite(mu), "LogNormal: mu must be finite");
}

LogNormal LogNormal::from_mean(double sigma, double mean_value) {
  require(mean_value > 0.0, "LogNormal: mean must be > 0");
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
  return LogNormal(std::log(mean_value) - sigma * sigma / 2.0, sigma);
}

double LogNormal::sample(Xoshiro256ss& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double LogNormal::mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu_) /
                         (sigma_ * std::numbers::sqrt2));
}

std::string LogNormal::name() const {
  return "LogNormal(mu=" + std::to_string(mu_) +
         ",sigma=" + std::to_string(sigma_) + ")";
}

std::unique_ptr<Distribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

// ---------------------------------------------------------------- UniformReal

UniformReal::UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {
  require(lo >= 0.0 && hi > lo, "UniformReal: need 0 <= lo < hi");
}

double UniformReal::sample(Xoshiro256ss& rng) const {
  return lo_ + (hi_ - lo_) * rng.next_double();
}

double UniformReal::mean() const { return (lo_ + hi_) / 2.0; }

double UniformReal::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double UniformReal::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

std::string UniformReal::name() const {
  return "Uniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

std::unique_ptr<Distribution> UniformReal::clone() const {
  return std::make_unique<UniformReal>(*this);
}

}  // namespace dckpt::util
