// Leveled logging with a process-global threshold. Intentionally tiny:
// the simulator's hot path never logs; this exists for the runtime demo and
// for debugging protocol state machines (DCKPT_LOG(Debug) << ...).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace dckpt::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

const char* log_level_name(LogLevel level);

namespace detail {
/// Serializes a finished message to stderr (thread-safe).
void emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogLine() {
    if (enabled_) emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_line(LogLevel level) {
  return detail::LogLine(level, level >= log_level());
}

}  // namespace dckpt::util

#define DCKPT_LOG(severity) \
  ::dckpt::util::log_line(::dckpt::util::LogLevel::severity)
