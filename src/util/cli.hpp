// Small declarative command-line parser shared by examples and benches.
// Supports `--name value`, `--name=value` and boolean `--flag`, generates
// --help text, and validates unknown options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dckpt::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Declares an option with a default value (all values held as strings).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  /// A space-separated value may not itself start with `--` (catches
  /// `--mtbf --trials 5` typos); use `--opt=value` to force one through.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  /// Numeric getters validate the full token; a malformed or out-of-range
  /// value prints `program: option --name: invalid value 'x'` and exits(2)
  /// instead of leaking a raw std::stod exception out of the tool.
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments left after options.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dckpt::util
