// Probability distributions for failure-arrival modelling.
//
// The paper assumes exponentially distributed inter-failure times (constant
// hazard rate lambda = 1/MTBF). Field studies of HPC failure logs, cited in
// the paper's related work, favour Weibull with shape < 1; we implement both
// plus LogNormal so the simulator can quantify how far the exponential
// assumption stretches. Each distribution exposes its analytic mean and
// variance so statistical tests can assert sampler correctness.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace dckpt::util {

/// Interface for positive continuous distributions (inter-arrival times).
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample (always > 0, finite).
  virtual double sample(Xoshiro256ss& rng) const = 0;

  virtual double mean() const = 0;
  virtual double variance() const = 0;

  /// P[X <= x].
  virtual double cdf(double x) const = 0;

  virtual std::string name() const = 0;

  /// Deep copy (distributions are small immutable value objects).
  virtual std::unique_ptr<Distribution> clone() const = 0;
};

/// Exponential(rate). mean = 1/rate.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  /// Convenience: exponential with the given mean (MTBF).
  static Exponential from_mean(double mean_value);

  double sample(Xoshiro256ss& rng) const override;
  double mean() const override;
  double variance() const override;
  double cdf(double x) const override;
  std::string name() const override;
  std::unique_ptr<Distribution> clone() const override;

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape k, scale lambda). Sub-exponential hazard for k < 1.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  /// Weibull with the given shape whose mean equals `mean_value`.
  static Weibull from_mean(double shape, double mean_value);

  double sample(Xoshiro256ss& rng) const override;
  double mean() const override;
  double variance() const override;
  double cdf(double x) const override;
  std::string name() const override;
  std::unique_ptr<Distribution> clone() const override;

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// LogNormal(mu, sigma) of the underlying normal.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  /// LogNormal with the given sigma whose mean equals `mean_value`.
  static LogNormal from_mean(double sigma, double mean_value);

  double sample(Xoshiro256ss& rng) const override;
  double mean() const override;
  double variance() const override;
  double cdf(double x) const override;
  std::string name() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

/// Uniform(lo, hi), lo >= 0. Used for tests and synthetic workloads.
class UniformReal final : public Distribution {
 public:
  UniformReal(double lo, double hi);

  double sample(Xoshiro256ss& rng) const override;
  double mean() const override;
  double variance() const override;
  double cdf(double x) const override;
  std::string name() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Standard-normal sample via Box-Muller (single value, spare discarded).
double sample_standard_normal(Xoshiro256ss& rng);

}  // namespace dckpt::util
