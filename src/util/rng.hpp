// Deterministic, splittable pseudo-random number generation.
//
// Monte-Carlo experiments must be reproducible across runs and across
// parallel trial execution. We therefore implement our own small PRNG stack
// rather than relying on implementation-defined std:: distributions:
//
//  * SplitMix64   -- seed expander (Steele, Lea, Flood 2014).
//  * Xoshiro256ss -- xoshiro256** 1.0 (Blackman & Vigna 2018), the workhorse
//                    generator; 2^256-1 period, passes BigCrush.
//
// `Xoshiro256ss::jump()` advances the state by 2^128 steps, giving each
// parallel trial a provably non-overlapping subsequence from one master seed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dckpt::util {

/// Seed expander: turns one 64-bit seed into a stream of well-mixed words.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0. Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 (never all-zero).
  explicit Xoshiro256ss(std::uint64_t seed = 0x1dea5ea5edULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] -- safe as log() argument.
  double next_double_open_zero() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Bulk generation: writes the next `n` raw draws into `out`, exactly the
  /// words `n` calls of operator()() would return. Hoists the state into
  /// locals so wide fills pipeline instead of round-tripping through memory
  /// per draw -- the batched simulator pre-samples variate blocks with this.
  void fill(std::uint64_t* out, std::size_t n) noexcept;

  /// Advances the state by 2^128 generator steps.
  void jump() noexcept;

  /// Returns a generator `stream_index + 1` jumps ahead of `*this`,
  /// leaving `*this` untouched. Stream i and stream j never overlap.
  [[nodiscard]] Xoshiro256ss split(std::uint64_t stream_index) const noexcept;

  bool operator==(const Xoshiro256ss&) const noexcept = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dckpt::util
