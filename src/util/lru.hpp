// Bounded least-recently-used cache with hit/miss/eviction counters.
//
// Backs the evaluation service's memoized model answers: queries cluster on
// a handful of hot scenarios (the same platform asked about again and
// again), so a small LRU in front of the closed-form/Monte-Carlo evaluators
// absorbs most of the load. Counters are first-class because cache hit rate
// is an exported perf metric, not a debugging afterthought.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace dckpt::util {

template <typename Key, typename Value>
class LruCache {
 public:
  /// `capacity` must be >= 1; the cache never holds more entries than this.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("LruCache: zero capacity");
    }
  }

  /// Returns the cached value and marks it most-recently-used, or nullptr
  /// on a miss. The pointer stays valid until the next put().
  Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void put(const Key& key, Value value) {
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
  }

  /// True when `key` is cached. No promotion, no counter updates: admission
  /// control probes with this to classify a request as light (cached) or
  /// heavy without distorting the exported hit-rate metric.
  bool contains(const Key& key) const {
    return index_.find(key) != index_.end();
  }

  std::size_t size() const noexcept { return order_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dckpt::util
