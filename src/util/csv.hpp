// Tiny CSV writer (RFC-4180 quoting) so bench binaries can dump the exact
// series behind each reproduced figure for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dckpt::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);
  void write_row_numeric(const std::vector<double>& cells);

  const std::string& path() const noexcept { return path_; }

 private:
  void write_raw(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace dckpt::util
