// Minimal JSON value: build documents programmatically, serialize to a
// compact single line (JSONL-friendly), and parse them back. Numbers are
// written with shortest round-trip formatting (std::to_chars) so
// export -> parse -> compare is lossless. Not a general-purpose JSON
// library: no comments, no \u escapes beyond pass-through, doubles only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dckpt::util {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double n) : type_(Type::Number), number_(n) {}
  JsonValue(int n) : type_(Type::Number), number_(n) {}
  JsonValue(std::uint64_t n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::String), string_(s) {}
  JsonValue(std::string_view s) : type_(Type::String), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_object() const noexcept { return type_ == Type::Object; }
  bool is_array() const noexcept { return type_ == Type::Array; }

  /// Scalar accessors; throw std::invalid_argument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(JsonValue v);
  const std::vector<JsonValue>& items() const;
  std::size_t size() const;

  /// Object access. `at` throws std::out_of_range on a missing key.
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  const std::map<std::string, JsonValue>& members() const;

  /// Compact one-line serialization (no trailing newline).
  std::string dump() const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document; throws std::invalid_argument on malformed
/// input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Parses one JSON document per non-empty line.
std::vector<JsonValue> parse_jsonl(std::string_view text);

}  // namespace dckpt::util
