#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace dckpt::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace dckpt::util
