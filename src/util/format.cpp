#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace dckpt::util {

namespace {

std::string trim_trailing_zeros(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  auto last = s.find_last_not_of('0');
  if (s[last] == '.') --last;
  s.erase(last + 1);
  return s;
}

std::string short_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return trim_trailing_zeros(buf);
}

}  // namespace

std::string format_duration(double seconds) {
  struct Unit {
    double span;
    const char* suffix;
  };
  static constexpr std::array<Unit, 5> kUnits{{{86400.0, "day"},
                                               {3600.0, "h"},
                                               {60.0, "min"},
                                               {1.0, "s"},
                                               {1e-3, "ms"}}};
  if (seconds == 0.0) return "0s";
  const double magnitude = std::abs(seconds);
  for (const auto& unit : kUnits) {
    if (magnitude >= unit.span) {
      return short_number(seconds / unit.span) + unit.suffix;
    }
  }
  return short_number(seconds * 1e3) + "ms";
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_scientific(double value, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", significant - 1, value);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 6> kSuffixes{"B",   "KiB", "MiB",
                                                        "GiB", "TiB", "PiB"};
  std::size_t idx = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && idx + 1 < kSuffixes.size()) {
    v /= 1024.0;
    ++idx;
  }
  return short_number(v) + " " + kSuffixes[idx];
}

}  // namespace dckpt::util
