// Fixed-width text table renderer: the bench binaries print the paper's
// tables/series in aligned columns so figure data is readable in a terminal
// and diffable across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dckpt::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `decimals` places.
  void add_row_numeric(const std::vector<double>& cells, int decimals = 4);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header underline and 2-space column gutters.
  std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dckpt::util
