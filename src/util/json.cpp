#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace dckpt::util {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("JsonValue: not a ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literal; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, res.ptr);
}

void append_value(std::string& out, const JsonValue& v);

void append_container(std::string& out, const JsonValue& v) {
  if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& item : v.items()) {
      if (!first) out += ',';
      first = false;
      append_value(out, item);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, member] : v.members()) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, key);
      out += ':';
      append_value(out, member);
    }
    out += '}';
  }
}

void append_value(std::string& out, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::Null:
      out += "null";
      break;
    case JsonValue::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::Number:
      append_number(out, v.as_number());
      break;
    case JsonValue::Type::String:
      append_escaped(out, v.as_string());
      break;
    case JsonValue::Type::Array:
    case JsonValue::Type::Object:
      append_container(out, v);
      break;
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("parse_json: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out += c;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const auto hex = text_.substr(pos_, 4);
          unsigned code = 0;
          const auto res =
              std::from_chars(hex.data(), hex.data() + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != hex.data() + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      fail("bad number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) type_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) type_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) type_error("string");
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) type_error("array");
  array_.push_back(std::move(v));
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) type_error("array");
  return array_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("container");
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("object");
  return object_[key] = std::move(v);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::Object) type_error("object");
  auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::out_of_range("JsonValue: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  if (type_ != Type::Object) type_error("object");
  return object_;
}

std::string JsonValue::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::vector<JsonValue> parse_jsonl(std::string_view text) {
  std::vector<JsonValue> docs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) docs.push_back(parse_json(line));
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return docs;
}

}  // namespace dckpt::util
