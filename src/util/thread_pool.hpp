// Minimal fixed-size thread pool plus a static-chunking parallel_for.
//
// The Monte-Carlo runner fans independent trials across cores. Trials are
// embarrassingly parallel and coarse (milliseconds each), so a simple mutex-
// guarded queue is fully adequate; no work stealing needed. parallel_for
// deliberately uses deterministic static chunking so per-chunk RNG streams
// (split by chunk index) give bit-identical results at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dckpt::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task enqueued so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs body(chunk_index, begin, end) over [0, n) split into `chunks` ranges
/// on `pool`. Chunk boundaries depend only on (n, chunks), never on thread
/// count or scheduling: reproducibility contract for RNG splitting.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t chunk_index, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace dckpt::util
