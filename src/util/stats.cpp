#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dckpt::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::standard_error() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double RunningStats::confidence_halfwidth(double z) const noexcept {
  return z * standard_error();
}

ProportionEstimate::Interval ProportionEstimate::wilson_interval(
    double z) const noexcept {
  Interval interval;
  if (trials_ == 0) return interval;
  const double n = static_cast<double>(trials_);
  const double p = estimate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  interval.lo = std::max(0.0, center - spread);
  interval.hi = std::min(1.0, center + spread);
  return interval;
}

}  // namespace dckpt::util
