// 2-D domain-decomposed fault-tolerant runtime.
//
// The 1-D Coordinator demonstrates the full protocol feature set (staged
// commits etc.); this module shows the buddy-checkpointing substrate
// generalizes to the standard 2-D HPC decomposition: a grid of workers,
// each owning a block of a global field, exchanging one halo row/column
// with each of its four neighbours per step (Jacobi-style). Checkpointing,
// failure injection, coordinated rollback-recovery and the re-replication
// risk window work exactly as in the 1-D runtime, with one simplification:
// the grid commits each checkpoint set immediately (no staged exchange).
//
// Workers are numbered row-major; the buddy topology (pairs/triples over
// consecutive ids) is orthogonal to the grid geometry -- as in real
// deployments, where buddy assignment follows racks, not the domain. The
// chaos shadow oracle exploits exactly that: the same step/commit/refill
// machine predicts this coordinator's accounting (recoveries,
// rereplications, risk_steps) counter-for-counter.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/ring.hpp"
#include "runtime/coordinator.hpp"  // RunReport, FailureInjection
#include "util/thread_pool.hpp"

namespace dckpt::runtime {

/// Kernel over a 2-D block (row-major), with four pre-captured halo edges.
class GridKernel {
 public:
  virtual ~GridKernel() = default;

  /// Fills a block whose top-left cell is global (row0, col0).
  virtual void initialize(std::size_t row0, std::size_t col0,
                          std::size_t rows, std::size_t cols,
                          std::span<double> state) const = 0;

  /// One step. Halos hold the neighbouring edge values (cols entries for
  /// north/south, rows entries for west/east); domain boundary = 0.
  virtual void step(std::span<const double> previous, std::span<double> next,
                    std::size_t rows, std::size_t cols,
                    std::span<const double> north,
                    std::span<const double> south,
                    std::span<const double> west,
                    std::span<const double> east) const = 0;

  virtual std::string name() const = 0;
};

/// 5-point explicit heat diffusion; stable for c <= 0.25.
class HeatKernel2D final : public GridKernel {
 public:
  explicit HeatKernel2D(double coefficient = 0.2);

  void initialize(std::size_t row0, std::size_t col0, std::size_t rows,
                  std::size_t cols, std::span<double> state) const override;
  void step(std::span<const double> previous, std::span<double> next,
            std::size_t rows, std::size_t cols,
            std::span<const double> north, std::span<const double> south,
            std::span<const double> west,
            std::span<const double> east) const override;
  std::string name() const override;

 private:
  double coefficient_;
};

struct GridConfig {
  std::size_t grid_rows = 2;
  std::size_t grid_cols = 2;
  ckpt::Topology topology = ckpt::Topology::Pairs;
  std::size_t block_rows = 32;
  std::size_t block_cols = 32;
  std::uint64_t checkpoint_interval = 16;
  std::uint64_t total_steps = 64;
  std::size_t threads = 0;
  /// Re-replication delay: executed steps between a rollback and the refill
  /// of the replacement node's buddy storage. Same semantics as
  /// RuntimeConfig::rereplication_delay_steps -- while the refill is
  /// pending the victim's group cannot survive another member loss, and a
  /// committed checkpoint closes the window. 0 = refill immediately.
  std::uint64_t rereplication_delay_steps = 0;
  /// Retry-with-backoff policy for re-replication transfers (same semantics
  /// as RuntimeConfig::transfer_retry).
  ckpt::RetryPolicy transfer_retry;
  /// Silent-error verification cadence (same semantics as
  /// RuntimeConfig::verify_every). 0 = off.
  std::uint64_t verify_every = 0;
  /// Keep-last-l checkpoint retention (same semantics as
  /// RuntimeConfig::keep_last). Must be >= 1.
  std::size_t keep_last = 1;
  /// Differential-checkpoint stack size K (same semantics as
  /// RuntimeConfig::dcp_stack_size). 0 = every commit is full. Requires
  /// verify_every == 0 and keep_last == 1.
  std::uint64_t dcp_stack_size = 0;
  /// Differential block size in bytes (same semantics as
  /// RuntimeConfig::dcp_block_size).
  std::size_t dcp_block_size = ckpt::kDefaultDcpBlockSize;

  std::uint64_t nodes() const noexcept {
    return static_cast<std::uint64_t>(grid_rows) * grid_cols;
  }
  void validate() const;
};

class GridCoordinator {
 public:
  GridCoordinator(GridConfig config, std::unique_ptr<GridKernel> kernel);
  ~GridCoordinator();  // out of line: Block is incomplete here

  RunReport run(std::span<const FailureInjection> failures = {});

  /// Concatenated blocks, row-major per block, block order row-major.
  std::vector<double> global_state() const;

  const GridConfig& config() const noexcept { return config_; }

 private:
  struct Block;

  void checkpoint_all(RunReport& report);
  void delta_checkpoint_all(RunReport& report);
  void proactive_checkpoint(RunReport& report, std::uint64_t step);
  void rollback_all(RunReport& report, std::uint64_t step);
  void blank_restart(std::uint64_t node);
  void execute_step();
  std::vector<ckpt::BuddyStore*> store_directory();

  GridConfig config_;
  std::unique_ptr<GridKernel> kernel_;
  ckpt::GroupAssignment groups_;
  std::vector<std::unique_ptr<Block>> blocks_;
  util::ThreadPool pool_;
  std::vector<std::uint64_t> committed_hashes_;
  std::uint64_t committed_step_ = 0;
  bool has_commit_ = false;

  // Verification cadence: checkpoint periods since the last verification.
  std::uint64_t periods_since_verify_ = 0;

  // Differential-checkpoint state (see Coordinator): per-node block hash
  // arrays of the last committed image, chained layers since the last full
  // exchange, and the snapshot version of the current commit tip.
  std::vector<std::vector<std::uint64_t>> hash_arrays_;
  std::uint64_t dcp_layers_ = 0;
  std::uint64_t dcp_tip_version_ = 0;

  // Refill/retry/degraded-mode machine shared with the 1-D coordinator.
  RecoveryEngine engine_;
};

}  // namespace dckpt::runtime
