// Umbrella header for the mini fault-tolerant runtime built on the buddy
// checkpointing substrate.
#pragma once

#include "runtime/coordinator.hpp"  // IWYU pragma: export
#include "runtime/grid.hpp"         // IWYU pragma: export
#include "runtime/kernel.hpp"       // IWYU pragma: export
#include "runtime/worker.hpp"       // IWYU pragma: export
