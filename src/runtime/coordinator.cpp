#include "runtime/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/dcp.hpp"

namespace dckpt::runtime {

void RuntimeConfig::validate() const {
  const auto gs =
      static_cast<std::uint64_t>(topology == ckpt::Topology::Pairs ? 2 : 3);
  if (nodes == 0 || nodes % gs != 0) {
    throw std::invalid_argument(
        "RuntimeConfig: nodes must be a positive multiple of the group size");
  }
  if (cells_per_node == 0) {
    throw std::invalid_argument("RuntimeConfig: cells_per_node must be > 0");
  }
  if (checkpoint_interval == 0) {
    throw std::invalid_argument(
        "RuntimeConfig: checkpoint_interval must be > 0");
  }
  if (total_steps == 0) {
    throw std::invalid_argument("RuntimeConfig: total_steps must be > 0");
  }
  if (staging_steps > checkpoint_interval) {
    throw std::invalid_argument(
        "RuntimeConfig: staging_steps must be <= checkpoint_interval");
  }
  if (keep_last == 0) {
    throw std::invalid_argument("RuntimeConfig: keep_last must be >= 1");
  }
  if (dcp_stack_size > 0) {
    if (dcp_block_size == 0) {
      throw std::invalid_argument(
          "RuntimeConfig: dcp_block_size must be > 0 when dcp is enabled");
    }
    // Chains hang off the single committed set: a staged exchange, a
    // rollback ladder deeper than 1, or a verification-triggered rollback
    // would all need per-set chains the substrate does not model.
    if (staging_steps != 0 || verify_every != 0 || keep_last != 1) {
      throw std::invalid_argument(
          "RuntimeConfig: dcp requires staging_steps == 0, verify_every == 0 "
          "and keep_last == 1");
    }
  }
  transfer_retry.validate();
}

std::uint64_t state_hash(std::span<const double> state) {
  return ckpt::fnv1a(std::as_bytes(state));
}

void validate_injections(std::span<const FailureInjection> failures,
                         std::uint64_t nodes, std::uint64_t total_steps,
                         ckpt::Topology topology,
                         std::uint64_t verify_every,
                         std::uint64_t dcp_stack_size) {
  const ckpt::GroupAssignment groups(nodes, topology);
  for (const auto& failure : failures) {
    if (failure.node >= nodes) {
      throw std::invalid_argument("FailureInjection: node out of range");
    }
    if (failure.step >= total_steps) {
      throw std::invalid_argument("FailureInjection: step out of range");
    }
    if (failure.kind == InjectionKind::SilentError && verify_every == 0) {
      // With verification off, a silent error can never be observed and
      // the schedule would pass vacuously.
      throw std::invalid_argument(
          "FailureInjection: silent error requires verification enabled "
          "(verify_every > 0)");
    }
    if (failure.kind == InjectionKind::TornDelta) {
      // A chain never grows past K - 1 layers, so a depth outside
      // [1, K - 1] (or any TornDelta with dcp off) could never tear
      // anything and the schedule would pass vacuously.
      if (dcp_stack_size == 0) {
        throw std::invalid_argument(
            "FailureInjection: torn delta requires dcp enabled "
            "(dcp_stack_size > 0)");
      }
      if (failure.window == 0 || failure.window >= dcp_stack_size) {
        throw std::invalid_argument(
            "FailureInjection: torn-delta depth must be in [1, "
            "dcp_stack_size - 1]");
      }
    }
    if (failure.kind == InjectionKind::CorruptReplica) {
      if (failure.owner >= nodes) {
        throw std::invalid_argument("FailureInjection: owner out of range");
      }
      // The holder must be a node that actually stores the owner's
      // committed image under this topology, or the injection could never
      // damage anything and the schedule would pass vacuously.
      const bool holds =
          topology == ckpt::Topology::Pairs
              ? (failure.node == failure.owner ||
                 failure.node == groups.preferred_buddy(failure.owner))
              : (failure.node == groups.preferred_buddy(failure.owner) ||
                 failure.node == groups.secondary_buddy(failure.owner));
      if (!holds) {
        throw std::invalid_argument(
            "FailureInjection: corrupt target does not hold the owner's "
            "replica");
      }
    }
  }
}

std::uint64_t consume_alarms(std::vector<FailureInjection>& pending,
                             std::uint64_t step) {
  std::uint64_t fired = 0;
  for (auto it = pending.begin(); it != pending.end();) {
    if (it->kind == InjectionKind::Alarm && it->step == step) {
      ++fired;
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
  return fired;
}

void score_predictions(std::span<const FailureInjection> failures,
                       RunReport& report) {
  std::vector<const FailureInjection*> losses;
  std::vector<const FailureInjection*> alarms;
  for (const auto& failure : failures) {
    if (failure.kind == InjectionKind::NodeLoss) losses.push_back(&failure);
    if (failure.kind == InjectionKind::Alarm) alarms.push_back(&failure);
  }
  const auto by_step = [](const FailureInjection* a,
                          const FailureInjection* b) {
    return a->step < b->step;
  };
  std::stable_sort(losses.begin(), losses.end(), by_step);
  std::stable_sort(alarms.begin(), alarms.end(), by_step);
  std::vector<bool> consumed(losses.size(), false);
  for (const FailureInjection* alarm : alarms) {
    for (std::size_t i = 0; i < losses.size(); ++i) {
      if (consumed[i] || losses[i]->node != alarm->node) continue;
      if (losses[i]->step < alarm->step) continue;
      if (losses[i]->step > alarm->step + alarm->window) continue;
      consumed[i] = true;
      ++report.true_predictions;
      break;
    }
  }
  for (std::size_t i = 0; i < losses.size(); ++i) {
    if (!consumed[i]) ++report.missed_failures;
  }
}

Coordinator::Coordinator(RuntimeConfig config, std::unique_ptr<Kernel> kernel)
    : config_(config), kernel_(std::move(kernel)),
      groups_(config.nodes, config.topology), pool_(config.threads),
      committed_hashes_(config.nodes, 0),
      engine_(groups_, config.rereplication_delay_steps,
              config.transfer_retry, config.keep_last) {
  config_.validate();
  if (!kernel_) throw std::invalid_argument("Coordinator: null kernel");
  workers_.reserve(config_.nodes);
  for (std::uint64_t node = 0; node < config_.nodes; ++node) {
    workers_.emplace_back(node, config_.cells_per_node,
                          node * config_.cells_per_node, *kernel_,
                          config_.keep_last);
  }
}

std::vector<ckpt::BuddyStore*> Coordinator::store_directory() {
  std::vector<ckpt::BuddyStore*> stores;
  stores.reserve(workers_.size());
  for (Worker& worker : workers_) stores.push_back(&worker.store());
  return stores;
}

void Coordinator::execute_step() {
  // Jacobi halo capture: all ghosts read before any worker is updated, so
  // the result is independent of stepping order (and thread count).
  const std::size_t n = workers_.size();
  const std::size_t right_idx =
      kernel_->right_halo_index(config_.cells_per_node);
  const std::size_t left_idx =
      kernel_->left_halo_index(config_.cells_per_node);
  std::vector<double> left_ghost(n, 0.0), right_ghost(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    left_ghost[i] = (i == 0) ? 0.0 : workers_[i - 1].value_at(right_idx);
    right_ghost[i] = (i + 1 == n) ? 0.0 : workers_[i + 1].value_at(left_idx);
  }
  util::parallel_for_chunked(
      pool_, n, pool_.thread_count(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          workers_[i].step(*kernel_, left_ghost[i], right_ghost[i]);
        }
      });
}

void Coordinator::begin_checkpoint(std::uint64_t step) {
  // Every worker snapshots and stages its image on its buddies (and
  // locally, for pairs). Snapshots are cheap COW captures; the bytes "sent"
  // over the (virtual) interconnect are the remote stagings.
  std::vector<ckpt::Snapshot> images;
  images.reserve(workers_.size());
  for (Worker& worker : workers_) images.push_back(worker.take_snapshot());

  staging_version_ = images.front().version();
  staging_snapshot_step_ = step;
  staged_bytes_ = 0;
  staging_hashes_.assign(workers_.size(), 0);
  const auto epochs = engine_.current_epochs();
  staging_epochs_.assign(epochs.begin(), epochs.end());
  if (config_.dcp_stack_size > 0) {
    // Refresh the per-node hash arrays for the full base these deltas will
    // chain on. Safe to overwrite here: dcp forbids staging, so this
    // snapshot set commits before anything can roll back past it.
    hash_arrays_.assign(workers_.size(), {});
  }
  for (std::uint64_t node = 0; node < workers_.size(); ++node) {
    const ckpt::Snapshot& image = images[node];
    // Hash before staging, so every filed copy carries the cached digest
    // the restore paths verify against.
    staging_hashes_[node] = image.content_hash();
    if (config_.dcp_stack_size > 0) {
      hash_arrays_[node] = ckpt::block_hashes(image, config_.dcp_block_size);
    }
    if (config_.topology == ckpt::Topology::Pairs) {
      workers_[node].store().stage(image);  // local copy
      workers_[groups_.preferred_buddy(node)].store().stage(image);
      staged_bytes_ += image.size_bytes();
    } else {
      workers_[groups_.preferred_buddy(node)].store().stage(image);
      workers_[groups_.secondary_buddy(node)].store().stage(image);
      staged_bytes_ += 2 * image.size_bytes();
    }
  }
  staging_ = true;
}

void Coordinator::commit_checkpoint(RunReport& report) {
  // Integrity gate before promotion: every node's staged image on its
  // preferred buddy must still hash to its snapshot-time digest. Staging is
  // process-local here, so a mismatch is a broken invariant, not a chaos
  // outcome the run could survive.
  for (std::uint64_t node = 0; node < workers_.size(); ++node) {
    const auto staged =
        workers_[groups_.preferred_buddy(node)].store().staged_for(node);
    if (!staged || !staged->verify(staging_hashes_[node])) {
      throw std::logic_error(
          "commit_checkpoint: staged image failed verification");
    }
  }
  // Atomic promotion of the completed set on every node.
  for (Worker& worker : workers_) worker.store().promote(staging_version_);
  committed_hashes_ = staging_hashes_;
  committed_step_ = staging_snapshot_step_;
  has_commit_ = true;
  staging_ = false;
  report.bytes_replicated += staged_bytes_;
  ++report.checkpoints;
  ++report.full_commits;
  // A full exchange restarts every dcp lineage: promote() dropped the old
  // chains, and the hash arrays captured at begin_checkpoint() describe the
  // new base the next deltas diff against.
  dcp_layers_ = 0;
  dcp_tip_version_ = staging_version_;
  // A committed exchange re-creates every replica: pending refills are
  // subsumed, the risk window closes, lost nodes rejoin, and the set joins
  // the rollback ladder with its snapshot-time corruption epochs.
  engine_.on_commit(committed_step_, committed_hashes_, staging_epochs_);
}

void Coordinator::commit_delta_checkpoint(RunReport& report,
                                          std::uint64_t step) {
  // Differential commit: every worker snapshots, diffs against the cached
  // hash array of the last committed image, and appends the resulting layer
  // on the same replica holders a full image would go to. Blocking (like
  // staging_steps == 0) and atomic from the run's point of view: the commit
  // markers advance to the new tip.
  std::vector<ckpt::Snapshot> images;
  images.reserve(workers_.size());
  for (Worker& worker : workers_) images.push_back(worker.take_snapshot());

  for (std::uint64_t node = 0; node < workers_.size(); ++node) {
    const ckpt::Snapshot& image = images[node];
    const ckpt::BlockDelta layer = ckpt::make_block_delta(
        hash_arrays_[node], dcp_tip_version_, committed_hashes_[node], image,
        config_.dcp_block_size);
    if (config_.topology == ckpt::Topology::Pairs) {
      workers_[node].store().append_delta(layer);  // local copy
      workers_[groups_.preferred_buddy(node)].store().append_delta(layer);
      report.bytes_replicated += layer.delta_bytes();
    } else {
      workers_[groups_.preferred_buddy(node)].store().append_delta(layer);
      workers_[groups_.secondary_buddy(node)].store().append_delta(layer);
      report.bytes_replicated += 2 * layer.delta_bytes();
    }
    committed_hashes_[node] = image.content_hash();
    hash_arrays_[node] = ckpt::block_hashes(image, config_.dcp_block_size);
  }
  committed_step_ = step;
  dcp_tip_version_ = images.front().version();
  ++dcp_layers_;
  ++report.checkpoints;
  ++report.delta_commits;
  // Deliberately *not* engine_.on_commit(): a delta exchange moves only
  // dirty blocks, so it does not re-create every replica -- it neither
  // closes a pending risk window, clears pending refills, nor readmits
  // lost nodes. Only a full exchange does.
}

void Coordinator::proactive_checkpoint(RunReport& report, std::uint64_t step) {
  // Skip-if-just-committed: nothing new to save when the committed set (or
  // the implicit initial checkpoint at step 0) already captures this state.
  if (step == 0 || (has_commit_ && committed_step_ == step)) return;
  // The proactive commit captures a strictly newer state than any staged
  // set, superseding it; drop the in-flight exchange and run a blocking
  // snapshot-and-promote, exactly the staging_steps == 0 path.
  staging_ = false;
  for (Worker& worker : workers_) worker.store().discard_staged();
  begin_checkpoint(step);
  commit_checkpoint(report);
  ++report.proactive_ckpts;
}

void Coordinator::rollback_all(RunReport& report, std::uint64_t step) {
  ++report.rollbacks;
  // Any in-flight staging set is lost with its victims; abandon it and fall
  // back to the last committed set (it will be retaken on replay).
  staging_ = false;
  if (!has_commit_) {
    // The starting configuration is the implicit first checkpoint set.
    for (Worker& worker : workers_) {
      worker.store().discard_staged();
      worker.initialize(*kernel_);
    }
    // Re-initializing clears any latent corruption too.
    engine_.reset_to_initial();
    return;
  }
  const auto stores = store_directory();
  engine_.rollback_and_refill(
      step, stores, committed_hashes_,
      [&](std::uint64_t node, const ckpt::Snapshot& image) {
        workers_[node].restore(image);
      },
      [&](std::uint64_t node) { workers_[node].initialize(*kernel_); },
      report);
}

RunReport Coordinator::run(std::span<const FailureInjection> failures) {
  validate_injections(failures, config_.nodes, config_.total_steps,
                      config_.topology, config_.verify_every,
                      config_.dcp_stack_size);
  RunReport report;
  std::vector<FailureInjection> pending(failures.begin(), failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const FailureInjection& a, const FailureInjection& b) {
                     return a.step < b.step;
                   });

  score_predictions(failures, report);

  const auto stores = store_directory();
  std::uint64_t step = 0;
  while (step < config_.total_steps) {
    // Predictor alarms fire first: the proactive checkpoint they trigger
    // commits before this step's loss (if any) lands, which is exactly how
    // a same-step true prediction saves the work since the last commit.
    const std::uint64_t alarms = consume_alarms(pending, step);
    if (alarms > 0) {
      report.alarms_raised += alarms;
      proactive_checkpoint(report, step);
    }
    // Fire the injections scheduled for this step (each at most once).
    // NodeLoss wipes the victim's memory and buddy storage; the rollback
    // then restores every node through its replica ladder -- skipping
    // corrupt images, failing over to later candidates, and
    // blank-restarting (degraded mode) any node whose ladder is exhausted.
    const bool failed = engine_.fire_injections(
        pending, step, stores,
        [&](std::uint64_t node) { workers_[node].destroy(); },
        [&](std::uint64_t node) { workers_[node].inject_sdc(); }, report);
    if (failed) {
      rollback_all(report, step);
      const std::uint64_t resume = has_commit_ ? committed_step_ : 0;
      report.replayed_steps += step - resume;
      step = resume;
      continue;
    }

    execute_step();
    ++step;
    ++report.steps_executed;
    // Risk-window / refill / degraded-mode bookkeeping: due refills deliver
    // (consuming any armed transfer faults, retrying with backoff), and
    // every step some node runs blank-restarted counts as degraded.
    engine_.tick(stores, committed_hashes_, report);
    // Commit an in-flight set before possibly starting the next one (the
    // two coincide when staging_steps == checkpoint_interval).
    if (staging_ && step == staging_commit_at_) {
      commit_checkpoint(report);
    }
    const bool boundary = step % config_.checkpoint_interval == 0 &&
                          step < config_.total_steps;
    if (config_.verify_every > 0) {
      // Verification runs every `verify_every` checkpoint periods, after
      // the period's commit and before the next set stages -- plus one
      // final audit at the end of the run, so a late silent error cannot
      // escape into the final answer undetected.
      if (boundary) ++periods_since_verify_;
      const bool due =
          (boundary && periods_since_verify_ >= config_.verify_every) ||
          step == config_.total_steps;
      if (due) {
        periods_since_verify_ = 0;
        const auto action = engine_.verify_checkpoints(
            step, stores, committed_hashes_,
            [&](std::uint64_t node, const ckpt::Snapshot& image) {
              workers_[node].restore(image);
            },
            [&](std::uint64_t node) { workers_[node].initialize(*kernel_); },
            report);
        if (action.rolled_back) {
          staging_ = false;
          committed_step_ = action.resume_step;
          if (action.to_initial) {
            has_commit_ = false;
            std::fill(committed_hashes_.begin(), committed_hashes_.end(),
                      std::uint64_t{0});
          }
          report.replayed_steps += step - action.resume_step;
          step = action.resume_step;
          continue;
        }
      }
    }
    if (boundary && !staging_) {
      // dcp cadence: between full exchanges, commit block deltas -- but
      // only while the chain has room (K - 1 layers) and the platform is
      // whole. A lost node or a pending refill forces a full exchange,
      // because only a full commit re-creates every replica and closes the
      // risk window (deltas skip engine_.on_commit()).
      const bool delta_commit =
          config_.dcp_stack_size > 0 && has_commit_ &&
          dcp_layers_ + 1 < config_.dcp_stack_size && !engine_.any_lost() &&
          !engine_.refill_pending();
      if (delta_commit) {
        commit_delta_checkpoint(report, step);
      } else {
        begin_checkpoint(step);
        staging_commit_at_ = step + config_.staging_steps;
        if (config_.staging_steps == 0) commit_checkpoint(report);
      }
    }
  }

  for (const Worker& worker : workers_) {
    report.cow_copies += worker.cow_copies();
  }
  report.final_hash = state_hash(global_state());
  return report;
}

std::vector<double> Coordinator::global_state() const {
  std::vector<double> state;
  state.reserve(config_.nodes * config_.cells_per_node);
  for (const Worker& worker : workers_) {
    const auto block = worker.state();
    state.insert(state.end(), block.begin(), block.end());
  }
  return state;
}

}  // namespace dckpt::runtime
