#include "runtime/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/recovery.hpp"

namespace dckpt::runtime {

void RuntimeConfig::validate() const {
  const auto gs =
      static_cast<std::uint64_t>(topology == ckpt::Topology::Pairs ? 2 : 3);
  if (nodes == 0 || nodes % gs != 0) {
    throw std::invalid_argument(
        "RuntimeConfig: nodes must be a positive multiple of the group size");
  }
  if (cells_per_node == 0) {
    throw std::invalid_argument("RuntimeConfig: cells_per_node must be > 0");
  }
  if (checkpoint_interval == 0) {
    throw std::invalid_argument(
        "RuntimeConfig: checkpoint_interval must be > 0");
  }
  if (total_steps == 0) {
    throw std::invalid_argument("RuntimeConfig: total_steps must be > 0");
  }
  if (staging_steps > checkpoint_interval) {
    throw std::invalid_argument(
        "RuntimeConfig: staging_steps must be <= checkpoint_interval");
  }
}

std::uint64_t state_hash(std::span<const double> state) {
  return ckpt::fnv1a(std::as_bytes(state));
}

void validate_injections(std::span<const FailureInjection> failures,
                         std::uint64_t nodes, std::uint64_t total_steps) {
  for (const auto& failure : failures) {
    if (failure.node >= nodes) {
      throw std::invalid_argument("FailureInjection: node out of range");
    }
    if (failure.step >= total_steps) {
      throw std::invalid_argument("FailureInjection: step out of range");
    }
  }
}

Coordinator::Coordinator(RuntimeConfig config, std::unique_ptr<Kernel> kernel)
    : config_(config), kernel_(std::move(kernel)),
      groups_(config.nodes, config.topology), pool_(config.threads),
      committed_hashes_(config.nodes, 0) {
  config_.validate();
  if (!kernel_) throw std::invalid_argument("Coordinator: null kernel");
  workers_.reserve(config_.nodes);
  for (std::uint64_t node = 0; node < config_.nodes; ++node) {
    workers_.emplace_back(node, config_.cells_per_node,
                          node * config_.cells_per_node, *kernel_);
  }
}

std::vector<ckpt::BuddyStore*> Coordinator::store_directory() {
  std::vector<ckpt::BuddyStore*> stores;
  stores.reserve(workers_.size());
  for (Worker& worker : workers_) stores.push_back(&worker.store());
  return stores;
}

void Coordinator::execute_step() {
  // Jacobi halo capture: all ghosts read before any worker is updated, so
  // the result is independent of stepping order (and thread count).
  const std::size_t n = workers_.size();
  const std::size_t right_idx =
      kernel_->right_halo_index(config_.cells_per_node);
  const std::size_t left_idx =
      kernel_->left_halo_index(config_.cells_per_node);
  std::vector<double> left_ghost(n, 0.0), right_ghost(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    left_ghost[i] = (i == 0) ? 0.0 : workers_[i - 1].value_at(right_idx);
    right_ghost[i] = (i + 1 == n) ? 0.0 : workers_[i + 1].value_at(left_idx);
  }
  util::parallel_for_chunked(
      pool_, n, pool_.thread_count(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          workers_[i].step(*kernel_, left_ghost[i], right_ghost[i]);
        }
      });
}

void Coordinator::begin_checkpoint(std::uint64_t step) {
  // Every worker snapshots and stages its image on its buddies (and
  // locally, for pairs). Snapshots are cheap COW captures; the bytes "sent"
  // over the (virtual) interconnect are the remote stagings.
  std::vector<ckpt::Snapshot> images;
  images.reserve(workers_.size());
  for (Worker& worker : workers_) images.push_back(worker.take_snapshot());

  staging_version_ = images.front().version();
  staging_snapshot_step_ = step;
  staged_bytes_ = 0;
  staging_hashes_.assign(workers_.size(), 0);
  for (std::uint64_t node = 0; node < workers_.size(); ++node) {
    const ckpt::Snapshot& image = images[node];
    if (config_.topology == ckpt::Topology::Pairs) {
      workers_[node].store().stage(image);  // local copy
      workers_[groups_.preferred_buddy(node)].store().stage(image);
      staged_bytes_ += image.size_bytes();
    } else {
      workers_[groups_.preferred_buddy(node)].store().stage(image);
      workers_[groups_.secondary_buddy(node)].store().stage(image);
      staged_bytes_ += 2 * image.size_bytes();
    }
    staging_hashes_[node] = image.content_hash();
  }
  staging_ = true;
}

void Coordinator::commit_checkpoint(RunReport& report) {
  // Atomic promotion of the completed set on every node.
  for (Worker& worker : workers_) worker.store().promote(staging_version_);
  committed_hashes_ = staging_hashes_;
  committed_step_ = staging_snapshot_step_;
  has_commit_ = true;
  staging_ = false;
  report.bytes_replicated += staged_bytes_;
  ++report.checkpoints;
  // A committed exchange re-creates every replica: any pending refill is
  // subsumed and the risk window closes.
  pending_refill_.clear();
}

void Coordinator::rollback_all(RunReport& report) {
  ++report.rollbacks;
  if (!has_commit_) {
    // The starting configuration is the implicit first checkpoint set.
    for (Worker& worker : workers_) {
      worker.store().discard_staged();
      worker.initialize(*kernel_);
    }
    return;
  }
  const auto stores = store_directory();
  for (Worker& worker : workers_) {
    worker.store().discard_staged();
    // Prefer the local copy (pairs); otherwise fetch from a group peer.
    auto local = worker.store().committed_for(worker.id());
    if (!local) ++report.recoveries;
    const ckpt::Snapshot image =
        local ? *local
              : *ckpt::locate_replica(worker.id(), groups_, stores)
                     .committed_for(worker.id());
    if (image.content_hash() != committed_hashes_[worker.id()]) {
      throw std::runtime_error("rollback: committed image hash mismatch");
    }
    worker.restore(image);
  }
}

RunReport Coordinator::run(std::span<const FailureInjection> failures) {
  validate_injections(failures, config_.nodes, config_.total_steps);
  RunReport report;
  std::vector<FailureInjection> pending(failures.begin(), failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const FailureInjection& a, const FailureInjection& b) {
                     return a.step < b.step;
                   });

  std::uint64_t step = 0;
  while (step < config_.total_steps) {
    // Fire the injections scheduled for this step (each at most once).
    // destroy() wipes the victim's memory and buddy storage; the rollback
    // below then restores *every* node from the last committed set -- the
    // victim necessarily from a surviving peer replica (recovery), the
    // survivors from their local copy when the topology keeps one.
    bool failed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step) {
        workers_[it->node].destroy();
        ++report.failures;
        failed = true;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    if (failed) {
      // Any in-flight staging set is lost with its victims; abandon it and
      // fall back to the last committed set (it will be retaken on replay).
      staging_ = false;
      pending_refill_.clear();
      try {
        rollback_all(report);
        if (has_commit_) {
          // Re-replicate what the victims were storing for their peers, so
          // the group can survive the next failure (this is the action whose
          // duration defines the model's risk window). With a configured
          // delay the refill completes only after `rereplication_delay_steps`
          // executed steps -- until then the group is one hit from fatal.
          std::vector<std::uint64_t> empty;
          for (Worker& worker : workers_) {
            if (worker.store().committed_count() == 0) {
              empty.push_back(worker.id());
            }
          }
          if (config_.rereplication_delay_steps == 0) {
            const auto stores = store_directory();
            for (const std::uint64_t node : empty) {
              ckpt::restore_replicas(node, groups_, stores);
              ++report.rereplications;
            }
          } else {
            pending_refill_ = std::move(empty);
            refill_due_steps_ = config_.rereplication_delay_steps;
          }
        }
      } catch (const std::runtime_error& error) {
        report.fatal = true;
        report.fatal_reason = error.what();
        return report;
      }
      const std::uint64_t resume = has_commit_ ? committed_step_ : 0;
      report.replayed_steps += step - resume;
      step = resume;
      continue;
    }

    execute_step();
    ++step;
    ++report.steps_executed;
    // Tick the open risk window: once the delay elapses the replacement
    // nodes' buddy storage is refilled from the surviving replicas.
    if (!pending_refill_.empty()) {
      ++report.risk_steps;
      if (--refill_due_steps_ == 0) {
        const auto stores = store_directory();
        for (const std::uint64_t node : pending_refill_) {
          ckpt::restore_replicas(node, groups_, stores);
          ++report.rereplications;
        }
        pending_refill_.clear();
      }
    }
    // Commit an in-flight set before possibly starting the next one (the
    // two coincide when staging_steps == checkpoint_interval).
    if (staging_ && step == staging_commit_at_) {
      commit_checkpoint(report);
    }
    if (step % config_.checkpoint_interval == 0 &&
        step < config_.total_steps && !staging_) {
      begin_checkpoint(step);
      staging_commit_at_ = step + config_.staging_steps;
      if (config_.staging_steps == 0) commit_checkpoint(report);
    }
  }

  for (const Worker& worker : workers_) {
    report.cow_copies += worker.cow_copies();
  }
  report.final_hash = state_hash(global_state());
  return report;
}

std::vector<double> Coordinator::global_state() const {
  std::vector<double> state;
  state.reserve(config_.nodes * config_.cells_per_node);
  for (const Worker& worker : workers_) {
    const auto block = worker.state();
    state.insert(state.end(), block.begin(), block.end());
  }
  return state;
}

}  // namespace dckpt::runtime
