// Application kernels for the mini fault-tolerant runtime.
//
// The runtime executes 1-D domain-decomposed iterative kernels: each worker
// owns a contiguous block of cells and exchanges one halo cell with each
// neighbour per step (Jacobi-style, so execution is deterministic under any
// scheduling). This is the classic shape of the HPC applications the paper
// targets, small enough to replay in tests.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace dckpt::runtime {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Fills a worker's block with its initial condition. `global_offset` is
  /// the index of the block's first cell in the global domain.
  virtual void initialize(std::size_t global_offset,
                          std::span<double> state) const = 0;

  /// Advances one block by one step. `left_ghost`/`right_ghost` are the
  /// neighbouring halo values (or boundary values at the domain edges),
  /// captured before any block was updated.
  virtual void step(std::span<const double> previous, std::span<double> next,
                    double left_ghost, double right_ghost) const = 0;

  /// Index (within a block of `cells` doubles) of the value a *left*
  /// neighbour needs as its right ghost. Default: the first cell. Kernels
  /// that pack several fields into the state (e.g. two time levels)
  /// override these to point into the right field.
  virtual std::size_t left_halo_index(std::size_t cells) const {
    (void)cells;
    return 0;
  }
  /// Index of the value a *right* neighbour needs as its left ghost.
  virtual std::size_t right_halo_index(std::size_t cells) const {
    return cells - 1;
  }

  virtual std::string name() const = 0;
};

/// Explicit heat diffusion: u'[i] = u[i] + c (u[i-1] - 2 u[i] + u[i+1]).
/// Stable for c <= 0.5; boundaries are fixed at 0.
class HeatKernel final : public Kernel {
 public:
  explicit HeatKernel(double coefficient = 0.25);

  void initialize(std::size_t global_offset,
                  std::span<double> state) const override;
  void step(std::span<const double> previous, std::span<double> next,
            double left_ghost, double right_ghost) const override;
  std::string name() const override;

 private:
  double coefficient_;
};

/// Second-order wave equation (leapfrog): the block packs two time levels,
/// [u(t) | u(t-1)], each of cells/2 values. Fixed (reflecting) boundaries.
///   u(t+1)[i] = 2 u(t)[i] - u(t-1)[i] + c^2 (u(t)[i-1] - 2 u(t)[i] + u(t)[i+1])
/// Stable for |c| <= 1. Exercises kernels whose halo is not the block edge.
class WaveKernel final : public Kernel {
 public:
  explicit WaveKernel(double courant = 0.5);

  void initialize(std::size_t global_offset,
                  std::span<double> state) const override;
  void step(std::span<const double> previous, std::span<double> next,
            double left_ghost, double right_ghost) const override;
  std::size_t left_halo_index(std::size_t cells) const override;
  std::size_t right_halo_index(std::size_t cells) const override;
  std::string name() const override;

 private:
  double courant_;
};

/// Trivial kernel for tests: every cell counts its steps (ghost-independent),
/// so the expected state after k steps is closed-form.
class CounterKernel final : public Kernel {
 public:
  void initialize(std::size_t global_offset,
                  std::span<double> state) const override;
  void step(std::span<const double> previous, std::span<double> next,
            double left_ghost, double right_ghost) const override;
  std::string name() const override;
};

}  // namespace dckpt::runtime
