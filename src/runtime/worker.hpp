// One runtime "node": a block of application state backed by a PageStore
// (so checkpoints get real COW semantics) plus the node's buddy storage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/page_store.hpp"
#include "runtime/kernel.hpp"

namespace dckpt::runtime {

class Worker {
 public:
  /// `retain_sets` is the buddy store's keep-last-l retention depth.
  Worker(std::uint64_t id, std::size_t cells, std::size_t global_offset,
         const Kernel& kernel, std::size_t retain_sets = 1);

  std::uint64_t id() const noexcept { return id_; }
  std::size_t cells() const noexcept { return cells_; }

  /// (Re)initializes the state from the kernel's initial condition.
  void initialize(const Kernel& kernel);

  /// Applies one kernel step given the pre-step ghost cells.
  void step(const Kernel& kernel, double left_ghost, double right_ghost);

  /// Single cell value (pre-step), used for the neighbours' halos; the
  /// kernel's {left,right}_halo_index decides which cell a neighbour needs.
  double value_at(std::size_t cell) const;

  /// Full state copy (tests / final verification).
  std::vector<double> state() const;

  /// Checkpoint image of the current state.
  ckpt::Snapshot take_snapshot();

  /// Rolls the state back to a snapshot.
  void restore(const ckpt::Snapshot& image);

  /// Simulates node loss: memory content is destroyed (overwritten with a
  /// poison pattern) and the buddy storage is emptied.
  void destroy();

  /// Silent data corruption: flips one bit pattern (low mantissa byte of
  /// cell 0) in live memory through the COW write path. Unlike destroy()
  /// this leaves the node running -- the damage is latent and gets captured
  /// into every subsequent snapshot until a restore overwrites it.
  void inject_sdc();

  ckpt::BuddyStore& store() noexcept { return store_; }
  const ckpt::BuddyStore& store() const noexcept { return store_; }

  /// Replaces the buddy storage with an empty one (replacement node).
  void reset_store();

  std::uint64_t cow_copies() const noexcept { return memory_.cow_copies(); }

 private:
  void load(std::span<double> out) const;
  void save(std::span<const double> data);

  std::uint64_t id_;
  std::size_t cells_;
  std::size_t global_offset_;
  std::size_t retain_sets_;
  ckpt::PageStore memory_;
  ckpt::BuddyStore store_;
  std::vector<double> scratch_prev_;
  std::vector<double> scratch_next_;
};

}  // namespace dckpt::runtime
