// The corruption-tolerant rollback/refill machine shared by both runtime
// coordinators (1-D chain and 2-D grid).
//
// The two coordinators differ in how they step and checkpoint; everything
// that happens *after* a failure is identical protocol machinery: walk each
// node's replica ladder skipping corrupt images, blank-restart nodes whose
// ladder is exhausted (degraded mode -- the run continues), schedule
// re-replication refills, deliver them after the configured delay with
// bounded retry-with-backoff when a transfer fails or arrives torn, and
// account every step of open risk window. Keeping that machine in one place
// keeps the two runtimes counter-identical -- the chaos shadow oracle is an
// independent reimplementation of exactly this logic, and any divergence is
// classified `violated`.
//
// The engine owns no application data: restores and blank restarts go
// through caller-supplied callbacks, stores through a directory span.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/ring.hpp"
#include "ckpt/transfer.hpp"

namespace dckpt::runtime {

struct RunReport;           // coordinator.hpp
struct FailureInjection;    // coordinator.hpp
enum class InjectionKind;   // coordinator.hpp

class RecoveryEngine {
 public:
  /// Restores `node` from the verified committed image.
  using RestoreFn =
      std::function<void(std::uint64_t node, const ckpt::Snapshot& image)>;
  /// Degraded mode: re-initializes `node` from the kernel's initial
  /// condition (deterministic -- no NaN poison leaking through halos).
  using BlankRestartFn = std::function<void(std::uint64_t node)>;

  RecoveryEngine(ckpt::GroupAssignment groups,
                 std::uint64_t rereplication_delay_steps,
                 ckpt::RetryPolicy retry);

  /// Fires every injection scheduled for `step`, in kind order within the
  /// step: CorruptReplica damages committed images first, Torn/FailTransfer
  /// arm against the node's next refill delivery, NodeLoss destroys last
  /// (via `destroy`). Fired injections are erased from `pending`. Returns
  /// true when at least one NodeLoss fired (callers roll back).
  bool fire_injections(std::vector<FailureInjection>& pending,
                       std::uint64_t step,
                       std::span<ckpt::BuddyStore* const> stores,
                       const std::function<void(std::uint64_t)>& destroy,
                       RunReport& report);

  /// The coordinated rollback after a NodeLoss (committed set exists):
  /// every node restores through its replica ladder; corrupt images are
  /// skipped and counted; a node with no clean replica blank-restarts and
  /// is marked lost (first one sets the fatal fields; the run continues).
  /// Then re-derives the refill set from the stores the failure emptied --
  /// immediately delivered when the delay is 0, else enqueued.
  void rollback_and_refill(std::uint64_t step,
                           std::span<ckpt::BuddyStore* const> stores,
                           std::span<const std::uint64_t> committed_hashes,
                           const RestoreFn& restore,
                           const BlankRestartFn& blank_restart,
                           RunReport& report);

  /// Per-executed-step bookkeeping: ticks the open risk window, performs
  /// due refill deliveries (consuming armed transfer injections; failed or
  /// torn deliveries are retried with exponential backoff until the policy
  /// abandons them), and counts degraded steps while any node is lost.
  void tick(std::span<ckpt::BuddyStore* const> stores,
            std::span<const std::uint64_t> committed_hashes,
            RunReport& report);

  /// A committed exchange re-creates every replica: pending and abandoned
  /// refills are subsumed, the risk window closes, and lost nodes rejoin
  /// (their blank-restarted state is now the committed truth).
  void on_commit();

  bool any_lost() const noexcept { return lost_count_ > 0; }
  bool refill_pending() const noexcept { return !refill_.empty(); }

 private:
  struct RefillEntry {
    std::uint64_t node = 0;
    std::uint64_t due = 0;      ///< executed steps until the next attempt
    std::uint64_t attempt = 1;  ///< 1-based delivery attempt counter
    bool abandoned = false;     ///< retries exhausted; wait for a commit
  };

  /// One delivery attempt for `entry`. Returns true when the entry is done
  /// (delivered); false re-arms it (retry scheduled or abandoned in place).
  bool attempt_delivery(RefillEntry& entry,
                        std::span<ckpt::BuddyStore* const> stores,
                        std::span<const std::uint64_t> committed_hashes,
                        RunReport& report);

  /// Attempts every live entry whose countdown reached zero, erasing the
  /// delivered ones.
  void deliver_due(std::span<ckpt::BuddyStore* const> stores,
                   std::span<const std::uint64_t> committed_hashes,
                   RunReport& report);

  ckpt::GroupAssignment groups_;
  std::uint64_t delay_steps_;
  ckpt::RetryPolicy retry_;
  std::vector<RefillEntry> refill_;
  std::vector<std::vector<InjectionKind>> armed_;  ///< per-node FIFO
  std::vector<char> lost_;
  std::uint64_t lost_count_ = 0;
};

}  // namespace dckpt::runtime
