// The corruption-tolerant rollback/refill machine shared by both runtime
// coordinators (1-D chain and 2-D grid).
//
// The two coordinators differ in how they step and checkpoint; everything
// that happens *after* a failure is identical protocol machinery: walk each
// node's replica ladder skipping corrupt images, blank-restart nodes whose
// ladder is exhausted (degraded mode -- the run continues), schedule
// re-replication refills, deliver them after the configured delay with
// bounded retry-with-backoff when a transfer fails or arrives torn, and
// account every step of open risk window. Keeping that machine in one place
// keeps the two runtimes counter-identical -- the chaos shadow oracle is an
// independent reimplementation of exactly this logic, and any divergence is
// classified `violated`.
//
// The engine owns no application data: restores and blank restarts go
// through caller-supplied callbacks, stores through a directory span.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/ring.hpp"
#include "ckpt/transfer.hpp"

namespace dckpt::runtime {

struct RunReport;           // coordinator.hpp
struct FailureInjection;    // coordinator.hpp
enum class InjectionKind;   // coordinator.hpp

class RecoveryEngine {
 public:
  /// Restores `node` from the verified committed image.
  using RestoreFn =
      std::function<void(std::uint64_t node, const ckpt::Snapshot& image)>;
  /// Degraded mode: re-initializes `node` from the kernel's initial
  /// condition (deterministic -- no NaN poison leaking through halos).
  using BlankRestartFn = std::function<void(std::uint64_t node)>;

  /// `keep_last` is the retained-set ladder depth the engine tracks for
  /// silent-error rollback; it must match the stores' retention.
  RecoveryEngine(ckpt::GroupAssignment groups,
                 std::uint64_t rereplication_delay_steps,
                 ckpt::RetryPolicy retry, std::size_t keep_last = 1);

  /// Fires every injection scheduled for `step`, in kind order within the
  /// step: SilentError flips live memory first (via `silent_corrupt`; the
  /// node keeps running, its corruption epoch advances), CorruptReplica
  /// damages committed images, Torn/FailTransfer arm against the node's
  /// next refill delivery, NodeLoss destroys last (via `destroy`). Fired
  /// injections are erased from `pending`. Returns true when at least one
  /// NodeLoss fired (callers roll back).
  bool fire_injections(
      std::vector<FailureInjection>& pending, std::uint64_t step,
      std::span<ckpt::BuddyStore* const> stores,
      const std::function<void(std::uint64_t)>& destroy,
      const std::function<void(std::uint64_t)>& silent_corrupt,
      RunReport& report);

  /// The coordinated rollback after a NodeLoss (committed set exists):
  /// every node restores through its replica ladder; corrupt images are
  /// skipped and counted; a node with no clean replica blank-restarts and
  /// is marked lost (first one sets the fatal fields; the run continues).
  /// Then re-derives the refill set from the stores the failure emptied --
  /// immediately delivered when the delay is 0, else enqueued.
  void rollback_and_refill(std::uint64_t step,
                           std::span<ckpt::BuddyStore* const> stores,
                           std::span<const std::uint64_t> committed_hashes,
                           const RestoreFn& restore,
                           const BlankRestartFn& blank_restart,
                           RunReport& report);

  /// Per-executed-step bookkeeping: ticks the open risk window, performs
  /// due refill deliveries (consuming armed transfer injections; failed or
  /// torn deliveries are retried with exponential backoff until the policy
  /// abandons them), and counts degraded steps while any node is lost.
  void tick(std::span<ckpt::BuddyStore* const> stores,
            std::span<const std::uint64_t> committed_hashes,
            RunReport& report);

  /// A committed exchange re-creates every replica: pending and abandoned
  /// refills are subsumed, the risk window closes, and lost nodes rejoin
  /// (their blank-restarted state is now the committed truth). The commit
  /// also pushes the new set onto the retained-set ladder: `snapshot_step`
  /// is the step the images were captured at, `hashes` their per-node
  /// content digests, and `epochs` the corruption epochs *at capture time*
  /// (a staged commit may have absorbed corruption the live epochs no
  /// longer show first).
  void on_commit(std::uint64_t snapshot_step,
                 std::span<const std::uint64_t> hashes,
                 std::span<const std::uint64_t> epochs);

  /// How a verification round changed the run.
  struct VerifyAction {
    bool rolled_back = false;   ///< a retained set was (re)installed
    bool to_initial = false;    ///< rolled all the way to the initial state
    std::uint64_t resume_step = 0;  ///< step to resume from when rolled_back
  };

  /// One verification round (cost accounted by the caller). No live
  /// corruption -> no-op. Otherwise walks the rollback ladder newest ->
  /// oldest for the shallowest retained set that (a) was captured before
  /// every live corruption epoch and (b) every node can restore
  /// hash-verified through its replica ladder. Exhausted ladder =
  /// detected-but-unrecoverable: the corruption is *accepted* as the new
  /// truth (fatal fields set, run continues) -- no exception path. On
  /// rollback, `committed_hashes` is rewritten to the installed set's
  /// digests and deeper refills are rescheduled for emptied stores.
  VerifyAction verify_checkpoints(std::uint64_t step,
                                  std::span<ckpt::BuddyStore* const> stores,
                                  std::vector<std::uint64_t>& committed_hashes,
                                  const RestoreFn& restore,
                                  const BlankRestartFn& blank_restart,
                                  RunReport& report);

  /// Live per-node corruption epochs (monotonic; 0 = clean since capture).
  std::span<const std::uint64_t> current_epochs() const noexcept {
    return sdc_epoch_;
  }

  /// Pre-first-commit rollback (or a verified rollback to the initial
  /// state): every node re-initializes, so all corruption epochs clear and
  /// the retained-set ladder resets to the virtual initial entry.
  void reset_to_initial();

  bool any_lost() const noexcept { return lost_count_ > 0; }
  bool refill_pending() const noexcept { return !refill_.empty(); }

 private:
  /// One rung of the rollback ladder: a committed set's capture step, its
  /// per-node content hashes, and the corruption epochs its images carry.
  /// The ladder is seeded with a *virtual initial entry* (the starting
  /// configuration, epochs all zero) so a run corrupted before its first
  /// clean commit can still roll back to a restart instead of dying.
  struct RetainedSet {
    std::uint64_t step = 0;
    std::vector<std::uint64_t> hashes;
    std::vector<std::uint64_t> epochs;
    bool initial = false;
  };

  struct RefillEntry {
    std::uint64_t node = 0;
    std::uint64_t due = 0;      ///< executed steps until the next attempt
    std::uint64_t attempt = 1;  ///< 1-based delivery attempt counter
    bool abandoned = false;     ///< retries exhausted; wait for a commit
  };

  /// One delivery attempt for `entry`. Returns true when the entry is done
  /// (delivered); false re-arms it (retry scheduled or abandoned in place).
  bool attempt_delivery(RefillEntry& entry,
                        std::span<ckpt::BuddyStore* const> stores,
                        std::span<const std::uint64_t> committed_hashes,
                        RunReport& report);

  /// Attempts every live entry whose countdown reached zero, erasing the
  /// delivered ones.
  void deliver_due(std::span<ckpt::BuddyStore* const> stores,
                   std::span<const std::uint64_t> committed_hashes,
                   RunReport& report);

  ckpt::GroupAssignment groups_;
  std::uint64_t delay_steps_;
  ckpt::RetryPolicy retry_;
  std::size_t keep_last_;
  std::vector<RefillEntry> refill_;
  std::vector<std::vector<InjectionKind>> armed_;  ///< per-node FIFO
  std::vector<char> lost_;
  std::uint64_t lost_count_ = 0;
  std::vector<std::uint64_t> sdc_epoch_;  ///< live corruption epochs
  std::deque<RetainedSet> sets_;          ///< front = committed (depth 0)
};

}  // namespace dckpt::runtime
