#include "runtime/worker.hpp"

#include <cstring>
#include <limits>

namespace dckpt::runtime {

namespace {

std::span<const std::byte> as_bytes(std::span<const double> data) {
  return {reinterpret_cast<const std::byte*>(data.data()),
          data.size() * sizeof(double)};
}

std::span<std::byte> as_writable_bytes(std::span<double> data) {
  return {reinterpret_cast<std::byte*>(data.data()),
          data.size() * sizeof(double)};
}

}  // namespace

Worker::Worker(std::uint64_t id, std::size_t cells, std::size_t global_offset,
               const Kernel& kernel, std::size_t retain_sets)
    : id_(id), cells_(cells), global_offset_(global_offset),
      retain_sets_(retain_sets), memory_(cells * sizeof(double)),
      store_(id, 2, retain_sets), scratch_prev_(cells), scratch_next_(cells) {
  initialize(kernel);
}

void Worker::initialize(const Kernel& kernel) {
  kernel.initialize(global_offset_, scratch_next_);
  save(scratch_next_);
}

void Worker::load(std::span<double> out) const {
  memory_.read(0, as_writable_bytes(out));
}

void Worker::save(std::span<const double> data) {
  memory_.write(0, as_bytes(data));
}

void Worker::step(const Kernel& kernel, double left_ghost,
                  double right_ghost) {
  load(scratch_prev_);
  kernel.step(scratch_prev_, scratch_next_, left_ghost, right_ghost);
  save(scratch_next_);
}

double Worker::value_at(std::size_t cell) const {
  double value = 0.0;
  memory_.read(cell * sizeof(double),
               as_writable_bytes(std::span(&value, 1)));
  return value;
}

std::vector<double> Worker::state() const {
  std::vector<double> out(cells_);
  load(out);
  return out;
}

ckpt::Snapshot Worker::take_snapshot() { return memory_.snapshot(id_); }

void Worker::restore(const ckpt::Snapshot& image) { memory_.restore(image); }

void Worker::destroy() {
  // Poison the memory so any missed recovery is loudly wrong.
  std::vector<double> poison(cells_,
                             std::numeric_limits<double>::quiet_NaN());
  save(poison);
  reset_store();
}

void Worker::inject_sdc() {
  // Low mantissa byte of cell 0: the value changes (never to inf/NaN), so
  // the corruption flows through subsequent kernel steps and content hashes.
  std::byte low{};
  memory_.read(0, std::span(&low, 1));
  low ^= std::byte{0x5a};
  memory_.write(0, std::span<const std::byte>(&low, 1));
}

void Worker::reset_store() {
  store_ = ckpt::BuddyStore(id_, 2, retain_sets_);
}

}  // namespace dckpt::runtime
