#include "runtime/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace dckpt::runtime {

// ---------------------------------------------------------------- kernel

HeatKernel2D::HeatKernel2D(double coefficient) : coefficient_(coefficient) {
  if (!(coefficient > 0.0) || coefficient > 0.25) {
    throw std::invalid_argument(
        "HeatKernel2D: need 0 < c <= 0.25 for stability");
  }
}

void HeatKernel2D::initialize(std::size_t row0, std::size_t col0,
                              std::size_t rows, std::size_t cols,
                              std::span<double> state) const {
  if (state.size() != rows * cols) {
    throw std::invalid_argument("HeatKernel2D: state/block size mismatch");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = static_cast<double>(col0 + c);
      const double y = static_cast<double>(row0 + r);
      state[r * cols + c] =
          std::sin(0.05 * x) * std::cos(0.07 * y) +
          0.2 * std::sin(0.31 * (x + y));
    }
  }
}

void HeatKernel2D::step(std::span<const double> previous,
                        std::span<double> next, std::size_t rows,
                        std::size_t cols, std::span<const double> north,
                        std::span<const double> south,
                        std::span<const double> west,
                        std::span<const double> east) const {
  if (previous.size() != rows * cols || next.size() != rows * cols ||
      north.size() != cols || south.size() != cols || west.size() != rows ||
      east.size() != rows) {
    throw std::invalid_argument("HeatKernel2D: halo/block size mismatch");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double up = (r == 0) ? north[c] : previous[(r - 1) * cols + c];
      const double down =
          (r + 1 == rows) ? south[c] : previous[(r + 1) * cols + c];
      const double left = (c == 0) ? west[r] : previous[r * cols + c - 1];
      const double right =
          (c + 1 == cols) ? east[r] : previous[r * cols + c + 1];
      const double centre = previous[r * cols + c];
      next[r * cols + c] =
          centre + coefficient_ * (up + down + left + right - 4.0 * centre);
    }
  }
}

std::string HeatKernel2D::name() const { return "heat-diffusion-2d"; }

// ---------------------------------------------------------------- config

void GridConfig::validate() const {
  if (grid_rows == 0 || grid_cols == 0) {
    throw std::invalid_argument("GridConfig: empty worker grid");
  }
  const auto gs =
      static_cast<std::uint64_t>(topology == ckpt::Topology::Pairs ? 2 : 3);
  if (nodes() % gs != 0) {
    throw std::invalid_argument(
        "GridConfig: worker count must be a multiple of the group size");
  }
  if (block_rows == 0 || block_cols == 0) {
    throw std::invalid_argument("GridConfig: empty block");
  }
  if (checkpoint_interval == 0 || total_steps == 0) {
    throw std::invalid_argument("GridConfig: zero interval or steps");
  }
  if (keep_last == 0) {
    throw std::invalid_argument("GridConfig: keep_last must be >= 1");
  }
  if (dcp_stack_size > 0) {
    if (dcp_block_size == 0) {
      throw std::invalid_argument(
          "GridConfig: dcp_block_size must be > 0 when dcp is enabled");
    }
    // Same substrate constraint as RuntimeConfig: chains hang off the
    // single committed set.
    if (verify_every != 0 || keep_last != 1) {
      throw std::invalid_argument(
          "GridConfig: dcp requires verify_every == 0 and keep_last == 1");
    }
  }
  transfer_retry.validate();
}

// ----------------------------------------------------------------- block

struct GridCoordinator::Block {
  std::uint64_t id;
  std::size_t rows, cols;
  std::size_t retain;
  ckpt::PageStore memory;
  ckpt::BuddyStore store;
  std::vector<double> prev, next;

  Block(std::uint64_t node, std::size_t block_rows, std::size_t block_cols,
        std::size_t retain_sets)
      : id(node), rows(block_rows), cols(block_cols), retain(retain_sets),
        memory(block_rows * block_cols * sizeof(double)),
        store(node, 2, retain_sets), prev(block_rows * block_cols),
        next(block_rows * block_cols) {}

  void load(std::span<double> out) const {
    memory.read(0, std::as_writable_bytes(out));
  }
  void save(std::span<const double> data) {
    memory.write(0, std::as_bytes(data));
  }
  double cell(std::size_t r, std::size_t c) const {
    double value = 0.0;
    memory.read((r * cols + c) * sizeof(double),
                std::as_writable_bytes(std::span(&value, 1)));
    return value;
  }
  std::vector<double> row(std::size_t r) const {
    std::vector<double> out(cols);
    memory.read(r * cols * sizeof(double), std::as_writable_bytes(
                                               std::span(out)));
    return out;
  }
  std::vector<double> column(std::size_t c) const {
    std::vector<double> out(rows);
    for (std::size_t r = 0; r < rows; ++r) out[r] = cell(r, c);
    return out;
  }
  void destroy() {
    std::vector<double> poison(rows * cols,
                               std::numeric_limits<double>::quiet_NaN());
    save(poison);
    store = ckpt::BuddyStore(id, 2, retain);
  }
  void inject_sdc() {
    // Same latent damage as the 1-D worker: flip the low mantissa byte of
    // cell 0 through the COW write path.
    std::byte low{};
    memory.read(0, std::span(&low, 1));
    low ^= std::byte{0x5a};
    memory.write(0, std::span<const std::byte>(&low, 1));
  }
};

// ----------------------------------------------------------- coordinator

GridCoordinator::GridCoordinator(GridConfig config,
                                 std::unique_ptr<GridKernel> kernel)
    : config_(config), kernel_(std::move(kernel)),
      groups_(config.nodes(), config.topology), pool_(config.threads),
      committed_hashes_(config.nodes(), 0),
      engine_(groups_, config.rereplication_delay_steps,
              config.transfer_retry, config.keep_last) {
  config_.validate();
  if (!kernel_) throw std::invalid_argument("GridCoordinator: null kernel");
  blocks_.reserve(config_.nodes());
  for (std::uint64_t node = 0; node < config_.nodes(); ++node) {
    auto block = std::make_unique<Block>(node, config_.block_rows,
                                         config_.block_cols,
                                         config_.keep_last);
    const std::size_t grid_r = node / config_.grid_cols;
    const std::size_t grid_c = node % config_.grid_cols;
    kernel_->initialize(grid_r * config_.block_rows,
                        grid_c * config_.block_cols, config_.block_rows,
                        config_.block_cols, block->next);
    block->save(block->next);
    blocks_.push_back(std::move(block));
  }
}

GridCoordinator::~GridCoordinator() = default;

std::vector<ckpt::BuddyStore*> GridCoordinator::store_directory() {
  std::vector<ckpt::BuddyStore*> stores;
  stores.reserve(blocks_.size());
  for (auto& block : blocks_) stores.push_back(&block->store);
  return stores;
}

void GridCoordinator::execute_step() {
  // Jacobi halo capture: all four edges of every block read before any
  // block updates, so results are independent of scheduling.
  const std::size_t rows = config_.grid_rows, cols = config_.grid_cols;
  const std::size_t br = config_.block_rows, bc = config_.block_cols;
  struct Halos {
    std::vector<double> north, south, west, east;
  };
  std::vector<Halos> halos(blocks_.size());
  for (std::size_t node = 0; node < blocks_.size(); ++node) {
    const std::size_t gr = node / cols, gc = node % cols;
    Halos& h = halos[node];
    h.north = gr > 0 ? blocks_[node - cols]->row(br - 1)
                     : std::vector<double>(bc, 0.0);
    h.south = gr + 1 < rows ? blocks_[node + cols]->row(0)
                            : std::vector<double>(bc, 0.0);
    h.west = gc > 0 ? blocks_[node - 1]->column(bc - 1)
                    : std::vector<double>(br, 0.0);
    h.east = gc + 1 < cols ? blocks_[node + 1]->column(0)
                           : std::vector<double>(br, 0.0);
  }
  util::parallel_for_chunked(
      pool_, blocks_.size(), pool_.thread_count(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t node = begin; node < end; ++node) {
          Block& block = *blocks_[node];
          block.load(block.prev);
          kernel_->step(block.prev, block.next, br, bc, halos[node].north,
                        halos[node].south, halos[node].west,
                        halos[node].east);
          block.save(block.next);
        }
      });
}

void GridCoordinator::checkpoint_all(RunReport& report) {
  std::vector<ckpt::Snapshot> images;
  images.reserve(blocks_.size());
  for (auto& block : blocks_) images.push_back(block->memory.snapshot(block->id));
  const std::uint64_t version = images.front().version();
  if (config_.dcp_stack_size > 0) {
    hash_arrays_.assign(blocks_.size(), {});
  }
  for (std::uint64_t node = 0; node < blocks_.size(); ++node) {
    const ckpt::Snapshot& image = images[node];
    // Hash before staging, so every filed copy carries the cached digest
    // the restore paths verify against.
    committed_hashes_[node] = image.content_hash();
    if (config_.dcp_stack_size > 0) {
      hash_arrays_[node] = ckpt::block_hashes(image, config_.dcp_block_size);
    }
    if (config_.topology == ckpt::Topology::Pairs) {
      blocks_[node]->store.stage(image);
      blocks_[groups_.preferred_buddy(node)]->store.stage(image);
      report.bytes_replicated += image.size_bytes();
    } else {
      blocks_[groups_.preferred_buddy(node)]->store.stage(image);
      blocks_[groups_.secondary_buddy(node)]->store.stage(image);
      report.bytes_replicated += 2 * image.size_bytes();
    }
  }
  for (auto& block : blocks_) block->store.promote(version);
  has_commit_ = true;
  ++report.checkpoints;
  ++report.full_commits;
  // A full exchange restarts every dcp lineage (see Coordinator).
  dcp_layers_ = 0;
  dcp_tip_version_ = version;
  // A committed exchange re-creates every replica: pending refills are
  // subsumed, the risk window closes, lost nodes rejoin, and the set joins
  // the rollback ladder. The grid commits at snapshot time, so the live
  // epochs are exactly what the images carry.
  engine_.on_commit(committed_step_, committed_hashes_,
                    engine_.current_epochs());
}

void GridCoordinator::delta_checkpoint_all(RunReport& report) {
  // Differential commit, mirroring Coordinator::commit_delta_checkpoint:
  // diff every block against the cached hash array of the last committed
  // image and append the layer on the holders a full image would go to.
  // committed_step_ was already advanced by the caller (the grid commits at
  // snapshot time).
  std::vector<ckpt::Snapshot> images;
  images.reserve(blocks_.size());
  for (auto& block : blocks_) {
    images.push_back(block->memory.snapshot(block->id));
  }
  for (std::uint64_t node = 0; node < blocks_.size(); ++node) {
    const ckpt::Snapshot& image = images[node];
    const ckpt::BlockDelta layer = ckpt::make_block_delta(
        hash_arrays_[node], dcp_tip_version_, committed_hashes_[node], image,
        config_.dcp_block_size);
    if (config_.topology == ckpt::Topology::Pairs) {
      blocks_[node]->store.append_delta(layer);  // local copy
      blocks_[groups_.preferred_buddy(node)]->store.append_delta(layer);
      report.bytes_replicated += layer.delta_bytes();
    } else {
      blocks_[groups_.preferred_buddy(node)]->store.append_delta(layer);
      blocks_[groups_.secondary_buddy(node)]->store.append_delta(layer);
      report.bytes_replicated += 2 * layer.delta_bytes();
    }
    committed_hashes_[node] = image.content_hash();
    hash_arrays_[node] = ckpt::block_hashes(image, config_.dcp_block_size);
  }
  dcp_tip_version_ = images.front().version();
  ++dcp_layers_;
  ++report.checkpoints;
  ++report.delta_commits;
  // No engine_.on_commit(): a delta exchange neither closes a pending risk
  // window, clears pending refills, nor readmits lost nodes.
}

void GridCoordinator::proactive_checkpoint(RunReport& report,
                                           std::uint64_t step) {
  // Skip-if-just-committed, mirroring the 1-D coordinator: nothing new to
  // save when the committed set (or the implicit initial checkpoint at
  // step 0) already captures this state. The grid commits at snapshot time,
  // so the proactive commit is a plain checkpoint_all at this step.
  if (step == 0 || (has_commit_ && committed_step_ == step)) return;
  committed_step_ = step;
  checkpoint_all(report);
  ++report.proactive_ckpts;
}

void GridCoordinator::blank_restart(std::uint64_t node) {
  Block& block = *blocks_[node];
  const std::size_t gr = node / config_.grid_cols;
  const std::size_t gc = node % config_.grid_cols;
  kernel_->initialize(gr * config_.block_rows, gc * config_.block_cols,
                      config_.block_rows, config_.block_cols, block.next);
  block.save(block.next);
}

void GridCoordinator::rollback_all(RunReport& report, std::uint64_t step) {
  ++report.rollbacks;
  if (!has_commit_) {
    for (std::uint64_t node = 0; node < blocks_.size(); ++node) {
      blocks_[node]->store.discard_staged();
      blank_restart(node);
    }
    // Re-initializing clears any latent corruption too.
    engine_.reset_to_initial();
    return;
  }
  const auto stores = store_directory();
  engine_.rollback_and_refill(
      step, stores, committed_hashes_,
      [&](std::uint64_t node, const ckpt::Snapshot& image) {
        blocks_[node]->memory.restore(image);
      },
      [&](std::uint64_t node) { blank_restart(node); }, report);
}

RunReport GridCoordinator::run(std::span<const FailureInjection> failures) {
  validate_injections(failures, config_.nodes(), config_.total_steps,
                      config_.topology, config_.verify_every,
                      config_.dcp_stack_size);
  RunReport report;
  std::vector<FailureInjection> pending(failures.begin(), failures.end());
  std::stable_sort(pending.begin(), pending.end(),
                   [](const FailureInjection& a, const FailureInjection& b) {
                     return a.step < b.step;
                   });
  score_predictions(failures, report);
  const auto stores = store_directory();
  std::uint64_t step = 0;
  while (step < config_.total_steps) {
    // Predictor alarms fire first, exactly as in the 1-D coordinator: the
    // proactive commit precedes this step's loss (if any).
    const std::uint64_t alarms = consume_alarms(pending, step);
    if (alarms > 0) {
      report.alarms_raised += alarms;
      proactive_checkpoint(report, step);
    }
    // Fire this step's injections (corruption, then transfer-fault arming,
    // then losses). A loss triggers the coordinated rollback: every node
    // restores through its replica ladder, corrupt images are skipped, and
    // an exhausted ladder blank-restarts the node in degraded mode.
    const bool failed = engine_.fire_injections(
        pending, step, stores,
        [&](std::uint64_t node) { blocks_[node]->destroy(); },
        [&](std::uint64_t node) { blocks_[node]->inject_sdc(); }, report);
    if (failed) {
      rollback_all(report, step);
      const std::uint64_t resume = has_commit_ ? committed_step_ : 0;
      report.replayed_steps += step - resume;
      step = resume;
      continue;
    }
    execute_step();
    ++step;
    ++report.steps_executed;
    // Risk-window / refill / degraded-mode bookkeeping (same clock as the
    // 1-D coordinator: executed steps, replay included).
    engine_.tick(stores, committed_hashes_, report);
    const bool boundary = step % config_.checkpoint_interval == 0 &&
                          step < config_.total_steps;
    if (config_.verify_every > 0) {
      // Same cadence and ordering as the 1-D coordinator: verification
      // runs at the boundary *before* the boundary's own set commits (so
      // both topologies see the same rollback ladder for the same
      // schedule), plus a final audit at the end of the run.
      if (boundary) ++periods_since_verify_;
      const bool due =
          (boundary && periods_since_verify_ >= config_.verify_every) ||
          step == config_.total_steps;
      if (due) {
        periods_since_verify_ = 0;
        const auto action = engine_.verify_checkpoints(
            step, stores, committed_hashes_,
            [&](std::uint64_t node, const ckpt::Snapshot& image) {
              blocks_[node]->memory.restore(image);
            },
            [&](std::uint64_t node) { blank_restart(node); }, report);
        if (action.rolled_back) {
          committed_step_ = action.resume_step;
          if (action.to_initial) {
            has_commit_ = false;
            std::fill(committed_hashes_.begin(), committed_hashes_.end(),
                      std::uint64_t{0});
          }
          report.replayed_steps += step - action.resume_step;
          step = action.resume_step;
          continue;
        }
      }
    }
    if (boundary) {
      // dcp cadence, same predicate as the 1-D coordinator: deltas between
      // full exchanges while the chain has room and the platform is whole.
      const bool delta_commit =
          config_.dcp_stack_size > 0 && has_commit_ &&
          dcp_layers_ + 1 < config_.dcp_stack_size && !engine_.any_lost() &&
          !engine_.refill_pending();
      committed_step_ = step;
      if (delta_commit) {
        delta_checkpoint_all(report);
      } else {
        checkpoint_all(report);
      }
    }
  }
  for (const auto& block : blocks_) {
    report.cow_copies += block->memory.cow_copies();
  }
  report.final_hash = state_hash(global_state());
  return report;
}

std::vector<double> GridCoordinator::global_state() const {
  std::vector<double> state;
  state.reserve(blocks_.size() * config_.block_rows * config_.block_cols);
  for (const auto& block : blocks_) {
    std::vector<double> data(block->rows * block->cols);
    block->load(data);
    state.insert(state.end(), data.begin(), data.end());
  }
  return state;
}

}  // namespace dckpt::runtime
