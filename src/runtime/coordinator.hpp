// Coordinated fault-tolerant execution: the runtime counterpart of the
// protocols the model analyses.
//
// The Coordinator drives a lockstep iterative computation over a set of
// Workers, checkpointing every `checkpoint_interval` steps through the buddy
// storage substrate:
//
//   Pairs (double checkpointing): each worker keeps a local copy of its own
//   image and stages a replica on its buddy; the set commits when every
//   exchange completed.
//
//   Triples: no local copy -- each worker stages its image on its preferred
//   and secondary buddies (two replicas), rotation as in the paper.
//
// Failure injection destroys a worker's memory and buddy storage mid-run.
// The coordinator then performs the paper's coordinated rollback: survivors
// restore the last committed set, the replacement node recovers its image
// from a surviving replica (hash-verified), re-replicates what it stored for
// its peers, and the lost steps are re-executed. End-to-end correctness is
// checked by comparing the final state hash against a failure-free run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/ring.hpp"
#include "ckpt/transfer.hpp"  // RetryPolicy
#include "runtime/kernel.hpp"
#include "runtime/recovery_engine.hpp"
#include "runtime/worker.hpp"
#include "util/thread_pool.hpp"

namespace dckpt::runtime {

struct RuntimeConfig {
  std::uint64_t nodes = 4;
  ckpt::Topology topology = ckpt::Topology::Pairs;
  std::size_t cells_per_node = 512;
  std::uint64_t checkpoint_interval = 16;  ///< steps between checkpoints
  std::uint64_t total_steps = 128;
  std::size_t threads = 0;  ///< stepping pool; 0 = hardware concurrency
  /// Semi-blocking staging (the paper's non-blocking exchange): the set
  /// snapshotted at step s commits only at step s + staging_steps; a
  /// failure in between discards it and rolls back to the *previous*
  /// committed set -- the real-system analogue of losing the whole
  /// preceding period when a failure hits parts 1/2. 0 = commit
  /// immediately (blocking exchange). Must be <= checkpoint_interval.
  std::uint64_t staging_steps = 0;
  /// Re-replication delay: executed steps between a rollback and the refill
  /// of the replacement node's buddy storage (detection + spare allocation +
  /// image transfer). While the refill is pending the victim's group cannot
  /// survive another member loss -- the runtime realization of the model's
  /// risk window (paper Sec. III/IV). A committed checkpoint also closes
  /// the window (it re-creates every replica). 0 = refill immediately.
  std::uint64_t rereplication_delay_steps = 0;
  /// Retry-with-backoff policy for re-replication transfers (failed or torn
  /// deliveries are re-issued; each waiting step extends the risk window).
  ckpt::RetryPolicy transfer_retry;
  /// Silent-error verification cadence: every `verify_every` checkpoint
  /// periods the run pays a verification (a full state audit) that detects
  /// latent corruption captured into committed sets. 0 = verification off
  /// (silent errors, if injected, stay silent). A final verification always
  /// runs at the end of the run when enabled.
  std::uint64_t verify_every = 0;
  /// Keep-last-l checkpoint retention: how many committed sets each buddy
  /// store retains (>= 1). Detected silent corruption rolls back through
  /// this ladder to the newest set whose capture predates every live
  /// corruption epoch.
  std::size_t keep_last = 1;
  /// Differential-checkpoint (dcp) stack size K: when > 0, only every K-th
  /// commit exchanges full images; the K - 1 commits in between send
  /// content-hash block deltas chained on the committed base, and a restore
  /// replays base + <= K - 1 layers. 0 = every commit is full (dcp off).
  /// Requires staging_steps == 0, verify_every == 0 and keep_last == 1
  /// (chains hang off the committed set, not the retention ring).
  std::uint64_t dcp_stack_size = 0;
  /// Differential block size in bytes (per-block FNV hash granularity).
  std::size_t dcp_block_size = ckpt::kDefaultDcpBlockSize;

  void validate() const;
};

/// What a chaos injection does to the runtime.
enum class InjectionKind {
  NodeLoss,       ///< destroy the node's memory and buddy storage
  CorruptReplica, ///< silently damage a committed image at rest
  TornTransfer,   ///< next refill delivery for `node` arrives prefix-only
  FailTransfer,   ///< next refill delivery for `node` fails outright
  SilentError,    ///< latent in-memory corruption (captured by checkpoints)
  Alarm,          ///< fault-predictor alarm: proactive checkpoint trigger
  TornDelta,      ///< tear a dcp chain layer at rest (depth in `window`)
};

/// An injection fired when the run first reaches step `step` (0-based).
/// SilentError flips live memory first (the node keeps running and the
/// damage rides into every later snapshot until detected); NodeLoss and
/// CorruptReplica act immediately (corruption before losses within a
/// step); Torn/FailTransfer arm and are consumed by the next
/// re-replication delivery attempt for `node`'s storage. For
/// CorruptReplica, `node` is the holder whose store is damaged and `owner`
/// selects which committed image.
struct FailureInjection {
  std::uint64_t step = 0;
  std::uint64_t node = 0;
  InjectionKind kind = InjectionKind::NodeLoss;
  std::uint64_t owner = 0;  ///< CorruptReplica only
  /// Alarm: prediction-window width in steps -- the alarm claims `node`
  /// will be lost within [step, step + window]; 0 = a same-step prediction.
  /// TornDelta: 1-based chain depth of the layer to tear, counted from the
  /// base (the field is overloaded; the two kinds never coexist on one
  /// injection).
  std::uint64_t window = 0;
};

/// Consumes (erases) every Alarm injection scheduled for `step`, returning
/// how many fired. Shared by both coordinators: alarms fire at the top of
/// the step loop, before the step's other injections, so the proactive
/// checkpoint they trigger can land ahead of the loss they predict (and,
/// being erased, each alarm fires exactly once even across replays).
std::uint64_t consume_alarms(std::vector<FailureInjection>& pending,
                             std::uint64_t step);

struct RunReport;

/// Static alarm <-> loss matching for the prediction scoreboard: each alarm
/// (step s, node v, window w) consumes the earliest unconsumed NodeLoss of
/// node v with s <= step <= s + w; every unconsumed loss counts as missed.
/// Valid as an upfront computation because injections fire exactly once --
/// replays never re-deliver either side. Adds to report.true_predictions
/// and report.missed_failures; shared by both coordinators (the chaos
/// shadow oracle mirrors it independently).
void score_predictions(std::span<const FailureInjection> failures,
                       RunReport& report);

/// Upfront range check shared by both coordinators (and mirrored by the
/// chaos shadow oracle): every injection must name an existing node and a
/// step that actually executes, a CorruptReplica must aim at a store
/// that actually holds the owner's image under `topology`, and a
/// SilentError requires verification enabled (`verify_every` > 0) -- an
/// undetectable silent error would make a campaign vacuously pass -- and a
/// TornDelta requires dcp enabled with 1 <= depth <= dcp_stack_size - 1
/// (a chain never grows longer than K - 1 layers). Throws
/// std::invalid_argument otherwise.
void validate_injections(std::span<const FailureInjection> failures,
                         std::uint64_t nodes, std::uint64_t total_steps,
                         ckpt::Topology topology,
                         std::uint64_t verify_every = 0,
                         std::uint64_t dcp_stack_size = 0);

struct RunReport {
  std::uint64_t steps_executed = 0;   ///< step executions incl. replays
                                      ///< (= total_steps + replayed_steps)
  std::uint64_t replayed_steps = 0;   ///< steps re-executed after rollbacks
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t bytes_replicated = 0; ///< checkpoint bytes sent to buddies
  std::uint64_t cow_copies = 0;       ///< pages duplicated by COW
  std::uint64_t recoveries = 0;       ///< restores that had to go beyond a
                                      ///< clean local copy (incl. exhausted
                                      ///< attempts)
  std::uint64_t rereplications = 0;   ///< refill deliveries that restored
                                      ///< at least one image
  std::uint64_t risk_steps = 0;       ///< executed steps with a refill pending
                                      ///< (degraded redundancy)
  std::uint64_t failovers = 0;        ///< recoveries that skipped >= 1
                                      ///< corrupt replica and still succeeded
  std::uint64_t transfer_retries = 0; ///< refill deliveries re-issued after a
                                      ///< failed or torn transfer
  std::uint64_t corrupt_images_detected = 0;  ///< hash-check rejections at
                                              ///< any restore point
  std::uint64_t degraded_steps = 0;   ///< executed steps while some node ran
                                      ///< on from a blank restart (data loss)
  std::uint64_t hash_verified_recoveries = 0; ///< successful peer restores
                                              ///< whose content hash matched
  std::uint64_t sdc_injected = 0;     ///< silent-error injections fired
  std::uint64_t verifications_run = 0;///< checkpoint verifications executed
  std::uint64_t sdc_detected = 0;     ///< verifications that found corruption
  std::uint64_t rollback_depth = 0;   ///< retained sets dropped across all
                                      ///< silent-error rollbacks
  std::uint64_t alarms_raised = 0;    ///< predictor alarms delivered
  std::uint64_t proactive_ckpts = 0;  ///< alarm-triggered commits taken
                                      ///< (skip-if-just-committed excluded)
  std::uint64_t true_predictions = 0; ///< node losses matched by an alarm
                                      ///< within its prediction window
  std::uint64_t missed_failures = 0;  ///< node losses no alarm announced
  std::uint64_t delta_commits = 0;    ///< commits that sent block deltas
  std::uint64_t full_commits = 0;     ///< commits that sent full images
  std::uint64_t chain_replays = 0;    ///< restores that replayed >= 1 layer
  std::uint64_t chain_replay_depth = 0;  ///< total layers replayed across
                                         ///< all chain replays
  std::uint64_t torn_chain_failovers = 0;  ///< ladder rungs skipped for a
                                           ///< torn dcp layer
  bool fatal = false;                 ///< unrecoverable data loss occurred
  bool degraded = false;              ///< run continued past the loss
  std::uint64_t fatal_node = 0;       ///< first node with no clean replica
  std::uint64_t fatal_step = 0;       ///< step of the exhausted rollback
  std::string fatal_reason;
  std::uint64_t final_hash = 0;       ///< FNV-1a over the global state
};

class Coordinator {
 public:
  Coordinator(RuntimeConfig config, std::unique_ptr<Kernel> kernel);

  /// Runs to completion, injecting `failures` (each fires at most once, in
  /// step order). Returns the report; on fatal data loss, `fatal` is set,
  /// the lost nodes restart blank and the run *continues* in degraded mode
  /// (every such step counted in `degraded_steps`) -- it never throws for
  /// data loss.
  RunReport run(std::span<const FailureInjection> failures = {});

  /// Global state concatenated across workers (after run()).
  std::vector<double> global_state() const;

  const RuntimeConfig& config() const noexcept { return config_; }

 private:
  void begin_checkpoint(std::uint64_t step);
  void commit_checkpoint(RunReport& report);
  void commit_delta_checkpoint(RunReport& report, std::uint64_t step);
  void proactive_checkpoint(RunReport& report, std::uint64_t step);
  void rollback_all(RunReport& report, std::uint64_t step);
  void execute_step();
  std::vector<ckpt::BuddyStore*> store_directory();

  RuntimeConfig config_;
  std::unique_ptr<Kernel> kernel_;
  ckpt::GroupAssignment groups_;
  std::vector<Worker> workers_;
  util::ThreadPool pool_;
  std::vector<std::uint64_t> committed_hashes_;  ///< per node
  std::uint64_t committed_step_ = 0;             ///< step of last commit
  bool has_commit_ = false;

  // In-flight (staged, not yet committed) checkpoint set.
  bool staging_ = false;
  std::uint64_t staging_snapshot_step_ = 0;
  std::uint64_t staging_commit_at_ = 0;
  std::uint64_t staging_version_ = 0;
  std::vector<std::uint64_t> staging_hashes_;
  // Corruption epochs at snapshot time: an SDC landing between snapshot and
  // commit is *not* captured by the staged set, so the commit must record
  // the epochs the images actually carry.
  std::vector<std::uint64_t> staging_epochs_;
  std::uint64_t staged_bytes_ = 0;

  // Verification cadence: checkpoint periods since the last verification.
  std::uint64_t periods_since_verify_ = 0;

  // Differential-checkpoint state (dcp_stack_size > 0): per-node block hash
  // arrays of the last committed image (the dcpScalable hashArray) and the
  // number of delta layers chained since the last full commit.
  std::vector<std::vector<std::uint64_t>> hash_arrays_;
  std::uint64_t dcp_layers_ = 0;
  std::uint64_t dcp_tip_version_ = 0;  ///< snapshot version of the last commit

  // Refill/retry/degraded-mode machine shared with the grid coordinator.
  RecoveryEngine engine_;
};

/// Hash of a full global state vector (for cross-run comparisons).
std::uint64_t state_hash(std::span<const double> state);

}  // namespace dckpt::runtime
