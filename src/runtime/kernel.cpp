#include "runtime/kernel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dckpt::runtime {

HeatKernel::HeatKernel(double coefficient) : coefficient_(coefficient) {
  if (!(coefficient > 0.0) || coefficient > 0.5) {
    throw std::invalid_argument("HeatKernel: need 0 < c <= 0.5 for stability");
  }
}

void HeatKernel::initialize(std::size_t global_offset,
                            std::span<double> state) const {
  // Smooth bump plus a high-frequency ripple: decays visibly under
  // diffusion and is sensitive to any replay error.
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double x = static_cast<double>(global_offset + i);
    state[i] = std::sin(x * 0.01) + 0.25 * std::sin(x * 0.37);
  }
}

void HeatKernel::step(std::span<const double> previous, std::span<double> next,
                      double left_ghost, double right_ghost) const {
  const std::size_t n = previous.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double left = (i == 0) ? left_ghost : previous[i - 1];
    const double right = (i + 1 == n) ? right_ghost : previous[i + 1];
    next[i] = previous[i] +
              coefficient_ * (left - 2.0 * previous[i] + right);
  }
}

std::string HeatKernel::name() const { return "heat-diffusion-1d"; }

WaveKernel::WaveKernel(double courant) : courant_(courant) {
  if (!(courant > 0.0) || courant > 1.0) {
    throw std::invalid_argument("WaveKernel: need 0 < c <= 1 for stability");
  }
}

namespace {
void check_wave_block(std::size_t cells) {
  if (cells < 2 || cells % 2 != 0) {
    throw std::invalid_argument(
        "WaveKernel: block must hold an even number of doubles "
        "(two time levels)");
  }
}
}  // namespace

void WaveKernel::initialize(std::size_t global_offset,
                            std::span<double> state) const {
  check_wave_block(state.size());
  const std::size_t half = state.size() / 2;
  // A localized pulse released from rest. The global offset is expressed in
  // *blocks* of two levels, so physical cell i sits at global_offset/2 + i.
  // u(t-1) uses the half-step Taylor expansion
  // u(t-1)(x) = f(x) + c^2/2 (f(x-1) - 2 f(x) + f(x+1)); a plain
  // u(t-1) = u(t) start would leave a non-decaying checkerboard mode.
  // Evaluating f analytically keeps the init exact across block borders.
  const auto f = [](double x) {
    return std::exp(-1e-4 * (x - 200.0) * (x - 200.0));
  };
  const double c2 = courant_ * courant_;
  for (std::size_t i = 0; i < half; ++i) {
    const double x = static_cast<double>(global_offset / 2 + i);
    state[i] = f(x);
    state[half + i] =
        f(x) + c2 / 2.0 * (f(x - 1.0) - 2.0 * f(x) + f(x + 1.0));
  }
}

void WaveKernel::step(std::span<const double> previous,
                      std::span<double> next, double left_ghost,
                      double right_ghost) const {
  check_wave_block(previous.size());
  const std::size_t half = previous.size() / 2;
  const auto curr = previous.first(half);
  const auto older = previous.subspan(half);
  const double c2 = courant_ * courant_;
  for (std::size_t i = 0; i < half; ++i) {
    const double left = (i == 0) ? left_ghost : curr[i - 1];
    const double right = (i + 1 == half) ? right_ghost : curr[i + 1];
    next[i] = 2.0 * curr[i] - older[i] +
              c2 * (left - 2.0 * curr[i] + right);
  }
  // The old current level becomes the new previous level.
  for (std::size_t i = 0; i < half; ++i) next[half + i] = curr[i];
}

std::size_t WaveKernel::left_halo_index(std::size_t cells) const {
  check_wave_block(cells);
  return 0;  // first cell of u(t)
}

std::size_t WaveKernel::right_halo_index(std::size_t cells) const {
  check_wave_block(cells);
  return cells / 2 - 1;  // last cell of u(t)
}

std::string WaveKernel::name() const { return "wave-1d-leapfrog"; }

void CounterKernel::initialize(std::size_t global_offset,
                               std::span<double> state) const {
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = static_cast<double>(global_offset + i);
  }
}

void CounterKernel::step(std::span<const double> previous,
                         std::span<double> next, double, double) const {
  for (std::size_t i = 0; i < previous.size(); ++i) {
    next[i] = previous[i] + 1.0;
  }
}

std::string CounterKernel::name() const { return "counter"; }

}  // namespace dckpt::runtime
