#include "runtime/recovery_engine.hpp"

#include <algorithm>
#include <string>

#include "ckpt/recovery.hpp"
#include "runtime/coordinator.hpp"

namespace dckpt::runtime {

RecoveryEngine::RecoveryEngine(ckpt::GroupAssignment groups,
                               std::uint64_t rereplication_delay_steps,
                               ckpt::RetryPolicy retry)
    : groups_(std::move(groups)), delay_steps_(rereplication_delay_steps),
      retry_(retry), armed_(groups_.nodes()),
      lost_(groups_.nodes(), 0) {
  retry_.validate();
}

bool RecoveryEngine::fire_injections(
    std::vector<FailureInjection>& pending, std::uint64_t step,
    std::span<ckpt::BuddyStore* const> stores,
    const std::function<void(std::uint64_t)>& destroy, RunReport& report) {
  // Kind order within a step: silent corruption exists at rest before the
  // crash that exposes it, and a transfer fault arms before the loss whose
  // refill it will sabotage.
  const auto fire_kind = [&](InjectionKind kind, auto&& act) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step && it->kind == kind) {
        act(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  };
  fire_kind(InjectionKind::CorruptReplica, [&](const FailureInjection& f) {
    // No-op when the holder has no committed image of the owner yet (e.g.
    // before the first commit): there is nothing at rest to damage.
    stores[f.node]->corrupt_committed(f.owner);
  });
  fire_kind(InjectionKind::TornTransfer, [&](const FailureInjection& f) {
    armed_[f.node].push_back(InjectionKind::TornTransfer);
  });
  fire_kind(InjectionKind::FailTransfer, [&](const FailureInjection& f) {
    armed_[f.node].push_back(InjectionKind::FailTransfer);
  });
  bool any_loss = false;
  fire_kind(InjectionKind::NodeLoss, [&](const FailureInjection& f) {
    destroy(f.node);
    ++report.failures;
    any_loss = true;
  });
  return any_loss;
}

void RecoveryEngine::rollback_and_refill(
    std::uint64_t step, std::span<ckpt::BuddyStore* const> stores,
    std::span<const std::uint64_t> committed_hashes, const RestoreFn& restore,
    const BlankRestartFn& blank_restart, RunReport& report) {
  // In-flight refills die with the rollback; the set is re-derived below
  // from whichever stores the failure left empty.
  refill_.clear();
  const std::uint64_t nodes = groups_.nodes();
  for (std::uint64_t node = 0; node < nodes; ++node) {
    stores[node]->discard_staged();
    if (lost_[node]) {
      // Already running degraded: the node has no committed image anywhere,
      // so there is no ladder to walk until the next commit readmits it.
      blank_restart(node);
      continue;
    }
    auto outcome =
        ckpt::select_replica(node, groups_, stores, committed_hashes[node]);
    report.corrupt_images_detected += outcome.corrupt_skipped;
    if (outcome.ok()) {
      if (outcome.report.source != node) {
        ++report.recoveries;
        ++report.hash_verified_recoveries;
      }
      if (outcome.status == ckpt::RecoveryStatus::FailedOver) {
        ++report.failovers;
      }
      restore(node, *outcome.image);
      continue;
    }
    // Ladder exhausted: unrecoverable data loss. Mark the node lost, record
    // the first loss as the fatal event, blank-restart it from the kernel's
    // initial condition, and let the run continue in degraded mode.
    ++report.recoveries;
    lost_[node] = 1;
    ++lost_count_;
    if (!report.fatal) {
      report.fatal = true;
      report.degraded = true;
      report.fatal_node = node;
      report.fatal_step = step;
      report.fatal_reason = "fatal failure: no surviving replica of node " +
                            std::to_string(node);
    }
    blank_restart(node);
  }
  // Re-replication: every store the failure emptied must be refilled before
  // its group can take another hit (the model's risk window). A zero delay
  // delivers inside the rollback, exactly like the blocking protocol.
  for (std::uint64_t node = 0; node < nodes; ++node) {
    if (stores[node]->committed_count() == 0) {
      refill_.push_back(RefillEntry{node, delay_steps_, 1, false});
    }
  }
  if (delay_steps_ == 0) deliver_due(stores, committed_hashes, report);
}

void RecoveryEngine::tick(std::span<ckpt::BuddyStore* const> stores,
                          std::span<const std::uint64_t> committed_hashes,
                          RunReport& report) {
  if (!refill_.empty()) {
    ++report.risk_steps;
    for (RefillEntry& entry : refill_) {
      if (!entry.abandoned && entry.due > 0) --entry.due;
    }
    deliver_due(stores, committed_hashes, report);
  }
  if (lost_count_ > 0) ++report.degraded_steps;
}

void RecoveryEngine::deliver_due(std::span<ckpt::BuddyStore* const> stores,
                                 std::span<const std::uint64_t> committed_hashes,
                                 RunReport& report) {
  for (auto it = refill_.begin(); it != refill_.end();) {
    if (!it->abandoned && it->due == 0 &&
        attempt_delivery(*it, stores, committed_hashes, report)) {
      it = refill_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RecoveryEngine::attempt_delivery(
    RefillEntry& entry, std::span<ckpt::BuddyStore* const> stores,
    std::span<const std::uint64_t> committed_hashes, RunReport& report) {
  // An armed transfer fault consumes exactly one delivery attempt.
  auto& faults = armed_[entry.node];
  if (!faults.empty()) {
    const InjectionKind fault = faults.front();
    faults.erase(faults.begin());
    if (fault == InjectionKind::TornTransfer) {
      // The bundle arrived prefix-only; the receiver's hash check rejects
      // the whole delivery rather than filing a silently damaged image.
      ++report.corrupt_images_detected;
    }
    if (entry.attempt >= retry_.max_attempts) {
      // Out of retries: the store stays empty (and the risk window stays
      // open) until the next committed exchange re-creates every replica.
      entry.abandoned = true;
      return false;
    }
    entry.due = retry_.backoff_steps(entry.attempt);
    ++entry.attempt;
    ++report.transfer_retries;
    return false;
  }
  const auto outcome =
      ckpt::restore_replicas(entry.node, groups_, stores, committed_hashes);
  report.corrupt_images_detected += outcome.corrupt_skipped;
  if (outcome.restored > 0) ++report.rereplications;
  return true;
}

void RecoveryEngine::on_commit() {
  refill_.clear();
  if (lost_count_ > 0) {
    std::fill(lost_.begin(), lost_.end(), char{0});
    lost_count_ = 0;
  }
}

}  // namespace dckpt::runtime
