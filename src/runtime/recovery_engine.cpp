#include "runtime/recovery_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ckpt/recovery.hpp"
#include "runtime/coordinator.hpp"

namespace dckpt::runtime {

RecoveryEngine::RecoveryEngine(ckpt::GroupAssignment groups,
                               std::uint64_t rereplication_delay_steps,
                               ckpt::RetryPolicy retry, std::size_t keep_last)
    : groups_(std::move(groups)), delay_steps_(rereplication_delay_steps),
      retry_(retry), keep_last_(keep_last), armed_(groups_.nodes()),
      lost_(groups_.nodes(), 0), sdc_epoch_(groups_.nodes(), 0) {
  retry_.validate();
  if (keep_last_ == 0) {
    throw std::invalid_argument("RecoveryEngine: zero retention");
  }
  // The starting configuration is the implicit first restore point.
  RetainedSet initial;
  initial.epochs.assign(groups_.nodes(), 0);
  initial.initial = true;
  sets_.push_back(std::move(initial));
}

bool RecoveryEngine::fire_injections(
    std::vector<FailureInjection>& pending, std::uint64_t step,
    std::span<ckpt::BuddyStore* const> stores,
    const std::function<void(std::uint64_t)>& destroy,
    const std::function<void(std::uint64_t)>& silent_corrupt,
    RunReport& report) {
  // Kind order within a step: silent corruption exists at rest before the
  // crash that exposes it, and a transfer fault arms before the loss whose
  // refill it will sabotage.
  const auto fire_kind = [&](InjectionKind kind, auto&& act) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step && it->kind == kind) {
        act(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  };
  fire_kind(InjectionKind::SilentError, [&](const FailureInjection& f) {
    // Latent in-memory damage: the node keeps computing on the corrupted
    // state and every snapshot taken from now on carries the epoch.
    silent_corrupt(f.node);
    ++sdc_epoch_[f.node];
    ++report.sdc_injected;
  });
  fire_kind(InjectionKind::CorruptReplica, [&](const FailureInjection& f) {
    // No-op when the holder has no committed image of the owner yet (e.g.
    // before the first commit): there is nothing at rest to damage.
    stores[f.node]->corrupt_committed(f.owner);
  });
  fire_kind(InjectionKind::TornDelta, [&](const FailureInjection& f) {
    // Tears the layer at 1-based depth f.window in the victim's chain on
    // its *first* ladder rung (pairs: the local copy; triples: the
    // preferred buddy) -- the copy a restore consults first. No-op when
    // the chain is shorter (e.g. right after a full commit).
    const std::uint64_t holder =
        groups_.topology() == ckpt::Topology::Pairs
            ? f.node
            : groups_.preferred_buddy(f.node);
    stores[holder]->corrupt_delta(f.node, f.window);
  });
  fire_kind(InjectionKind::TornTransfer, [&](const FailureInjection& f) {
    armed_[f.node].push_back(InjectionKind::TornTransfer);
  });
  fire_kind(InjectionKind::FailTransfer, [&](const FailureInjection& f) {
    armed_[f.node].push_back(InjectionKind::FailTransfer);
  });
  bool any_loss = false;
  fire_kind(InjectionKind::NodeLoss, [&](const FailureInjection& f) {
    destroy(f.node);
    ++report.failures;
    any_loss = true;
  });
  return any_loss;
}

void RecoveryEngine::rollback_and_refill(
    std::uint64_t step, std::span<ckpt::BuddyStore* const> stores,
    std::span<const std::uint64_t> committed_hashes, const RestoreFn& restore,
    const BlankRestartFn& blank_restart, RunReport& report) {
  // In-flight refills die with the rollback; the set is re-derived below
  // from whichever stores the failure left empty.
  refill_.clear();
  const std::uint64_t nodes = groups_.nodes();
  for (std::uint64_t node = 0; node < nodes; ++node) {
    stores[node]->discard_staged();
    if (lost_[node]) {
      // Already running degraded: the node has no committed image anywhere,
      // so there is no ladder to walk until the next commit readmits it.
      blank_restart(node);
      sdc_epoch_[node] = 0;
      continue;
    }
    auto outcome =
        ckpt::select_replica(node, groups_, stores, committed_hashes[node]);
    report.corrupt_images_detected += outcome.corrupt_skipped;
    if (outcome.torn_skipped > 0) {
      report.torn_chain_failovers += outcome.torn_skipped;
    }
    if (outcome.ok()) {
      if (outcome.report.source != node) {
        ++report.recoveries;
        ++report.hash_verified_recoveries;
      }
      if (outcome.status == ckpt::RecoveryStatus::FailedOver) {
        ++report.failovers;
      }
      if (outcome.replayed_layers > 0) {
        ++report.chain_replays;
        report.chain_replay_depth += outcome.replayed_layers;
      }
      restore(node, *outcome.image);
      // The restored image carries whatever corruption the committed set
      // captured -- the live epoch snaps back to the set's record.
      sdc_epoch_[node] = sets_.front().epochs[node];
      continue;
    }
    // Ladder exhausted: unrecoverable data loss. Mark the node lost, record
    // the first loss as the fatal event, blank-restart it from the kernel's
    // initial condition, and let the run continue in degraded mode.
    ++report.recoveries;
    lost_[node] = 1;
    ++lost_count_;
    if (!report.fatal) {
      report.fatal = true;
      report.degraded = true;
      report.fatal_node = node;
      report.fatal_step = step;
      report.fatal_reason = "fatal failure: no surviving replica of node " +
                            std::to_string(node);
    }
    blank_restart(node);
    sdc_epoch_[node] = 0;  // fresh initial condition carries no corruption
  }
  // Re-replication: every store the failure emptied must be refilled before
  // its group can take another hit (the model's risk window). A zero delay
  // delivers inside the rollback, exactly like the blocking protocol.
  for (std::uint64_t node = 0; node < nodes; ++node) {
    if (stores[node]->committed_count() == 0) {
      refill_.push_back(RefillEntry{node, delay_steps_, 1, false});
    }
  }
  if (delay_steps_ == 0) deliver_due(stores, committed_hashes, report);
}

void RecoveryEngine::tick(std::span<ckpt::BuddyStore* const> stores,
                          std::span<const std::uint64_t> committed_hashes,
                          RunReport& report) {
  if (!refill_.empty()) {
    ++report.risk_steps;
    for (RefillEntry& entry : refill_) {
      if (!entry.abandoned && entry.due > 0) --entry.due;
    }
    deliver_due(stores, committed_hashes, report);
  }
  if (lost_count_ > 0) ++report.degraded_steps;
}

void RecoveryEngine::deliver_due(std::span<ckpt::BuddyStore* const> stores,
                                 std::span<const std::uint64_t> committed_hashes,
                                 RunReport& report) {
  for (auto it = refill_.begin(); it != refill_.end();) {
    if (!it->abandoned && it->due == 0 &&
        attempt_delivery(*it, stores, committed_hashes, report)) {
      it = refill_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RecoveryEngine::attempt_delivery(
    RefillEntry& entry, std::span<ckpt::BuddyStore* const> stores,
    std::span<const std::uint64_t> committed_hashes, RunReport& report) {
  // An armed transfer fault consumes exactly one delivery attempt.
  auto& faults = armed_[entry.node];
  if (!faults.empty()) {
    const InjectionKind fault = faults.front();
    faults.erase(faults.begin());
    if (fault == InjectionKind::TornTransfer) {
      // The bundle arrived prefix-only; the receiver's hash check rejects
      // the whole delivery rather than filing a silently damaged image.
      ++report.corrupt_images_detected;
    }
    if (entry.attempt >= retry_.max_attempts) {
      // Out of retries: the store stays empty (and the risk window stays
      // open) until the next committed exchange re-creates every replica.
      entry.abandoned = true;
      return false;
    }
    entry.due = retry_.backoff_steps(entry.attempt);
    ++entry.attempt;
    ++report.transfer_retries;
    return false;
  }
  const auto outcome =
      ckpt::restore_replicas(entry.node, groups_, stores, committed_hashes);
  report.corrupt_images_detected += outcome.corrupt_skipped;
  if (outcome.restored > 0) ++report.rereplications;
  report.chain_replays += outcome.chains_replayed;
  report.chain_replay_depth += outcome.layers_replayed;
  return true;
}

void RecoveryEngine::on_commit(std::uint64_t snapshot_step,
                               std::span<const std::uint64_t> hashes,
                               std::span<const std::uint64_t> epochs) {
  refill_.clear();
  if (lost_count_ > 0) {
    std::fill(lost_.begin(), lost_.end(), char{0});
    lost_count_ = 0;
  }
  // The new committed set becomes ladder depth 0; older sets age one rung
  // and the ring trims to the configured retention (the virtual initial
  // entry ages out like any other set).
  RetainedSet set;
  set.step = snapshot_step;
  set.hashes.assign(hashes.begin(), hashes.end());
  set.epochs.assign(epochs.begin(), epochs.end());
  sets_.push_front(std::move(set));
  while (sets_.size() > keep_last_) sets_.pop_back();
}

void RecoveryEngine::reset_to_initial() {
  std::fill(sdc_epoch_.begin(), sdc_epoch_.end(), std::uint64_t{0});
  sets_.clear();
  RetainedSet initial;
  initial.epochs.assign(groups_.nodes(), 0);
  initial.initial = true;
  sets_.push_back(std::move(initial));
}

RecoveryEngine::VerifyAction RecoveryEngine::verify_checkpoints(
    std::uint64_t step, std::span<ckpt::BuddyStore* const> stores,
    std::vector<std::uint64_t>& committed_hashes, const RestoreFn& restore,
    const BlankRestartFn& blank_restart, RunReport& report) {
  ++report.verifications_run;
  VerifyAction action;
  const bool clean = std::all_of(sdc_epoch_.begin(), sdc_epoch_.end(),
                                 [](std::uint64_t e) { return e == 0; });
  if (clean) return action;
  ++report.sdc_detected;

  // Walk the ladder newest -> oldest for a set captured before every live
  // corruption epoch *and* fully restorable through the replica ladders.
  // The virtual initial entry is always usable: re-initializing is a
  // restore point that needs no stored images.
  const auto usable = [&](std::size_t depth) {
    const RetainedSet& set = sets_[depth];
    if (set.initial) return true;
    const bool untainted = std::all_of(set.epochs.begin(), set.epochs.end(),
                                       [](std::uint64_t e) { return e == 0; });
    return untainted &&
           ckpt::set_restorable(depth, groups_, stores, set.hashes);
  };
  const auto outcome = ckpt::select_rollback_set(sets_.size(), usable);
  if (!outcome.ok()) {
    // Detected but unrecoverable: accept the corrupted state as the new
    // truth and run on degraded -- exactly the fail-stop data-loss policy,
    // with the *detection* recorded instead of a silent wrong answer.
    if (!report.fatal) {
      std::uint64_t culprit = 0;
      for (std::uint64_t node = 0; node < sdc_epoch_.size(); ++node) {
        if (sdc_epoch_[node] != 0) {
          culprit = node;
          break;
        }
      }
      report.fatal = true;
      report.degraded = true;
      report.fatal_node = culprit;
      report.fatal_step = step;
      report.fatal_reason =
          "silent corruption detected on node " + std::to_string(culprit) +
          ": no clean retained checkpoint set";
    }
    std::fill(sdc_epoch_.begin(), sdc_epoch_.end(), std::uint64_t{0});
    return action;
  }

  ++report.rollbacks;
  report.rollback_depth += outcome.depth;
  action.rolled_back = true;
  // Any in-flight staging set was captured after the corruption (or is
  // about to be replayed); it dies with the rollback, as do in-flight
  // refills -- re-derived below against the installed set.
  refill_.clear();
  for (ckpt::BuddyStore* store : stores) store->discard_staged();
  for (ckpt::BuddyStore* store : stores) store->drop_newest(outcome.depth);
  for (std::size_t i = 0; i < outcome.depth; ++i) sets_.pop_front();

  if (sets_.front().initial) {
    // Rolled all the way back to the starting configuration: every store
    // empties and every node re-initializes.
    for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
      blank_restart(node);
    }
    reset_to_initial();
    if (lost_count_ > 0) {
      std::fill(lost_.begin(), lost_.end(), char{0});
      lost_count_ = 0;
    }
    action.to_initial = true;
    action.resume_step = 0;
    return action;
  }

  // Install the selected set: set_restorable() already proved every node
  // has a clean hash-verified image, so these walks cannot exhaust. Only
  // the rollback counters move -- this is time travel, not peer recovery.
  const RetainedSet& target = sets_.front();
  for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
    auto selected =
        ckpt::select_replica(node, groups_, stores, target.hashes[node]);
    restore(node, *selected.image);
    sdc_epoch_[node] = target.epochs[node];
  }
  committed_hashes.assign(target.hashes.begin(), target.hashes.end());
  if (lost_count_ > 0) {
    // Every node now runs verified committed data; nobody is blank.
    std::fill(lost_.begin(), lost_.end(), char{0});
    lost_count_ = 0;
  }
  // A store whose depth ring ran out of sets is empty after the drop (e.g.
  // a replacement node refilled only at depth 0): schedule its refill like
  // any post-rollback re-replication.
  for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
    if (stores[node]->committed_count() == 0) {
      refill_.push_back(RefillEntry{node, delay_steps_, 1, false});
    }
  }
  if (delay_steps_ == 0 && !refill_.empty()) {
    deliver_due(stores, committed_hashes, report);
  }
  action.resume_step = target.step;
  return action;
}

}  // namespace dckpt::runtime
