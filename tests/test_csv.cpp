#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

using dckpt::util::CsvWriter;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/dckpt_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"x", "y"});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvWriterTest, NumericRows) {
  {
    CsvWriter csv(path_, {"v"});
    csv.write_row_numeric({0.5});
  }
  EXPECT_EQ(slurp(path_), "v\n0.500000000\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"text"});
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
  }
  EXPECT_EQ(slurp(path_), "text\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvWriterTest, RejectsArityMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.write_row({"1"}), std::invalid_argument);
}

TEST_F(CsvWriterTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST_F(CsvWriterTest, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
