// Unit tests for the verified-checkpoint SDC waste model (model/sdc.hpp):
// spec validation, reduction to the fail-stop model, factor composition,
// monotonicity in the strike rate and verification cost, saturation, the
// protocol-dependent rollback transfer, and the numeric period optimum.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/model_api.hpp"

namespace {

using namespace dckpt;
using model::Parameters;
using model::Protocol;
using model::SdcSpec;

Parameters sdc_params(double mtbf = 3600.0) {
  return model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
}

TEST(SdcSpecTest, ValidateAcceptsReasonableSpecs) {
  EXPECT_NO_THROW((SdcSpec{1e-4, 10.0, 2}.validate()));
  EXPECT_NO_THROW((SdcSpec{0.0, 0.0, 1}.validate()));
}

TEST(SdcSpecTest, ValidateRejectsBadSpecs) {
  EXPECT_THROW((SdcSpec{-1e-4, 10.0, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((SdcSpec{1e-4, -1.0, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((SdcSpec{1e-4, 10.0, 0}.validate()), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((SdcSpec{inf, 10.0, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((SdcSpec{1e-4, inf, 2}.validate()), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((SdcSpec{nan, 10.0, 2}.validate()), std::invalid_argument);
}

TEST(SdcModelTest, ReducesToFailStopWasteWhenDisabled) {
  const auto params = sdc_params();
  const SdcSpec off{0.0, 0.0, 3};
  for (const Protocol protocol : model::kAllProtocols) {
    const double period =
        model::optimal_period_closed_form(protocol, params).period;
    EXPECT_DOUBLE_EQ(model::waste_with_sdc(protocol, params, period, off),
                     model::waste(protocol, params, period))
        << model::protocol_name(protocol);
  }
}

TEST(SdcModelTest, FactorsComposeAsDocumented) {
  // Check the Sec. 8 closed form literally: the implementation must be the
  // three-factor product, not an ad-hoc sum of penalties.
  const auto params = sdc_params();
  const Protocol protocol = Protocol::DoubleNbl;
  const SdcSpec spec{2e-4, 10.0, 2};
  const double period = 150.0;
  const double w0 = model::waste(protocol, params, period);
  const double verify_fraction =
      spec.verify_cost /
      (static_cast<double>(spec.verify_every) * period);
  const double loss = model::sdc_recovery_cost(protocol, params) +
                      (static_cast<double>(spec.verify_every) + 1.0) *
                          period / 2.0;
  const double expected =
      1.0 - (1.0 - w0) * (1.0 - verify_fraction) * (1.0 - spec.rate * loss);
  EXPECT_NEAR(model::waste_with_sdc(protocol, params, period, spec), expected,
              1e-12);
}

TEST(SdcModelTest, MonotoneInRateAndCost) {
  const auto params = sdc_params();
  const double period = 150.0;
  double previous = 0.0;
  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
    const double w = model::waste_with_sdc(Protocol::DoubleNbl, params,
                                           period, {rate, 10.0, 2});
    EXPECT_GE(w, previous);
    previous = w;
  }
  previous = 0.0;
  for (const double cost : {0.0, 5.0, 20.0, 60.0}) {
    const double w = model::waste_with_sdc(Protocol::DoubleNbl, params,
                                           period, {1e-4, cost, 2});
    EXPECT_GE(w, previous);
    previous = w;
  }
}

TEST(SdcModelTest, SaturatesAtOne) {
  const auto params = sdc_params();
  // Strike every few seconds: the expected loss per interval exceeds the
  // interval, so the model must clamp instead of going negative or above 1.
  const double w = model::waste_with_sdc(Protocol::DoubleNbl, params, 150.0,
                                         {0.5, 10.0, 2});
  EXPECT_DOUBLE_EQ(w, 1.0);
  // Verification longer than the interval it protects: same clamp.
  const double wv = model::waste_with_sdc(Protocol::DoubleNbl, params, 150.0,
                                          {1e-5, 400.0, 2});
  EXPECT_DOUBLE_EQ(wv, 1.0);
}

TEST(SdcModelTest, RecoveryCostTracksProtocolBlocking) {
  const auto params = sdc_params();
  const double r = params.recovery();
  EXPECT_DOUBLE_EQ(model::sdc_recovery_cost(Protocol::DoubleNbl, params), r);
  EXPECT_DOUBLE_EQ(model::sdc_recovery_cost(Protocol::Triple, params), r);
  EXPECT_DOUBLE_EQ(model::sdc_recovery_cost(Protocol::DoubleBof, params),
                   2.0 * r);
  EXPECT_DOUBLE_EQ(model::sdc_recovery_cost(Protocol::DoubleBlocking, params),
                   2.0 * r);
  EXPECT_DOUBLE_EQ(model::sdc_recovery_cost(Protocol::TripleBof, params),
                   3.0 * r);
}

TEST(SdcModelTest, OptimalPeriodBeatsNeighboringPeriods) {
  const auto params = sdc_params();
  const SdcSpec spec{2e-4, 10.0, 2};
  for (const Protocol protocol :
       {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple}) {
    const auto opt = model::optimal_period_with_sdc(protocol, params, spec);
    ASSERT_TRUE(opt.feasible) << model::protocol_name(protocol);
    const double at_opt =
        model::waste_with_sdc(protocol, params, opt.period, spec);
    EXPECT_NEAR(at_opt, opt.waste, 1e-9);
    for (const double factor : {0.8, 1.25}) {
      const double neighbor = opt.period * factor;
      if (neighbor < model::min_period(protocol, params)) continue;
      EXPECT_LE(at_opt,
                model::waste_with_sdc(protocol, params, neighbor, spec) +
                    1e-12)
          << model::protocol_name(protocol) << " factor " << factor;
    }
  }
}

TEST(SdcModelTest, VerificationShiftsOptimumAboveFailStop) {
  // Pure verification overhead (no strikes) amortizes over longer periods:
  // the optimum must not fall below the fail-stop one.
  const auto params = sdc_params();
  const SdcSpec spec{0.0, 30.0, 1};
  const auto base =
      model::optimal_period_closed_form(Protocol::DoubleNbl, params);
  const auto with_verify =
      model::optimal_period_with_sdc(Protocol::DoubleNbl, params, spec);
  ASSERT_TRUE(base.feasible && with_verify.feasible);
  EXPECT_GE(with_verify.period, base.period * 0.999);
}

}  // namespace
