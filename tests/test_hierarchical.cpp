#include "model/hierarchical.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/period.hpp"
#include "model/risk.hpp"
#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt::model;

HierarchicalParams make_params(double mtbf = 600.0,
                               Protocol protocol = Protocol::DoubleNbl) {
  HierarchicalParams params;
  params.protocol = protocol;
  params.level1 = base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
  params.global_ckpt = 300.0;
  params.global_recovery = 300.0;
  return params;
}

TEST(HierarchicalWasteTest, ComposesMultiplicatively) {
  const auto params = make_params();
  const double p1 =
      optimal_period_closed_form(params.protocol, params.level1).period;
  const double p2 = 50000.0;
  const double w1 = waste(params.protocol, params.level1, p1);
  const double rho = fatal_failure_rate(params.protocol, params.level1);
  const double expected =
      1.0 - (1.0 - w1) * (1.0 - 300.0 / p2) *
                (1.0 - rho * (params.level1.downtime + 300.0 + p2 / 2.0));
  EXPECT_NEAR(hierarchical_waste(params, p1, p2), expected, 1e-12);
}

TEST(HierarchicalWasteTest, ReducesToLevel1WhenLevel2Vanishes) {
  const auto params = make_params(7 * 3600.0);
  const double p1 =
      optimal_period_closed_form(params.protocol, params.level1).period;
  const double w1 = waste(params.protocol, params.level1, p1);
  // Long P2 (but still << 1/rho, so the rollback term stays negligible):
  // level 2 adds (almost) nothing.
  const double w = hierarchical_waste(params, p1, 1e8);
  EXPECT_NEAR(w, w1, 1e-3);
}

TEST(HierarchicalWasteTest, RejectsTooSmallP2) {
  const auto params = make_params();
  EXPECT_THROW(hierarchical_waste(params, 200.0, 100.0),
               std::invalid_argument);
}

TEST(OptimizeHierarchicalTest, Level2PeriodIsDalyAtFatalScale) {
  const auto params = make_params(120.0);  // hostile: sizeable fatal rate
  const auto eval = optimize_hierarchical(params);
  ASSERT_TRUE(eval.feasible);
  const double rho = fatal_failure_rate(params.protocol, params.level1);
  EXPECT_NEAR(eval.level2_period, std::sqrt(2.0 * 300.0 / rho), 1e-6);
  EXPECT_GT(eval.level2_period, eval.level1_period);
}

TEST(OptimizeHierarchicalTest, OptimalP2IsNearStationary) {
  const auto params = make_params(120.0);
  const auto eval = optimize_hierarchical(params);
  ASSERT_TRUE(eval.feasible);
  const double at = hierarchical_waste(params, eval.level1_period,
                                       eval.level2_period);
  // First-order optimum: moving P2 by 25% in either direction can only
  // improve the waste marginally if at all.
  EXPECT_LE(at, hierarchical_waste(params, eval.level1_period,
                                   eval.level2_period * 0.75) +
                    1e-4);
  EXPECT_LE(at, hierarchical_waste(params, eval.level1_period,
                                   eval.level2_period * 1.25) +
                    1e-4);
}

TEST(OptimizeHierarchicalTest, TripleNeedsLevel2FarLessOften) {
  // Triple's fatal rate is orders of magnitude below the pairs', so its
  // optimal global-checkpoint period is far longer.
  const auto nbl = optimize_hierarchical(make_params(120.0,
                                                     Protocol::DoubleNbl));
  const auto tri = optimize_hierarchical(make_params(120.0,
                                                     Protocol::Triple));
  ASSERT_TRUE(nbl.feasible);
  ASSERT_TRUE(tri.feasible);
  EXPECT_GT(tri.level2_period, 10.0 * nbl.level2_period);
  EXPECT_LT(tri.level2_waste, nbl.level2_waste);
}

TEST(OptimizeHierarchicalTest, TotalWasteDecomposes) {
  const auto params = make_params(300.0);
  const auto eval = optimize_hierarchical(params);
  ASSERT_TRUE(eval.feasible);
  EXPECT_NEAR(1.0 - eval.total_waste,
              (1.0 - eval.level1_waste) * (1.0 - eval.level2_waste), 1e-9);
  EXPECT_GE(eval.total_waste, eval.level1_waste);
}

TEST(OptimizeHierarchicalTest, InfeasibleLevel1Propagates) {
  const auto params = make_params(10.0);
  const auto eval = optimize_hierarchical(params);
  EXPECT_FALSE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.total_waste, 1.0);
}

TEST(MeanTimeBetweenFatalTest, OrderingAndScale) {
  const auto params = base_scenario().at_phi_ratio(0.25).with_mtbf(120.0);
  const double nbl = mean_time_between_fatal(Protocol::DoubleNbl, params);
  const double bof = mean_time_between_fatal(Protocol::DoubleBof, params);
  const double tri = mean_time_between_fatal(Protocol::Triple, params);
  EXPECT_GT(bof, nbl);       // shorter risk window -> rarer fatality
  EXPECT_GT(tri, 100.0 * bof);  // triple needs a third coincident failure
  EXPECT_GT(nbl, params.mtbf);  // fatal events are rarer than failures
}

TEST(HierarchicalParamsTest, Validation) {
  auto params = make_params();
  params.global_ckpt = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = make_params();
  params.global_recovery = -1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = make_params();
  params.level1.mtbf = -1.0;
  EXPECT_THROW(optimize_hierarchical(params), std::invalid_argument);
}

}  // namespace
