#include "ckpt/page_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "proptest.hpp"

namespace {

using dckpt::ckpt::fnv1a;
using dckpt::ckpt::PageStore;
using dckpt::ckpt::Snapshot;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(Fnv1aTest, KnownProperties) {
  const auto a = bytes_of("hello");
  const auto b = bytes_of("hellp");
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);  // seed passes through
}

TEST(PageStoreTest, ZeroInitialized) {
  PageStore store(1000, 256);
  std::vector<std::byte> out(1000);
  store.read(0, out);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(PageStoreTest, WriteReadRoundTrip) {
  PageStore store(4096, 512);
  const auto data = bytes_of("the quick brown fox");
  store.write(700, data);  // crosses the 512/1024 page boundary
  std::vector<std::byte> out(data.size());
  store.read(700, out);
  EXPECT_EQ(out, data);
}

TEST(PageStoreTest, PageGeometry) {
  PageStore store(1000, 256);
  EXPECT_EQ(store.page_count(), 4u);  // ceil(1000/256)
  EXPECT_EQ(store.size_bytes(), 1000u);
  EXPECT_EQ(store.page_size(), 256u);
}

TEST(PageStoreTest, OutOfRangeAccessesThrow) {
  PageStore store(100, 64);
  std::vector<std::byte> buf(10);
  EXPECT_THROW(store.read(95, buf), std::out_of_range);
  EXPECT_THROW(store.write(95, buf), std::out_of_range);
  EXPECT_THROW(PageStore(0, 64), std::invalid_argument);
  EXPECT_THROW(PageStore(10, 0), std::invalid_argument);
}

TEST(PageStoreTest, HugeOffsetWrapIsRejected) {
  // Regression: `offset + len` wraps past SIZE_MAX back into range, so the
  // naive guard accepted the access and memcpy'd out of bounds.
  PageStore store(100, 64);
  std::vector<std::byte> buf(16);
  const std::size_t wrap = std::numeric_limits<std::size_t>::max() - 8;
  EXPECT_THROW(store.read(wrap, buf), std::out_of_range);
  EXPECT_THROW(store.write(wrap, buf), std::out_of_range);
  // An offset just past the end with a tiny length must also be rejected.
  std::vector<std::byte> one(1);
  EXPECT_THROW(store.read(101, one), std::out_of_range);
  EXPECT_THROW(store.write(101, one), std::out_of_range);
}

TEST(PageStoreTest, RestoreAdvancesVersionPastRestoredImage) {
  // Regression: restoring a higher-versioned image (the failover path: a
  // replacement node adopts a buddy's snapshot) left version_ behind, so
  // the next snapshot ordered *before* the restored one and make_delta
  // rejected a legitimate post-failover delta.
  PageStore source(512, 256);
  Snapshot committed;
  for (int i = 0; i < 5; ++i) committed = source.snapshot(9);
  ASSERT_EQ(committed.version(), 5u);
  PageStore replacement(512, 256);
  replacement.restore(committed);
  const Snapshot after = replacement.snapshot(9);
  EXPECT_GT(after.version(), committed.version());
}

TEST(PageStoreTest, SnapshotIsImmutableUnderLaterWrites) {
  PageStore store(1024, 256);
  store.write(0, bytes_of("before"));
  const Snapshot snap = store.snapshot(7);
  const std::uint64_t hash_before = snap.content_hash();
  store.write(0, bytes_of("AFTER!"));
  EXPECT_EQ(snap.content_hash(), hash_before);
  // The store sees the new data.
  std::vector<std::byte> out(6);
  store.read(0, out);
  EXPECT_EQ(out, bytes_of("AFTER!"));
}

TEST(PageStoreTest, CowCopiesOnlyTouchedPages) {
  PageStore store(4 * 256, 256);
  const Snapshot snap = store.snapshot(1);
  EXPECT_EQ(store.cow_copies(), 0u);
  store.write(0, bytes_of("x"));  // page 0 cloned
  EXPECT_EQ(store.cow_copies(), 1u);
  store.write(10, bytes_of("y"));  // page 0 already private
  EXPECT_EQ(store.cow_copies(), 1u);
  store.write(3 * 256, bytes_of("z"));  // page 3 cloned
  EXPECT_EQ(store.cow_copies(), 2u);
  (void)snap;
}

TEST(PageStoreTest, NoCowAfterSnapshotDropped) {
  PageStore store(512, 256);
  { const Snapshot snap = store.snapshot(1); }
  store.write(0, bytes_of("w"));
  EXPECT_EQ(store.cow_copies(), 0u);
}

TEST(PageStoreTest, RestoreBringsContentBack) {
  PageStore store(1024, 256);
  store.write(100, bytes_of("checkpointed"));
  const Snapshot snap = store.snapshot(2);
  store.write(100, bytes_of("overwritten!"));
  store.restore(snap);
  std::vector<std::byte> out(12);
  store.read(100, out);
  EXPECT_EQ(out, bytes_of("checkpointed"));
}

TEST(PageStoreTest, WritesAfterRestoreDontCorruptSnapshot) {
  PageStore store(512, 256);
  store.write(0, bytes_of("golden"));
  const Snapshot snap = store.snapshot(3);
  store.restore(snap);
  store.write(0, bytes_of("dirty!"));  // must COW, not poison the snapshot
  EXPECT_EQ(snap.to_bytes()[0], std::byte{'g'});
}

TEST(PageStoreTest, RestoreRejectsLayoutMismatch) {
  PageStore a(512, 256), b(1024, 256);
  const Snapshot snap = b.snapshot(1);
  EXPECT_THROW(a.restore(snap), std::invalid_argument);
}

TEST(SnapshotTest, MetadataAndVersioning) {
  PageStore store(300, 128);
  const Snapshot s1 = store.snapshot(42);
  const Snapshot s2 = store.snapshot(42);
  EXPECT_EQ(s1.owner(), 42u);
  EXPECT_EQ(s1.version(), 1u);
  EXPECT_EQ(s2.version(), 2u);
  EXPECT_EQ(s1.size_bytes(), 300u);
  EXPECT_EQ(s1.page_count(), 3u);
  EXPECT_FALSE(s1.empty());
  EXPECT_TRUE(Snapshot().empty());
}

TEST(SnapshotTest, ToBytesMatchesStoreContent) {
  PageStore store(600, 256);
  const auto data = bytes_of("abcdefghij");
  store.write(590, data);
  const Snapshot snap = store.snapshot(1);
  const auto flat = snap.to_bytes();
  ASSERT_EQ(flat.size(), 600u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(flat[590 + i], data[i]);
  }
}

TEST(SnapshotTest, HashDetectsSingleByteChange) {
  PageStore store(512, 256);
  store.write(0, bytes_of("A"));
  const auto h1 = store.snapshot(1).content_hash();
  store.write(0, bytes_of("B"));
  const auto h2 = store.snapshot(1).content_hash();
  EXPECT_NE(h1, h2);
}

TEST(SnapshotTest, VerifyAcceptsIntactRejectsWrongHash) {
  PageStore store(512, 256);
  store.write(0, bytes_of("payload"));
  const Snapshot snap = store.snapshot(1);
  EXPECT_TRUE(snap.verify(snap.content_hash()));
  EXPECT_FALSE(snap.verify(snap.content_hash() ^ 1));
}

TEST(SnapshotTest, CorruptCopyFailsVerifyWithoutTouchingTheOriginal) {
  PageStore store(512, 256);
  store.write(0, bytes_of("payload"));
  const Snapshot snap = store.snapshot(1);
  const std::uint64_t hash = snap.content_hash();
  const Snapshot bad = corrupt_copy(snap);
  EXPECT_FALSE(bad.verify(hash));
  EXPECT_TRUE(snap.verify(hash));  // damage is on the copy's own pages
  // The layout survives: a corrupt image is restorable, just wrong.
  EXPECT_EQ(bad.to_bytes().size(), snap.to_bytes().size());
}

TEST(SnapshotTest, TornCopyFailsVerifyEvenOnAllZeroTail) {
  // The lost tail of an all-zero image reads back as zeros -- identical
  // bytes to the original. A torn delivery must still be detectable, so
  // torn_copy also damages the surviving prefix.
  PageStore store(1024, 256);  // zero-initialized: worst case for tearing
  const Snapshot snap = store.snapshot(1);
  const std::uint64_t hash = snap.content_hash();
  const Snapshot torn = torn_copy(snap);
  EXPECT_FALSE(torn.verify(hash));
  EXPECT_EQ(torn.to_bytes().size(), snap.to_bytes().size());
}

// ------------------------------------------- adversarial verification
//
// Snapshot::verify backs the verified-checkpoint machinery: a hash that can
// be fooled turns a detected SDC into a silent one. These cases target the
// classic weaknesses of additive/XOR checksums to document that FNV-1a (an
// order-sensitive multiply-xor fold) does not share them.

TEST(SnapshotVerifyTest, CancellingByteSwapIsStillDetected) {
  // Swapping the values of two bytes preserves both the byte-sum and the
  // byte-XOR of the image -- a parity checksum would accept it.
  PageStore store(1024, 256);
  store.write(0, bytes_of("abcdefgh"));
  const std::uint64_t hash = store.snapshot(1).content_hash();
  store.write(1, bytes_of("c"));  // 'b' and 'c' trade places
  store.write(2, bytes_of("b"));
  EXPECT_FALSE(store.snapshot(1).verify(hash));
}

TEST(SnapshotVerifyTest, CancellingXorFlipsAcrossPagesAreDetected) {
  // The same bit pattern XORed into two different pages: XOR-fold checksums
  // cancel, position-sensitive ones must not.
  PageStore store(1024, 256);
  store.write(0, bytes_of("base"));
  const std::uint64_t hash = store.snapshot(1).content_hash();
  std::vector<std::byte> flipped(1);
  store.read(10, flipped);
  flipped[0] ^= std::byte{0x5a};
  store.write(10, flipped);  // page 0
  store.read(522, flipped);
  flipped[0] ^= std::byte{0x5a};
  store.write(522, flipped);  // page 2, same mask
  EXPECT_FALSE(store.snapshot(1).verify(hash));
}

TEST(SnapshotVerifyTest, FinalPartialPageCorruptionIsDetected) {
  // 1000 bytes over 256-byte pages: the last page is partial; its tail must
  // still be covered by the hash.
  PageStore store(1000, 256);
  store.write(0, bytes_of("head"));
  const std::uint64_t hash = store.snapshot(1).content_hash();
  std::vector<std::byte> last(1);
  store.read(999, last);
  last[0] ^= std::byte{0x01};
  store.write(999, last);
  EXPECT_FALSE(store.snapshot(1).verify(hash));
}

TEST(SnapshotVerifyTest, EmptySnapshotVerifiesItsOwnHashOnly) {
  const Snapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.verify(empty.content_hash()));
  EXPECT_FALSE(empty.verify(empty.content_hash() ^ 1));
}

TEST(SnapshotVerifyTest, PropertyAnySingleByteFlipIsDetected) {
  struct Flip {
    std::uint64_t size = 1;
    std::uint64_t page = 64;
    std::uint64_t offset = 0;
    std::uint8_t mask = 1;
    std::uint64_t fill_seed = 0;
  };
  proptest::ForallConfig config;
  config.seed = 0xf1a9;
  config.iterations = 200;
  const std::vector<std::uint64_t> pages{64, 256, 512};
  proptest::forall<Flip>(
      config,
      [&](proptest::Gen& gen) {
        Flip f;
        f.size = gen.integer(1, 2048);
        f.page = gen.element(pages);
        f.offset = gen.integer(0, f.size - 1);
        f.mask = static_cast<std::uint8_t>(gen.integer(1, 255));
        f.fill_seed = gen.integer(0, 1u << 20);
        return f;
      },
      [](const Flip& f) -> std::optional<std::string> {
        PageStore store(f.size, f.page);
        // Deterministic pseudo-random content so flips hit varied bytes.
        std::vector<std::byte> content(f.size);
        std::uint64_t state = f.fill_seed * 0x9e3779b97f4a7c15ULL + 1;
        for (auto& b : content) {
          state = state * 6364136223846793005ULL + 1442695040888963407ULL;
          b = static_cast<std::byte>(state >> 56);
        }
        store.write(0, content);
        const std::uint64_t hash = store.snapshot(1).content_hash();
        std::vector<std::byte> one(1);
        store.read(f.offset, one);
        one[0] ^= std::byte{f.mask};
        store.write(f.offset, one);
        if (store.snapshot(1).verify(hash)) {
          return "undetected single-byte flip";
        }
        return std::nullopt;
      },
      nullptr,
      [](const Flip& f) {
        std::ostringstream out;
        out << "size=" << f.size << " page=" << f.page
            << " offset=" << f.offset << " mask=" << static_cast<int>(f.mask)
            << " fill_seed=" << f.fill_seed;
        return out.str();
      });
}

}  // namespace
