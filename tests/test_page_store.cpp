#include "ckpt/page_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using dckpt::ckpt::fnv1a;
using dckpt::ckpt::PageStore;
using dckpt::ckpt::Snapshot;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(Fnv1aTest, KnownProperties) {
  const auto a = bytes_of("hello");
  const auto b = bytes_of("hellp");
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);  // seed passes through
}

TEST(PageStoreTest, ZeroInitialized) {
  PageStore store(1000, 256);
  std::vector<std::byte> out(1000);
  store.read(0, out);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(PageStoreTest, WriteReadRoundTrip) {
  PageStore store(4096, 512);
  const auto data = bytes_of("the quick brown fox");
  store.write(700, data);  // crosses the 512/1024 page boundary
  std::vector<std::byte> out(data.size());
  store.read(700, out);
  EXPECT_EQ(out, data);
}

TEST(PageStoreTest, PageGeometry) {
  PageStore store(1000, 256);
  EXPECT_EQ(store.page_count(), 4u);  // ceil(1000/256)
  EXPECT_EQ(store.size_bytes(), 1000u);
  EXPECT_EQ(store.page_size(), 256u);
}

TEST(PageStoreTest, OutOfRangeAccessesThrow) {
  PageStore store(100, 64);
  std::vector<std::byte> buf(10);
  EXPECT_THROW(store.read(95, buf), std::out_of_range);
  EXPECT_THROW(store.write(95, buf), std::out_of_range);
  EXPECT_THROW(PageStore(0, 64), std::invalid_argument);
  EXPECT_THROW(PageStore(10, 0), std::invalid_argument);
}

TEST(PageStoreTest, SnapshotIsImmutableUnderLaterWrites) {
  PageStore store(1024, 256);
  store.write(0, bytes_of("before"));
  const Snapshot snap = store.snapshot(7);
  const std::uint64_t hash_before = snap.content_hash();
  store.write(0, bytes_of("AFTER!"));
  EXPECT_EQ(snap.content_hash(), hash_before);
  // The store sees the new data.
  std::vector<std::byte> out(6);
  store.read(0, out);
  EXPECT_EQ(out, bytes_of("AFTER!"));
}

TEST(PageStoreTest, CowCopiesOnlyTouchedPages) {
  PageStore store(4 * 256, 256);
  const Snapshot snap = store.snapshot(1);
  EXPECT_EQ(store.cow_copies(), 0u);
  store.write(0, bytes_of("x"));  // page 0 cloned
  EXPECT_EQ(store.cow_copies(), 1u);
  store.write(10, bytes_of("y"));  // page 0 already private
  EXPECT_EQ(store.cow_copies(), 1u);
  store.write(3 * 256, bytes_of("z"));  // page 3 cloned
  EXPECT_EQ(store.cow_copies(), 2u);
  (void)snap;
}

TEST(PageStoreTest, NoCowAfterSnapshotDropped) {
  PageStore store(512, 256);
  { const Snapshot snap = store.snapshot(1); }
  store.write(0, bytes_of("w"));
  EXPECT_EQ(store.cow_copies(), 0u);
}

TEST(PageStoreTest, RestoreBringsContentBack) {
  PageStore store(1024, 256);
  store.write(100, bytes_of("checkpointed"));
  const Snapshot snap = store.snapshot(2);
  store.write(100, bytes_of("overwritten!"));
  store.restore(snap);
  std::vector<std::byte> out(12);
  store.read(100, out);
  EXPECT_EQ(out, bytes_of("checkpointed"));
}

TEST(PageStoreTest, WritesAfterRestoreDontCorruptSnapshot) {
  PageStore store(512, 256);
  store.write(0, bytes_of("golden"));
  const Snapshot snap = store.snapshot(3);
  store.restore(snap);
  store.write(0, bytes_of("dirty!"));  // must COW, not poison the snapshot
  EXPECT_EQ(snap.to_bytes()[0], std::byte{'g'});
}

TEST(PageStoreTest, RestoreRejectsLayoutMismatch) {
  PageStore a(512, 256), b(1024, 256);
  const Snapshot snap = b.snapshot(1);
  EXPECT_THROW(a.restore(snap), std::invalid_argument);
}

TEST(SnapshotTest, MetadataAndVersioning) {
  PageStore store(300, 128);
  const Snapshot s1 = store.snapshot(42);
  const Snapshot s2 = store.snapshot(42);
  EXPECT_EQ(s1.owner(), 42u);
  EXPECT_EQ(s1.version(), 1u);
  EXPECT_EQ(s2.version(), 2u);
  EXPECT_EQ(s1.size_bytes(), 300u);
  EXPECT_EQ(s1.page_count(), 3u);
  EXPECT_FALSE(s1.empty());
  EXPECT_TRUE(Snapshot().empty());
}

TEST(SnapshotTest, ToBytesMatchesStoreContent) {
  PageStore store(600, 256);
  const auto data = bytes_of("abcdefghij");
  store.write(590, data);
  const Snapshot snap = store.snapshot(1);
  const auto flat = snap.to_bytes();
  ASSERT_EQ(flat.size(), 600u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(flat[590 + i], data[i]);
  }
}

TEST(SnapshotTest, HashDetectsSingleByteChange) {
  PageStore store(512, 256);
  store.write(0, bytes_of("A"));
  const auto h1 = store.snapshot(1).content_hash();
  store.write(0, bytes_of("B"));
  const auto h2 = store.snapshot(1).content_hash();
  EXPECT_NE(h1, h2);
}

TEST(SnapshotTest, VerifyAcceptsIntactRejectsWrongHash) {
  PageStore store(512, 256);
  store.write(0, bytes_of("payload"));
  const Snapshot snap = store.snapshot(1);
  EXPECT_TRUE(snap.verify(snap.content_hash()));
  EXPECT_FALSE(snap.verify(snap.content_hash() ^ 1));
}

TEST(SnapshotTest, CorruptCopyFailsVerifyWithoutTouchingTheOriginal) {
  PageStore store(512, 256);
  store.write(0, bytes_of("payload"));
  const Snapshot snap = store.snapshot(1);
  const std::uint64_t hash = snap.content_hash();
  const Snapshot bad = corrupt_copy(snap);
  EXPECT_FALSE(bad.verify(hash));
  EXPECT_TRUE(snap.verify(hash));  // damage is on the copy's own pages
  // The layout survives: a corrupt image is restorable, just wrong.
  EXPECT_EQ(bad.to_bytes().size(), snap.to_bytes().size());
}

TEST(SnapshotTest, TornCopyFailsVerifyEvenOnAllZeroTail) {
  // The lost tail of an all-zero image reads back as zeros -- identical
  // bytes to the original. A torn delivery must still be detectable, so
  // torn_copy also damages the surviving prefix.
  PageStore store(1024, 256);  // zero-initialized: worst case for tearing
  const Snapshot snap = store.snapshot(1);
  const std::uint64_t hash = snap.content_hash();
  const Snapshot torn = torn_copy(snap);
  EXPECT_FALSE(torn.verify(hash));
  EXPECT_EQ(torn.to_bytes().size(), snap.to_bytes().size());
}

}  // namespace
