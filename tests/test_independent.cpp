#include "sim/independent.hpp"

#include <gtest/gtest.h>

#include "model/scenario.hpp"
#include "model/period.hpp"
#include "sim/runner.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::sim;

SimConfig make_config(std::uint64_t nodes = 24, double mtbf = 600.0) {
  SimConfig config;
  config.protocol = model::Protocol::DoubleNbl;
  config.params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
  config.params.nodes = nodes;
  config.period =
      model::optimal_period_closed_form(config.protocol, config.params)
          .period;
  config.t_base = 6000.0;
  config.stop_on_fatal = false;
  return config;
}

TEST(IndependentGroupsTest, MakespanIsMaxOverGroups) {
  const auto result = simulate_independent_groups(make_config(), 7);
  EXPECT_GE(result.makespan, result.mean_group_makespan);
  EXPECT_GE(result.makespan, result.t_base);
  EXPECT_GT(result.failures, 0u);
}

TEST(IndependentGroupsTest, Deterministic) {
  const auto a = simulate_independent_groups(make_config(), 9);
  const auto b = simulate_independent_groups(make_config(), 9);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(IndependentGroupsTest, FaultFreeLimitMatchesCoordinated) {
  // Without failures both regimes reduce to the same period structure.
  auto config = make_config(24, 1e12);
  const auto independent = simulate_independent_groups(config, 3);
  const auto coordinated = simulate_exponential(config, 3);
  EXPECT_NEAR(independent.makespan, coordinated.makespan, 1e-6);
  EXPECT_DOUBLE_EQ(independent.waste(), coordinated.waste());
}

TEST(IndependentGroupsTest, BeatsCoordinationUnderHeavyFailures) {
  // With frequent failures, coordinated recovery stalls everyone for every
  // failure; private recovery only stalls one group -- so even the slowest
  // group finishes well before the coordinated run.
  auto config = make_config(24, 120.0);
  util::RunningStats coordinated, independent;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    coordinated.add(simulate_exponential(config, 1000 + seed).makespan);
    independent.add(
        simulate_independent_groups(config, 1000 + seed).makespan);
  }
  EXPECT_LT(independent.mean(), coordinated.mean());
}

TEST(IndependentGroupsTest, StragglerPenaltyVisibleAtModerateRates) {
  // The mean group finishes faster than the max: the straggler gap is the
  // cost independence pays instead of synchrony.
  const auto result = simulate_independent_groups(make_config(48, 600.0), 5);
  EXPECT_GT(result.makespan, result.mean_group_makespan * 1.0001);
}

TEST(IndependentGroupsTest, ValidatesLikeTheCoordinatedPath) {
  auto config = make_config();
  config.period = 1.0;  // below min period
  EXPECT_THROW(simulate_independent_groups(config, 1),
               std::invalid_argument);
}

}  // namespace
