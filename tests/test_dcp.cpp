// Content-hash differential checkpoints: block hash arrays, delta
// construction/replay, torn-layer detection, BuddyStore chain lifecycle,
// the recovery ladder's chain replay, and the analytic dcp model.
#include "ckpt/dcp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "ckpt/buddy_store.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/recovery.hpp"
#include "model/dcp.hpp"
#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt::ckpt;

constexpr std::size_t kPage = 64;
constexpr std::size_t kBytes = kPage * 8;

std::vector<std::byte> fill(std::size_t n, unsigned value) {
  return std::vector<std::byte>(n, static_cast<std::byte>(value));
}

PageStore make_memory(unsigned value = 1) {
  PageStore memory(kBytes, kPage);
  memory.write(0, fill(kBytes, value));
  return memory;
}

TEST(BlockHashesTest, OneHashPerBlockIncludingShortTail) {
  auto memory = make_memory();
  const auto image = memory.snapshot(0);
  EXPECT_EQ(block_hashes(image, kPage).size(), kBytes / kPage);
  // Coarser blocks: ceil(512 / 96) = 6, the tail block spanning 32 bytes.
  EXPECT_EQ(block_hashes(image, 96).size(), (kBytes + 95) / 96);
  EXPECT_EQ(block_hashes(image, kBytes).size(), 1u);
  EXPECT_THROW(block_hashes(image, 0), std::invalid_argument);
}

TEST(BlockHashesTest, OnlyTheTouchedBlockChangesItsHash) {
  auto memory = make_memory();
  const auto before = block_hashes(memory.snapshot(0), kPage);
  memory.write(3 * kPage + 5, fill(1, 0xEE));
  const auto after = block_hashes(memory.snapshot(0), kPage);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (i == 3) {
      EXPECT_NE(before[i], after[i]);
    } else {
      EXPECT_EQ(before[i], after[i]) << "block " << i;
    }
  }
}

TEST(BlockDeltaTest, DetectsDirtyBlocksByContentNotByWrite) {
  auto memory = make_memory();
  const auto base = memory.snapshot(0);
  // Rewrite a page with identical bytes, change one byte of another.
  memory.write(2 * kPage, fill(kPage, 1));
  memory.write(5 * kPage, fill(1, 0xAB));
  const auto current = memory.snapshot(0);
  const auto delta = make_block_delta(base, current, kPage);
  // The identical rewrite is *not* dirty -- content hashes, not COW.
  ASSERT_EQ(delta.dirty_blocks(), 1u);
  EXPECT_EQ(delta.blocks().front().index, 5u);
  EXPECT_EQ(delta.delta_bytes(), kPage);
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 1.0 / 8.0);
  EXPECT_EQ(delta.base_hash(), base.content_hash());
  EXPECT_EQ(delta.result_hash(), current.content_hash());
}

TEST(BlockDeltaTest, CoarseBlocksAmplifySmallWrites) {
  auto memory = make_memory();
  const auto base = memory.snapshot(0);
  memory.write(0, fill(1, 0xAB));  // one byte touched
  const auto current = memory.snapshot(0);
  const auto delta = make_block_delta(base, current, 2 * kPage);
  // The whole two-page block ships for a one-byte write.
  ASSERT_EQ(delta.dirty_blocks(), 1u);
  EXPECT_EQ(delta.delta_bytes(), 2 * kPage);
}

TEST(BlockDeltaTest, CachedHashArrayOverloadMatchesRescan) {
  auto memory = make_memory();
  const auto base = memory.snapshot(0);
  const auto hashes = block_hashes(base, kPage);
  memory.write(kPage, fill(kPage, 7));
  const auto current = memory.snapshot(0);
  const auto rescan = make_block_delta(base, current, kPage);
  const auto cached = make_block_delta(hashes, base.version(),
                                       base.content_hash(), current, kPage);
  ASSERT_EQ(cached.dirty_blocks(), rescan.dirty_blocks());
  EXPECT_EQ(cached.base_hash(), rescan.base_hash());
  EXPECT_EQ(cached.result_hash(), rescan.result_hash());
  EXPECT_EQ(cached.base_version(), rescan.base_version());
}

TEST(BlockDeltaTest, ApplyRoundTripsAcrossChainedLayers) {
  auto memory = make_memory();
  const auto v1 = memory.snapshot(0);
  memory.write(kPage, fill(kPage, 2));
  const auto v2 = memory.snapshot(0);
  memory.write(6 * kPage, fill(10, 3));
  const auto v3 = memory.snapshot(0);
  const auto d12 = make_block_delta(v1, v2, kPage);
  const auto d23 = make_block_delta(v2, v3, kPage);
  const auto r2 = apply_block_delta(v1, d12);
  EXPECT_EQ(r2.content_hash(), v2.content_hash());
  EXPECT_TRUE(r2.verify(d12.result_hash()));
  const auto r3 = apply_block_delta(r2, d23);
  EXPECT_EQ(r3.content_hash(), v3.content_hash());
  EXPECT_EQ(r3.version(), v3.version());
}

TEST(BlockDeltaTest, ApplyRejectsStructuralMismatches) {
  auto memory = make_memory();
  const auto v1 = memory.snapshot(0);
  memory.write(0, fill(1, 9));
  const auto v2 = memory.snapshot(0);
  memory.write(0, fill(1, 10));
  const auto v3 = memory.snapshot(0);
  const auto d23 = make_block_delta(v2, v3, kPage);
  // Version chaining: v1 is not d23's base.
  EXPECT_THROW(apply_block_delta(v1, d23), std::invalid_argument);
  // Owner mismatch.
  PageStore other(kBytes, kPage);
  const auto foreign = other.snapshot(1);
  EXPECT_THROW(make_block_delta(foreign, v3, kPage), std::invalid_argument);
}

TEST(BlockDeltaTest, TornLayerCopyFailsSelfVerification) {
  auto memory = make_memory();
  const auto v1 = memory.snapshot(0);
  memory.write(kPage, fill(kPage, 2));
  const auto v2 = memory.snapshot(0);
  const auto delta = make_block_delta(v1, v2, kPage);
  ASSERT_TRUE(delta.verify_self());
  EXPECT_FALSE(torn_layer_copy(delta).verify_self());
  // An empty delta (nothing dirty) still tears detectably.
  const auto empty = make_block_delta(v2, memory.snapshot(0), kPage);
  ASSERT_EQ(empty.dirty_blocks(), 0u);
  ASSERT_TRUE(empty.verify_self());
  EXPECT_FALSE(torn_layer_copy(empty).verify_self());
}

TEST(BuddyStoreChainTest, ChainNeedsABaseAndClearsOnPromote) {
  auto memory = make_memory();
  BuddyStore store(0);
  const auto v1 = memory.snapshot(0);
  memory.write(0, fill(1, 5));
  const auto v2 = memory.snapshot(0);
  const auto delta = make_block_delta(v1, v2, kPage);
  // No committed base yet: the layer is refused.
  EXPECT_FALSE(store.append_delta(delta));
  store.stage(v1);
  store.promote(v1.version());
  EXPECT_TRUE(store.append_delta(delta));
  EXPECT_EQ(store.chain_for(0).size(), 1u);
  // A new full set clears the chain.
  memory.write(0, fill(1, 6));
  const auto v3 = memory.snapshot(0);
  store.stage(v3);
  store.promote(v3.version());
  EXPECT_TRUE(store.chain_for(0).empty());
}

TEST(BuddyStoreChainTest, CorruptDeltaTearsExactlyTheAddressedLayer) {
  auto memory = make_memory();
  BuddyStore store(0);
  const auto v1 = memory.snapshot(0);
  store.stage(v1);
  store.promote(v1.version());
  memory.write(0, fill(1, 2));
  const auto v2 = memory.snapshot(0);
  memory.write(kPage, fill(1, 3));
  const auto v3 = memory.snapshot(0);
  ASSERT_TRUE(store.append_delta(make_block_delta(v1, v2, kPage)));
  ASSERT_TRUE(store.append_delta(make_block_delta(v2, v3, kPage)));
  // Depth past the chain: refused, nothing damaged.
  EXPECT_FALSE(store.corrupt_delta(0, 3));
  ASSERT_TRUE(store.corrupt_delta(0, 2));
  EXPECT_TRUE(store.chain_for(0)[0].verify_self());
  EXPECT_FALSE(store.chain_for(0)[1].verify_self());
}

/// Pairs cluster with a committed full set plus one chained delta layer on
/// node 0's two holders (itself and its buddy).
struct ChainedCluster {
  ChainedCluster() : groups(4, Topology::Pairs) {
    for (std::uint64_t node = 0; node < 4; ++node) {
      memories.push_back(std::make_unique<PageStore>(kBytes, kPage));
      stores.push_back(std::make_unique<BuddyStore>(node));
      memories[node]->write(0, fill(kBytes, static_cast<unsigned>(node + 1)));
    }
    std::uint64_t version = 0;
    for (std::uint64_t node = 0; node < 4; ++node) {
      const auto image = memories[node]->snapshot(node);
      version = image.version();
      stores[node]->stage(image);
      stores[groups.preferred_buddy(node)]->stage(image);
    }
    for (auto& store : stores) store->promote(version);
    const auto base = *stores[0]->committed_for(0);
    memories[0]->write(2 * kPage, fill(kPage, 0xCD));
    const auto current = memories[0]->snapshot(0);
    tip_hash = current.content_hash();
    const auto delta = make_block_delta(base, current, kPage);
    for (const std::uint64_t holder : {std::uint64_t{0}, std::uint64_t{1}}) {
      EXPECT_TRUE(stores[holder]->append_delta(delta)) << holder;
    }
  }

  std::vector<BuddyStore*> directory() {
    std::vector<BuddyStore*> out;
    for (auto& store : stores) out.push_back(store.get());
    return out;
  }

  GroupAssignment groups;
  std::vector<std::unique_ptr<PageStore>> memories;
  std::vector<std::unique_ptr<BuddyStore>> stores;
  std::uint64_t tip_hash = 0;
};

TEST(ChainRecoveryTest, ReplaysBasePlusChainToTheTip) {
  ChainedCluster cluster;
  const auto outcome = select_replica(0, cluster.groups, cluster.directory(),
                                      cluster.tip_hash);
  ASSERT_EQ(outcome.status, RecoveryStatus::Ok);
  EXPECT_EQ(outcome.replayed_layers, 1u);
  ASSERT_TRUE(outcome.image.has_value());
  EXPECT_EQ(outcome.image->content_hash(), cluster.tip_hash);
}

TEST(ChainRecoveryTest, TornLayerFailsOverToTheBuddyChain) {
  ChainedCluster cluster;
  ASSERT_TRUE(cluster.stores[0]->corrupt_delta(0, 1));
  const auto outcome = select_replica(0, cluster.groups, cluster.directory(),
                                      cluster.tip_hash);
  ASSERT_EQ(outcome.status, RecoveryStatus::FailedOver);
  EXPECT_EQ(outcome.report.source, 1u);
  EXPECT_EQ(outcome.torn_skipped, 1u);
  EXPECT_EQ(outcome.corrupt_skipped, 1u);  // the torn rung counts as corrupt
  EXPECT_EQ(outcome.replayed_layers, 1u);
  EXPECT_EQ(outcome.image->content_hash(), cluster.tip_hash);
}

TEST(ChainRecoveryTest, CorruptBaseIsDetectedBeforeReplay) {
  ChainedCluster cluster;
  // Damage the *base* under the chain: base_hash mismatches pre-replay.
  ASSERT_TRUE(cluster.stores[0]->corrupt_committed(0));
  const auto outcome = select_replica(0, cluster.groups, cluster.directory(),
                                      cluster.tip_hash);
  ASSERT_EQ(outcome.status, RecoveryStatus::FailedOver);
  EXPECT_EQ(outcome.report.source, 1u);
  EXPECT_GE(outcome.corrupt_skipped, 1u);
  EXPECT_EQ(outcome.torn_skipped, 0u);
}

TEST(ChainRecoveryTest, ExhaustedWhenEveryChainIsDamaged) {
  ChainedCluster cluster;
  ASSERT_TRUE(cluster.stores[0]->corrupt_delta(0, 1));
  ASSERT_TRUE(cluster.stores[1]->corrupt_committed(0));
  const auto outcome = select_replica(0, cluster.groups, cluster.directory(),
                                      cluster.tip_hash);
  EXPECT_EQ(outcome.status, RecoveryStatus::Exhausted);
  EXPECT_FALSE(outcome.image.has_value());
}

TEST(ChainRecoveryTest, RefillFlattensTheSourceChain) {
  ChainedCluster cluster;
  // Node 1 (node 0's holder) is replaced; its refill must flatten node 0's
  // chain into a full image at the tip -- the receiver starts chain-free.
  std::vector<std::uint64_t> hashes(4);
  for (std::uint64_t node = 0; node < 4; ++node) {
    hashes[node] = node == 0
                       ? cluster.tip_hash
                       : cluster.stores[node]->committed_for(node)->content_hash();
  }
  *cluster.stores[1] = BuddyStore(1);
  auto dir = cluster.directory();
  const auto outcome = restore_replicas(1, cluster.groups, dir, hashes);
  EXPECT_EQ(outcome.unavailable, 0u);
  EXPECT_EQ(outcome.chains_replayed, 1u);
  EXPECT_EQ(outcome.layers_replayed, 1u);
  const auto refilled = cluster.stores[1]->committed_for(0);
  ASSERT_TRUE(refilled.has_value());
  EXPECT_EQ(refilled->content_hash(), cluster.tip_hash);
  EXPECT_TRUE(cluster.stores[1]->chain_for(0).empty());
}

// ---- Analytic model ----------------------------------------------------

TEST(DcpModelTest, BlockDirtyFractionFollowsTheClosedForm) {
  dckpt::model::DcpSpec spec;
  spec.dirty_fraction = 0.1;
  spec.stack_size = 4;
  spec.block_size = 4096;
  spec.page_size = 4096;
  EXPECT_DOUBLE_EQ(dckpt::model::block_dirty_fraction(spec), 0.1);
  spec.block_size = 4 * 4096;  // 4 pages per block
  EXPECT_DOUBLE_EQ(dckpt::model::block_dirty_fraction(spec),
                   1.0 - std::pow(0.9, 4.0));
  // Sub-page blocks cannot be cleaner than the page granularity.
  spec.block_size = 1024;
  EXPECT_DOUBLE_EQ(dckpt::model::block_dirty_fraction(spec), 0.1);
}

TEST(DcpModelTest, VolumeAndRecoveryMultipliers) {
  dckpt::model::DcpSpec spec;
  spec.dirty_fraction = 0.2;
  spec.stack_size = 5;
  spec.hash_overhead = 0.01;
  // m = (1/K)(1 + h) + (1 - 1/K)(d + h); g = 1 + d (K - 1) / 2.
  EXPECT_NEAR(dckpt::model::checkpoint_volume_multiplier(spec),
              0.2 * 1.01 + 0.8 * 0.21, 1e-12);
  EXPECT_NEAR(dckpt::model::recovery_multiplier(spec), 1.0 + 0.2 * 2.0,
              1e-12);
  // K = 1: every commit is full, only the hash scan remains.
  spec.stack_size = 1;
  EXPECT_NEAR(dckpt::model::checkpoint_volume_multiplier(spec), 1.01, 1e-12);
  EXPECT_DOUBLE_EQ(dckpt::model::recovery_multiplier(spec), 1.0);
  // Disabled: exact identity.
  spec.stack_size = 0;
  EXPECT_DOUBLE_EQ(dckpt::model::checkpoint_volume_multiplier(spec), 1.0);
  EXPECT_DOUBLE_EQ(dckpt::model::recovery_multiplier(spec), 1.0);
}

TEST(DcpModelTest, WasteReducesToFailStopWhenDisabled) {
  const auto params = dckpt::model::base_scenario().params;
  dckpt::model::DcpSpec off;
  for (const auto protocol : dckpt::model::kPaperProtocols) {
    EXPECT_EQ(dckpt::model::waste_with_dcp(protocol, params, 600.0, off),
              dckpt::model::waste(protocol, params, 600.0))
        << dckpt::model::protocol_name(protocol);
  }
}

TEST(DcpModelTest, SmallDirtyFractionCutsWaste) {
  const auto params = dckpt::model::base_scenario().params;
  const auto protocol = dckpt::model::Protocol::DoubleNbl;
  const double period =
      dckpt::model::optimal_period_closed_form(protocol, params).period;
  dckpt::model::DcpSpec spec;
  spec.stack_size = 8;
  spec.dirty_fraction = 0.05;
  const double full = dckpt::model::waste(protocol, params, period);
  const double dcp =
      dckpt::model::waste_with_dcp(protocol, params, period, spec);
  EXPECT_LT(dcp, full);
  // Dirtier workloads pay more; d = 1 costs at least the full-image waste
  // (the chain replay makes recovery strictly dearer).
  spec.dirty_fraction = 1.0;
  EXPECT_GE(dckpt::model::waste_with_dcp(protocol, params, period, spec),
            full);
}

TEST(DcpModelTest, NumericOptimumBeatsTheFullImagePeriod) {
  const auto params = dckpt::model::base_scenario().params;
  const auto protocol = dckpt::model::Protocol::DoubleNbl;
  dckpt::model::DcpSpec spec;
  spec.stack_size = 8;
  spec.dirty_fraction = 0.1;
  const auto opt = dckpt::model::optimal_period_with_dcp(protocol, params,
                                                         spec);
  ASSERT_TRUE(opt.feasible);
  const double at_opt =
      dckpt::model::waste_with_dcp(protocol, params, opt.period, spec);
  const double closed =
      dckpt::model::optimal_period_closed_form(protocol, params).period;
  EXPECT_LE(at_opt, dckpt::model::waste_with_dcp(protocol, params, closed,
                                                 spec) +
                        1e-9);
  // Cheaper commits pull the optimal period below the full-image one.
  EXPECT_LT(opt.period, closed);
}

TEST(DcpModelTest, SpecValidation) {
  dckpt::model::DcpSpec spec;
  spec.stack_size = 4;
  EXPECT_NO_THROW(spec.validate());
  spec.dirty_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.dirty_fraction = 0.5;
  spec.block_size = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.block_size = 4096;
  spec.hash_overhead = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
