#include "ckpt/transfer.hpp"

#include <gtest/gtest.h>

namespace {

using namespace dckpt::ckpt;

TransferSpec base_spec() {
  // The paper's Base scenario hardware: 512 MB image, 128 MB/s network.
  TransferSpec spec;
  spec.image_bytes = 512.0 * 1024 * 1024;
  spec.network_bandwidth = 128.0 * 1024 * 1024;
  spec.alpha = 10.0;
  spec.page_bytes = 4096.0;
  spec.dirty_rate = 0.0;
  return spec;
}

TEST(TransferTest, BlockingTimeIsImageOverBandwidth) {
  EXPECT_DOUBLE_EQ(blocking_transfer_time(base_spec()), 4.0);
}

TEST(TransferTest, PlanEndpointsMatchOverlapModel) {
  const auto spec = base_spec();
  const auto blocking = plan_transfer(spec, 4.0);
  EXPECT_DOUBLE_EQ(blocking.theta, 4.0);
  EXPECT_DOUBLE_EQ(blocking.theta_min, 4.0);
  const auto overlapped = plan_transfer(spec, 0.0);
  EXPECT_DOUBLE_EQ(overlapped.theta, 44.0);  // (1 + alpha) * theta_min
}

TEST(TransferTest, PlanRejectsOutOfDomainPhi) {
  EXPECT_THROW(plan_transfer(base_spec(), -0.1), std::invalid_argument);
  EXPECT_THROW(plan_transfer(base_spec(), 4.1), std::invalid_argument);
}

TEST(TransferTest, CowPressureGrowsWithStretchedTransfers) {
  auto spec = base_spec();
  spec.dirty_rate = 1000.0;  // pages/s
  const auto fast = plan_transfer(spec, 4.0);
  const auto slow = plan_transfer(spec, 0.0);
  EXPECT_LT(fast.expected_cow_pages, slow.expected_cow_pages);
  // theta * rate / 4.
  EXPECT_DOUBLE_EQ(fast.expected_cow_pages, 1000.0);
  EXPECT_DOUBLE_EQ(slow.expected_cow_pages, 11000.0);
}

TEST(TransferTest, CowPressureCappedByImageSize) {
  auto spec = base_spec();
  spec.image_bytes = 8192.0;  // 2 pages
  spec.network_bandwidth = 8192.0;
  spec.dirty_rate = 1e9;
  const auto plan = plan_transfer(spec, 0.0);
  EXPECT_DOUBLE_EQ(plan.expected_cow_pages, 2.0);
}

TEST(TransferTest, PhiForDeadlineInvertsTheta) {
  const auto spec = base_spec();
  for (double phi : {0.5, 1.0, 2.0, 3.5}) {
    const auto plan = plan_transfer(spec, phi);
    EXPECT_NEAR(phi_for_deadline(spec, plan.theta), phi, 1e-9);
  }
}

TEST(TransferTest, PhiForDeadlineEdges) {
  const auto spec = base_spec();
  // Exactly the blocking time: full overhead.
  EXPECT_DOUBLE_EQ(phi_for_deadline(spec, 4.0), 4.0);
  // Beyond theta_max: overhead-free.
  EXPECT_DOUBLE_EQ(phi_for_deadline(spec, 100.0), 0.0);
  // Too tight: impossible.
  EXPECT_THROW(phi_for_deadline(spec, 3.9), std::invalid_argument);
}

TEST(TransferTest, AlphaZeroMeansAlwaysBlocking) {
  auto spec = base_spec();
  spec.alpha = 0.0;
  EXPECT_DOUBLE_EQ(phi_for_deadline(spec, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(phi_for_deadline(spec, 50.0), 4.0);
}

TEST(TransferTest, SpecValidation) {
  auto spec = base_spec();
  spec.image_bytes = 0.0;
  EXPECT_THROW(blocking_transfer_time(spec), std::invalid_argument);
  spec = base_spec();
  spec.network_bandwidth = -1.0;
  EXPECT_THROW(plan_transfer(spec, 1.0), std::invalid_argument);
  spec = base_spec();
  spec.page_bytes = 0.0;
  EXPECT_THROW(plan_transfer(spec, 1.0), std::invalid_argument);
}

TEST(TransferTest, ExaScenarioNumbers) {
  // Exa: ~60 s blocking remote transfer of the per-node image.
  TransferSpec spec;
  spec.image_bytes = 7.5e12;           // bytes
  spec.network_bandwidth = 1.25e11;    // 1 Tb/s in bytes/s
  spec.alpha = 10.0;
  EXPECT_DOUBLE_EQ(blocking_transfer_time(spec), 60.0);
  EXPECT_DOUBLE_EQ(plan_transfer(spec, 0.0).theta, 660.0);
}

// ------------------------------------------- retry policy (re-replication)

TEST(RetryPolicyTest, ValidateRejectsZeroAttempts) {
  RetryPolicy policy;
  EXPECT_NO_THROW(policy.validate());
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(RetryPolicyTest, BackoffDoublesFromTheBase) {
  const RetryPolicy policy{/*max_attempts=*/5, /*base_delay_steps=*/2};
  EXPECT_EQ(policy.backoff_steps(1), 2u);
  EXPECT_EQ(policy.backoff_steps(2), 4u);
  EXPECT_EQ(policy.backoff_steps(3), 8u);
  EXPECT_THROW(policy.backoff_steps(0), std::invalid_argument);
}

TEST(RetryPolicyTest, BackoffNeverWaitsZeroSteps) {
  // A re-issued transfer cannot land inside the step that saw it fail.
  const RetryPolicy policy{/*max_attempts=*/3, /*base_delay_steps=*/0};
  EXPECT_EQ(policy.backoff_steps(1), 1u);
  EXPECT_EQ(policy.backoff_steps(2), 1u);
}

TEST(RetryPolicyTest, BackoffSaturatesInsteadOfOverflowing) {
  const RetryPolicy policy{/*max_attempts=*/100, /*base_delay_steps=*/3};
  EXPECT_EQ(policy.backoff_steps(65), ~std::uint64_t{0});  // shift >= 64
  EXPECT_EQ(policy.backoff_steps(64), ~std::uint64_t{0});  // 3 << 63 overflows
  EXPECT_EQ(policy.backoff_steps(63), std::uint64_t{3} << 62);  // still exact
}

TEST(RetryPolicyTest, ExpectedAttemptsIsTruncatedGeometric) {
  const RetryPolicy policy{/*max_attempts=*/3, /*base_delay_steps=*/1};
  EXPECT_DOUBLE_EQ(policy.expected_transfer_attempts(0.0), 1.0);
  // 1 + p + p^2 with p = 0.5.
  EXPECT_DOUBLE_EQ(policy.expected_transfer_attempts(0.5), 1.75);
  EXPECT_THROW(policy.expected_transfer_attempts(1.0),
               std::invalid_argument);
  EXPECT_THROW(policy.expected_transfer_attempts(-0.1),
               std::invalid_argument);
}

}  // namespace
