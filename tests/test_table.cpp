#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using dckpt::util::TextTable;

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "2.5"});
  const std::string text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
  // Two data rows + header + separator = 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"x", "y"});
  table.add_row_numeric({1.23456, 2.0}, 2);
  const std::string text = table.render();
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("2.00"), std::string::npos);
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, StreamOperator) {
  TextTable table({"k"});
  table.add_row({"v"});
  std::ostringstream out;
  out << table;
  EXPECT_EQ(out.str(), table.render());
}

TEST(TextTableTest, RowCount) {
  TextTable table({"c"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
