#include "ckpt/recovery.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

namespace {

using namespace dckpt::ckpt;

/// A little cluster fixture: n nodes with memory + buddy stores, a helper
/// to run one full checkpoint round per the topology.
class Cluster {
 public:
  Cluster(std::uint64_t nodes, Topology topology)
      : groups_(nodes, topology), hashes_(nodes, 0) {
    for (std::uint64_t node = 0; node < nodes; ++node) {
      memories_.push_back(std::make_unique<PageStore>(1024, 256));
      stores_.push_back(std::make_unique<BuddyStore>(node));
      // Distinct content per node.
      std::vector<std::byte> fill(1024, static_cast<std::byte>(node + 1));
      memories_[node]->write(0, fill);
    }
  }

  void checkpoint_round() {
    std::vector<Snapshot> images;
    for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
      images.push_back(memories_[node]->snapshot(node));
    }
    const std::uint64_t version = images.front().version();
    for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
      if (groups_.topology() == Topology::Pairs) {
        stores_[node]->stage(images[node]);
        stores_[groups_.preferred_buddy(node)]->stage(images[node]);
      } else {
        stores_[groups_.preferred_buddy(node)]->stage(images[node]);
        stores_[groups_.secondary_buddy(node)]->stage(images[node]);
      }
      hashes_[node] = images[node].content_hash();
    }
    for (auto& store : stores_) store->promote(version);
  }

  std::vector<BuddyStore*> directory() {
    std::vector<BuddyStore*> out;
    for (auto& store : stores_) out.push_back(store.get());
    return out;
  }

  void fail_node(std::uint64_t node) {
    std::vector<std::byte> junk(1024, std::byte{0xFF});
    memories_[node]->write(0, junk);
    *stores_[node] = BuddyStore(node);
  }

  const GroupAssignment& groups() const { return groups_; }
  PageStore& memory(std::uint64_t node) { return *memories_[node]; }
  BuddyStore& store(std::uint64_t node) { return *stores_[node]; }
  std::uint64_t hash(std::uint64_t node) const { return hashes_[node]; }
  std::span<const std::uint64_t> hashes() const { return hashes_; }

 private:
  GroupAssignment groups_;
  std::vector<std::unique_ptr<PageStore>> memories_;
  std::vector<std::unique_ptr<BuddyStore>> stores_;
  std::vector<std::uint64_t> hashes_;
};

TEST(SelectReplicaTest, PairsPreferTheLocalCopy) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  const auto dir = cluster.directory();
  const auto outcome = select_replica(0, cluster.groups(), dir,
                                      cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::Ok);
  EXPECT_EQ(outcome.report.source, 0u);
  EXPECT_EQ(outcome.corrupt_skipped, 0u);
  EXPECT_EQ(outcome.candidates_tried, 1u);
}

TEST(SelectReplicaTest, PairsFallBackToTheBuddyAfterLoss) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  const auto dir = cluster.directory();
  const auto outcome = select_replica(0, cluster.groups(), dir,
                                      cluster.hash(0));
  // An *absent* first rung is not a failover -- only a corrupt one is.
  EXPECT_EQ(outcome.status, RecoveryStatus::Ok);
  EXPECT_EQ(outcome.report.source, 1u);
  EXPECT_TRUE(outcome.report.hash_verified);
  EXPECT_EQ(outcome.corrupt_skipped, 0u);
}

TEST(SelectReplicaTest, CorruptLocalCopyFailsOverToTheBuddy) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  ASSERT_TRUE(cluster.store(0).corrupt_committed(0));
  const auto dir = cluster.directory();
  const auto outcome = select_replica(0, cluster.groups(), dir,
                                      cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::FailedOver);
  EXPECT_EQ(outcome.report.source, 1u);
  EXPECT_EQ(outcome.corrupt_skipped, 1u);
  EXPECT_EQ(outcome.candidates_tried, 2u);
}

TEST(SelectReplicaTest, TornImageIsSkippedLikeCorruption) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  ASSERT_TRUE(cluster.store(0).corrupt_committed(0, /*torn=*/true));
  const auto dir = cluster.directory();
  const auto outcome = select_replica(0, cluster.groups(), dir,
                                      cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::FailedOver);
  EXPECT_EQ(outcome.report.source, 1u);
}

TEST(SelectReplicaTest, ExhaustedWhenEveryCopyIsCorrupt) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  ASSERT_TRUE(cluster.store(0).corrupt_committed(0));
  ASSERT_TRUE(cluster.store(1).corrupt_committed(0));
  const auto dir = cluster.directory();
  const auto outcome = select_replica(0, cluster.groups(), dir,
                                      cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::Exhausted);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.image.has_value());
  EXPECT_EQ(outcome.corrupt_skipped, 2u);
}

TEST(SelectReplicaTest, TriplesWalkPreferredThenSecondary) {
  Cluster cluster(6, Topology::Triples);
  cluster.checkpoint_round();
  const auto dir = cluster.directory();
  // Intact: the preferred buddy serves.
  auto outcome = select_replica(0, cluster.groups(), dir, cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::Ok);
  EXPECT_EQ(outcome.report.source, cluster.groups().preferred_buddy(0));
  // Corrupt preferred copy: the secondary serves, counted as a failover.
  ASSERT_TRUE(
      cluster.store(cluster.groups().preferred_buddy(0)).corrupt_committed(0));
  outcome = select_replica(0, cluster.groups(), dir, cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::FailedOver);
  EXPECT_EQ(outcome.report.source, cluster.groups().secondary_buddy(0));
  EXPECT_EQ(outcome.corrupt_skipped, 1u);
}

TEST(RecoverNodeTest, RestoresContentAndVerifiesHash) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(2);
  const auto dir = cluster.directory();
  const auto outcome = recover_node(2, cluster.groups(), dir,
                                    cluster.memory(2), cluster.hash(2));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.report.node, 2u);
  EXPECT_EQ(outcome.report.source, 3u);
  EXPECT_TRUE(outcome.report.hash_verified);
  // Memory content is back.
  std::vector<std::byte> probe(4);
  cluster.memory(2).read(0, probe);
  EXPECT_EQ(probe[0], static_cast<std::byte>(3));
}

TEST(RecoverNodeTest, WrongExpectedHashExhaustsWithoutRestoring) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  const auto dir = cluster.directory();
  const auto outcome = recover_node(0, cluster.groups(), dir,
                                    cluster.memory(0), 0xdeadbeef);
  EXPECT_EQ(outcome.status, RecoveryStatus::Exhausted);
  // Only the buddy's copy was present -- and it failed the check.
  EXPECT_EQ(outcome.corrupt_skipped, 1u);
  // Memory keeps the junk the failure left: nothing was restored.
  std::vector<std::byte> probe(4);
  cluster.memory(0).read(0, probe);
  EXPECT_EQ(probe[0], std::byte{0xFF});
}

TEST(RecoverNodeTest, TripleRecoversFromEitherBuddy) {
  Cluster cluster(6, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  const auto dir = cluster.directory();
  const auto outcome = recover_node(0, cluster.groups(), dir,
                                    cluster.memory(0), cluster.hash(0));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.report.hash_verified);
  EXPECT_TRUE(outcome.report.source == 1 || outcome.report.source == 2);
}

TEST(RecoverNodeTest, TripleSurvivesTwoFailures) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  cluster.fail_node(1);
  const auto dir = cluster.directory();
  // Node 2 still holds copies for both victims (it stores images of its
  // peers per the rotation).
  EXPECT_TRUE(recover_node(0, cluster.groups(), dir, cluster.memory(0),
                           cluster.hash(0))
                  .ok());
  EXPECT_TRUE(recover_node(1, cluster.groups(), dir, cluster.memory(1),
                           cluster.hash(1))
                  .ok());
}

TEST(RecoverNodeTest, TripleExhaustedOnThreeFailuresWithoutThrowing) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  cluster.fail_node(1);
  cluster.fail_node(2);
  const auto dir = cluster.directory();
  const auto outcome = recover_node(0, cluster.groups(), dir,
                                    cluster.memory(0), cluster.hash(0));
  EXPECT_EQ(outcome.status, RecoveryStatus::Exhausted);
  EXPECT_EQ(outcome.candidates_tried, 0u);
}

TEST(RestoreReplicasTest, PairRefillsBuddyImageAndLocalCopy) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  auto dir = cluster.directory();
  const auto outcome =
      restore_replicas(0, cluster.groups(), dir, cluster.hashes());
  EXPECT_EQ(outcome.restored, 2u);  // buddy's image + own local copy
  EXPECT_EQ(outcome.unavailable, 0u);
  EXPECT_TRUE(cluster.store(0).committed_for(1));
  EXPECT_TRUE(cluster.store(0).committed_for(0));
}

TEST(RestoreReplicasTest, TripleRefillsBothHeldImages) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(1);
  auto dir = cluster.directory();
  const auto outcome =
      restore_replicas(1, cluster.groups(), dir, cluster.hashes());
  EXPECT_EQ(outcome.restored, 2u);
  // Node 1 stores images of the nodes listed by stored_for(1).
  for (std::uint64_t owner : cluster.groups().stored_for(1)) {
    EXPECT_TRUE(cluster.store(1).committed_for(owner)) << owner;
  }
}

TEST(RestoreReplicasTest, CorruptSourceIsSkippedAndCountedUnavailable) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(1);
  // The only other copy of one owner held by node 1 is corrupt: that owner
  // stays unavailable, the other still refills -- a partial refill, not an
  // abort.
  const std::uint64_t owner = cluster.groups().stored_for(1).front();
  const std::uint64_t survivor =
      cluster.groups().preferred_buddy(owner) == 1
          ? cluster.groups().secondary_buddy(owner)
          : cluster.groups().preferred_buddy(owner);
  ASSERT_TRUE(cluster.store(survivor).corrupt_committed(owner));
  auto dir = cluster.directory();
  const auto outcome =
      restore_replicas(1, cluster.groups(), dir, cluster.hashes());
  EXPECT_EQ(outcome.restored, 1u);
  EXPECT_EQ(outcome.corrupt_skipped, 1u);
  EXPECT_EQ(outcome.unavailable, 1u);
  EXPECT_FALSE(cluster.store(1).committed_for(owner));
}

TEST(RestoreReplicasTest, ClosesTheRiskWindow) {
  // After recovery + re-replication, the *other* member of the pair can fail
  // and the cluster still recovers -- the exact property the risk window
  // protects.
  Cluster cluster(2, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  auto dir = cluster.directory();
  ASSERT_TRUE(recover_node(0, cluster.groups(), dir, cluster.memory(0),
                           cluster.hash(0))
                  .ok());
  restore_replicas(0, cluster.groups(), dir, cluster.hashes());
  // Now the buddy dies.
  cluster.fail_node(1);
  EXPECT_TRUE(recover_node(1, cluster.groups(), dir, cluster.memory(1),
                           cluster.hash(1))
                  .ok());
}

TEST(RecoveryTest, DirectoryValidation) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  auto dir = cluster.directory();
  dir.pop_back();
  EXPECT_THROW(select_replica(0, cluster.groups(), dir, cluster.hash(0)),
               std::invalid_argument);
  dir = cluster.directory();
  dir[1] = nullptr;
  EXPECT_THROW(select_replica(0, cluster.groups(), dir, cluster.hash(0)),
               std::invalid_argument);
}

}  // namespace
