#include "ckpt/recovery.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

namespace {

using namespace dckpt::ckpt;

/// A little cluster fixture: n nodes with memory + buddy stores, a helper
/// to run one full checkpoint round per the topology.
class Cluster {
 public:
  Cluster(std::uint64_t nodes, Topology topology)
      : groups_(nodes, topology) {
    for (std::uint64_t node = 0; node < nodes; ++node) {
      memories_.push_back(std::make_unique<PageStore>(1024, 256));
      stores_.push_back(std::make_unique<BuddyStore>(node));
      // Distinct content per node.
      std::vector<std::byte> fill(1024, static_cast<std::byte>(node + 1));
      memories_[node]->write(0, fill);
    }
  }

  void checkpoint_round() {
    std::vector<Snapshot> images;
    for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
      images.push_back(memories_[node]->snapshot(node));
    }
    const std::uint64_t version = images.front().version();
    for (std::uint64_t node = 0; node < groups_.nodes(); ++node) {
      if (groups_.topology() == Topology::Pairs) {
        stores_[node]->stage(images[node]);
        stores_[groups_.preferred_buddy(node)]->stage(images[node]);
      } else {
        stores_[groups_.preferred_buddy(node)]->stage(images[node]);
        stores_[groups_.secondary_buddy(node)]->stage(images[node]);
      }
      hashes_[node] = images[node].content_hash();
    }
    for (auto& store : stores_) store->promote(version);
  }

  std::vector<BuddyStore*> directory() {
    std::vector<BuddyStore*> out;
    for (auto& store : stores_) out.push_back(store.get());
    return out;
  }

  void fail_node(std::uint64_t node) {
    std::vector<std::byte> junk(1024, std::byte{0xFF});
    memories_[node]->write(0, junk);
    *stores_[node] = BuddyStore(node);
  }

  const GroupAssignment& groups() const { return groups_; }
  PageStore& memory(std::uint64_t node) { return *memories_[node]; }
  BuddyStore& store(std::uint64_t node) { return *stores_[node]; }
  std::uint64_t hash(std::uint64_t node) const { return hashes_.at(node); }

 private:
  GroupAssignment groups_;
  std::vector<std::unique_ptr<PageStore>> memories_;
  std::vector<std::unique_ptr<BuddyStore>> stores_;
  std::map<std::uint64_t, std::uint64_t> hashes_;
};

TEST(LocateReplicaTest, PairBuddyHoldsImage) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  const auto dir = cluster.directory();
  EXPECT_EQ(locate_replica(0, cluster.groups(), dir).node(), 1u);
  EXPECT_EQ(locate_replica(1, cluster.groups(), dir).node(), 0u);
}

TEST(LocateReplicaTest, ThrowsWhenNoReplicaSurvives) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(1);  // node 0's only replica holder gone
  const auto dir = cluster.directory();
  // Node 0's own local copy still exists in its own store, but recovery of
  // node 0 *after its failure* excludes itself:
  cluster.fail_node(0);
  EXPECT_THROW(locate_replica(0, cluster.groups(), dir), std::runtime_error);
}

TEST(RecoverNodeTest, RestoresContentAndVerifiesHash) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(2);
  const auto dir = cluster.directory();
  const auto report = recover_node(2, cluster.groups(), dir,
                                   cluster.memory(2), cluster.hash(2));
  EXPECT_EQ(report.node, 2u);
  EXPECT_EQ(report.source, 3u);
  EXPECT_TRUE(report.hash_verified);
  // Memory content is back.
  std::vector<std::byte> probe(4);
  cluster.memory(2).read(0, probe);
  EXPECT_EQ(probe[0], static_cast<std::byte>(3));
}

TEST(RecoverNodeTest, HashMismatchThrows) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  const auto dir = cluster.directory();
  EXPECT_THROW(
      recover_node(0, cluster.groups(), dir, cluster.memory(0), 0xdeadbeef),
      std::runtime_error);
}

TEST(RecoverNodeTest, TripleRecoversFromEitherBuddy) {
  Cluster cluster(6, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  const auto dir = cluster.directory();
  const auto report =
      recover_node(0, cluster.groups(), dir, cluster.memory(0),
                   cluster.hash(0));
  EXPECT_TRUE(report.hash_verified);
  EXPECT_TRUE(report.source == 1 || report.source == 2);
}

TEST(RecoverNodeTest, TripleSurvivesTwoFailures) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  cluster.fail_node(1);
  const auto dir = cluster.directory();
  // Node 2 still holds copies for both victims (it stores images of its
  // peers per the rotation).
  EXPECT_NO_THROW(recover_node(0, cluster.groups(), dir, cluster.memory(0),
                               cluster.hash(0)));
  EXPECT_NO_THROW(recover_node(1, cluster.groups(), dir, cluster.memory(1),
                               cluster.hash(1)));
}

TEST(RecoverNodeTest, TripleDiesOnThreeFailures) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  cluster.fail_node(1);
  cluster.fail_node(2);
  const auto dir = cluster.directory();
  EXPECT_THROW(recover_node(0, cluster.groups(), dir, cluster.memory(0),
                            cluster.hash(0)),
               std::runtime_error);
}

TEST(RestoreReplicasTest, PairRefillsBuddyImageAndLocalCopy) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  auto dir = cluster.directory();
  const std::size_t restored =
      restore_replicas(0, cluster.groups(), dir);
  EXPECT_EQ(restored, 2u);  // buddy's image + own local copy
  EXPECT_TRUE(cluster.store(0).committed_for(1));
  EXPECT_TRUE(cluster.store(0).committed_for(0));
}

TEST(RestoreReplicasTest, TripleRefillsBothHeldImages) {
  Cluster cluster(3, Topology::Triples);
  cluster.checkpoint_round();
  cluster.fail_node(1);
  auto dir = cluster.directory();
  const std::size_t restored = restore_replicas(1, cluster.groups(), dir);
  EXPECT_EQ(restored, 2u);
  // Node 1 stores images of the nodes listed by stored_for(1).
  for (std::uint64_t owner : cluster.groups().stored_for(1)) {
    EXPECT_TRUE(cluster.store(1).committed_for(owner)) << owner;
  }
}

TEST(RestoreReplicasTest, ClosesTheRiskWindow) {
  // After recovery + re-replication, the *other* member of the pair can fail
  // and the cluster still recovers -- the exact property the risk window
  // protects.
  Cluster cluster(2, Topology::Pairs);
  cluster.checkpoint_round();
  cluster.fail_node(0);
  auto dir = cluster.directory();
  recover_node(0, cluster.groups(), dir, cluster.memory(0), cluster.hash(0));
  restore_replicas(0, cluster.groups(), dir);
  // Now the buddy dies.
  cluster.fail_node(1);
  EXPECT_NO_THROW(recover_node(1, cluster.groups(), dir, cluster.memory(1),
                               cluster.hash(1)));
}

TEST(RecoveryTest, DirectoryValidation) {
  Cluster cluster(4, Topology::Pairs);
  cluster.checkpoint_round();
  auto dir = cluster.directory();
  dir.pop_back();
  EXPECT_THROW(locate_replica(0, cluster.groups(), dir),
               std::invalid_argument);
  dir = cluster.directory();
  dir[1] = nullptr;
  EXPECT_THROW(locate_replica(0, cluster.groups(), dir),
               std::invalid_argument);
}

}  // namespace
