#include "sim/protocol_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt::sim;
using dckpt::model::base_scenario;
using dckpt::model::Parameters;
using dckpt::model::Protocol;

/// Deterministic injector replaying a fixed failure schedule, then silence.
class ScriptedInjector final : public FailureInjector {
 public:
  ScriptedInjector(std::vector<FailureEvent> events, std::uint64_t nodes)
      : events_(std::move(events)), nodes_(nodes) {}

  FailureEvent peek() override {
    if (cursor_ < events_.size()) return events_[cursor_];
    return {std::numeric_limits<double>::infinity(), 0};
  }
  void pop() override { ++cursor_; }
  void on_node_replaced(std::uint64_t, double, double) override {}
  std::uint64_t node_count() const override { return nodes_; }

 private:
  std::vector<FailureEvent> events_;
  std::size_t cursor_ = 0;
  std::uint64_t nodes_;
};

Parameters test_params(double phi = 1.0) {
  auto p = base_scenario().params;  // D=0 delta=2 R=4 alpha=10
  p.overhead = phi;                 // theta = 4 + 10*(4-phi)
  p.nodes = 6;                      // divisible by 2 and 3
  p.mtbf = 1e12;                    // effectively failure-free by default
  return p;
}

SimConfig make_config(Protocol protocol, double period, double t_base,
                      double phi = 1.0) {
  SimConfig config;
  config.protocol = protocol;
  config.params = test_params(phi);
  config.period = period;
  config.t_base = t_base;
  return config;
}

TrialResult run_scripted(const SimConfig& config,
                         std::vector<FailureEvent> events,
                         Trace* trace = nullptr) {
  ProtocolSimulation simulation(
      config,
      std::make_unique<ScriptedInjector>(std::move(events),
                                         config.params.nodes));
  return simulation.run(trace);
}

// -------------------------------------------------------------- fault-free

TEST(FaultFreeTest, DoubleNblWasteEqualsModelExactly) {
  // P=100, delta=2, phi=1: W = 97 per period; 10 periods = 1000 s.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 970.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.makespan, 1000.0, 1e-6);
  EXPECT_NEAR(result.waste(),
              dckpt::model::waste_fault_free(Protocol::DoubleNbl,
                                             config.params, 100.0),
              1e-9);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_FALSE(result.fatal);
}

TEST(FaultFreeTest, TripleWasteEqualsModelExactly) {
  // P=100, phi=1: W = 98 per period.
  const auto config = make_config(Protocol::Triple, 100.0, 980.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.makespan, 1000.0, 1e-6);
  EXPECT_NEAR(result.waste(), 0.02, 1e-9);
}

TEST(FaultFreeTest, DoubleBlockingWasteEqualsModelExactly) {
  // theta = phi = R = 4: W = P - delta - R = 94 per period of 100.
  const auto config = make_config(Protocol::DoubleBlocking, 100.0, 940.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.makespan, 1000.0, 1e-6);
  EXPECT_NEAR(result.waste(), 0.06, 1e-9);
}

TEST(FaultFreeTest, FinishesMidPeriodExactly) {
  // t_base = 97 + 50: one full period (100 s) + part1 (2, no work) +
  // part2 (34 s for 33 units) + 17 s of part3.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 147.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.makespan, 100.0 + 2.0 + 34.0 + 17.0, 1e-6);
}

TEST(FaultFreeTest, FullOverlapTripleHasZeroWaste) {
  const auto config = make_config(Protocol::Triple, 176.0, 880.0, 0.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.waste(), 0.0, 1e-9);
  EXPECT_NEAR(result.makespan, 880.0, 1e-6);
}

// ------------------------------------------------------------ one failure

TEST(SingleFailureTest, NblPartThreeHandComputed) {
  // Failure at t=50 in part 3 of the first period. Hand computation:
  // work(50) = 33 (part2) + 14 (part3) = 47, committed = 0;
  // repair = D(0) + R(4) + reexec(34 @ 33/34 + 14 @ 1 = 48);
  // then 50 s to finish the interrupted part 3.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  const auto result = run_scripted(config, {{50.0, 0}});
  EXPECT_EQ(result.failures, 1u);
  EXPECT_NEAR(result.makespan, 50.0 + 4.0 + 48.0 + 50.0, 1e-6);
  // Loss breakdown identity: makespan - t_base.
  EXPECT_NEAR(result.time_checkpointing + result.time_down +
                  result.time_recovering + result.time_reexecuting,
              result.makespan - result.t_base, 1e-6);
  EXPECT_NEAR(result.time_recovering, 4.0, 1e-9);
  EXPECT_NEAR(result.time_reexecuting, 48.0, 1e-9);
}

TEST(SingleFailureTest, BofRecoversBlockingButReexecutesFullSpeed) {
  // Same failure; BOF: recovery 2R = 8, re-execution at full speed = 47.
  const auto config = make_config(Protocol::DoubleBof, 100.0, 97.0);
  const auto result = run_scripted(config, {{50.0, 0}});
  EXPECT_NEAR(result.makespan, 50.0 + 8.0 + 47.0 + 50.0, 1e-6);
  EXPECT_NEAR(result.time_recovering, 8.0, 1e-9);
  EXPECT_NEAR(result.time_reexecuting, 47.0, 1e-9);
}

TEST(SingleFailureTest, TriplePartTwoHandComputed) {
  // Triple P=100: parts (34, 34, 32), commit at end of part 1 covers the
  // state at period start (work 0 in period one). Failure at t=40:
  // work = 33 + 6*(33/34) = 1320/34; repair = R(4) + reexec(1320/33 = 40);
  // resume part 2 (28 s left), part 3 (32 s).
  const auto config = make_config(Protocol::Triple, 100.0, 98.0);
  const auto result = run_scripted(config, {{40.0, 0}});
  EXPECT_NEAR(result.makespan, 40.0 + 4.0 + 40.0 + 28.0 + 32.0, 1e-6);
}

TEST(SingleFailureTest, FailureDuringLocalCheckpointLosesPreviousPeriod) {
  // Failure at t=101 (part 1 of period 2). committed = 0 (period-1 snapshot
  // of state 0 committed at t=36)... no: at end of period-1 part 2, the
  // snapshot of work level 0 commits; the period-2 snapshot (level 97) is
  // still local-only. Rollback target is 0: the full previous period's work
  // re-executes.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 194.0);
  const auto result = run_scripted(config, {{101.0, 0}});
  // Timeline: 101 (fail) + 0 + 4 (R) + reexec(34 @33/34 + (97-33) @1 = 98)
  // + resume part1 remaining 1 s + part2 34 + part3 64 ... but work hits
  // t_base at 97 + 97: finishes exactly at end of period 2's part 3.
  EXPECT_NEAR(result.makespan, 101.0 + 4.0 + 98.0 + 1.0 + 34.0 + 64.0, 1e-6);
  EXPECT_EQ(result.failures, 1u);
}

TEST(SingleFailureTest, FailureDuringDowntimeRestartsRepair) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.params.downtime = 10.0;
  config.period = 100.0;
  // First failure at 50 -> down [50,60); second failure at 55 restarts
  // downtime; repair completes at 55 + 10 + 4 + 48, then 50 s remain.
  const auto result = run_scripted(config, {{50.0, 0}, {55.0, 2}});
  EXPECT_EQ(result.failures, 2u);
  EXPECT_FALSE(result.fatal);  // node 2 is not node 0's buddy
  EXPECT_NEAR(result.makespan, 55.0 + 10.0 + 4.0 + 48.0 + 50.0, 1e-6);
}

// ------------------------------------------------------------ fatal logic

TEST(FatalTest, BuddyFailureInsideRiskWindowStopsRun) {
  // NBL risk window = D + R + theta = 38. Buddy (node 1) fails 10 s after
  // node 0: fatal.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 1000.0);
  const auto result = run_scripted(config, {{50.0, 0}, {60.0, 1}});
  EXPECT_TRUE(result.fatal);
  EXPECT_NEAR(result.fatal_time, 60.0, 1e-9);
  EXPECT_NEAR(result.makespan, 60.0, 1e-9);
}

TEST(FatalTest, BuddyFailureAfterWindowIsSurvivable) {
  // Window after t=50 closes at 88; buddy failure at 100 is safe.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  const auto result = run_scripted(config, {{50.0, 0}, {100.0, 1}});
  EXPECT_FALSE(result.fatal);
  EXPECT_EQ(result.failures, 2u);
}

TEST(FatalTest, BofWindowIsShorterThanNbl) {
  // BOF risk = D + 2R = 8: the same 10 s gap is survivable.
  const auto config = make_config(Protocol::DoubleBof, 100.0, 1000.0);
  const auto result = run_scripted(config, {{50.0, 0}, {60.0, 1}});
  EXPECT_FALSE(result.fatal);
}

TEST(FatalTest, TripleNeedsThreeFailures) {
  const auto config = make_config(Protocol::Triple, 100.0, 1000.0);
  // Nodes 0,1,2 form a triple; risk = D + R + 2 theta = 72.
  const auto two = run_scripted(config, {{50.0, 0}, {55.0, 1}});
  EXPECT_FALSE(two.fatal);
  const auto three = run_scripted(config, {{50.0, 0}, {55.0, 1}, {60.0, 2}});
  EXPECT_TRUE(three.fatal);
}

TEST(FatalTest, ContinueAfterFatalWhenRequested) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.stop_on_fatal = false;
  const auto result = run_scripted(config, {{50.0, 0}, {60.0, 1}});
  EXPECT_TRUE(result.fatal);
  EXPECT_GT(result.makespan, 100.0);  // run completed anyway
  EXPECT_NEAR(result.fatal_time, 60.0, 1e-9);
}

// ------------------------------------------------------------------ trace

TEST(TraceTest, FaultFreePeriodOrdering) {
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  Trace trace(true);
  run_scripted(config, {}, &trace);
  const auto& events = trace.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceKind::PeriodStart);
  EXPECT_EQ(events[1].kind, TraceKind::LocalCheckpointDone);
  EXPECT_DOUBLE_EQ(events[1].time, 2.0);
  EXPECT_EQ(events[2].kind, TraceKind::RemoteExchangeDone);
  EXPECT_DOUBLE_EQ(events[2].time, 36.0);
  EXPECT_EQ(events.back().kind, TraceKind::ApplicationDone);
}

TEST(TraceTest, TripleCommitsAfterPartOne) {
  const auto config = make_config(Protocol::Triple, 100.0, 98.0);
  Trace trace(true);
  run_scripted(config, {}, &trace);
  const auto& events = trace.events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[1].kind, TraceKind::PreferredCopyDone);
  EXPECT_DOUBLE_EQ(events[1].time, 34.0);
}

TEST(TraceTest, FailurePathEvents) {
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  Trace trace(true);
  run_scripted(config, {{50.0, 0}}, &trace);
  std::vector<TraceKind> kinds;
  for (const auto& event : trace.events()) kinds.push_back(event.kind);
  // Failure, rollback, recovery end, re-execution end must appear in order.
  auto find = [&](TraceKind kind) {
    return std::find(kinds.begin(), kinds.end(), kind);
  };
  auto failure = find(TraceKind::Failure);
  auto rollback = find(TraceKind::Rollback);
  auto recovery = find(TraceKind::RecoveryEnd);
  auto reexec = find(TraceKind::ReexecutionEnd);
  ASSERT_NE(failure, kinds.end());
  ASSERT_NE(rollback, kinds.end());
  ASSERT_NE(recovery, kinds.end());
  ASSERT_NE(reexec, kinds.end());
  EXPECT_LT(failure, rollback);
  EXPECT_LT(rollback, recovery);
  EXPECT_LT(recovery, reexec);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  Trace trace(false);
  trace.record(1.0, TraceKind::Failure, 0, 0.0);
  EXPECT_TRUE(trace.events().empty());
}

// ------------------------------------------------------------- edge cases

TEST(EdgeCaseTest, DivergenceGuardTriggers) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 1e6);
  config.params.mtbf = 1.0;  // a failure every second: no progress possible
  config.max_makespan = 5000.0;
  config.stop_on_fatal = false;
  const auto result = simulate_exponential(config, 42);
  EXPECT_TRUE(result.diverged);
}

TEST(EdgeCaseTest, ValidationRejectsBadConfigs) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.period = 10.0;  // below min_period = 36
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::Triple, 100.0, 0.0);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::Triple, 100.0, 97.0);
  config.params.nodes = 4;  // not divisible by 3
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(EdgeCaseTest, InjectorNodeCountMismatchRejected) {
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  EXPECT_THROW(ProtocolSimulation(
                   config, std::make_unique<ScriptedInjector>(
                               std::vector<FailureEvent>{}, 4)),
               std::invalid_argument);
}

TEST(EdgeCaseTest, FailureExactlyAtCommitBoundary) {
  // A failure at the precise end of part 2 (t = 36): the phase-transition
  // commit at 36 must win (events strictly *before* the boundary interrupt,
  // the boundary itself belongs to the completed exchange), so only the
  // sigma work since commit is lost.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  const auto result = run_scripted(config, {{36.0, 0}});
  EXPECT_EQ(result.failures, 1u);
  // committed = 0 snapshot at t = 36... the snapshot captured work level 0
  // (period-1 start), so rollback to 0 and deficit = 33 either way; the
  // distinguishing observable is the makespan:
  // 36 + R(4) + reexec(34 @33/34 = 34) + remaining part3 (64) = 138.
  EXPECT_NEAR(result.makespan, 36.0 + 4.0 + 34.0 + 64.0, 1e-6);
}

TEST(EdgeCaseTest, TripleWithZeroSigma) {
  // P = 2 theta exactly: the period has no full-speed part. phi=1 -> theta
  // = 34, P = 68, W = 66 per period.
  const auto config = make_config(Protocol::Triple, 68.0, 660.0);
  const auto result = run_scripted(config, {});
  EXPECT_NEAR(result.makespan, 680.0, 1e-6);
  EXPECT_NEAR(result.waste(), 2.0 / 68.0, 1e-9);
}

TEST(EdgeCaseTest, BackToBackFailuresDifferentNodes) {
  // Two failures 0.5 s apart in different pairs: the second strikes during
  // the first's downtime-free recovery; repair restarts, deficit unchanged.
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  const auto result = run_scripted(config, {{50.0, 0}, {50.5, 4}});
  EXPECT_EQ(result.failures, 2u);
  EXPECT_FALSE(result.fatal);
  // Second failure at 50.5 (during recovery of the first): restart
  // recovery; repair = 4 + 48 from t=50.5, then 50 s of part 3 remain.
  EXPECT_NEAR(result.makespan, 50.5 + 4.0 + 48.0 + 50.0, 1e-6);
}

TEST(EdgeCaseTest, FailureDuringReexecutionDoublesTheBill) {
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  // First failure at 50; reexec runs [54, 102); second failure at 80
  // rolls work back to 0 again with the same pre-failure target (47).
  const auto result = run_scripted(config, {{50.0, 0}, {80.0, 2}});
  EXPECT_EQ(result.failures, 2u);
  // Timeline: 80 + 4 (R) + 48 (full reexec again) + 50 (rest of part 3).
  EXPECT_NEAR(result.makespan, 80.0 + 4.0 + 48.0 + 50.0, 1e-6);
  EXPECT_NEAR(result.time_recovering, 8.0, 1e-9);
}

TEST(EdgeCaseTest, TraceAndExponentialInjectorsAgreeOnSchedule) {
  // Feeding the exponential injector's exact failure times through a
  // TraceInjector must reproduce the same makespan.
  auto config = make_config(Protocol::DoubleNbl, 100.0, 2000.0);
  config.params.mtbf = 700.0;
  Trace trace(true);
  const auto direct = simulate_exponential(config, 99, &trace);
  std::vector<FailureEvent> events;
  for (const auto& event : trace.events()) {
    if (event.kind == TraceKind::Failure) {
      events.push_back({event.time, event.node});
    }
  }
  const auto replayed = run_scripted(config, events);
  EXPECT_EQ(replayed.failures, direct.failures);
  EXPECT_NEAR(replayed.makespan, direct.makespan, 1e-6);
}

TEST(EdgeCaseTest, ZeroDowntimeAndImmediateChains) {
  // D = 0 with a failure in part 1 (no work done yet in this period).
  const auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  const auto result = run_scripted(config, {{1.0, 0}});
  EXPECT_EQ(result.failures, 1u);
  // Nothing to re-execute (work == committed == 0): cost is D + R = 4 s on
  // top of the fault-free 100 s period.
  EXPECT_NEAR(result.makespan, 104.0, 1e-6);
}

// ---------------------------------------------------------- silent errors

TEST(SilentErrorTest, ValidationRejectsBadSdcConfigs) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.sdc_rate = 1e-3;  // strikes without any verification: undetectable
  config.verify_every = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.sdc_rate = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.sdc_rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.verify_cost = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.keep_last = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  // Verification without strikes is a legal (pure-overhead) configuration.
  config = make_config(Protocol::DoubleNbl, 100.0, 97.0);
  config.verify_cost = 1.0;
  config.verify_every = 2;
  EXPECT_NO_THROW(config.validate());
}

TEST(SilentErrorTest, VerificationCostAccountedExactly) {
  // sdc_rate = 0, V = 3, k = 2 on a fault-free run: verification is pure
  // blocking overhead. t_base = 450 spans periods 1-4 fully (work 388) plus
  // 62 units into period 5, so verifications fire after periods 2 and 4.
  // Makespan = 4*100 + 2*3 (verify) + 2 (part1) + 34 (part2) + 29 (part3).
  auto config = make_config(Protocol::DoubleNbl, 100.0, 450.0);
  config.verify_cost = 3.0;
  config.verify_every = 2;
  config.keep_last = 2;
  const auto result = run_scripted(config, {});
  EXPECT_EQ(result.verifications_run, 2u);
  EXPECT_NEAR(result.time_verifying, 6.0, 1e-9);
  EXPECT_NEAR(result.makespan, 400.0 + 6.0 + 2.0 + 34.0 + 29.0, 1e-6);
  EXPECT_EQ(result.sdc_injected, 0u);
  EXPECT_EQ(result.sdc_detected, 0u);
  EXPECT_EQ(result.rollback_depth, 0u);
  EXPECT_FALSE(result.fatal);
}

TEST(SilentErrorTest, VerificationSkippedWhenDisabled) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 450.0);
  config.verify_cost = 3.0;  // cost configured but k = 0 disables the phase
  config.verify_every = 0;
  const auto result = run_scripted(config, {});
  EXPECT_EQ(result.verifications_run, 0u);
  EXPECT_NEAR(result.time_verifying, 0.0, 1e-12);
}

TEST(SilentErrorTest, CounterInvariantsUnderExponentialCampaign) {
  // Hot platform with strikes enabled: every counter relationship the
  // aggregates rely on must hold trial by trial.
  auto config = make_config(Protocol::DoubleNbl, 100.0, 4000.0);
  config.params.mtbf = 500.0;
  config.stop_on_fatal = false;
  config.sdc_rate = 1.0 / 300.0;
  config.verify_cost = 0.5;
  config.verify_every = 2;
  config.keep_last = 3;
  bool saw_detection = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto result = simulate_exponential(config, seed);
    EXPECT_LE(result.sdc_detected, result.verifications_run)
        << "seed " << seed;
    // Each completed verification blocked for exactly V; interrupted ones
    // only add time, so the total is bounded below by count * V.
    EXPECT_GE(result.time_verifying + 1e-9,
              static_cast<double>(result.verifications_run) *
                  config.verify_cost)
        << "seed " << seed;
    if (result.sdc_detected > 0) saw_detection = true;
    if (!result.diverged) {
      EXPECT_GE(result.makespan, result.t_base) << "seed " << seed;
    }
  }
  EXPECT_TRUE(saw_detection)
      << "campaign too quiet to exercise the detection path";
}

TEST(SilentErrorTest, StrikeStreamIsDeterministicPerSeed) {
  auto config = make_config(Protocol::DoubleNbl, 100.0, 2000.0);
  config.params.mtbf = 800.0;
  config.stop_on_fatal = false;
  config.sdc_rate = 1.0 / 250.0;
  config.verify_cost = 1.0;
  config.verify_every = 3;
  config.keep_last = 2;
  const auto a = simulate_exponential(config, 7);
  const auto b = simulate_exponential(config, 7);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sdc_injected, b.sdc_injected);
  EXPECT_EQ(a.sdc_detected, b.sdc_detected);
  EXPECT_EQ(a.rollback_depth, b.rollback_depth);
  const auto c = simulate_exponential(config, 8);
  EXPECT_TRUE(a.sdc_injected != c.sdc_injected || a.makespan != c.makespan)
      << "distinct seeds produced identical strike histories";
}

}  // namespace
