#include "model/period.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt::model;

TEST(ClosedFormTest, NblMatchesEquation9) {
  auto p = base_scenario().params.with_overhead(1.0).with_mtbf(7 * 3600.0);
  const double theta = p.theta();  // 34
  const double expected =
      std::sqrt(2.0 * (p.local_ckpt + p.overhead) * (p.mtbf - 4.0 - theta));
  const auto opt = optimal_period_closed_form(Protocol::DoubleNbl, p);
  EXPECT_FALSE(opt.clamped);
  EXPECT_NEAR(opt.period, expected, 1e-9);
}

TEST(ClosedFormTest, BofMatchesEquation10) {
  auto p = exa_scenario().params.with_overhead(30.0).with_mtbf(7 * 3600.0);
  const double theta = p.theta();  // 60 + 10*30 = 360
  const double expected = std::sqrt(
      2.0 * (p.local_ckpt + p.overhead) *
      (p.mtbf - 2.0 * 60.0 - 60.0 - theta + 30.0));
  const auto opt = optimal_period_closed_form(Protocol::DoubleBof, p);
  EXPECT_NEAR(opt.period, expected, 1e-9);
}

TEST(ClosedFormTest, TripleMatchesEquation15) {
  auto p = base_scenario().params.with_overhead(2.0).with_mtbf(7 * 3600.0);
  const double theta = p.theta();  // 24
  const double expected = 2.0 * std::sqrt(2.0 * (p.mtbf - 0.0 - 4.0 - theta));
  const auto opt = optimal_period_closed_form(Protocol::Triple, p);
  EXPECT_NEAR(opt.period, expected, 1e-9);
}

TEST(ClosedFormTest, TripleAtZeroOverheadClampsToMinPeriod) {
  // phi = 0: checkpointing costs nothing, optimal period is the shortest
  // admissible one (closed form degenerates to 0).
  auto p = base_scenario().params.with_overhead(0.0).with_mtbf(7 * 3600.0);
  const auto opt = optimal_period_closed_form(Protocol::Triple, p);
  EXPECT_TRUE(opt.clamped);
  EXPECT_DOUBLE_EQ(opt.period, min_period(Protocol::Triple, p));
}

TEST(ClosedFormTest, TinyMtbfClampsAndIsInfeasible) {
  auto p = base_scenario().params.with_overhead(2.0).with_mtbf(15.0);
  const auto opt = optimal_period_closed_form(Protocol::DoubleNbl, p);
  EXPECT_TRUE(opt.clamped);  // sqrt of a negative -> NaN -> clamp
  EXPECT_FALSE(opt.feasible);
  EXPECT_DOUBLE_EQ(opt.waste, 1.0);
}

// Closed-form optimum must agree with an independent numeric minimization of
// the exact waste, across the paper's parameter grid. First-order formulas
// drop O(1/M) terms, so agreement tightens as M grows; we check the waste
// values (flat near the optimum) rather than the raw periods.
class ClosedFormVsNumeric
    : public ::testing::TestWithParam<std::tuple<Protocol, double, int>> {};

TEST_P(ClosedFormVsNumeric, WasteAtClosedFormNearNumericOptimum) {
  const auto [protocol, phi_ratio, scenario_index] = GetParam();
  const auto scenario = paper_scenarios()[scenario_index];
  const auto params = scenario.at_phi_ratio(phi_ratio).with_mtbf(7 * 3600.0);
  const auto closed = optimal_period_closed_form(protocol, params);
  const auto numeric = optimal_period_numeric(protocol, params);
  ASSERT_TRUE(numeric.feasible);
  // The numeric optimum is the ground truth; closed form must be within
  // 2% relative waste of it (and never better, up to tolerance).
  EXPECT_GE(closed.waste, numeric.waste - 1e-9);
  EXPECT_LE(closed.waste, numeric.waste * 1.02 + 1e-9)
      << protocol_name(protocol) << " " << scenario.name
      << " phi/R=" << phi_ratio << " closed P=" << closed.period
      << " numeric P=" << numeric.period;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ClosedFormVsNumeric,
    ::testing::Combine(
        ::testing::Values(Protocol::DoubleBlocking, Protocol::DoubleNbl,
                          Protocol::DoubleBof, Protocol::Triple,
                          Protocol::TripleBof),
        ::testing::Values(0.05, 0.25, 0.5, 0.75, 1.0),
        ::testing::Values(0, 1)));

TEST(NumericOptimumTest, BoundaryOptimumDetected) {
  auto p = base_scenario().params.with_overhead(0.0).with_mtbf(7 * 3600.0);
  const auto opt = optimal_period_numeric(Protocol::Triple, p);
  EXPECT_DOUBLE_EQ(opt.period, min_period(Protocol::Triple, p));
  EXPECT_TRUE(opt.clamped);
}

TEST(NumericOptimumTest, InteriorOptimumIsStationary) {
  auto p = exa_scenario().params.with_overhead(30.0).with_mtbf(7 * 3600.0);
  const auto opt = optimal_period_numeric(Protocol::DoubleNbl, p);
  ASSERT_FALSE(opt.clamped);
  const double h = opt.period * 1e-3;
  const double at = waste(Protocol::DoubleNbl, p, opt.period);
  EXPECT_LE(at, waste(Protocol::DoubleNbl, p, opt.period - h) + 1e-12);
  EXPECT_LE(at, waste(Protocol::DoubleNbl, p, opt.period + h) + 1e-12);
}

TEST(OptimalPeriodTest, MuchLargerThanCentralizedEquivalent) {
  // Paper Sec. III-B: with distributed buddy checkpointing, delta is a
  // *single node* checkpoint, so the optimal period beats the classic
  // Young period computed with a global checkpoint that is n times larger.
  auto p = base_scenario().params.with_overhead(1.0).with_mtbf(7 * 3600.0);
  const auto opt = optimal_period_closed_form(Protocol::DoubleNbl, p);
  const double global_ckpt = p.local_ckpt * 100.0;  // conservative factor
  const double young = std::sqrt(2.0 * p.mtbf * global_ckpt);
  EXPECT_LT(opt.period, young);  // smaller period...
  const double distributed_waste = opt.waste;
  // ...but the waste with the distributed scheme stays far below the
  // centralized fault-free floor global_ckpt / young.
  EXPECT_LT(distributed_waste, global_ckpt / young);
}

TEST(JointOptimumTest, TriplePrefersSmallPhiAtHighAlpha) {
  // With alpha = 10 the triple protocol wants phi as small as possible
  // (near-free checkpointing); the doubles still pay delta regardless.
  const auto params =
      base_scenario().params.with_mtbf(7 * 3600.0);
  const auto triple =
      optimal_overhead_and_period(Protocol::Triple, params);
  EXPECT_LT(triple.overhead, 0.15 * params.remote_blocking);
  // Joint optimum is no worse than any fixed-phi slice we probe.
  for (double ratio : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_LE(triple.optimum.waste,
              waste_at_optimal_period(
                  Protocol::Triple,
                  params.with_overhead(ratio * params.remote_blocking)) +
                  1e-12)
        << ratio;
  }
}

TEST(JointOptimumTest, AlphaZeroForcesBlockingPoint) {
  auto params = base_scenario().params.with_mtbf(7 * 3600.0);
  params.alpha = 0.0;
  const auto best =
      optimal_overhead_and_period(Protocol::DoubleNbl, params);
  EXPECT_DOUBLE_EQ(best.overhead, params.remote_blocking);
}

TEST(JointOptimumTest, RejectsTinyGrid) {
  const auto params = base_scenario().params.with_mtbf(7 * 3600.0);
  EXPECT_THROW(optimal_overhead_and_period(Protocol::Triple, params, 1),
               std::invalid_argument);
}

TEST(WasteAtOptimalPeriodTest, DominantTermScaling) {
  // WASTE* ~ sqrt(2 delta / M) for large M (paper Sec. III-B): doubling
  // M/delta ratio by 4 should halve the optimal waste, approximately.
  auto p = base_scenario().params.with_overhead(0.5);
  const double w1 = waste_at_optimal_period(Protocol::DoubleNbl,
                                            p.with_mtbf(3600.0 * 24));
  const double w2 = waste_at_optimal_period(Protocol::DoubleNbl,
                                            p.with_mtbf(4.0 * 3600.0 * 24));
  EXPECT_NEAR(w1 / w2, 2.0, 0.25);
}

}  // namespace
